//! Baseline collectors the paper compares SVAGC against.
//!
//! * [`parallelgc`] — HotSpot's throughput collector: parallel
//!   work-stealing mark-compact with byte-copy relocation.
//! * [`shenandoah`] — the pause-oriented region collector whose copy phase
//!   lacks work stealing/parallelism (the paper's §V-A explanation for its
//!   poor Full-GC latency); also available with SwapVA-accelerated
//!   evacuation (Table I row 3).
//! * [`los`] — the Large-Object-Space organization the paper's intro
//!   argues against: non-moving free-list LOS with fragmentation and
//!   "eventual compactions", measurable against SVAGC.
//!
//! Both pair with heaps built via `HeapConfig::with_alignment(false)` —
//! baseline JVMs do not page-align large objects.

#![warn(missing_docs)]

pub mod los;
pub mod parallelgc;
pub mod shenandoah;

pub use los::{LosCollector, LosHeap, LosStats};
pub use parallelgc::ParallelGc;
pub use shenandoah::Shenandoah;
