//! A Large-Object-Space (LOS) heap organization — the design the paper's
//! introduction argues against.
//!
//! Classic collectors avoid copying large objects by allocating them in a
//! separate *non-moving* space managed by a free list (citing Hicks et
//! al., ISMM'98 and Immix). The paper's critique: "the allocation of large
//! objects in non-copying LOSs to avoid copying costs results in the
//! fragmentation of these allocations, as well as increased maintenance
//! costs and eventual compactions". SwapVA instead lets large objects live
//! in the ordinary heap and move for free.
//!
//! This module implements the LOS design honestly so the critique can be
//! measured: first-fit free-list allocation with coalescing, mark-sweep of
//! the LOS during full GC (no movement), and a fallback **LOS compaction**
//! when external fragmentation makes an allocation fail despite sufficient
//! total free space.

use std::collections::HashMap;
use svagc_core::{GcConfig, GcCycleStats, Lisp2Collector, WorkerPool, GcError};
use svagc_heap::{Heap, HeapConfig, HeapError, MarkBitmap, ObjHeader, ObjRef, ObjShape, RootSet};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::Cycles;
use svagc_vmem::{Asid, VirtAddr, PAGE_SIZE};

/// LOS statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct LosStats {
    /// Large objects allocated in the LOS.
    pub los_allocations: u64,
    /// Large objects swept (freed).
    pub los_freed: u64,
    /// Emergency LOS compactions (the "eventual compactions").
    pub los_compactions: u64,
    /// Allocation attempts that failed on fragmentation (total free would
    /// have sufficed but no hole fit).
    pub frag_failures: u64,
    /// Cycles spent compacting the LOS.
    pub compaction_cycles: Cycles,
}

/// A heap split into a compacted small-object space and a non-moving LOS.
#[derive(Debug)]
pub struct LosHeap {
    /// The ordinary (small-object) space; full GCs compact it with LISP2.
    pub small: Heap,
    los_base: VirtAddr,
    los_end: VirtAddr,
    /// Sorted, coalesced holes: `(base, bytes)`.
    holes: Vec<(VirtAddr, u64)>,
    /// Live + not-yet-swept LOS objects, address-sorted.
    los_objects: Vec<ObjRef>,
    /// Byte size threshold for LOS placement (the same 10-page boundary
    /// SVAGC uses for SwapVA, for a like-for-like comparison).
    large_bytes: u64,
    /// Statistics.
    pub stats: LosStats,
}

impl LosHeap {
    /// Build a heap with `small_bytes` of compacted space and `los_bytes`
    /// of large-object space.
    pub fn new(
        kernel: &mut Kernel,
        asid: Asid,
        small_bytes: u64,
        los_bytes: u64,
        threshold_pages: u64,
    ) -> Result<LosHeap, HeapError> {
        // The small space never holds large objects, so alignment off.
        let mut small = Heap::new(
            kernel,
            asid,
            HeapConfig::new(small_bytes)
                .with_threshold(threshold_pages)
                .with_alignment(false),
        )?;
        let los_pages = los_bytes.div_ceil(PAGE_SIZE);
        let los_base = small.map_region(kernel, los_pages)?;
        let los_end = los_base.add_pages(los_pages);
        Ok(LosHeap {
            small,
            los_base,
            los_end,
            holes: vec![(los_base, los_pages * PAGE_SIZE)],
            los_objects: Vec::new(),
            large_bytes: threshold_pages * PAGE_SIZE,
            stats: LosStats::default(),
        })
    }

    /// Does `va` point into the LOS?
    pub fn in_los(&self, va: VirtAddr) -> bool {
        va >= self.los_base && va < self.los_end
    }

    /// Is `shape` LOS-bound?
    pub fn is_large(&self, shape: ObjShape) -> bool {
        shape.size_bytes() >= self.large_bytes
    }

    /// Total free bytes in the LOS.
    pub fn los_free(&self) -> u64 {
        self.holes.iter().map(|&(_, b)| b).sum()
    }

    /// Largest hole (what a first-fit allocation can actually use).
    pub fn largest_hole(&self) -> u64 {
        self.holes.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }

    /// External fragmentation: fraction of free space unusable for an
    /// allocation of the largest-hole size + 1.
    pub fn fragmentation(&self) -> f64 {
        let free = self.los_free();
        if free == 0 {
            0.0
        } else {
            1.0 - self.largest_hole() as f64 / free as f64
        }
    }

    /// Allocate `shape`: LOS first-fit for large objects, the ordinary
    /// bump space otherwise. `NeedGc` means run a full collection; if the
    /// failure is fragmentation (not occupancy), the collector will
    /// compact the LOS.
    pub fn alloc(
        &mut self,
        kernel: &mut Kernel,
        core: CoreId,
        shape: ObjShape,
    ) -> Result<(ObjRef, Cycles), HeapError> {
        if !self.is_large(shape) {
            return self.small.alloc(kernel, core, shape);
        }
        let size = shape.size_bytes();
        // First fit.
        let Some(idx) = self.holes.iter().position(|&(_, b)| b >= size) else {
            if self.los_free() >= size {
                self.stats.frag_failures += 1;
            }
            return Err(HeapError::NeedGc { requested: size });
        };
        let (base, hole) = self.holes[idx];
        if hole == size {
            self.holes.remove(idx);
        } else {
            self.holes[idx] = (base + size, hole - size);
        }
        let obj = ObjRef(base);
        let header = shape.header();
        let mut t = kernel.write_word(self.small.space(), core, obj.header_va(), header.encode())?;
        t += kernel.write_word(self.small.space(), core, obj.forwarding_va(), 0)?;
        t += Cycles(40 + 12 * idx as u64); // free-list walk
        let pos = self.los_objects.partition_point(|o| *o < obj);
        self.los_objects.insert(pos, obj);
        self.stats.los_allocations += 1;
        Ok((obj, t))
    }

    /// Return `[base, base+bytes)` to the free list, coalescing neighbours.
    fn free_range(&mut self, base: VirtAddr, bytes: u64) {
        let pos = self.holes.partition_point(|&(b, _)| b < base);
        self.holes.insert(pos, (base, bytes));
        // Coalesce with successor then predecessor.
        if pos + 1 < self.holes.len() {
            let (nb, nsz) = self.holes[pos + 1];
            if base + bytes == nb {
                self.holes[pos].1 += nsz;
                self.holes.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (pb, psz) = self.holes[pos - 1];
            if pb + psz == base {
                self.holes[pos - 1].1 += self.holes[pos].1;
                self.holes.remove(pos);
            }
        }
    }

    /// LOS objects, address-sorted.
    pub fn los_objects(&self) -> &[ObjRef] {
        &self.los_objects
    }
}

/// Full collector for the LOS organization: LISP2 on the small space,
/// mark-sweep (non-moving) on the LOS, emergency LOS compaction on
/// fragmentation failure.
#[derive(Debug)]
pub struct LosCollector {
    small_gc: Lisp2Collector,
    /// Per-cycle stats of the small-space collections.
    pub log: Vec<GcCycleStats>,
}

impl LosCollector {
    /// LOS collector with `gc_threads` workers (memmove small-space
    /// compaction, as in the classic designs the paper cites).
    pub fn new(gc_threads: usize) -> LosCollector {
        LosCollector {
            small_gc: Lisp2Collector::new(GcConfig::lisp2_memmove(gc_threads)),
            log: Vec::new(),
        }
    }

    /// Trace the full graph (both spaces) from the roots; returns the LOS
    /// live bitmap and, for each live LOS object, its header.
    #[allow(clippy::type_complexity)]
    fn trace(
        &self,
        kernel: &mut Kernel,
        heap: &LosHeap,
        roots: &RootSet,
    ) -> Result<(MarkBitmap, MarkBitmap, Vec<(ObjRef, ObjHeader)>), HeapError> {
        let core = CoreId(0);
        let mut small_marks =
            MarkBitmap::new(heap.small.base(), heap.small.extent_words());
        let mut los_marks = MarkBitmap::new(
            heap.los_base,
            (heap.los_end - heap.los_base) / 8,
        );
        let mut live_los = Vec::new();
        let mut stack: Vec<ObjRef> = Vec::new();
        let mark = |obj: ObjRef,
                        small_marks: &mut MarkBitmap,
                        los_marks: &mut MarkBitmap|
         -> bool {
            if heap.small.contains(obj.0) {
                small_marks.mark(obj.header_va())
            } else if heap.in_los(obj.0) {
                los_marks.mark(obj.header_va())
            } else {
                false
            }
        };
        for r in roots.iter_live() {
            if mark(r, &mut small_marks, &mut los_marks) {
                stack.push(r);
            }
        }
        while let Some(obj) = stack.pop() {
            let (hdr, _) = heap.small.read_header(kernel, core, obj)?;
            if heap.in_los(obj.0) {
                live_los.push((obj, hdr));
            }
            for i in 0..hdr.num_refs as u64 {
                let (tgt, _) = heap.small.read_ref(kernel, core, obj, i)?;
                if !tgt.is_null() && mark(tgt, &mut small_marks, &mut los_marks) {
                    stack.push(tgt);
                }
            }
        }
        live_los.sort_by_key(|(o, _)| *o);
        Ok((small_marks, los_marks, live_los))
    }

    /// One full collection: sweep the LOS, compact the small space.
    pub fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut LosHeap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError> {
        let core = CoreId(0);
        let (_, los_marks, live_los) = self.trace(kernel, heap, roots)?;

        // ---- Sweep the LOS (non-moving) -------------------------------
        let mut sweep_cycles = Cycles::ZERO;
        let mut survivors = Vec::new();
        for &obj in &heap.los_objects.clone() {
            let (hdr, t) = heap.small.read_header(kernel, core, obj)?;
            sweep_cycles += t;
            if los_marks.is_marked(obj.header_va()) {
                survivors.push(obj);
            } else {
                heap.free_range(obj.0, hdr.size_bytes());
                heap.stats.los_freed += 1;
            }
        }
        heap.los_objects = survivors;

        // ---- Pin LOS-held references into the small space --------------
        let mut temp: Vec<(ObjRef, u64, svagc_heap::RootId)> = Vec::new();
        for &(obj, hdr) in &live_los {
            for i in 0..hdr.num_refs as u64 {
                let (tgt, _) = heap.small.read_ref(kernel, core, obj, i)?;
                if !tgt.is_null() && heap.small.contains(tgt.0) {
                    temp.push((obj, i, roots.push(tgt)));
                }
            }
        }

        // ---- Compact the small space (LISP2, refs to LOS untouched) ----
        let mut stats = self.small_gc.collect(kernel, &mut heap.small, roots)?;
        stats.phases.shootdown += sweep_cycles; // account the sweep

        for (holder, field, rid) in temp {
            let updated = roots.get(rid);
            heap.small.write_ref(kernel, core, holder, field, updated)?;
            roots.set(rid, ObjRef::NULL);
        }
        self.log.push(stats);
        Ok(stats)
    }

    /// Emergency LOS compaction ("eventual compactions"): slide every live
    /// LOS object to the bottom of the space by memmove, rewriting all
    /// references to moved objects across both spaces and the roots.
    pub fn compact_los(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut LosHeap,
        roots: &mut RootSet,
    ) -> Result<Cycles, HeapError> {
        let core = CoreId(0);
        let mut pool = WorkerPool::new(1); // classic LOS compaction: serial
        let (_, _, live_los) = self.trace(kernel, heap, roots)?;

        // Slide down, building a forwarding map.
        let mut cursor = heap.los_base;
        let mut forwarding: HashMap<u64, ObjRef> = HashMap::new();
        for &(obj, hdr) in &live_los {
            let dst = ObjRef(cursor);
            cursor = cursor + hdr.size_bytes();
            if dst != obj {
                let t = kernel.memmove(heap.small.space(), core, obj.0, dst.0, hdr.size_bytes())?;
                pool.dispatch_to(0, t);
            }
            forwarding.insert(obj.0.get(), dst);
        }
        // Rebuild the free list: one hole from the cursor to the end.
        heap.holes.clear();
        if cursor < heap.los_end {
            heap.holes.push((cursor, heap.los_end - cursor));
        }
        heap.los_objects = live_los
            .iter()
            .map(|&(o, _)| forwarding[&o.0.get()])
            .collect();
        heap.los_objects.sort();

        // Rewrite references to moved LOS objects: roots...
        for slot in roots.slots_mut() {
            if let Some(&dst) = forwarding.get(&slot.0.get()) {
                *slot = dst;
            }
        }
        // ...fields of every small object...
        for &obj in &heap.small.objects_sorted().to_vec() {
            let (hdr, t) = heap.small.read_header(kernel, core, obj)?;
            pool.dispatch_to(0, t);
            for i in 0..hdr.num_refs as u64 {
                let (tgt, t1) = heap.small.read_ref(kernel, core, obj, i)?;
                pool.dispatch_to(0, t1);
                if let Some(&dst) = forwarding.get(&tgt.0.get()) {
                    let t2 = heap.small.write_ref(kernel, core, obj, i, dst)?;
                    pool.dispatch_to(0, t2);
                }
            }
        }
        // ...and fields of the LOS objects themselves (at new addresses).
        for &obj in &heap.los_objects.clone() {
            let (hdr, t) = heap.small.read_header(kernel, core, obj)?;
            pool.dispatch_to(0, t);
            for i in 0..hdr.num_refs as u64 {
                let (tgt, t1) = heap.small.read_ref(kernel, core, obj, i)?;
                pool.dispatch_to(0, t1);
                if let Some(&dst) = forwarding.get(&tgt.0.get()) {
                    let t2 = heap.small.write_ref(kernel, core, obj, i, dst)?;
                    pool.dispatch_to(0, t2);
                }
            }
        }
        heap.stats.los_compactions += 1;
        let pause = pool.makespan();
        heap.stats.compaction_cycles += pause;
        Ok(pause)
    }

    /// Allocation front-end with the full LOS policy: try, collect, retry,
    /// compact the LOS on fragmentation failure, retry again.
    pub fn alloc_with_gc(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut LosHeap,
        roots: &mut RootSet,
        shape: ObjShape,
    ) -> Result<ObjRef, GcError> {
        match heap.alloc(kernel, CoreId(0), shape) {
            Ok((obj, _)) => return Ok(obj),
            Err(HeapError::NeedGc { .. }) => {}
            Err(e) => return Err(e.into()),
        }
        self.collect(kernel, heap, roots)?;
        match heap.alloc(kernel, CoreId(0), shape) {
            Ok((obj, _)) => return Ok(obj),
            Err(HeapError::NeedGc { .. }) => {}
            Err(e) => return Err(e.into()),
        }
        // Still failing: if it is fragmentation, compact the LOS.
        if heap.is_large(shape) && heap.los_free() >= shape.size_bytes() {
            self.compact_los(kernel, heap, roots)?;
            return Ok(heap.alloc(kernel, CoreId(0), shape)?.0);
        }
        Err(GcError::Heap(HeapError::NeedGc {
            requested: shape.size_bytes(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_metrics::MachineConfig;

    const CORE: CoreId = CoreId(0);

    fn setup(small_mb: u64, los_mb: u64) -> (Kernel, LosHeap, RootSet) {
        let mut k = Kernel::with_bytes(
            MachineConfig::xeon_gold_6130(),
            (small_mb + los_mb + 8) << 20,
        );
        let h = LosHeap::new(&mut k, Asid(1), small_mb << 20, los_mb << 20, 10).unwrap();
        (k, h, RootSet::new())
    }

    #[test]
    fn large_goes_to_los_small_to_heap() {
        let (mut k, mut h, _) = setup(8, 8);
        let (small, _) = h.alloc(&mut k, CORE, ObjShape::data(10)).unwrap();
        let (big, _) = h.alloc(&mut k, CORE, ObjShape::data_bytes(64 << 10)).unwrap();
        assert!(h.small.contains(small.0));
        assert!(h.in_los(big.0));
        assert_eq!(h.stats.los_allocations, 1);
    }

    #[test]
    fn free_list_coalesces() {
        let (mut k, mut h, _) = setup(4, 8);
        let shape = ObjShape::data_bytes(64 << 10);
        let objs: Vec<ObjRef> = (0..4).map(|_| h.alloc(&mut k, CORE, shape).unwrap().0).collect();
        let free_before = h.los_free();
        // Free the middle two: they must coalesce into one hole.
        let holes_before = h.holes.len();
        h.free_range(objs[1].0, shape.size_bytes());
        h.free_range(objs[2].0, shape.size_bytes());
        assert_eq!(h.holes.len(), holes_before + 1, "adjacent holes merge");
        assert_eq!(h.los_free(), free_before + 2 * shape.size_bytes());
    }

    #[test]
    fn sweep_frees_dead_large_objects() {
        let (mut k, mut h, mut roots) = setup(8, 8);
        let shape = ObjShape::data_bytes(64 << 10);
        for i in 0..8u64 {
            let (obj, _) = h.alloc(&mut k, CORE, shape).unwrap();
            if i % 2 == 0 {
                roots.push(obj);
            }
        }
        let mut gc = LosCollector::new(4);
        gc.collect(&mut k, &mut h, &mut roots).unwrap();
        assert_eq!(h.stats.los_freed, 4);
        assert_eq!(h.los_objects().len(), 4);
        // Survivors did NOT move (non-moving LOS).
        for r in roots.iter_live() {
            assert!(h.in_los(r.0));
        }
    }

    #[test]
    fn fragmentation_forces_compaction() {
        // Fill the LOS with alternating live/dead 64 KiB objects, sweep,
        // then ask for a 128 KiB object: total free suffices but no hole
        // does -> the collector must compact the LOS.
        let (mut k, mut h, mut roots) = setup(8, 2);
        let shape = ObjShape::data_bytes(64 << 10);
        let mut n = 0u64;
        while let Ok((obj, _)) = h.alloc(&mut k, CORE, shape) {
            if n.is_multiple_of(2) {
                roots.push(obj);
            }
            n += 1;
        }
        let mut gc = LosCollector::new(4);
        gc.collect(&mut k, &mut h, &mut roots).unwrap();
        assert!(h.fragmentation() > 0.4, "checkerboard: {}", h.fragmentation());
        let big = ObjShape::data_bytes(128 << 10);
        assert!(h.los_free() >= big.size_bytes());
        assert!(h.largest_hole() < big.size_bytes());
        let obj = gc.alloc_with_gc(&mut k, &mut h, &mut roots, big).unwrap();
        assert!(h.in_los(obj.0));
        assert_eq!(h.stats.los_compactions, 1);
        assert!(h.stats.frag_failures >= 1);
        assert!(h.fragmentation() < 0.01, "compaction defragments");
    }

    #[test]
    fn los_compaction_preserves_cross_space_graph() {
        let (mut k, mut h, mut roots) = setup(8, 2);
        // Small holder -> LOS object -> small leaf.
        let (holder, _) = h.alloc(&mut k, CORE, ObjShape::with_refs(1, 2)).unwrap();
        roots.push(holder);
        let big_shape = ObjShape::with_refs(1, (64 << 10) / 8);
        // A doomed LOS object first, so the survivor has to slide.
        let (doomed, _) = h.alloc(&mut k, CORE, big_shape).unwrap();
        let _ = doomed;
        let (big, _) = h.alloc(&mut k, CORE, big_shape).unwrap();
        h.small.write_ref(&mut k, CORE, holder, 0, big).unwrap();
        let (leaf, _) = h.alloc(&mut k, CORE, ObjShape::data(4)).unwrap();
        h.small.write_data(&mut k, CORE, leaf, 0, 0, 777).unwrap();
        h.small.write_ref(&mut k, CORE, big, 0, leaf).unwrap();
        h.small
            .write_data(&mut k, CORE, big, 1, 100, 0xB16).unwrap();

        let mut gc = LosCollector::new(2);
        gc.collect(&mut k, &mut h, &mut roots).unwrap(); // sweeps `doomed`
        let before = roots.get(svagc_heap::RootId(0));
        gc.compact_los(&mut k, &mut h, &mut roots).unwrap();
        // The big object slid down; the holder's ref was rewritten.
        let holder_now = roots.get(svagc_heap::RootId(0));
        assert_eq!(holder_now, before, "small objects did not move");
        let (big_now, _) = h.small.read_ref(&mut k, CORE, holder_now, 0).unwrap();
        assert_eq!(big_now.0, {
            let (lb, _) = (h.los_base, 0);
            lb
        }, "survivor slid to the LOS base");
        // Its data and its ref to the small leaf survived.
        let (v, _) = h.small.read_data(&mut k, CORE, big_now, 1, 100).unwrap();
        assert_eq!(v, 0xB16);
        let (leaf_now, _) = h.small.read_ref(&mut k, CORE, big_now, 0).unwrap();
        let (lv, _) = h.small.read_data(&mut k, CORE, leaf_now, 0, 0).unwrap();
        assert_eq!(lv, 777);
    }

    #[test]
    fn small_space_compaction_keeps_los_refs() {
        let (mut k, mut h, mut roots) = setup(8, 4);
        // Small garbage, then a live small object pointing at a LOS object.
        for _ in 0..10 {
            h.alloc(&mut k, CORE, ObjShape::data(100)).unwrap();
        }
        let (holder, _) = h.alloc(&mut k, CORE, ObjShape::with_refs(1, 2)).unwrap();
        roots.push(holder);
        let (big, _) = h.alloc(&mut k, CORE, ObjShape::data_bytes(64 << 10)).unwrap();
        h.small.write_ref(&mut k, CORE, holder, 0, big).unwrap();
        let big_addr = big.0;
        let mut gc = LosCollector::new(2);
        gc.collect(&mut k, &mut h, &mut roots).unwrap();
        // The holder moved (small compaction) but still points at the
        // unmoved LOS object.
        let holder_now = roots.get(svagc_heap::RootId(0));
        let (tgt, _) = h.small.read_ref(&mut k, CORE, holder_now, 0).unwrap();
        assert_eq!(tgt.0, big_addr);
    }
}
