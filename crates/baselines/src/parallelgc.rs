//! A ParallelGC-like baseline: HotSpot's throughput collector.
//!
//! The paper compares against ParallelGC's *Full GC* (Figs. 12/13 measure
//! Full-GC latency explicitly), which in HotSpot is a parallel
//! mark-compact over the whole heap with work-stealing task queues and
//! byte-copy ("memmove") relocation. That is exactly our LISP2 machinery
//! with SwapVA off:
//!
//! * all four phases parallel with work stealing,
//! * relocation by memmove, no page alignment of large objects (pair this
//!   collector with a heap built via `HeapConfig::with_alignment(false)`),
//! * no TLB shootdown traffic (PTEs never change).
//!
//! The generational young-collection machinery is intentionally not
//! modeled: the paper's evaluation isolates Full-GC behaviour (its own
//! SVAGC prototype is a full-heap collector too, and the benchmarks are
//! sized to trigger full collections). See DESIGN.md §2.

use svagc_core::{Collector, GcConfig, GcCycleStats, GcLog, Lisp2Collector, GcError};
use svagc_heap::{Heap, RootSet};
use svagc_kernel::Kernel;

/// The ParallelGC-like comparator.
#[derive(Debug)]
pub struct ParallelGc {
    inner: Lisp2Collector,
}

impl ParallelGc {
    /// ParallelGC with `gc_threads` workers.
    pub fn new(gc_threads: usize) -> ParallelGc {
        ParallelGc {
            inner: Lisp2Collector::new(
                GcConfig::lisp2_memmove(gc_threads)
                    // No PTE updates -> no pinning protocol needed.
                    .with_pinned(false),
            ),
        }
    }

    /// The underlying configuration (tests/benches).
    pub fn config(&self) -> &GcConfig {
        &self.inner.cfg
    }
}

impl Collector for ParallelGc {
    fn name(&self) -> &'static str {
        "ParallelGC"
    }

    fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError> {
        self.inner.collect(kernel, heap, roots)
    }

    fn log(&self) -> &GcLog {
        &self.inner.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_heap::{HeapConfig, ObjShape};
    use svagc_kernel::CoreId;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::Asid;

    #[test]
    fn full_gc_reclaims_and_never_swaps() {
        let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 32 << 20);
        let mut h = Heap::new(
            &mut k,
            Asid(1),
            HeapConfig::new(16 << 20).with_alignment(false),
        )
        .unwrap();
        let mut roots = RootSet::new();
        let big = ObjShape::data_bytes(64 << 10);
        for i in 0..100u64 {
            let (obj, _) = h.alloc(&mut k, CoreId(0), big).unwrap();
            if i % 4 == 0 {
                roots.push(obj);
            }
        }
        let mut gc = ParallelGc::new(8);
        let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
        assert_eq!(stats.live_objects, 25);
        assert_eq!(stats.swapped_objects, 0, "ParallelGC never swaps PTEs");
        assert!(stats.memmove_bytes > 0);
        assert_eq!(k.perf.ipis_sent, 0, "no shootdowns without PTE changes");
        assert_eq!(gc.name(), "ParallelGC");
    }

    #[test]
    fn unaligned_heap_packs_large_objects_densely() {
        let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 32 << 20);
        let mut h = Heap::new(
            &mut k,
            Asid(1),
            HeapConfig::new(16 << 20).with_alignment(false),
        )
        .unwrap();
        let big = ObjShape::data_bytes(64 << 10);
        h.alloc(&mut k, CoreId(0), ObjShape::data(3)).unwrap();
        let (obj, _) = h.alloc(&mut k, CoreId(0), big).unwrap();
        assert!(!obj.0.is_page_aligned(), "baseline heap does not align");
        assert_eq!(h.stats.align_waste_bytes, 0);
    }
}
