//! A Shenandoah-like baseline: region-based, pause-oriented collector.
//!
//! Shenandoah runs marking concurrently with mutators, but the paper's
//! comparison targets the collections its benchmarks actually trigger at
//! 1.2×/2× minimum heap — degenerated/full collections under allocation
//! pressure, whose *copy phase "does not utilize the work-stealing
//! mechanism and parallelism"* (§V-A). We model:
//!
//! * mark: parallel with stealing, but only the final-mark portion
//!   (`FINAL_MARK_FRACTION`) is charged to the pause; the rest ran
//!   concurrently and is reported as mutator interference,
//! * forward/adjust: parallel with stealing (STW, as in a degenerated
//!   cycle),
//! * copy/evacuation: **serial memmove** (`compact_threads = 1`) — the
//!   paper's stated reason Shenandoah's moving phase is worst,
//! * no large-object page alignment (pair with
//!   `HeapConfig::with_alignment(false)`).

use svagc_core::{Collector, GcConfig, GcCycleStats, GcLog, Lisp2Collector, GcError};
use svagc_heap::{Heap, RootSet};
use svagc_kernel::Kernel;
use svagc_metrics::Cycles;

/// Fraction of marking charged to the STW pause (final mark); the
/// remainder ran concurrently with mutators.
pub const FINAL_MARK_FRACTION: f64 = 0.15;

/// The Shenandoah-like comparator.
#[derive(Debug)]
pub struct Shenandoah {
    inner: Lisp2Collector,
    log: GcLog,
    name: &'static str,
}

impl Shenandoah {
    /// Shenandoah with `gc_threads` (concurrent) workers.
    pub fn new(gc_threads: usize) -> Shenandoah {
        Shenandoah {
            inner: Lisp2Collector::new(
                GcConfig::lisp2_memmove(gc_threads)
                    .with_pinned(false)
                    .with_compact_threads(Some(1)),
            ),
            log: GcLog::new(),
            name: "Shenandoah",
        }
    }

    /// Shenandoah with SwapVA-accelerated evacuation — Table I's third
    /// row: the base call and PMD caching apply to concurrent
    /// evacuation, but each copy is independent so requests are *not*
    /// aggregated, and relocation targets fresh regions so the overlap
    /// machinery is never engaged. This demonstrates the paper's claim
    /// that SwapVA "can also be applied to other algorithms such as
    /// concurrent GCs".
    pub fn with_swapva(gc_threads: usize) -> Shenandoah {
        Shenandoah {
            inner: Lisp2Collector::new(
                GcConfig::svagc(gc_threads)
                    .with_aggregation(None) // Table I: ✗ for concurrent
                    .with_overlap(false) // Table I: ✗ for concurrent
                    .with_compact_threads(Some(1)),
            ),
            log: GcLog::new(),
            name: "Shenandoah+SwapVA",
        }
    }
}

impl Collector for Shenandoah {
    fn name(&self) -> &'static str {
        self.name
    }

    fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError> {
        let mut stats = self.inner.collect(kernel, heap, roots)?;
        // Concurrent marking: move (1 - fraction) of mark cost out of the
        // pause and onto the mutators.
        let stw_mark = Cycles((stats.phases.mark.get() as f64 * FINAL_MARK_FRACTION) as u64);
        let concurrent = stats.phases.mark - stw_mark;
        stats.phases.mark = stw_mark;
        stats.interference += concurrent;
        self.log.push(stats);
        Ok(stats)
    }

    fn log(&self) -> &GcLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallelgc::ParallelGc;
    use svagc_heap::{HeapConfig, ObjShape};
    use svagc_kernel::CoreId;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::Asid;

    fn populated_heap(k: &mut Kernel) -> (Heap, RootSet) {
        let mut h = Heap::new(
            k,
            Asid(1),
            HeapConfig::new(32 << 20).with_alignment(false),
        )
        .unwrap();
        let mut roots = RootSet::new();
        let big = ObjShape::data_bytes(64 << 10);
        for i in 0..200u64 {
            let (obj, _) = h.alloc(k, CoreId(0), big).unwrap();
            if i % 2 == 0 {
                roots.push(obj);
            }
        }
        (h, roots)
    }

    #[test]
    fn serial_copy_makes_shenandoah_slower_than_parallelgc() {
        let mut k1 = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let (mut h1, mut r1) = populated_heap(&mut k1);
        let mut shen = Shenandoah::new(8);
        let s_shen = shen.collect(&mut k1, &mut h1, &mut r1).unwrap();

        let mut k2 = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let (mut h2, mut r2) = populated_heap(&mut k2);
        let mut pgc = ParallelGc::new(8);
        let s_pgc = pgc.collect(&mut k2, &mut h2, &mut r2).unwrap();

        assert!(
            s_shen.phases.compact.get() > s_pgc.phases.compact.get() * 3,
            "serial copy {} should dwarf 8-way copy {}",
            s_shen.phases.compact,
            s_pgc.phases.compact
        );
        assert!(s_shen.pause().get() > s_pgc.pause().get());
    }

    #[test]
    fn concurrent_mark_shrinks_pause_but_not_work() {
        let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let (mut h, mut r) = populated_heap(&mut k);
        let mut shen = Shenandoah::new(8);
        let stats = shen.collect(&mut k, &mut h, &mut r).unwrap();
        assert!(stats.interference.get() > 0, "concurrent mark is charged to mutators");
        assert_eq!(shen.log().count(), 1);
        assert_eq!(shen.name(), "Shenandoah");
    }

    #[test]
    fn swapva_accelerates_concurrent_evacuation() {
        // Table I row 3: SwapVA (sans aggregation/overlap) still pays off
        // in a concurrent collector's copy phase — the paper's
        // orthogonality claim.
        let mut k1 = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let mut h1 = Heap::new(&mut k1, Asid(1), HeapConfig::new(32 << 20)).unwrap();
        let mut r1 = RootSet::new();
        let big = ObjShape::data_bytes(256 << 10);
        for i in 0..100u64 {
            let (obj, _) = h1.alloc(&mut k1, CoreId(0), big).unwrap();
            if i % 2 == 0 {
                r1.push(obj);
            }
        }
        let mut plain = Shenandoah::new(8);
        let s_plain = {
            let mut k2 = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
            let mut h2 = Heap::new(&mut k2, Asid(1), HeapConfig::new(32 << 20)).unwrap();
            let mut r2 = RootSet::new();
            for i in 0..100u64 {
                let (obj, _) = h2.alloc(&mut k2, CoreId(0), big).unwrap();
                if i % 2 == 0 {
                    r2.push(obj);
                }
            }
            plain.collect(&mut k2, &mut h2, &mut r2).unwrap()
        };
        let mut accel = Shenandoah::with_swapva(8);
        let s_accel = accel.collect(&mut k1, &mut h1, &mut r1).unwrap();
        assert_eq!(accel.name(), "Shenandoah+SwapVA");
        assert!(s_accel.swapped_objects > 0, "evacuation used SwapVA");
        assert!(
            s_accel.phases.compact.get() * 2 < s_plain.phases.compact.get(),
            "SwapVA evacuation {} should be <50% of memmove {}",
            s_accel.phases.compact,
            s_plain.phases.compact
        );
        // No aggregation: one syscall per swapped object.
        assert_eq!(k1.perf.syscalls, s_accel.swapped_objects);
    }

    #[test]
    fn shenandoah_preserves_data() {
        let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let mut h = Heap::new(
            &mut k,
            Asid(1),
            HeapConfig::new(8 << 20).with_alignment(false),
        )
        .unwrap();
        let mut roots = RootSet::new();
        let shape = ObjShape::data(128);
        let mut kept = Vec::new();
        for i in 0..100u64 {
            let (obj, _) = h.alloc(&mut k, CoreId(0), shape).unwrap();
            for w in 0..128u64 {
                h.write_data(&mut k, CoreId(0), obj, 0, w, i * 1000 + w).unwrap();
            }
            if i % 3 == 0 {
                kept.push((roots.push(obj), i * 1000));
            }
        }
        let mut shen = Shenandoah::new(4);
        shen.collect(&mut k, &mut h, &mut roots).unwrap();
        for (rid, seed) in kept {
            let obj = roots.get(rid);
            for w in 0..128u64 {
                assert_eq!(
                    h.read_data(&mut k, CoreId(0), obj, 0, w).unwrap().0,
                    seed + w
                );
            }
        }
    }
}
