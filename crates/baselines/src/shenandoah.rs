//! A Shenandoah-like baseline: region-based, pause-oriented collector.
//!
//! Shenandoah runs marking concurrently with mutators, but the paper's
//! comparison targets the collections its benchmarks actually trigger at
//! 1.2×/2× minimum heap — degenerated/full collections under allocation
//! pressure, whose *copy phase "does not utilize the work-stealing
//! mechanism and parallelism"* (§V-A). We model:
//!
//! * mark: parallel with stealing, but only the final-mark portion
//!   (`FINAL_MARK_FRACTION`) is charged to the pause; the rest ran
//!   concurrently and is reported as mutator interference,
//! * forward/adjust: parallel with stealing (STW, as in a degenerated
//!   cycle),
//! * copy/evacuation: **serial memmove** (`compact_threads = 1`) — the
//!   paper's stated reason Shenandoah's moving phase is worst,
//! * no large-object page alignment (pair with
//!   `HeapConfig::with_alignment(false)`).

use svagc_core::{
    Collector, GcConfig, GcCycleStats, GcError, GcLog, Lisp2Collector, SATB_DRAIN_ENTRY_COST,
    SATB_LOG_COST,
};
use svagc_heap::{Heap, HeapError, ObjRef, RootSet};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::Cycles;

/// Legacy fraction of marking charged to the STW pause (final mark); the
/// remainder ran concurrently with mutators. Used only when the SATB
/// barrier is not armed ([`Shenandoah::arm_satb`]): the fixed fraction
/// charges the same final mark whether the mutator overwrote three
/// references or three million, which skews any pause comparison against
/// a collector whose drain is charged per logged entry.
pub const FINAL_MARK_FRACTION: f64 = 0.15;

/// The Shenandoah-like comparator.
#[derive(Debug)]
pub struct Shenandoah {
    inner: Lisp2Collector,
    log: GcLog,
    name: &'static str,
    satb_armed: bool,
    satb_logged: u64,
}

impl Shenandoah {
    /// Shenandoah with `gc_threads` (concurrent) workers.
    pub fn new(gc_threads: usize) -> Shenandoah {
        Shenandoah {
            inner: Lisp2Collector::new(
                GcConfig::lisp2_memmove(gc_threads)
                    .with_pinned(false)
                    .with_compact_threads(Some(1)),
            ),
            log: GcLog::new(),
            name: "Shenandoah",
            satb_armed: false,
            satb_logged: 0,
        }
    }

    /// Arm the SATB deletion barrier: mutator ref overwrites (through
    /// [`Collector::write_barrier`]) are counted, and the final-mark
    /// pause charge becomes proportional to the logged work instead of
    /// the legacy fixed [`FINAL_MARK_FRACTION`] — the apples-to-apples
    /// accounting the `pause_cdf` comparison needs. Default-off so
    /// existing figure digests are unchanged.
    pub fn arm_satb(&mut self) {
        self.satb_armed = true;
    }

    /// Shenandoah with SwapVA-accelerated evacuation — Table I's third
    /// row: the base call and PMD caching apply to concurrent
    /// evacuation, but each copy is independent so requests are *not*
    /// aggregated, and relocation targets fresh regions so the overlap
    /// machinery is never engaged. This demonstrates the paper's claim
    /// that SwapVA "can also be applied to other algorithms such as
    /// concurrent GCs".
    pub fn with_swapva(gc_threads: usize) -> Shenandoah {
        Shenandoah {
            inner: Lisp2Collector::new(
                GcConfig::svagc(gc_threads)
                    .with_aggregation(None) // Table I: ✗ for concurrent
                    .with_overlap(false) // Table I: ✗ for concurrent
                    .with_compact_threads(Some(1)),
            ),
            log: GcLog::new(),
            name: "Shenandoah+SwapVA",
            satb_armed: false,
            satb_logged: 0,
        }
    }
}

impl Collector for Shenandoah {
    fn name(&self) -> &'static str {
        self.name
    }

    fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError> {
        let mut stats = self.inner.collect(kernel, heap, roots)?;
        // Concurrent marking: move all but the final mark out of the pause
        // and onto the mutators. Armed, the final mark is the SATB drain —
        // proportional to the references the mutator actually overwrote
        // since the last cycle (capped at the full mark: the drain can
        // never exceed re-marking everything). Unarmed, the legacy fixed
        // fraction applies, keeping historical digests byte-identical.
        let stw_mark = if self.satb_armed {
            let logged = std::mem::take(&mut self.satb_logged);
            stats.satb_logged = logged;
            Cycles((SATB_DRAIN_ENTRY_COST * logged).get().min(stats.phases.mark.get()))
        } else {
            Cycles((stats.phases.mark.get() as f64 * FINAL_MARK_FRACTION) as u64)
        };
        let concurrent = stats.phases.mark - stw_mark;
        stats.phases.mark = stw_mark;
        stats.interference += concurrent;
        self.log.push(stats);
        Ok(stats)
    }

    fn write_barrier(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        core: CoreId,
        obj: ObjRef,
        field: u64,
    ) -> Result<Cycles, HeapError> {
        if !self.satb_armed {
            return Ok(Cycles::ZERO);
        }
        // SATB deletion barrier: read the outgoing value; a non-null
        // in-heap reference is logged for the next cycle's final-mark
        // drain.
        let (old, mut cost) = heap.read_ref(kernel, core, obj, field)?;
        if !old.is_null() && heap.contains(old.0) {
            self.satb_logged += 1;
            cost += SATB_LOG_COST;
        }
        Ok(cost)
    }

    fn log(&self) -> &GcLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallelgc::ParallelGc;
    use svagc_heap::{HeapConfig, ObjShape};
    use svagc_kernel::CoreId;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::Asid;

    fn populated_heap(k: &mut Kernel) -> (Heap, RootSet) {
        let mut h = Heap::new(
            k,
            Asid(1),
            HeapConfig::new(32 << 20).with_alignment(false),
        )
        .unwrap();
        let mut roots = RootSet::new();
        let big = ObjShape::data_bytes(64 << 10);
        for i in 0..200u64 {
            let (obj, _) = h.alloc(k, CoreId(0), big).unwrap();
            if i % 2 == 0 {
                roots.push(obj);
            }
        }
        (h, roots)
    }

    #[test]
    fn serial_copy_makes_shenandoah_slower_than_parallelgc() {
        let mut k1 = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let (mut h1, mut r1) = populated_heap(&mut k1);
        let mut shen = Shenandoah::new(8);
        let s_shen = shen.collect(&mut k1, &mut h1, &mut r1).unwrap();

        let mut k2 = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let (mut h2, mut r2) = populated_heap(&mut k2);
        let mut pgc = ParallelGc::new(8);
        let s_pgc = pgc.collect(&mut k2, &mut h2, &mut r2).unwrap();

        assert!(
            s_shen.phases.compact.get() > s_pgc.phases.compact.get() * 3,
            "serial copy {} should dwarf 8-way copy {}",
            s_shen.phases.compact,
            s_pgc.phases.compact
        );
        assert!(s_shen.pause().get() > s_pgc.pause().get());
    }

    #[test]
    fn concurrent_mark_shrinks_pause_but_not_work() {
        let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let (mut h, mut r) = populated_heap(&mut k);
        let mut shen = Shenandoah::new(8);
        let stats = shen.collect(&mut k, &mut h, &mut r).unwrap();
        assert!(stats.interference.get() > 0, "concurrent mark is charged to mutators");
        assert_eq!(shen.log().count(), 1);
        assert_eq!(shen.name(), "Shenandoah");
    }

    #[test]
    fn swapva_accelerates_concurrent_evacuation() {
        // Table I row 3: SwapVA (sans aggregation/overlap) still pays off
        // in a concurrent collector's copy phase — the paper's
        // orthogonality claim.
        let mut k1 = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let mut h1 = Heap::new(&mut k1, Asid(1), HeapConfig::new(32 << 20)).unwrap();
        let mut r1 = RootSet::new();
        let big = ObjShape::data_bytes(256 << 10);
        for i in 0..100u64 {
            let (obj, _) = h1.alloc(&mut k1, CoreId(0), big).unwrap();
            if i % 2 == 0 {
                r1.push(obj);
            }
        }
        let mut plain = Shenandoah::new(8);
        let s_plain = {
            let mut k2 = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
            let mut h2 = Heap::new(&mut k2, Asid(1), HeapConfig::new(32 << 20)).unwrap();
            let mut r2 = RootSet::new();
            for i in 0..100u64 {
                let (obj, _) = h2.alloc(&mut k2, CoreId(0), big).unwrap();
                if i % 2 == 0 {
                    r2.push(obj);
                }
            }
            plain.collect(&mut k2, &mut h2, &mut r2).unwrap()
        };
        let mut accel = Shenandoah::with_swapva(8);
        let s_accel = accel.collect(&mut k1, &mut h1, &mut r1).unwrap();
        assert_eq!(accel.name(), "Shenandoah+SwapVA");
        assert!(s_accel.swapped_objects > 0, "evacuation used SwapVA");
        assert!(
            s_accel.phases.compact.get() * 2 < s_plain.phases.compact.get(),
            "SwapVA evacuation {} should be <50% of memmove {}",
            s_accel.phases.compact,
            s_plain.phases.compact
        );
        // No aggregation: one syscall per swapped object.
        assert_eq!(k1.perf.syscalls, s_accel.swapped_objects);
    }

    #[test]
    fn final_mark_charge_proportional_to_satb_drain() {
        // Pin the accounting drift fix: the legacy path charges a fixed
        // 15% of mark to the pause no matter how small the SATB drain;
        // armed, the charge is per-logged-entry and the drain size is
        // what the mutator actually overwrote.
        let mk = || {
            let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
            let mut h = Heap::new(
                &mut k,
                Asid(1),
                HeapConfig::new(8 << 20).with_alignment(false),
            )
            .unwrap();
            let mut roots = RootSet::new();
            let shape = ObjShape::with_refs(1, 8);
            let mut objs = Vec::new();
            for _ in 0..64u64 {
                let (obj, _) = h.alloc(&mut k, CoreId(0), shape).unwrap();
                roots.push(obj);
                objs.push(obj);
            }
            // Wire each object's ref field to its neighbor so overwrites
            // hit non-null in-heap values (the barrier's logging case).
            for i in 0..objs.len() {
                h.write_ref(&mut k, CoreId(0), objs[i], 0, objs[(i + 1) % objs.len()])
                    .unwrap();
            }
            (k, h, roots, objs)
        };

        // Legacy (unarmed): fixed-fraction charge, zero logged.
        let (mut k1, mut h1, mut r1, _) = mk();
        let mut legacy = Shenandoah::new(4);
        let s_old = legacy.collect(&mut k1, &mut h1, &mut r1).unwrap();
        assert_eq!(s_old.satb_logged, 0);

        // Armed: overwrite a handful of refs through the barrier, then
        // collect the identical heap.
        let (mut k2, mut h2, mut r2, objs) = mk();
        let mut armed = Shenandoah::new(4);
        armed.arm_satb();
        let logged = 5u64;
        for i in 0..logged as usize {
            let t = armed
                .write_barrier(&mut k2, &mut h2, CoreId(0), objs[i], 0)
                .unwrap();
            assert!(t >= SATB_LOG_COST, "logging store is costed");
            // Store the same neighbor back: the barrier saw a genuine
            // overwrite, but the heap stays identical to the legacy run
            // so the total mark work is provably equal below.
            h2.write_ref(&mut k2, CoreId(0), objs[i], 0, objs[(i + 1) % objs.len()])
                .unwrap();
        }
        let s_new = armed.collect(&mut k2, &mut h2, &mut r2).unwrap();
        assert_eq!(s_new.satb_logged, logged);

        // Pin old vs. new totals. Both runs mark the same heap, so the
        // total mark work matches; only the pause/concurrent split moves.
        let old_total = s_old.phases.mark + s_old.interference;
        let new_total = s_new.phases.mark + s_new.interference;
        assert_eq!(old_total, new_total, "fix moves the split, not the work");
        assert_eq!(
            s_old.phases.mark,
            Cycles((old_total.get() as f64 * FINAL_MARK_FRACTION) as u64),
            "legacy: fixed fraction of mark"
        );
        assert_eq!(
            s_new.phases.mark,
            SATB_DRAIN_ENTRY_COST * logged,
            "armed: per-entry drain charge"
        );
        assert!(
            s_new.phases.mark.get() < s_old.phases.mark.get(),
            "small drain ({}) must undercut the fixed fraction ({})",
            s_new.phases.mark,
            s_old.phases.mark
        );

        // Second armed cycle with no overwrites: counter was reset, so
        // the final-mark charge collapses to zero (nothing to drain).
        let s_idle = armed.collect(&mut k2, &mut h2, &mut r2).unwrap();
        assert_eq!(s_idle.satb_logged, 0);
        assert_eq!(s_idle.phases.mark, Cycles::ZERO);
    }

    #[test]
    fn shenandoah_preserves_data() {
        let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let mut h = Heap::new(
            &mut k,
            Asid(1),
            HeapConfig::new(8 << 20).with_alignment(false),
        )
        .unwrap();
        let mut roots = RootSet::new();
        let shape = ObjShape::data(128);
        let mut kept = Vec::new();
        for i in 0..100u64 {
            let (obj, _) = h.alloc(&mut k, CoreId(0), shape).unwrap();
            for w in 0..128u64 {
                h.write_data(&mut k, CoreId(0), obj, 0, w, i * 1000 + w).unwrap();
            }
            if i % 3 == 0 {
                kept.push((roots.push(obj), i * 1000));
            }
        }
        let mut shen = Shenandoah::new(4);
        shen.collect(&mut k, &mut h, &mut roots).unwrap();
        for (rid, seed) in kept {
            let obj = roots.get(rid);
            for w in 0..128u64 {
                assert_eq!(
                    h.read_data(&mut k, CoreId(0), obj, 0, w).unwrap().0,
                    seed + w
                );
            }
        }
    }
}
