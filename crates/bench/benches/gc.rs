//! Criterion benches of whole GC cycles: SVAGC vs the memmove variant vs
//! the baselines on a populated heap, plus the work-stealing vs static
//! compaction ablation (the mechanism behind the Shenandoah gap).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use svagc_core::{GcConfig, Lisp2Collector};
use svagc_heap::{Heap, HeapConfig, ObjShape, RootSet};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::MachineConfig;
use svagc_vmem::Asid;

/// Build a fresh populated heap: mixed small/large objects, half garbage.
fn populated(aligned: bool) -> (Kernel, Heap, RootSet) {
    let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 96 << 20);
    let mut h = Heap::new(
        &mut k,
        Asid(1),
        HeapConfig::new(64 << 20).with_alignment(aligned),
    )
    .unwrap();
    let mut roots = RootSet::new();
    for i in 0..400u64 {
        let shape = if i % 4 == 0 {
            ObjShape::data_bytes(256 << 10)
        } else {
            ObjShape::data_bytes(3 << 10)
        };
        let (obj, _) = h.alloc(&mut k, CoreId(0), shape).unwrap();
        if i % 2 == 0 {
            roots.push(obj);
        }
    }
    (k, h, roots)
}

fn bench_full_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_gc");
    group.sample_size(20);
    let configs: [(&str, GcConfig, bool); 4] = [
        ("svagc", GcConfig::svagc(8), true),
        ("lisp2_memmove", GcConfig::lisp2_memmove(8), true),
        ("parallelgc_like", GcConfig::lisp2_memmove(8).with_pinned(false), false),
        (
            "shenandoah_like",
            GcConfig::lisp2_memmove(8)
                .with_pinned(false)
                .with_compact_threads(Some(1)),
            false,
        ),
    ];
    for (name, cfg, aligned) in configs {
        group.bench_function(name, |bch| {
            bch.iter_batched(
                || {
                    let (k, h, r) = populated(aligned);
                    (k, h, r, Lisp2Collector::new(cfg))
                },
                |(mut k, mut h, mut r, mut gc)| {
                    black_box(gc.collect(&mut k, &mut h, &mut r).unwrap())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_compaction_scheduling(c: &mut Criterion) {
    // Work stealing vs static partitioning of the compaction phase.
    let mut group = c.benchmark_group("compaction_scheduling");
    group.sample_size(20);
    for (name, stealing) in [("work_stealing", true), ("static_partition", false)] {
        let cfg = GcConfig::lisp2_memmove(8).with_stealing(stealing);
        group.bench_function(name, |bch| {
            bch.iter_batched(
                || {
                    let (k, h, r) = populated(false);
                    (k, h, r, Lisp2Collector::new(cfg))
                },
                |(mut k, mut h, mut r, mut gc)| {
                    let stats = gc.collect(&mut k, &mut h, &mut r).unwrap();
                    black_box(stats.phases.compact)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_gc, bench_compaction_scheduling);
criterion_main!(benches);
