//! Criterion benches of the SwapVA kernels themselves (host wall time of
//! the real algorithms over simulated memory): swap vs memmove across
//! object sizes, request aggregation, PMD caching, and the Algorithm 2
//! overlap rotation. These confirm on real hardware the *shapes* the
//! simulated-time figures report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use svagc_kernel::{CoreId, FlushMode, Kernel, SwapRequest, SwapVaOptions};
use svagc_metrics::MachineConfig;
use svagc_vmem::{AddressSpace, Asid, VirtAddr};

fn setup(pages: u64) -> (Kernel, AddressSpace, VirtAddr, VirtAddr) {
    let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), (2 * pages + 64) as u32);
    let mut s = AddressSpace::new(Asid(1));
    let a = k.vmem.alloc_region(&mut s, pages).unwrap();
    let b = k.vmem.alloc_region(&mut s, pages).unwrap();
    (k, s, a, b)
}

fn bench_swap_vs_memmove(c: &mut Criterion) {
    let mut group = c.benchmark_group("swapva_vs_memmove");
    for pages in [1u64, 10, 64, 256] {
        group.throughput(Throughput::Bytes(pages * 4096));
        group.bench_with_input(BenchmarkId::new("swapva", pages), &pages, |bch, &p| {
            let (mut k, mut s, a, b) = setup(p);
            let req = SwapRequest { a, b, pages: p };
            bch.iter(|| {
                k.swap_va(&mut s, CoreId(0), black_box(req), SwapVaOptions::pinned())
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("memmove", pages), &pages, |bch, &p| {
            let (mut k, s, a, b) = setup(p);
            bch.iter(|| k.memmove(&s, CoreId(0), black_box(a), b, p * 4096).unwrap());
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    let requests = 64u64;
    let pages = 2u64;
    let build = || {
        let mut k = Kernel::new(
            MachineConfig::i5_7600(),
            (2 * requests * pages + 64) as u32,
        );
        let mut s = AddressSpace::new(Asid(1));
        let reqs: Vec<SwapRequest> = (0..requests)
            .map(|_| {
                let a = k.vmem.alloc_region(&mut s, pages).unwrap();
                let b = k.vmem.alloc_region(&mut s, pages).unwrap();
                SwapRequest { a, b, pages }
            })
            .collect();
        (k, s, reqs)
    };
    group.bench_function("separated_64x2p", |bch| {
        let (mut k, mut s, reqs) = build();
        let opts = SwapVaOptions::pinned();
        bch.iter(|| {
            for r in &reqs {
                k.swap_va(&mut s, CoreId(0), *r, opts).unwrap();
            }
        });
    });
    group.bench_function("aggregated_64x2p", |bch| {
        let (mut k, mut s, reqs) = build();
        let opts = SwapVaOptions::pinned();
        bch.iter(|| k.swap_va_batch(&mut s, CoreId(0), &reqs, opts).unwrap());
    });
    group.finish();
}

fn bench_pmd_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmd_cache");
    for (name, on) in [("cached", true), ("uncached", false)] {
        group.bench_function(name, |bch| {
            let (mut k, mut s, a, b) = setup(256);
            let req = SwapRequest { a, b, pages: 256 };
            let opts = SwapVaOptions {
                pmd_cache: on,
                overlap_opt: true,
                flush: FlushMode::LocalOnly,
            };
            bch.iter(|| k.swap_va(&mut s, CoreId(0), black_box(req), opts).unwrap());
        });
    }
    group.finish();
}

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap_rotation");
    // 64-page object sliding down 16 pages: rotation (n+delta writes)
    // vs an equivalent disjoint swap (2n writes).
    group.bench_function("overlapping_64p_by_16", |bch| {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 256);
        let mut s = AddressSpace::new(Asid(1));
        let w = k.vmem.alloc_region(&mut s, 80).unwrap();
        let req = SwapRequest {
            a: w,
            b: w.add_pages(16),
            pages: 64,
        };
        bch.iter(|| {
            k.swap_va(&mut s, CoreId(0), black_box(req), SwapVaOptions::pinned())
                .unwrap()
        });
    });
    group.bench_function("disjoint_64p", |bch| {
        let (mut k, mut s, a, b) = setup(64);
        let req = SwapRequest { a, b, pages: 64 };
        bch.iter(|| {
            k.swap_va(&mut s, CoreId(0), black_box(req), SwapVaOptions::pinned())
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_swap_vs_memmove,
    bench_aggregation,
    bench_pmd_cache,
    bench_overlap
);
criterion_main!(benches);
