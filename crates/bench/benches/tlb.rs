//! Criterion benches of the TLB shootdown machinery: flush policies and
//! the functional TLB's lookup/flush hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use svagc_kernel::{CoreId, FlushMode, Kernel, SwapRequest, SwapVaOptions};
use svagc_metrics::MachineConfig;
use svagc_vmem::{AddressSpace, Asid, FrameId, Tlb, TlbConfig};

fn bench_flush_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("shootdown_policy");
    for (name, flush) in [
        ("global_per_call", FlushMode::GlobalBroadcast),
        ("local_only", FlushMode::LocalOnly),
    ] {
        group.bench_function(name, |bch| {
            let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 512);
            let mut s = AddressSpace::new(Asid(1));
            let a = k.vmem.alloc_region(&mut s, 16).unwrap();
            let b = k.vmem.alloc_region(&mut s, 16).unwrap();
            let req = SwapRequest { a, b, pages: 16 };
            let opts = SwapVaOptions {
                pmd_cache: true,
                overlap_opt: true,
                flush,
            };
            bch.iter(|| k.swap_va(&mut s, CoreId(0), black_box(req), opts).unwrap());
        });
    }
    group.finish();
}

fn bench_tlb_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb");
    group.bench_function("lookup_hit", |bch| {
        let mut t = Tlb::new(TlbConfig::skylake());
        t.insert(Asid(1), 7, FrameId(3));
        bch.iter(|| black_box(t.lookup(Asid(1), black_box(7))));
    });
    group.bench_function("miss_insert_cycle", |bch| {
        let mut t = Tlb::new(TlbConfig::skylake());
        let mut vpn = 0u64;
        bch.iter(|| {
            vpn = vpn.wrapping_add(97);
            let (hit, _) = t.lookup(Asid(1), vpn);
            t.insert(Asid(1), vpn, FrameId(vpn as u32));
            black_box(hit)
        });
    });
    for entries in [64usize, 1536] {
        group.bench_with_input(
            BenchmarkId::new("flush_asid_resident", entries),
            &entries,
            |bch, &n| {
                bch.iter_batched(
                    || {
                        let mut t = Tlb::new(TlbConfig::skylake());
                        for vpn in 0..n as u64 {
                            t.insert(Asid(1), vpn, FrameId(vpn as u32));
                        }
                        t
                    },
                    |mut t| {
                        t.flush_asid(Asid(1));
                        black_box(t)
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flush_policies, bench_tlb_ops);
criterion_main!(benches);
