//! Ablations of the design choices DESIGN.md §5 calls out: the swapping
//! threshold, aggregation batch size, flush policy, compaction
//! work-stealing, and SwapVA in the Minor GC (Table I row 2).

use svagc_baselines::{LosCollector, LosHeap};
use svagc_core::{GcConfig, Lisp2Collector, MinorConfig, MinorGc};
use svagc_heap::{GenHeap, Heap, HeapConfig, HeapError, ObjRef, ObjShape, RootSet};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::{impl_to_json, Cycles, MachineConfig, SimRng};
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);

/// Build a heap populated with `count` objects of `obj_pages` pages each,
/// half garbage, ready to compact.
fn populated(
    obj_pages: u64,
    count: u64,
    threshold: u64,
) -> (Kernel, Heap, RootSet) {
    let heap_bytes = (count + 4) * (obj_pages + 2) * PAGE_SIZE;
    let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), heap_bytes + (16 << 20));
    let mut h = Heap::new(
        &mut k,
        Asid(1),
        HeapConfig::new(heap_bytes).with_threshold(threshold),
    )
    .unwrap();
    let mut roots = RootSet::new();
    let shape = ObjShape::data_bytes(obj_pages * PAGE_SIZE - 16);
    for i in 0..count {
        let (obj, _) = h.alloc(&mut k, CORE, shape).unwrap();
        if i % 2 == 0 {
            roots.push(obj);
        }
    }
    (k, h, roots)
}

fn one_gc(k: &mut Kernel, h: &mut Heap, r: &mut RootSet, cfg: GcConfig) -> Cycles {
    let mut gc = Lisp2Collector::new(cfg);
    gc.collect(k, h, r).unwrap().pause()
}

/// One row of the threshold ablation.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdAblationRow {
    /// `Threshold_Swapping` in pages.
    pub threshold_pages: u64,
    /// Full-GC pause (µs) on a 16-page-object heap.
    pub pause_us: f64,
    /// Objects moved via SwapVA.
    pub swapped: u64,
    /// Full-GC pause, exact simulated cycles.
    pub pause_cycles: u64,
}

impl_to_json!(ThresholdAblationRow { threshold_pages, pause_us, swapped, pause_cycles });

/// Sweep the MoveObject threshold on a heap of 16-page objects: too low
/// and sub-break-even swaps lose to cache-resident copies; too high and
/// nothing swaps at all.
pub fn threshold_ablation() -> Vec<ThresholdAblationRow> {
    let machine = MachineConfig::xeon_gold_6130();
    [1u64, 2, 4, 7, 10, 16, 17, 32]
        .iter()
        .map(|&t| {
            let (mut k, mut h, mut r) = populated(16, 120, t);
            let pause = one_gc(&mut k, &mut h, &mut r, GcConfig::svagc(8));
            ThresholdAblationRow {
                threshold_pages: t,
                pause_us: machine.time(pause).as_micros(),
                swapped: k.perf.objects_swapped,
                pause_cycles: pause.get(),
            }
        })
        .collect()
}

/// One row of the aggregation ablation.
#[derive(Debug, Clone, Copy)]
pub struct AggregationAblationRow {
    /// Batch size (`0` = separated calls).
    pub batch: usize,
    /// Full-GC pause (µs).
    pub pause_us: f64,
    /// Syscalls issued.
    pub syscalls: u64,
    /// Full-GC pause, exact simulated cycles.
    pub pause_cycles: u64,
}

impl_to_json!(AggregationAblationRow { batch, pause_us, syscalls, pause_cycles });

/// Sweep the aggregation batch size on a heap of exactly-threshold (10
/// page) objects, where syscall amortization matters most.
pub fn aggregation_ablation() -> Vec<AggregationAblationRow> {
    let machine = MachineConfig::xeon_gold_6130();
    [0usize, 1, 4, 16, 64]
        .iter()
        .map(|&b| {
            let (mut k, mut h, mut r) = populated(10, 160, 10);
            let cfg = GcConfig::svagc(8).with_aggregation((b > 0).then_some(b));
            let pause = one_gc(&mut k, &mut h, &mut r, cfg);
            AggregationAblationRow {
                batch: b,
                pause_us: machine.time(pause).as_micros(),
                syscalls: k.perf.syscalls,
                pause_cycles: pause.get(),
            }
        })
        .collect()
}

/// One row of the flush-policy / stealing / pmd ablations.
#[derive(Debug, Clone)]
pub struct ToggleAblationRow {
    /// Variant label.
    pub variant: String,
    /// Full-GC pause (µs).
    pub pause_us: f64,
    /// IPIs sent.
    pub ipis: u64,
    /// Full-GC pause, exact simulated cycles.
    pub pause_cycles: u64,
}

impl_to_json!(ToggleAblationRow { variant, pause_us, ipis, pause_cycles });

/// Compare Algorithm 4's pinned protocol vs per-call global shootdowns,
/// with PMD caching and work stealing toggled alongside.
pub fn mechanism_ablation() -> Vec<ToggleAblationRow> {
    let machine = MachineConfig::xeon_gold_6130();
    let variants: [(&str, GcConfig); 5] = [
        ("svagc (all on)", GcConfig::svagc(8)),
        ("naive flush", GcConfig::svagc_naive_flush(8)),
        ("no pmd cache", GcConfig::svagc(8).with_pmd_cache(false)),
        ("no stealing", GcConfig::svagc(8).with_stealing(false)),
        ("serial compact", GcConfig::svagc(8).with_compact_threads(Some(1))),
    ];
    variants
        .iter()
        .map(|(name, cfg)| {
            let (mut k, mut h, mut r) = populated(64, 60, 10);
            let pause = one_gc(&mut k, &mut h, &mut r, *cfg);
            ToggleAblationRow {
                variant: name.to_string(),
                pause_us: machine.time(pause).as_micros(),
                ipis: k.perf.ipis_sent,
                pause_cycles: pause.get(),
            }
        })
        .collect()
}

/// One row of the minor-GC (Table I row 2) ablation.
#[derive(Debug, Clone, Copy)]
pub struct MinorAblationRow {
    /// Survivor object size in pages.
    pub obj_pages: u64,
    /// Scavenge pause with memmove promotion (µs).
    pub memmove_us: f64,
    /// Scavenge pause with SwapVA+aggregation promotion (µs).
    pub swapva_us: f64,
    /// memmove scavenge pause, exact simulated cycles.
    pub memmove_cycles: u64,
    /// SwapVA scavenge pause, exact simulated cycles.
    pub swapva_cycles: u64,
}

impl_to_json!(MinorAblationRow {
    obj_pages,
    memmove_us,
    swapva_us,
    memmove_cycles,
    swapva_cycles,
});

/// Scavenge a nursery of `N` survivors per object size, promoting by
/// memmove vs SwapVA.
pub fn minor_gc_ablation() -> Vec<MinorAblationRow> {
    let machine = MachineConfig::xeon_gold_6130();
    [2u64, 6, 10, 16, 32, 64]
        .iter()
        .map(|&pages| {
            let run = |cfg: MinorConfig| {
                let mut k =
                    Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 512 << 20);
                let mut gh =
                    GenHeap::new(&mut k, Asid(1), 256 << 20, 96 << 20, 10).unwrap();
                let mut roots = RootSet::new();
                let shape = ObjShape::data_bytes(pages * PAGE_SIZE - 16);
                for i in 0..120u64 {
                    let (obj, _) = gh.alloc_young(&mut k, CORE, shape).unwrap();
                    if i % 2 == 0 {
                        roots.push(obj);
                    }
                }
                let mut gc = MinorGc::new(cfg);
                gc.collect(&mut k, &mut gh, &mut roots).unwrap().pause
            };
            let memmove = run(MinorConfig::memmove(8));
            let swapva = run(MinorConfig::svagc(8));
            MinorAblationRow {
                obj_pages: pages,
                memmove_us: machine.time(memmove).as_micros(),
                swapva_us: machine.time(swapva).as_micros(),
                memmove_cycles: memmove.get(),
                swapva_cycles: swapva.get(),
            }
        })
        .collect()
}

/// Result of the LOS-vs-SVAGC comparison (the intro's critique,
/// quantified).
#[derive(Debug, Clone)]
pub struct LosComparisonRow {
    /// Heap organization under test.
    pub design: String,
    /// Full collections run.
    pub gcs: usize,
    /// Emergency LOS compactions (0 for SVAGC by construction).
    pub los_compactions: u64,
    /// Total GC time (µs), LOS compactions included.
    pub total_gc_us: f64,
    /// Worst single pause (µs).
    pub max_pause_us: f64,
    /// Final LOS external fragmentation (unusable fraction of free space).
    pub fragmentation: f64,
    /// Total GC time, exact simulated cycles.
    pub total_gc_cycles: u64,
    /// Worst single pause, exact simulated cycles.
    pub max_pause_cycles: u64,
}

impl_to_json!(LosComparisonRow {
    design,
    gcs,
    los_compactions,
    total_gc_us,
    max_pause_us,
    fragmentation,
    total_gc_cycles,
    max_pause_cycles,
});

/// Run the same variable-size large-object churn against (a) SVAGC's
/// unified heap and (b) the classic non-moving LOS design, at the paper's
/// tight 1.2x-minimum occupancy. Each live slot alternates between two
/// sizes, so freed holes never match the next request exactly — the
/// first-fit LOS fragments until allocations fail and force serial
/// compactions ("increased maintenance costs and eventual compactions",
/// paper introduction), while SVAGC just swaps pages every cycle.
pub fn los_comparison() -> Vec<LosComparisonRow> {
    const STEPS: usize = 600;
    const LIVE: usize = 24;
    let machine = MachineConfig::xeon_gold_6130();

    // Per-slot size pairs (pages): the slot alternates between them.
    let mut rng = SimRng::seed_from_u64(97);
    let slots_spec: Vec<(u64, u64)> = (0..LIVE)
        .map(|_| {
            let base = rng.gen_range(10u64..48);
            (base, base + rng.gen_range(2u64..12))
        })
        .collect();
    let live_max: u64 = slots_spec.iter().map(|&(_, hi)| hi * PAGE_SIZE).sum();
    // Every 50 steps a transient jumbo buffer (an RDD shuffle block, a
    // network snapshot) needs a large *contiguous* range — the request
    // class that defeats a fragmented free list.
    let jumbo = ObjShape::data_bytes(live_max / 4);
    // Tight budget: enough for the live set + the jumbo + 5% slack — the
    // jumbo only fits if the free space is (made) contiguous.
    let budget = live_max + jumbo.size_bytes() + live_max / 20;
    let shape_for = |spec: (u64, u64), phase: usize| {
        let pages = if phase.is_multiple_of(2) { spec.0 } else { spec.1 };
        ObjShape::data_bytes(pages * PAGE_SIZE - 16)
    };

    // --- (a) SVAGC: large objects live in the ordinary compacted heap ---
    let svagc_row = {
        let mut k = Kernel::with_bytes(machine.clone(), budget + (32 << 20));
        let mut h = Heap::new(&mut k, Asid(1), HeapConfig::new(budget + (1 << 20))).unwrap();
        let mut roots = RootSet::new();
        let mut gc = Lisp2Collector::new(GcConfig::svagc(8));
        let mut slots: Vec<svagc_heap::RootId> = Vec::new();
        let mut max_pause = Cycles::ZERO;
        for step in 0..STEPS {
            let slot = step % LIVE;
            let shape = shape_for(slots_spec[slot], step / LIVE);
            if slots.len() > slot {
                roots.set(slots[slot], ObjRef::NULL);
            }
            let obj = loop {
                match h.alloc(&mut k, CoreId(0), shape) {
                    Ok((o, _)) => break o,
                    Err(HeapError::NeedGc { .. }) => {
                        let s = gc.collect(&mut k, &mut h, &mut roots).unwrap();
                        max_pause = max_pause.max(s.pause());
                    }
                    Err(e) => panic!("{e}"),
                }
            };
            if slots.len() > slot {
                roots.set(slots[slot], obj);
            } else {
                slots.push(roots.push(obj));
            }
            if step % 50 == 49 {
                // Transient jumbo (dropped immediately).
                loop {
                    match h.alloc(&mut k, CoreId(0), jumbo) {
                        Ok(_) => break,
                        Err(HeapError::NeedGc { .. }) => {
                            let s = gc.collect(&mut k, &mut h, &mut roots).unwrap();
                            max_pause = max_pause.max(s.pause());
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        }
        LosComparisonRow {
            design: "SVAGC (unified heap)".into(),
            gcs: gc.log.count(),
            los_compactions: 0,
            total_gc_us: machine.time(gc.log.total_pause()).as_micros(),
            max_pause_us: machine.time(max_pause).as_micros(),
            fragmentation: 0.0,
            total_gc_cycles: gc.log.total_pause().get(),
            max_pause_cycles: max_pause.get(),
        }
    };

    // --- (b) classic LOS: non-moving free list + emergency compaction ---
    let los_row = {
        let mut k = Kernel::with_bytes(machine.clone(), budget + (32 << 20));
        // Same total budget: the LOS gets the full large-object budget
        // plus the same 1 MiB sliver of small space SVAGC's heap includes.
        let mut h = LosHeap::new(&mut k, Asid(1), 1 << 20, budget, 10).unwrap();
        let mut roots = RootSet::new();
        let mut gc = LosCollector::new(8);
        let mut slots: Vec<svagc_heap::RootId> = Vec::new();
        let mut max_pause = Cycles::ZERO;
        for step in 0..STEPS {
            let slot = step % LIVE;
            let shape = shape_for(slots_spec[slot], step / LIVE);
            if slots.len() > slot {
                roots.set(slots[slot], ObjRef::NULL);
            }
            let before = h.stats.compaction_cycles;
            let obj = gc.alloc_with_gc(&mut k, &mut h, &mut roots, shape).unwrap();
            let compaction_delta = h.stats.compaction_cycles - before;
            if compaction_delta.get() > 0 {
                max_pause = max_pause.max(compaction_delta);
            }
            if slots.len() > slot {
                roots.set(slots[slot], obj);
            } else {
                slots.push(roots.push(obj));
            }
            if step % 50 == 49 {
                let before = h.stats.compaction_cycles;
                gc.alloc_with_gc(&mut k, &mut h, &mut roots, jumbo).unwrap();
                let delta = h.stats.compaction_cycles - before;
                if delta.get() > 0 {
                    max_pause = max_pause.max(delta);
                }
            }
        }
        for s in &gc.log {
            max_pause = max_pause.max(s.pause());
        }
        let total = gc
            .log
            .iter()
            .map(|s| s.pause())
            .fold(Cycles::ZERO, |a, b| a + b)
            + h.stats.compaction_cycles;
        LosComparisonRow {
            design: "Large Object Space".into(),
            gcs: gc.log.len(),
            los_compactions: h.stats.los_compactions,
            total_gc_us: machine.time(total).as_micros(),
            max_pause_us: machine.time(max_pause).as_micros(),
            fragmentation: h.fragmentation(),
            total_gc_cycles: total.get(),
            max_pause_cycles: max_pause.get(),
        }
    };

    vec![svagc_row, los_row]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_sweep_is_sane() {
        let rows = threshold_ablation();
        // Everything swaps at threshold <= 16, nothing above.
        assert!(rows.iter().filter(|r| r.threshold_pages <= 16).all(|r| r.swapped > 0));
        assert!(rows.iter().filter(|r| r.threshold_pages > 16).all(|r| r.swapped == 0));
        // 16-page objects sit near the GC-level break-even (the paper's
        // syscall-level break-even is ~7-10 pages; the per-cycle shootdown
        // fixed cost pushes the effective GC-level threshold up at this
        // scaled-down volume): all settings land within 35% of each other.
        let min = rows.iter().map(|r| r.pause_us).fold(f64::MAX, f64::min);
        let max = rows.iter().map(|r| r.pause_us).fold(0.0, f64::max);
        assert!(max < min * 1.35, "sweep spread too wide: {min}..{max}");
    }

    #[test]
    fn aggregation_reduces_syscalls_and_pause() {
        let rows = aggregation_ablation();
        let sep = &rows[0];
        let big = rows.last().unwrap();
        // The page budget floors batches at ~8 x 10-page objects.
        assert!(big.syscalls <= sep.syscalls / 7, "{} vs {}", big.syscalls, sep.syscalls);
        assert!(big.pause_us <= sep.pause_us);
    }

    #[test]
    fn mechanism_toggles_all_cost_something() {
        let rows = mechanism_ablation();
        let base = rows[0].pause_us;
        for r in &rows[1..] {
            assert!(
                r.pause_us >= base * 0.99,
                "{} ({} us) should not beat the full config ({base} us)",
                r.variant,
                r.pause_us
            );
        }
        // Naive flush broadcasts per batch instead of per cycle.
        assert!(rows[1].ipis > rows[0].ipis * 5, "{} vs {}", rows[1].ipis, rows[0].ipis);
        // Serial compaction is the worst toggle (the Shenandoah gap).
        let serial = rows.last().unwrap();
        assert!(serial.pause_us > base * 2.5);
    }

    #[test]
    fn los_design_pays_for_fragmentation() {
        let rows = los_comparison();
        let svagc = &rows[0];
        let los = &rows[1];
        // The intro's critique, quantified: the LOS fragments and is
        // eventually forced into compactions whose pause dwarfs anything
        // SVAGC's steady swap-compactions produce.
        assert!(
            los.los_compactions >= 1,
            "the LOS must eventually compact (got {})",
            los.los_compactions
        );
        assert!(
            los.max_pause_us > svagc.max_pause_us * 2.0,
            "LOS compaction spike {} us should dwarf SVAGC max {} us",
            los.max_pause_us,
            svagc.max_pause_us
        );
    }

    #[test]
    fn minor_crossover_matches_threshold() {
        let rows = minor_gc_ablation();
        // Below the 10-page threshold nothing swaps: identical pauses.
        for r in rows.iter().filter(|r| r.obj_pages < 10) {
            assert!((r.swapva_us - r.memmove_us).abs() / r.memmove_us < 0.25);
        }
        // Well above it, SwapVA wins big (2.7x at 64 pages).
        let big = rows.last().unwrap();
        assert!(
            big.swapva_us * 2.0 < big.memmove_us,
            "{} vs {}",
            big.swapva_us,
            big.memmove_us
        );
    }
}
