//! Design-choice ablations: threshold, aggregation batch size, flush
//! policy / stealing / PMD caching, and Minor-GC promotion mechanism.

use svagc_bench::ablations;
use svagc_bench::report::{banner, json_line, Table};

fn main() {
    banner("Ablation A", "MoveObject threshold sweep (16-page objects)");
    let mut t = Table::new(["threshold (pages)", "GC pause (us)", "objects swapped"]);
    for r in ablations::threshold_ablation() {
        t.row([
            r.threshold_pages.to_string(),
            format!("{:.1}", r.pause_us),
            r.swapped.to_string(),
        ]);
        json_line("ablation_threshold", &r);
    }
    println!("{}", t.render());

    banner("Ablation B", "Aggregation batch size (10-page objects)");
    let mut t = Table::new(["batch", "GC pause (us)", "syscalls"]);
    for r in ablations::aggregation_ablation() {
        t.row([
            if r.batch == 0 { "separated".to_string() } else { r.batch.to_string() },
            format!("{:.1}", r.pause_us),
            r.syscalls.to_string(),
        ]);
        json_line("ablation_aggregation", &r);
    }
    println!("{}", t.render());

    banner("Ablation C", "Mechanism toggles (64-page objects)");
    let mut t = Table::new(["variant", "GC pause (us)", "IPIs"]);
    for r in ablations::mechanism_ablation() {
        t.row([r.variant.clone(), format!("{:.1}", r.pause_us), r.ipis.to_string()]);
        json_line("ablation_mechanism", &r);
    }
    println!("{}", t.render());

    banner("Ablation E", "LOS design vs SVAGC (the intro's critique)");
    let mut t = Table::new(["design", "GCs", "LOS compactions", "total GC (us)", "max pause (us)", "frag"]);
    for r in ablations::los_comparison() {
        t.row([
            r.design.clone(),
            r.gcs.to_string(),
            r.los_compactions.to_string(),
            format!("{:.1}", r.total_gc_us),
            format!("{:.1}", r.max_pause_us),
            format!("{:.2}", r.fragmentation),
        ]);
        json_line("ablation_los", &r);
    }
    println!("{}", t.render());

    banner("Ablation D", "Minor-GC promotion mechanism (Table I row 2)");
    let mut t = Table::new(["object pages", "memmove (us)", "SwapVA (us)"]);
    for r in ablations::minor_gc_ablation() {
        t.row([
            r.obj_pages.to_string(),
            format!("{:.1}", r.memmove_us),
            format!("{:.1}", r.swapva_us),
        ]);
        json_line("ablation_minor", &r);
    }
    println!("{}", t.render());
}
