//! Design-choice ablations: threshold, aggregation batch size, flush
//! policy / stealing / PMD caching, LOS comparison, and Minor-GC
//! promotion mechanism. A subset of `bin/all` — same registry, same
//! flags (`--parallel`, `--out DIR`).

use std::path::PathBuf;
use svagc_bench::runner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parallel = args.iter().any(|a| a == "--parallel");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    let outcomes = runner::run_ids(&runner::ABLATION_IDS, parallel);
    for o in &outcomes {
        print!("{}", o.report.text());
    }
    if let Some(dir) = out_dir {
        runner::write_bench_files(&dir, &outcomes, parallel)
            .and_then(|_| runner::write_summary(&dir, &outcomes, parallel))
            .unwrap_or_else(|e| panic!("cannot write BENCH files to {}: {e}", dir.display()));
        eprintln!("wrote BENCH files under {}", dir.display());
    }
}
