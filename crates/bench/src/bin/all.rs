//! Regenerates every figure and table of the paper, in order.

fn main() {
    svagc_bench::render::fig01();
    svagc_bench::render::fig02();
    svagc_bench::render::table1();
    svagc_bench::render::table2();
    svagc_bench::render::fig06();
    svagc_bench::render::fig08();
    svagc_bench::render::fig09();
    svagc_bench::render::fig10();
    svagc_bench::render::fig11();
    svagc_bench::render::fig12();
    svagc_bench::render::fig13();
    svagc_bench::render::fig14();
    svagc_bench::render::fig15();
    svagc_bench::render::fig16();
    svagc_bench::render::table3();
}
