//! Regenerates every figure, table, and ablation of the paper, in order,
//! and emits the `BENCH_*.json` perf records.
//!
//! Flags:
//! * `--parallel` — fan independent experiments across host threads
//!   (width follows `SVAGC_HOST_THREADS` or the core count). Simulated
//!   output is byte-identical to a serial run; a cheap serial probe
//!   re-verifies that on every parallel run.
//! * `--check` — after the main run, re-run EVERY experiment in the
//!   other mode and fail on any simulated divergence (slow; ~2x).
//! * `--out DIR` — where to write `BENCH_<id>.json` + `BENCH_summary.json`
//!   (default: current directory).
//! * `--no-bench-json` — skip writing BENCH files (text output only).

use std::path::PathBuf;
use std::process::ExitCode;
use svagc_bench::runner;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parallel = args.iter().any(|a| a == "--parallel");
    let check = args.iter().any(|a| a == "--check");
    let write_json = !args.iter().any(|a| a == "--no-bench-json");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let ids = runner::all_ids();
    let outcomes = runner::run_ids(&ids, parallel);
    for o in &outcomes {
        print!("{}", o.report.text());
    }

    let mut failures = Vec::new();
    if check {
        // Full dual-mode comparison: run everything again the other way.
        let other = runner::run_ids(&ids, !parallel);
        for (a, b) in outcomes.iter().zip(&other) {
            if a.report.sim_json() != b.report.sim_json() {
                failures.push(format!(
                    "{}: serial/parallel sim JSON diverged ({} vs {})",
                    a.report.id(),
                    a.report.sim_digest(),
                    b.report.sim_digest()
                ));
            }
        }
    } else if parallel {
        // Always-on cheap probe: a couple of fast experiments re-run
        // serially must reproduce the parallel run bit-for-bit.
        failures = runner::verify_against_serial(&outcomes, &runner::DETERMINISM_PROBE_IDS);
    }
    for f in &failures {
        eprintln!("determinism check FAILED: {f}");
    }

    if write_json {
        let files = runner::write_bench_files(&out_dir, &outcomes, parallel)
            .and_then(|mut v| {
                v.push(runner::write_summary(&out_dir, &outcomes, parallel)?);
                Ok(v)
            })
            .unwrap_or_else(|e| panic!("cannot write BENCH files to {}: {e}", out_dir.display()));
        eprintln!("wrote {} BENCH files under {}", files.len(), out_dir.display());
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
