//! Regenerates Fig. 1 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig01.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig01");
}
