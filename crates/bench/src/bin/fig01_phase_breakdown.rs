//! Regenerates Fig. 01 of the paper.

fn main() {
    svagc_bench::render::fig01();
}
