//! Regenerates Fig. 2 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig02.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig02");
}
