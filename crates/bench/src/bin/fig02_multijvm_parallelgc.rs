//! Regenerates Fig. 02 of the paper.

fn main() {
    svagc_bench::render::fig02();
}
