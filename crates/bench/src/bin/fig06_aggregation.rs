//! Regenerates Fig. 6 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig06.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig06");
}
