//! Regenerates Fig. 06 of the paper.

fn main() {
    svagc_bench::render::fig06();
}
