//! Regenerates Fig. 08 of the paper.

fn main() {
    svagc_bench::render::fig08();
}
