//! Regenerates Fig. 8 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig08.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig08");
}
