//! Regenerates Fig. 09 of the paper.

fn main() {
    svagc_bench::render::fig09();
}
