//! Regenerates Fig. 9 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig09.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig09");
}
