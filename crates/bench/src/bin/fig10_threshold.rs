//! Regenerates Fig. 10 of the paper.

fn main() {
    svagc_bench::render::fig10();
}
