//! Regenerates Fig. 10 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig10.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig10");
}
