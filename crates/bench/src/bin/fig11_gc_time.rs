//! Regenerates Fig. 11 of the paper.

fn main() {
    svagc_bench::render::fig11();
}
