//! Regenerates Fig. 11 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig11.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig11");
}
