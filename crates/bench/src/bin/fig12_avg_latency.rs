//! Regenerates Fig. 12 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig12.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig12");
}
