//! Regenerates Fig. 12 of the paper.

fn main() {
    svagc_bench::render::fig12();
}
