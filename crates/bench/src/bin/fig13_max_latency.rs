//! Regenerates Fig. 13 of the paper.

fn main() {
    svagc_bench::render::fig13();
}
