//! Regenerates Fig. 13 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig13.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig13");
}
