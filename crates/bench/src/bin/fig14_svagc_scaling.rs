//! Regenerates Fig. 14 of the paper.

fn main() {
    svagc_bench::render::fig14();
}
