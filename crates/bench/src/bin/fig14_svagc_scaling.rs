//! Regenerates Fig. 14 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig14.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig14");
}
