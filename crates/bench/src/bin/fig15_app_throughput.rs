//! Regenerates Fig. 15 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig15.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig15");
}
