//! Regenerates Fig. 15 of the paper.

fn main() {
    svagc_bench::render::fig15();
}
