//! Regenerates Fig. 16 of the paper.

fn main() {
    svagc_bench::render::fig16();
}
