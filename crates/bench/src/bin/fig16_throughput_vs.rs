//! Regenerates Fig. 16 of the paper. Pass `--out DIR` to also write
//! the `BENCH_fig16.json` perf record.

fn main() {
    svagc_bench::runner::main_single("fig16");
}
