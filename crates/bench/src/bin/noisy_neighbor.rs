//! The noisy-neighbor blast-radius figure. Pass `--out DIR` to also
//! write the `BENCH_noisy_neighbor.json` perf record.

fn main() {
    svagc_bench::runner::main_single("noisy_neighbor");
}
