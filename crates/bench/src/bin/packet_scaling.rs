//! Packet-scheduler scaling figure (barrier vs packets makespan). Pass
//! `--out DIR` to also write the `BENCH_packet_scaling.json` perf record.

fn main() {
    svagc_bench::runner::main_single("packet_scaling");
}
