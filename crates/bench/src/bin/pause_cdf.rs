//! Pause-CDF figure: SVAGC STW vs `--concurrent` vs Shenandoah.

fn main() {
    svagc_bench::runner::main_single("pause_cdf")
}
