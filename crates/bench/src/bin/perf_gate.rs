//! CI perf gate: compare a freshly generated `BENCH_summary.json`
//! against the checked-in baseline.
//!
//! Usage: `perf_gate --baseline ci/perf-baseline.json --current /tmp/bench/BENCH_summary.json
//!         [--wall-factor 20] [--wall-slack-ms 250]`
//!
//! The environment variable `SVAGC_GATE_WALL_MULT` multiplies the wall
//! factor (after flags are applied) so slow CI runners can widen the
//! host-time bound without editing every invocation; simulated metrics
//! stay bit-exact regardless.
//!
//! Exits 0 when every simulated metric is bit-identical to the baseline
//! and wall times stay under their bounds; exits 1 and prints every
//! violation otherwise.

use std::path::PathBuf;
use std::process::ExitCode;
use svagc_bench::gate::{run_gate, GateConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(baseline) = arg_value(&args, "--baseline").map(PathBuf::from) else {
        eprintln!("perf_gate: --baseline <file> is required");
        return ExitCode::FAILURE;
    };
    let Some(current) = arg_value(&args, "--current").map(PathBuf::from) else {
        eprintln!("perf_gate: --current <file> is required");
        return ExitCode::FAILURE;
    };
    let mut cfg = GateConfig::default();
    if let Some(f) = arg_value(&args, "--wall-factor").and_then(|v| v.parse().ok()) {
        cfg.wall_factor = f;
    }
    if let Some(s) = arg_value(&args, "--wall-slack-ms").and_then(|v| v.parse().ok()) {
        cfg.wall_slack_ms = s;
    }
    cfg = cfg.with_env_wall_mult();
    match run_gate(&baseline, &current, &cfg) {
        Ok(()) => {
            println!(
                "perf gate PASSED: {} matches {}",
                current.display(),
                baseline.display()
            );
            ExitCode::SUCCESS
        }
        Err(errs) => {
            eprintln!("perf gate FAILED with {} violation(s):", errs.len());
            for e in &errs {
                eprintln!("  - {e}");
            }
            ExitCode::FAILURE
        }
    }
}
