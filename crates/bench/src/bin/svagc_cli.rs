//! Command-line driver: run any benchmark under any collector without
//! writing code.
//!
//! ```text
//! svagc list
//! svagc run --workload Sigverify --collector svagc --heap-factor 1.2
//! svagc run --workload Sparse.large --collector parallelgc --steps 40 --instrumented
//! svagc multi --jvms 8 --collector svagc --gc-threads 4
//! ```

use svagc_bench::report::{HostInfo, Report};
use svagc_core::protocol::{self, ModelConfig};
use svagc_core::{CycleClass, DegradePolicy, DegradedMode, RetryPolicy, SchedulerKind};
use svagc_kernel::{CrashPlan, FlushMode, WalMutation};
use svagc_metrics::MachineConfig;
use svagc_workloads::driver::{run_with_crash, CollectorKind, CrashOutcome, RunConfig};
use svagc_workloads::lrucache::LruCache;
use svagc_workloads::multijvm::{run_multi, TenantOutcome};
use svagc_workloads::noisy::{self, NoisySpec};
use svagc_workloads::suite;

fn usage() -> ! {
    eprintln!(
        "usage:
  svagc list
  svagc run --workload <name> [--collector svagc|memmove|parallelgc|shenandoah]
            [--heap-factor <f>] [--gc-threads <n>] [--steps <n>]
            [--machine 6130|6240|i5] [--threshold <pages>] [--instrumented]
            [--fault-rate <p>] [--fault-seed <n>] [--fault-permanent]
            [--swap-fallback-budget <n>] [--verify-phases]
            [--gc-deadline-cycles <n>] [--degrade-policy off|standard|standard:N]
            [--trace <out.json>] [--trace-summary] [--bench-json <out.json>]
            [--tlb-oracle] [--wal] [--crash-plan <pt[:n],...>]
            [--wal-mutate skip-commit|drop-intent|corrupt-preimage]
            [--scheduler barrier|packets] [--core-base <n>] [--concurrent]
            [--dram-fraction <f>] [--device-fault-rate <p>]
            [--device-fault-seed <n>] [--device-offline-after <n>]
  svagc recover ...same flags as run...
  svagc multi --jvms <n> [--collector ...] [--gc-threads <n>]
            [--scheduler barrier|packets]
  svagc fleet [--tenants <n>] [--victims <i,j,...>] [--victim-fault-rate <p>]
            [--seed <n>] [--steps <n>] [--live-objects <n>]
            [--quota-fraction <f>] [--max-attempts <n>] [--no-pressure]
            [--machine 6130|6240|i5]
  svagc protocol-check [--deep]

  --dram-fraction <f> arm cold-object tiering: keep this fraction of the
                      heap's pages resident in DRAM and demote the cold
                      rest to a simulated far-memory device after every
                      GC cycle. The run ends with a promote-all and the
                      invisibility oracle (residency and device empty,
                      heap hash equal to the DRAM-only run's)
  --device-fault-rate <p>  per-device-request fault probability, split
                      across transient EIO / latency spikes / torn
                      writebacks; the retry ladder absorbs them
  --device-fault-seed <n>  seed of the device fault plan
  --device-offline-after <n>  kill the far device for good after n
                      requests: writebacks degrade the run to DRAM-only
                      mode; a lost fetch exits 16 (device failed)
  --concurrent        SATB concurrent marking: tracing overlaps mutator
                      execution (charged as interference, not pause);
                      only initial mark, the SATB-buffer drain, and
                      compaction stay in the pause. The compacted heap is
                      bit-identical to the STW run's. LISP2 collectors
                      (svagc | memmove) wrap in the concurrent collector;
                      shenandoah arms its SATB barrier so its final-mark
                      charge is proportional to logged work; parallelgc
                      is unchanged
  --scheduler         GC scheduling substrate: barrier (default; each
                      phase joins at a global barrier) or packets (work
                      decomposed into typed packets in dependency-ordered
                      buckets, drained greedily with deterministic
                      least-loaded stealing; workers flow across bucket
                      boundaries where the dependency graph allows)
  --core-base <n>     first machine core the GC workers pin to (worker w
                      runs on core (n + w) mod cores; multi-JVM runs set
                      disjoint bases automatically)
  --gc-deadline-cycles <n>  per-phase watchdog budget in virtual cycles; a
                      phase exceeding it aborts the GC cycle and rolls it
                      back through the compaction journal
  --degrade-policy    circuit breaker applied after aborted cycles:
                      off (default; aborts propagate as errors), standard
                      (normal -> memmove-only -> single-threaded, recover
                      after 2 clean cycles), or standard:N (probation N)
  --trace <out.json>  write a Chrome trace_event JSON (chrome://tracing,
                      https://ui.perfetto.dev) of every GC phase, SwapVA
                      call, shootdown, and fault event, timestamped in
                      virtual cycles
  --trace-summary     print a per-phase/per-event text digest and the
                      unified counter registry instead of raw JSON
  --bench-json <out>  write a svagc-bench-report-v1 BENCH record of the
                      run: the unified counter registry plus derived
                      pause/throughput scalars in the simulated plane
                      (digested), host wall time outside it
  --tlb-oracle        run under the stale-translation oracle: every TLB
                      hit is cross-checked against the live page table
                      and every flush audited against the Algorithm 4
                      preconditions; any violation fails the run
  --wal               arm the kernel write-ahead journal for PTE-mutating
                      GC operations (implied by --crash-plan)
  --crash-plan        seeded crash points, comma-separated `point[:n]`
                      (the machine dies at the n-th occurrence; n
                      defaults to 1): before-batch, inside-batch,
                      after-batch, mid-ipi, mid-rollback, mid-log-append,
                      inside-recovery, mid-demote-writeback,
                      mid-promote-fetch.
                      `run` exits 13 when a crash fires; `recover`
                      reboots the dead machine, replays the journal, and
                      exits 0 only if the rebuilt heap hashes
                      bit-identically to a pre- or post-cycle snapshot
                      (14 if recovery fails closed)
  --wal-mutate        seeded journal corruption (teeth testing): a
                      correct recovery MUST fail closed under it
  recover             like `run`, but after a seeded crash the machine is
                      rebooted and the recovery state machine replays the
                      write-ahead journal (see --crash-plan)

  fleet               the noisy-neighbor chaos harness: N tenants churn
                      under a shared frame pool (per-tenant quotas, GC
                      headroom, pressure ladder) while the victim tenants
                      get seeded permanent SwapVA faults; a fault-free
                      twin fleet runs alongside and both blast-radius
                      oracles are applied (isolation: healthy heaps
                      bit-identical to the twin's; frame-leak: pool
                      in-use == survivors' footprints, ownership audit
                      clean). Quarantines are reported per tenant with
                      their classified failure; the fleet itself exits 0
                      when every tenant completed and the oracles held,
                      1 on an oracle violation, or the first quarantined
                      tenant's failure code (quarantine is the expected
                      outcome for a faulted victim — scripts assert on
                      it, they don't treat it as a harness error)

  exit codes: 0 ok | 1 error | 2 usage | 10 watchdog deadline |
              11 fault abort | 12 degraded-mode ladder exhausted |
              13 machine crashed | 14 recovery failed |
              15 tenant out of memory | 16 far device failed

  protocol-check      exhaustively model-check the three TLB-coherence
                      protocols (GlobalBroadcast / LocalOnly / Tracked)
                      and run the seeded mutation suite; --deep adds a
                      larger 4-core x 4-page universe. Exit 1 if a real
                      protocol has a counterexample or a seeded bug goes
                      undetected"
    );
    std::process::exit(2);
}

fn parse_collector(s: &str) -> CollectorKind {
    match s {
        "svagc" => CollectorKind::Svagc,
        "memmove" => CollectorKind::SvagcMemmove,
        "parallelgc" => CollectorKind::ParallelGc,
        "shenandoah" => CollectorKind::Shenandoah,
        other => {
            eprintln!("unknown collector {other:?}");
            usage()
        }
    }
}

fn parse_scheduler(s: &str) -> SchedulerKind {
    SchedulerKind::parse(s).unwrap_or_else(|| {
        eprintln!("unknown scheduler {s:?} (barrier | packets)");
        usage()
    })
}

fn parse_machine(s: &str) -> MachineConfig {
    match s {
        "6130" => MachineConfig::xeon_gold_6130(),
        "6240" => MachineConfig::xeon_gold_6240(),
        "i5" => MachineConfig::i5_7600(),
        other => {
            eprintln!("unknown machine {other:?}");
            usage()
        }
    }
}

/// Tiny flag parser: `--key value` pairs after the subcommand.
fn flags(args: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a:?}");
            usage()
        };
        // Boolean flags take no value.
        if key == "instrumented"
            || key == "verify-phases"
            || key == "trace-summary"
            || key == "tlb-oracle"
            || key == "wal"
            || key == "fault-permanent"
            || key == "no-pressure"
            || key == "deep"
            || key == "concurrent"
        {
            out.push((key.to_string(), "true".to_string()));
            continue;
        }
        let Some(v) = it.next() else {
            eprintln!("missing value for --{key}");
            usage()
        };
        out.push((key.to_string(), v.clone()));
    }
    out
}

fn get<'a>(fs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("workloads:");
            for w in suite::standard_suite() {
                println!(
                    "  {:<16} threads {:>4}  min heap {:>7.1} MiB",
                    w.name(),
                    w.threads(),
                    w.min_heap_bytes() as f64 / (1 << 20) as f64
                );
            }
            println!("  {:<16} threads {:>4}  (multi-JVM scalability workload)", "LRUCache", 1);
            println!("collectors: svagc | memmove | parallelgc | shenandoah");
        }
        Some(cmd @ ("run" | "recover")) => {
            let do_recover = cmd == "recover";
            let fs = flags(&args[1..]);
            let name = get(&fs, "workload").unwrap_or_else(|| {
                eprintln!("--workload is required");
                usage()
            });
            let mut w = suite::by_name(name).unwrap_or_else(|| {
                eprintln!("unknown workload {name:?} (try `svagc list`)");
                std::process::exit(2);
            });
            let mut cfg = RunConfig::new(parse_collector(get(&fs, "collector").unwrap_or("svagc")));
            cfg.machine = parse_machine(get(&fs, "machine").unwrap_or("6130"));
            if let Some(f) = get(&fs, "heap-factor") {
                cfg.heap_factor = f.parse().expect("--heap-factor expects a float");
            }
            if let Some(t) = get(&fs, "gc-threads") {
                cfg.gc_threads = t.parse().expect("--gc-threads expects an integer");
            }
            if let Some(st) = get(&fs, "steps") {
                cfg.steps = Some(st.parse().expect("--steps expects an integer"));
            }
            if let Some(t) = get(&fs, "threshold") {
                cfg.threshold_pages = Some(t.parse().expect("--threshold expects pages"));
            }
            cfg.instrumented = get(&fs, "instrumented").is_some();
            cfg.verify_phases = get(&fs, "verify-phases").is_some();
            cfg.concurrent = get(&fs, "concurrent").is_some();
            if let Some(p) = get(&fs, "fault-rate") {
                cfg.fault_rate = p.parse().expect("--fault-rate expects a probability");
            }
            if let Some(sd) = get(&fs, "fault-seed") {
                cfg.fault_seed = sd.parse().expect("--fault-seed expects an integer");
            }
            cfg.fault_permanent_only = get(&fs, "fault-permanent").is_some();
            if let Some(b) = get(&fs, "swap-fallback-budget") {
                let budget: u64 = b.parse().expect("--swap-fallback-budget expects an integer");
                cfg.retry = Some(RetryPolicy::default().with_fallback_budget(Some(budget)));
            }
            if let Some(d) = get(&fs, "gc-deadline-cycles") {
                cfg.deadline_cycles =
                    Some(d.parse().expect("--gc-deadline-cycles expects cycles"));
            }
            if let Some(p) = get(&fs, "degrade-policy") {
                cfg.degrade = DegradePolicy::parse(p).unwrap_or_else(|| {
                    eprintln!("unknown degrade policy {p:?} (off | standard | standard:N)");
                    usage()
                });
            }
            let trace_path = get(&fs, "trace");
            let trace_summary = get(&fs, "trace-summary").is_some();
            cfg.trace = trace_path.is_some() || trace_summary;
            cfg.tlb_oracle = get(&fs, "tlb-oracle").is_some();
            cfg.wal = get(&fs, "wal").is_some();
            if let Some(spec) = get(&fs, "crash-plan") {
                for part in spec.split(',') {
                    match CrashPlan::parse(part) {
                        Some(p) => cfg.crash_plans.push(p),
                        None => {
                            eprintln!("bad crash plan {part:?} (want point[:n])");
                            usage()
                        }
                    }
                }
            }
            if let Some(m) = get(&fs, "wal-mutate") {
                cfg.wal_mutation = Some(WalMutation::parse(m).unwrap_or_else(|| {
                    eprintln!("unknown WAL mutation {m:?} (skip-commit | drop-intent)");
                    usage()
                }));
            }
            if let Some(s) = get(&fs, "scheduler") {
                cfg.scheduler = parse_scheduler(s);
            }
            if let Some(b) = get(&fs, "core-base") {
                cfg.core_base = b.parse().expect("--core-base expects an integer");
            }
            if let Some(f) = get(&fs, "dram-fraction") {
                cfg.dram_fraction =
                    Some(f.parse().expect("--dram-fraction expects a float"));
            }
            if let Some(p) = get(&fs, "device-fault-rate") {
                cfg.device_fault_rate =
                    p.parse().expect("--device-fault-rate expects a probability");
            }
            if let Some(sd) = get(&fs, "device-fault-seed") {
                cfg.device_fault_seed =
                    sd.parse().expect("--device-fault-seed expects an integer");
            }
            if let Some(n) = get(&fs, "device-offline-after") {
                cfg.device_offline_after =
                    Some(n.parse().expect("--device-offline-after expects an integer"));
            }

            let t0 = std::time::Instant::now();
            let outcome = run_with_crash(w.as_mut(), &cfg, do_recover).unwrap_or_else(|f| {
                eprintln!("{cmd} failed: {f}");
                std::process::exit(f.kind.exit_code());
            });
            let r = match outcome {
                CrashOutcome::Completed(r) => {
                    if do_recover && cfg.crash_plans.is_empty() {
                        eprintln!("note: no crash plan armed; the run completed normally");
                    }
                    *r
                }
                CrashOutcome::Crashed(rep) => {
                    println!(
                        "crash        : machine died at {} after {} completed step(s)",
                        rep.point, rep.steps_completed
                    );
                    let Some(rec) = &rep.recovery else {
                        eprintln!("machine crashed (re-run with `recover` to replay the journal)");
                        std::process::exit(13);
                    };
                    match &rec.outcome {
                        Ok(rr) => {
                            let snapshot = if rr.class == CycleClass::Committed {
                                "post-cycle"
                            } else {
                                "pre-cycle"
                            };
                            println!(
                                "recovery     : epoch {} {} | {} op(s) / {} page(s) undone | {} attempt(s)",
                                rr.epoch,
                                rr.class.name(),
                                rr.undone_ops,
                                rr.undone_pages,
                                rec.attempts
                            );
                            println!(
                                "heap         : {} objects, {} roots rebuilt from the journal",
                                rr.objects, rr.roots
                            );
                            println!("heap hash    : {:#018x}", rr.content_hash);
                            println!("verify       : ok (bit-identical to the {snapshot} snapshot)");
                            if let Some(path) = get(&fs, "bench-json") {
                                let mut rep2 = Report::new(
                                    "cli_recover",
                                    &format!("{name} crash recovery ({})", cfg.machine.name),
                                );
                                rep2.counters_from(&rep.registry());
                                let host = HostInfo {
                                    wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                                    threads: 1,
                                    parallel: false,
                                };
                                std::fs::write(path, rep2.bench_json(&host)).unwrap_or_else(|e| {
                                    eprintln!("cannot write BENCH record to {path:?}: {e}");
                                    std::process::exit(1);
                                });
                                println!("bench json   : {} -> {path}", rep2.sim_digest());
                            }
                            std::process::exit(0);
                        }
                        Err(why) => {
                            eprintln!(
                                "recovery FAILED closed after {} attempt(s): {why}",
                                rec.attempts
                            );
                            std::process::exit(14);
                        }
                    }
                }
            };
            let host_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            println!("workload     : {}", r.workload);
            println!("collector    : {}", r.collector);
            if cfg.scheduler == SchedulerKind::Packets {
                println!(
                    "scheduler    : packets ({} packets | {} steals | {} steal cycles)",
                    r.gc.total_sched_packets(),
                    r.gc.total_sched_steals(),
                    r.gc.total_sched_steal_cycles()
                );
            }
            println!(
                "heap         : {:.1} MiB ({}x of {:.1} MiB minimum)",
                r.heap_bytes as f64 / (1 << 20) as f64,
                cfg.heap_factor,
                r.min_heap_bytes as f64 / (1 << 20) as f64
            );
            println!("steps        : {}", r.steps);
            println!("full GCs     : {}", r.gc.count());
            println!(
                "GC pause     : total {:.3} ms | avg {:.3} ms | max {:.3} ms",
                r.gc_total_ms(),
                r.gc_avg_ms(),
                r.gc_max_ms()
            );
            println!(
                "app / total  : {:.3} ms / {:.3} ms  (throughput {:.1} steps/s)",
                r.app_wall.at_ghz(r.freq_ghz).as_millis(),
                r.total_wall.at_ghz(r.freq_ghz).as_millis(),
                r.throughput()
            );
            println!(
                "moved        : {} objects swapped (zero-copy), {:.2} MiB memmoved",
                r.perf.objects_swapped,
                r.perf.bytes_copied as f64 / (1 << 20) as f64
            );
            if cfg.instrumented {
                println!(
                    "cache miss   : {:.2}%   dtlb miss: {:.2}%",
                    r.perf.cache_miss_pct(),
                    r.perf.dtlb_miss_pct()
                );
            }
            if cfg.fault_rate > 0.0 {
                println!(
                    "resilience   : {} faults injected | {} retries | {} fallbacks | {} batch splits",
                    r.gc.total_faults_injected(),
                    r.gc.total_swap_retries(),
                    r.gc.total_swap_fallbacks(),
                    r.gc.total_batch_splits()
                );
            }
            if cfg.deadline_cycles.is_some() || cfg.degrade.enabled || r.gc.total_aborts() > 0 {
                println!(
                    "transactions : {} aborts | {} watchdog expiries | {} pages rolled back | peak mode {}",
                    r.gc.total_aborts(),
                    r.gc.total_watchdog_expiries(),
                    r.gc.total_rollback_pages(),
                    DegradedMode::from_level(r.gc.max_mode()).name()
                );
            }
            if r.tier_mode != "off" {
                println!(
                    "far tier     : mode {} | {} demotions | {} promotions | {} on-access \
                     fetches | {} retries | {} device fault(s) | degraded {} / recovered {}",
                    r.tier_mode,
                    r.tier.demotions,
                    r.tier.promotions,
                    r.tier.fetch_on_access,
                    r.tier.writeback_retries + r.tier.fetch_retries,
                    r.device.faults,
                    r.tier_ctl.degraded,
                    r.tier_ctl.recovered
                );
                println!(
                    "tier oracle  : ok (residency and device empty, heap fully resident)"
                );
            }
            if r.tlb_oracle.enabled {
                println!(
                    "tlb oracle   : {} hits checked | {} stale | {} audit violations",
                    r.tlb_oracle.checks,
                    r.tlb_oracle.stale_hits,
                    r.tlb_oracle.audit_violations
                );
            }
            println!("heap hash    : {:#018x}", r.heap_hash);
            println!("verify       : {}", if r.verify_ok { "ok" } else { "FAILED" });
            if let Some(path) = trace_path {
                let json = svagc_metrics::chrome_trace_json(&r.trace);
                std::fs::write(path, &json).unwrap_or_else(|e| {
                    eprintln!("cannot write trace to {path:?}: {e}");
                    std::process::exit(1);
                });
                println!("trace        : {} events -> {path}", r.trace.len());
            }
            if trace_summary {
                println!();
                println!("{}", svagc_metrics::trace_summary(&r.trace, 10, cfg.machine.cores));
                println!("-- counter registry --");
                println!("{}", r.registry().render());
            }
            if let Some(path) = get(&fs, "bench-json") {
                let mut rep = Report::new(
                    "cli_run",
                    &format!("{} under {} ({})", r.workload, r.collector, cfg.machine.name),
                );
                rep.counters_from(&r.registry());
                rep.counter("gc.pause_cycles", r.gc_pause_cycles());
                rep.counter("sim.total_cycles", r.total_cycles());
                rep.derived("gc_total_ms", r.gc_total_ms());
                rep.derived("gc_avg_ms", r.gc_avg_ms());
                rep.derived("gc_max_ms", r.gc_max_ms());
                rep.derived("throughput_steps_per_s", r.throughput());
                let host = HostInfo { wall_ms: host_wall_ms, threads: 1, parallel: false };
                std::fs::write(path, rep.bench_json(&host)).unwrap_or_else(|e| {
                    eprintln!("cannot write BENCH record to {path:?}: {e}");
                    std::process::exit(1);
                });
                println!("bench json   : {} -> {path}", rep.sim_digest());
            }
        }
        Some("multi") => {
            let fs = flags(&args[1..]);
            let n: usize = get(&fs, "jvms")
                .unwrap_or_else(|| {
                    eprintln!("--jvms is required");
                    usage()
                })
                .parse()
                .expect("--jvms expects an integer");
            let mut base =
                RunConfig::new(parse_collector(get(&fs, "collector").unwrap_or("svagc")));
            base.machine = parse_machine(get(&fs, "machine").unwrap_or("6130"));
            if let Some(t) = get(&fs, "gc-threads") {
                base.gc_threads = t.parse().expect("--gc-threads expects an integer");
            } else {
                base.gc_threads = 4;
            }
            if let Some(s) = get(&fs, "scheduler") {
                base.scheduler = parse_scheduler(s);
            }
            let res = run_multi(
                n,
                |i| Box::new(LruCache::new(192, 2 << 20, 8, 100 + i as u64)),
                &base,
            )
            .unwrap_or_else(|e| {
                eprintln!("multi-JVM run failed: {e}");
                std::process::exit(1);
            });
            println!("JVMs         : {n} x LRUCache on {}", base.machine.name);
            println!("collector    : {}", base.collector.label());
            println!(
                "per-JVM mean : GC total {:.3} ms | GC max {:.3} ms | app {:.2} ms | total {:.2} ms",
                res.avg_gc_total_ms(),
                res.avg_gc_max_ms(),
                res.avg_app_ms(),
                res.avg_total_ms()
            );
        }
        Some("fleet") => {
            let fs = flags(&args[1..]);
            let mut spec = NoisySpec::standard(
                get(&fs, "victim-fault-rate")
                    .map(|p| p.parse().expect("--victim-fault-rate expects a probability"))
                    .unwrap_or(0.10),
                get(&fs, "seed")
                    .map(|s| s.parse().expect("--seed expects an integer"))
                    .unwrap_or(42),
            );
            if let Some(n) = get(&fs, "tenants") {
                spec.tenants = n.parse().expect("--tenants expects an integer");
            }
            if let Some(v) = get(&fs, "victims") {
                spec.victims = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("--victims expects indices i,j,..."))
                    .collect();
            }
            if let Some(s) = get(&fs, "steps") {
                spec.steps = s.parse().expect("--steps expects an integer");
            }
            if let Some(l) = get(&fs, "live-objects") {
                spec.live_objects = l.parse().expect("--live-objects expects an integer");
            }
            if let Some(q) = get(&fs, "quota-fraction") {
                spec.quota_fraction = q.parse().expect("--quota-fraction expects a float");
            }
            if let Some(a) = get(&fs, "max-attempts") {
                spec.max_attempts = a.parse().expect("--max-attempts expects an integer");
            }
            spec.pressure = get(&fs, "no-pressure").is_none();
            if spec.victims.iter().any(|&v| v >= spec.tenants) {
                eprintln!("--victims indices must be < --tenants");
                usage()
            }
            let mut base = RunConfig::new(noisy::default_collector());
            base.machine = parse_machine(get(&fs, "machine").unwrap_or("6130"));
            let out = noisy::run_noisy_neighbor(&spec, &base).unwrap_or_else(|e| {
                eprintln!("fleet FAILED: {e}");
                std::process::exit(1);
            });
            let (quota, headroom) = noisy::quota_frames(&spec, base.heap_factor);
            println!(
                "fleet        : {} tenants x {} quota frames ({} GC headroom), \
                 pressure {}",
                spec.tenants,
                quota,
                headroom,
                if spec.pressure { "on" } else { "off" }
            );
            println!(
                "victims      : {:?} at {:.1}% permanent fault rate, {} attempt(s)",
                spec.victims,
                100.0 * spec.victim_fault_rate,
                spec.max_attempts
            );
            let mut first_quarantine: Option<i32> = None;
            for (i, o) in out.faulty.outcomes.iter().enumerate() {
                match o {
                    TenantOutcome::Completed(r) => println!(
                        "tenant {i:>2}    : completed | {} frames | throughput {:.1} steps/s | \
                         pressure remedies {} | heap hash {:#018x}",
                        r.frames_in_use,
                        r.throughput(),
                        r.pressure.denial_remedies
                            + r.pressure.signal_minor_gcs
                            + r.pressure.signal_full_gcs,
                        r.heap_hash
                    ),
                    TenantOutcome::Quarantined { kind, message, attempts, frames_reclaimed } => {
                        first_quarantine.get_or_insert(kind.exit_code());
                        println!(
                            "tenant {i:>2}    : QUARANTINED [{}] after {attempts} attempt(s), \
                             {frames_reclaimed} frame(s) reclaimed: {message}",
                            kind.label()
                        );
                    }
                }
            }
            println!(
                "isolation    : ok ({} healthy tenant(s) bit-identical to the fault-free twin)",
                out.isolation_compared
            );
            println!(
                "frame leak   : ok ({} frame(s) audited, pool in-use == survivors' footprints)",
                out.frames_audited
            );
            if let Some(code) = first_quarantine {
                std::process::exit(code);
            }
        }
        Some("protocol-check") => {
            let fs = flags(&args[1..]);
            let mut universes = vec![("default", ModelConfig::default_check())];
            if get(&fs, "deep").is_some() {
                // Larger bound: 4 cores x 4 pages x a 3-swap chain. Too slow
                // for the debug test suite; the CI protocol-check job runs it
                // in release mode.
                universes.push((
                    "deep",
                    ModelConfig {
                        cores: 4,
                        pages: 4,
                        swaps: vec![(0, 1), (1, 2), (2, 3)],
                        max_cycle_reads: 2,
                        max_migrations: 1,
                    },
                ));
            }
            let mut failed = false;
            for (label, cfg) in &universes {
                println!(
                    "universe {label}: {} cores x {} pages, swaps {:?}, \
                     <= {} mutator reads, <= {} migrations",
                    cfg.cores, cfg.pages, cfg.swaps, cfg.max_cycle_reads, cfg.max_migrations
                );
                for mode in
                    [FlushMode::GlobalBroadcast, FlushMode::LocalOnly, FlushMode::Tracked]
                {
                    let rep = protocol::check_protocol(mode, cfg);
                    match &rep.counterexample {
                        None => println!(
                            "  {mode:?}: no stale translation over {} states",
                            rep.states_explored
                        ),
                        Some(cex) => {
                            failed = true;
                            println!(
                                "  {mode:?}: VIOLATION after {} states:\n{cex}",
                                rep.states_explored
                            );
                        }
                    }
                }
                println!("  mutation suite:");
                for rep in protocol::mutation_suite(cfg) {
                    let m = rep.mutation.expect("suite reports carry their mutation");
                    match &rep.counterexample {
                        Some(cex) => println!(
                            "  [detected] {} ({:?}, {} states):\n{cex}",
                            m.label(),
                            rep.mode,
                            rep.states_explored
                        ),
                        None => {
                            failed = true;
                            println!(
                                "  [MISSED] {} ({:?}) — checker has no teeth for this bug",
                                m.label(),
                                rep.mode
                            );
                        }
                    }
                }
            }
            if failed {
                eprintln!("protocol-check FAILED");
                std::process::exit(1);
            }
            println!("protocol-check ok");
        }
        _ => usage(),
    }
}
