//! Regenerates Table 1 of the paper. Pass `--out DIR` to also write
//! the `BENCH_table1.json` perf record.

fn main() {
    svagc_bench::runner::main_single("table1");
}
