//! Regenerates Table 1 of the paper.

fn main() {
    svagc_bench::render::table1();
}
