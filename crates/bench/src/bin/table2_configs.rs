//! Regenerates Table 2 of the paper. Pass `--out DIR` to also write
//! the `BENCH_table2.json` perf record.

fn main() {
    svagc_bench::runner::main_single("table2");
}
