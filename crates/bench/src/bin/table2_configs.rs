//! Regenerates Table 2 of the paper.

fn main() {
    svagc_bench::render::table2();
}
