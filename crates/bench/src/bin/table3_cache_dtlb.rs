//! Regenerates Table 3 of the paper.

fn main() {
    svagc_bench::render::table3();
}
