//! Regenerates Table 3 of the paper. Pass `--out DIR` to also write
//! the `BENCH_table3.json` perf record.

fn main() {
    svagc_bench::runner::main_single("table3");
}
