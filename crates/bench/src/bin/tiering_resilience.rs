//! Tiering-resilience figure: SVAGC vs memmove over a fallible far tier.

fn main() {
    svagc_bench::runner::main_single("tiering_resilience")
}
