//! The CI perf gate: compare a freshly generated `BENCH_summary.json`
//! against a checked-in baseline.
//!
//! Simulated metrics are compared **exactly**: the `sim_digest` of every
//! experiment must match byte-for-byte, and every counter must agree on
//! its raw JSON token (so u64 cycle counts beyond f64's mantissa still
//! compare losslessly). Host wall time is the only tolerant metric — it
//! only has an upper bound, scaled by [`GateConfig::wall_factor`] plus
//! [`GateConfig::wall_slack_ms`], because the baseline may have been
//! generated on a much slower (or faster) machine than the CI runner.
//! Missing or extra experiments and counters are violations in both
//! directions.

use crate::runner::BENCH_SUMMARY_SCHEMA;
use svagc_metrics::{parse_json, JsonValue};

/// Tolerances for the host plane. The simulated plane has none.
pub struct GateConfig {
    /// Allowed wall-time ratio current/baseline per experiment. Generous
    /// by default: the baseline machine and the CI runner can differ by
    /// an order of magnitude, and the gate's job is to catch blow-ups
    /// (an accidental O(n^2), a lost `--release`), not 10% noise.
    pub wall_factor: f64,
    /// Flat slack added on top, so microsecond-scale experiments do not
    /// trip the ratio on scheduler jitter.
    pub wall_slack_ms: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            // Tightened from the original 20x once the fig02/fig11-class
            // hot paths were optimized: a regression that erases those
            // wins now trips the gate instead of hiding in the slack.
            wall_factor: 8.0,
            wall_slack_ms: 250.0,
        }
    }
}

/// Environment variable that scales [`GateConfig::wall_factor`]. CI sets
/// this on known-slow runners (emulated architectures, shared hosts)
/// instead of editing the workflow's flag soup in N places.
pub const GATE_WALL_MULT_ENV: &str = "SVAGC_GATE_WALL_MULT";

impl GateConfig {
    /// Multiply the wall-time factor by `mult` (from
    /// [`GATE_WALL_MULT_ENV`] or a flag). Values that are not finite and
    /// positive are ignored: a typo in a CI variable must never make the
    /// gate *stricter* or disable it with a zero/NaN bound.
    pub fn with_wall_mult(mut self, mult: f64) -> Self {
        if mult.is_finite() && mult > 0.0 {
            self.wall_factor *= mult;
        }
        self
    }

    /// Apply [`GATE_WALL_MULT_ENV`] from the process environment, if set
    /// and parseable; otherwise return `self` unchanged.
    pub fn with_env_wall_mult(self) -> Self {
        match std::env::var(GATE_WALL_MULT_ENV).ok().and_then(|v| v.parse::<f64>().ok()) {
            Some(m) => self.with_wall_mult(m),
            None => self,
        }
    }
}

fn num_raw(v: &JsonValue) -> Option<&str> {
    match v {
        JsonValue::Num { raw, .. } => Some(raw),
        _ => None,
    }
}

fn experiments(doc: &JsonValue, which: &str, errs: &mut Vec<String>) -> Vec<JsonValue> {
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == BENCH_SUMMARY_SCHEMA => {}
        other => errs.push(format!(
            "{which}: schema is {other:?}, expected {BENCH_SUMMARY_SCHEMA:?}"
        )),
    }
    match doc.get("experiments").and_then(JsonValue::as_arr) {
        Some(arr) => arr.to_vec(),
        None => {
            errs.push(format!("{which}: no \"experiments\" array"));
            Vec::new()
        }
    }
}

fn entry_id(e: &JsonValue) -> String {
    e.get("experiment")
        .and_then(JsonValue::as_str)
        .unwrap_or("<unnamed>")
        .to_string()
}

fn compare_counters(id: &str, base: &JsonValue, cur: &JsonValue, errs: &mut Vec<String>) {
    let (Some(b), Some(c)) = (
        base.get("counters").and_then(JsonValue::as_obj),
        cur.get("counters").and_then(JsonValue::as_obj),
    ) else {
        errs.push(format!("{id}: missing counters object"));
        return;
    };
    for (key, bval) in b {
        match c.iter().find(|(k, _)| k == key) {
            None => errs.push(format!("{id}: counter {key} missing from current run")),
            Some((_, cval)) if cval != bval => errs.push(format!(
                "{id}: counter {key} changed: baseline {} vs current {}",
                num_raw(bval).unwrap_or("<non-numeric>"),
                num_raw(cval).unwrap_or("<non-numeric>"),
            )),
            Some(_) => {}
        }
    }
    for (key, _) in c {
        if !b.iter().any(|(k, _)| k == key) {
            errs.push(format!("{id}: counter {key} absent from baseline (refresh ci/perf-baseline.json)"));
        }
    }
}

/// Compare two parsed summary documents; returns all violations (empty
/// means the gate passes).
pub fn compare(baseline: &JsonValue, current: &JsonValue, cfg: &GateConfig) -> Vec<String> {
    let mut errs = Vec::new();
    let base = experiments(baseline, "baseline", &mut errs);
    let cur = experiments(current, "current", &mut errs);
    for b in &base {
        let id = entry_id(b);
        let Some(c) = cur.iter().find(|c| entry_id(c) == id) else {
            errs.push(format!("{id}: experiment missing from current run"));
            continue;
        };
        let bd = b.get("sim_digest").and_then(JsonValue::as_str);
        let cd = c.get("sim_digest").and_then(JsonValue::as_str);
        if bd.is_none() || bd != cd {
            errs.push(format!(
                "{id}: sim_digest changed: baseline {} vs current {} (simulated output is expected to be bit-exact; if the change is intentional, refresh ci/perf-baseline.json)",
                bd.unwrap_or("<missing>"),
                cd.unwrap_or("<missing>"),
            ));
        }
        compare_counters(&id, b, c, &mut errs);
        let bw = b.get("wall_ms").and_then(JsonValue::as_f64);
        let cw = c.get("wall_ms").and_then(JsonValue::as_f64);
        match (bw, cw) {
            (Some(bw), Some(cw)) => {
                let bound = bw * cfg.wall_factor + cfg.wall_slack_ms;
                if cw > bound {
                    errs.push(format!(
                        "{id}: wall_ms {cw:.1} exceeds bound {bound:.1} (baseline {bw:.1} x {} + {}ms slack)",
                        cfg.wall_factor, cfg.wall_slack_ms
                    ));
                }
            }
            _ => errs.push(format!("{id}: missing wall_ms")),
        }
    }
    for c in &cur {
        let id = entry_id(c);
        if !base.iter().any(|b| entry_id(b) == id) {
            errs.push(format!(
                "{id}: experiment absent from baseline (refresh ci/perf-baseline.json)"
            ));
        }
    }
    errs
}

/// Read, parse, and compare two summary files.
pub fn run_gate(
    baseline_path: &std::path::Path,
    current_path: &std::path::Path,
    cfg: &GateConfig,
) -> Result<(), Vec<String>> {
    let read = |p: &std::path::Path| -> Result<JsonValue, Vec<String>> {
        let text = std::fs::read_to_string(p)
            .map_err(|e| vec![format!("cannot read {}: {e}", p.display())])?;
        parse_json(&text).map_err(|e| vec![format!("cannot parse {}: {e}", p.display())])
    };
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;
    let errs = compare(&baseline, &current, cfg);
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(digest: &str, cycles: u64, wall: f64) -> JsonValue {
        parse_json(&format!(
            "{{\"schema\":\"{BENCH_SUMMARY_SCHEMA}\",\"parallel\":false,\"host_threads\":1,\
             \"experiments\":[{{\"experiment\":\"fig99\",\"sim_digest\":\"{digest}\",\
             \"counters\":{{\"gc.pause_cycles\":{cycles}}},\"wall_ms\":{wall}}}]}}"
        ))
        .unwrap()
    }

    #[test]
    fn identical_summaries_pass() {
        let a = summary("fnv1a:00000000deadbeef", u64::MAX, 10.0);
        assert!(compare(&a, &a, &GateConfig::default()).is_empty());
    }

    #[test]
    fn digest_and_counter_drift_are_violations() {
        let base = summary("fnv1a:00000000deadbeef", 100, 10.0);
        let cur = summary("fnv1a:00000000cafecafe", 101, 10.0);
        let errs = compare(&base, &cur, &GateConfig::default());
        assert!(errs.iter().any(|e| e.contains("sim_digest changed")), "{errs:?}");
        assert!(
            errs.iter().any(|e| e.contains("gc.pause_cycles changed")),
            "{errs:?}"
        );
    }

    #[test]
    fn u64_counters_compare_exactly_beyond_f64_mantissa() {
        // These two differ by 1 ULP of u64 but round to the same f64.
        let base = summary("fnv1a:00000000deadbeef", 9_007_199_254_740_993, 10.0);
        let cur = summary("fnv1a:00000000deadbeef", 9_007_199_254_740_992, 10.0);
        let errs = compare(&base, &cur, &GateConfig::default());
        assert!(errs.iter().any(|e| e.contains("gc.pause_cycles changed")), "{errs:?}");
    }

    #[test]
    fn wall_time_is_an_upper_bound_only() {
        let cfg = GateConfig { wall_factor: 2.0, wall_slack_ms: 1.0 };
        let base = summary("fnv1a:00000000deadbeef", 1, 10.0);
        // Faster than baseline: fine.
        assert!(compare(&base, &summary("fnv1a:00000000deadbeef", 1, 0.01), &cfg).is_empty());
        // Within 2x + 1ms: fine.
        assert!(compare(&base, &summary("fnv1a:00000000deadbeef", 1, 20.9), &cfg).is_empty());
        // Beyond the bound: violation.
        let errs = compare(&base, &summary("fnv1a:00000000deadbeef", 1, 21.1), &cfg);
        assert!(errs.iter().any(|e| e.contains("wall_ms")), "{errs:?}");
    }

    #[test]
    fn wall_mult_scales_the_factor_and_rejects_nonsense() {
        let base = GateConfig { wall_factor: 2.0, wall_slack_ms: 1.0 };
        // A 10x multiplier lets a 25x-baseline wall time through.
        let slow = summary("fnv1a:00000000deadbeef", 1, 250.0);
        let fast = summary("fnv1a:00000000deadbeef", 1, 10.0);
        assert!(compare(&fast, &slow, &base).iter().any(|e| e.contains("wall_ms")));
        let widened = GateConfig { wall_factor: 2.0, wall_slack_ms: 1.0 }.with_wall_mult(20.0);
        assert!(compare(&fast, &slow, &widened).is_empty());
        // Zero, negative, and NaN multipliers are ignored — a broken CI
        // variable must not tighten the gate or zero out the bound.
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let cfg = GateConfig { wall_factor: 2.0, wall_slack_ms: 1.0 }.with_wall_mult(bad);
            assert_eq!(cfg.wall_factor, 2.0, "mult {bad} should be ignored");
        }
    }

    #[test]
    fn env_wall_mult_is_read_when_set() {
        // Serialised by being the only test in the binary touching this
        // variable: set, read, restore.
        std::env::set_var(GATE_WALL_MULT_ENV, "2.5");
        let cfg = GateConfig { wall_factor: 4.0, wall_slack_ms: 1.0 }.with_env_wall_mult();
        std::env::remove_var(GATE_WALL_MULT_ENV);
        assert_eq!(cfg.wall_factor, 10.0);
        // Unset: unchanged.
        let cfg = GateConfig { wall_factor: 4.0, wall_slack_ms: 1.0 }.with_env_wall_mult();
        assert_eq!(cfg.wall_factor, 4.0);
        // Garbage: unchanged.
        std::env::set_var(GATE_WALL_MULT_ENV, "speedy");
        let cfg = GateConfig { wall_factor: 4.0, wall_slack_ms: 1.0 }.with_env_wall_mult();
        std::env::remove_var(GATE_WALL_MULT_ENV);
        assert_eq!(cfg.wall_factor, 4.0);
    }

    #[test]
    fn missing_and_extra_experiments_are_violations() {
        let a = summary("fnv1a:00000000deadbeef", 1, 10.0);
        let empty = parse_json(&format!(
            "{{\"schema\":\"{BENCH_SUMMARY_SCHEMA}\",\"parallel\":false,\"host_threads\":1,\"experiments\":[]}}"
        ))
        .unwrap();
        let cfg = GateConfig::default();
        assert!(compare(&a, &empty, &cfg).iter().any(|e| e.contains("missing from current")));
        assert!(compare(&empty, &a, &cfg).iter().any(|e| e.contains("absent from baseline")));
    }
}
