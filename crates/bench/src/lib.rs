//! Figure/table harnesses reproducing the paper's evaluation.
//!
//! * [`micro`] — kernel-level sweeps (Figs. 6, 8, 9, 10).
//! * [`ablations`] — design-choice studies (threshold, aggregation batch,
//!   flush policy, stealing, Minor-GC promotion).
//! * [`suites`] — whole-benchmark runs (Figs. 1, 2, 11-16, Table III).
//! * [`report`] — per-experiment report sink, BENCH JSON emitter, and
//!   table/JSON output helpers.
//! * [`runner`] — experiment registry plus the serial / host-parallel
//!   runner used by `bin/all` and the thin per-figure binaries.
//! * [`gate`] — perf-regression comparison of a `BENCH_summary.json`
//!   against a checked-in baseline (the CI perf gate).
//!
//! Each `src/bin/figNN_*` binary regenerates one figure; `bin/all` runs
//! everything in paper order and can fan out across host threads with
//! `--parallel` (simulated output stays byte-identical to serial).

pub mod ablations;
pub mod gate;
pub mod micro;
pub mod render;
pub mod report;
pub mod runner;
pub mod suites;
