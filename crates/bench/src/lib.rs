//! Figure/table harnesses reproducing the paper's evaluation.
//!
//! * [`micro`] — kernel-level sweeps (Figs. 6, 8, 9, 10).
//! * [`ablations`] — design-choice studies (threshold, aggregation batch,
//!   flush policy, stealing, Minor-GC promotion).
//! * [`suites`] — whole-benchmark runs (Figs. 1, 2, 11-16, Table III).
//! * [`report`] — table/JSON output helpers.
//!
//! Each `src/bin/figNN_*` binary regenerates one figure; `bin/all` runs
//! everything in paper order.

pub mod ablations;
pub mod micro;
pub mod render;
pub mod report;
pub mod suites;
