//! Kernel-level micro-experiments: Figs. 6, 8, 9, 10.

use svagc_kernel::{CoreId, FlushMode, Kernel, SwapRequest, SwapVaOptions};
use svagc_metrics::{impl_to_json, Cycles, MachineConfig};
use svagc_vmem::{AddressSpace, Asid, VirtAddr};

fn setup(machine: MachineConfig, pages: u64) -> (Kernel, AddressSpace) {
    let k = Kernel::new(machine, (pages + 64) as u32);
    let s = AddressSpace::new(Asid(1));
    (k, s)
}

/// Allocate `n` disjoint (src, dst) pairs of `pages` pages each.
fn alloc_pairs(
    k: &mut Kernel,
    s: &mut AddressSpace,
    n: u64,
    pages: u64,
) -> Vec<(VirtAddr, VirtAddr)> {
    (0..n)
        .map(|_| {
            let a = k.vmem.alloc_region(s, pages).expect("frames");
            let b = k.vmem.alloc_region(s, pages).expect("frames");
            (a, b)
        })
        .collect()
}

/// One row of Fig. 6: aggregated vs separated SwapVA calls.
#[derive(Debug, Clone, Copy)]
pub struct AggregationRow {
    /// Pages per request (the x-axis: "average input size").
    pub pages_per_request: u64,
    /// Requests issued.
    pub requests: u64,
    /// Separated calls, total microseconds.
    pub separated_us: f64,
    /// One aggregated call, total microseconds.
    pub aggregated_us: f64,
    /// separated / aggregated.
    pub speedup: f64,
    /// Separated calls, exact simulated cycles.
    pub separated_cycles: u64,
    /// Aggregated call, exact simulated cycles.
    pub aggregated_cycles: u64,
}

/// Fig. 6: fix the total work at `total_pages`, sweep the request size.
pub fn fig06_aggregation(total_pages: u64) -> Vec<AggregationRow> {
    let machine = MachineConfig::i5_7600();
    let mut rows = Vec::new();
    for shift in 0..=7 {
        let per = 1u64 << shift; // 1..128 pages per request
        let n = total_pages / per;
        let (mut k, mut s) = setup(machine.clone(), 2 * total_pages + 64);
        let pairs = alloc_pairs(&mut k, &mut s, n, per);
        let reqs: Vec<SwapRequest> = pairs
            .iter()
            .map(|&(a, b)| SwapRequest { a, b, pages: per })
            .collect();
        let opts = SwapVaOptions {
            pmd_cache: true,
            overlap_opt: true,
            flush: FlushMode::LocalOnly,
        };
        let mut separated = Cycles::ZERO;
        for r in &reqs {
            separated += k.swap_va(&mut s, CoreId(0), *r, opts).unwrap().0;
        }
        let (aggregated, _) = k.swap_va_batch(&mut s, CoreId(0), &reqs, opts).unwrap();
        rows.push(AggregationRow {
            pages_per_request: per,
            requests: n,
            separated_us: machine.time(separated).as_micros(),
            aggregated_us: machine.time(aggregated).as_micros(),
            speedup: separated.get() as f64 / aggregated.get().max(1) as f64,
            separated_cycles: separated.get(),
            aggregated_cycles: aggregated.get(),
        });
    }
    rows
}

/// One row of Fig. 8: PMD caching on vs off.
#[derive(Debug, Clone, Copy)]
pub struct PmdCacheRow {
    /// Pages swapped.
    pub pages: u64,
    /// Without PMD caching (µs).
    pub uncached_us: f64,
    /// With PMD caching (µs).
    pub cached_us: f64,
    /// Improvement percentage.
    pub improvement_pct: f64,
    /// Without PMD caching, exact simulated cycles.
    pub uncached_cycles: u64,
    /// With PMD caching, exact simulated cycles.
    pub cached_cycles: u64,
}

/// Fig. 8: sweep the swap size with and without PMD caching.
pub fn fig08_pmd_cache() -> Vec<PmdCacheRow> {
    let machine = MachineConfig::i5_7600();
    let mut rows = Vec::new();
    for shift in 0..=9 {
        let pages = 1u64 << shift; // 1..512
        let run = |pmd_cache: bool| -> Cycles {
            let (mut k, mut s) = setup(machine.clone(), 2 * pages + 64);
            let a = k.vmem.alloc_region(&mut s, pages).unwrap();
            let b = k.vmem.alloc_region(&mut s, pages).unwrap();
            let opts = SwapVaOptions {
                pmd_cache,
                overlap_opt: true,
                flush: FlushMode::LocalOnly,
            };
            k.swap_va(&mut s, CoreId(0), SwapRequest { a, b, pages }, opts)
                .unwrap()
                .0
        };
        let uncached = run(false);
        let cached = run(true);
        rows.push(PmdCacheRow {
            pages,
            uncached_us: machine.time(uncached).as_micros(),
            cached_us: machine.time(cached).as_micros(),
            improvement_pct: 100.0 * (uncached.get() - cached.get()) as f64
                / uncached.get() as f64,
            uncached_cycles: uncached.get(),
            cached_cycles: cached.get(),
        });
    }
    rows
}

/// One row of Fig. 9: moving l̄ = 100 objects on an `cores`-core machine.
#[derive(Debug, Clone, Copy)]
pub struct MulticoreRow {
    /// Online cores.
    pub cores: usize,
    /// memmove baseline (µs).
    pub memmove_us: f64,
    /// SwapVA with per-call global shootdown (µs, initiator side).
    pub naive_us: f64,
    /// SwapVA with the pinned/local protocol of Algorithm 4 (µs).
    pub pinned_us: f64,
    /// SwapVA with access-tracking shootdowns (the §IV-cited alternative):
    /// IPIs only to cores whose TLBs hold this address space (µs).
    pub tracked_us: f64,
    /// IPIs sent by the naive version.
    pub naive_ipis: u64,
    /// IPIs sent by the pinned version.
    pub pinned_ipis: u64,
    /// IPIs sent by the tracked version.
    pub tracked_ipis: u64,
    /// memmove baseline, exact simulated cycles.
    pub memmove_cycles: u64,
    /// Naive SwapVA, exact simulated cycles.
    pub naive_cycles: u64,
    /// Pinned SwapVA, exact simulated cycles.
    pub pinned_cycles: u64,
    /// Tracked SwapVA, exact simulated cycles.
    pub tracked_cycles: u64,
}

/// Fig. 9: 100 live swappable objects, sweep the core count.
pub fn fig09_multicore(object_pages: u64) -> Vec<MulticoreRow> {
    const OBJECTS: u64 = 100; // the paper's l̄
    let mut rows = Vec::new();
    for cores in [1usize, 2, 4, 8, 16, 32] {
        let machine = MachineConfig::xeon_gold_6130().with_cores(cores);
        let prep = |k: &mut Kernel, s: &mut AddressSpace| alloc_pairs(k, s, OBJECTS, object_pages);

        // memmove baseline.
        let (mut k, mut s) = setup(machine.clone(), 2 * OBJECTS * object_pages + 64);
        let pairs = prep(&mut k, &mut s);
        let mut memmove = Cycles::ZERO;
        for (a, b) in &pairs {
            memmove += k
                .memmove(&s, CoreId(0), *a, *b, object_pages * 4096)
                .unwrap();
        }

        // Naive SwapVA: global broadcast per call.
        let (mut k, mut s) = setup(machine.clone(), 2 * OBJECTS * object_pages + 64);
        let pairs = prep(&mut k, &mut s);
        let mut naive = Cycles::ZERO;
        for (a, b) in &pairs {
            let req = SwapRequest { a: *a, b: *b, pages: object_pages };
            naive += k
                .swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
                .unwrap()
                .0;
        }
        let naive_ipis = k.perf.ipis_sent;

        // Pinned SwapVA (Algorithm 4): one broadcast, local flushes.
        let (mut k, mut s) = setup(machine.clone(), 2 * OBJECTS * object_pages + 64);
        let pairs = prep(&mut k, &mut s);
        let mut pinned = k.pin(CoreId(0));
        pinned += k.flush_asid_all_cores(CoreId(0), s.asid()).0;
        for (a, b) in &pairs {
            let req = SwapRequest { a: *a, b: *b, pages: object_pages };
            pinned += k
                .swap_va(&mut s, CoreId(0), req, SwapVaOptions::pinned())
                .unwrap()
                .0;
        }
        pinned += k.unpin();
        let pinned_ipis = k.perf.ipis_sent;

        // Tracked shootdowns: half the cores ran mutators that touched the
        // space before the GC (warm TLBs), so the first flushes target
        // them; afterwards the tracking state keeps IPIs near zero.
        let (mut k, mut s) = setup(machine.clone(), 2 * OBJECTS * object_pages + 64);
        let pairs = prep(&mut k, &mut s);
        for c in 0..cores.div_ceil(2) {
            let (a, _) = pairs[0];
            k.translate(&s, CoreId(c), a).unwrap();
        }
        let mut tracked = Cycles::ZERO;
        let opts = SwapVaOptions {
            pmd_cache: true,
            overlap_opt: true,
            flush: svagc_kernel::FlushMode::Tracked,
        };
        for (a, b) in &pairs {
            let req = SwapRequest { a: *a, b: *b, pages: object_pages };
            tracked += k.swap_va(&mut s, CoreId(0), req, opts).unwrap().0;
        }
        let tracked_ipis = k.perf.ipis_sent;

        rows.push(MulticoreRow {
            cores,
            memmove_us: machine.time(memmove).as_micros(),
            naive_us: machine.time(naive).as_micros(),
            pinned_us: machine.time(pinned).as_micros(),
            tracked_us: machine.time(tracked).as_micros(),
            naive_ipis,
            pinned_ipis,
            tracked_ipis,
            memmove_cycles: memmove.get(),
            naive_cycles: naive.get(),
            pinned_cycles: pinned.get(),
            tracked_cycles: tracked.get(),
        });
    }
    rows
}

/// One row of Fig. 10: per-object move cost by mechanism.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdRow {
    /// Object size in pages.
    pub pages: u64,
    /// memmove cost (µs).
    pub memmove_us: f64,
    /// SwapVA cost (µs, syscall + local flush included).
    pub swapva_us: f64,
    /// memmove cost, exact simulated cycles.
    pub memmove_cycles: u64,
    /// SwapVA cost, exact simulated cycles.
    pub swapva_cycles: u64,
}

impl_to_json!(AggregationRow {
    pages_per_request,
    requests,
    separated_us,
    aggregated_us,
    speedup,
    separated_cycles,
    aggregated_cycles,
});

impl_to_json!(PmdCacheRow {
    pages,
    uncached_us,
    cached_us,
    improvement_pct,
    uncached_cycles,
    cached_cycles,
});

impl_to_json!(MulticoreRow {
    cores,
    memmove_us,
    naive_us,
    pinned_us,
    tracked_us,
    naive_ipis,
    pinned_ipis,
    tracked_ipis,
    memmove_cycles,
    naive_cycles,
    pinned_cycles,
    tracked_cycles,
});

impl_to_json!(ThresholdRow {
    pages,
    memmove_us,
    swapva_us,
    memmove_cycles,
    swapva_cycles,
});

/// Fig. 10: sweep object size on one machine; the crossover is the
/// break-even threshold.
pub fn fig10_threshold(machine: &MachineConfig, max_pages: u64) -> Vec<ThresholdRow> {
    let mut rows = Vec::new();
    let mut p = 1u64;
    while p <= max_pages {
        let (mut k, mut s) = setup(machine.clone(), 2 * p + 64);
        let a = k.vmem.alloc_region(&mut s, p).unwrap();
        let b = k.vmem.alloc_region(&mut s, p).unwrap();
        let mm = k.memmove(&s, CoreId(0), a, b, p * 4096).unwrap();
        let (sw, _) = k
            .swap_va(
                &mut s,
                CoreId(0),
                SwapRequest { a, b, pages: p },
                SwapVaOptions::pinned(),
            )
            .unwrap();
        rows.push(ThresholdRow {
            pages: p,
            memmove_us: machine.time(mm).as_micros(),
            swapva_us: machine.time(sw).as_micros(),
            memmove_cycles: mm.get(),
            swapva_cycles: sw.get(),
        });
        p += 1;
    }
    rows
}

/// The first page count where SwapVA beats memmove (the Fig. 10
/// break-even; the paper reports ~10 on its machines).
pub fn break_even(rows: &[ThresholdRow]) -> Option<u64> {
    rows.iter()
        .find(|r| r.swapva_us < r.memmove_us)
        .map(|r| r.pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_always_wins_and_gap_shrinks() {
        let rows = fig06_aggregation(256);
        for r in &rows {
            assert!(r.speedup >= 1.0, "{r:?}");
        }
        // The benefit fades as requests get bigger (paper Fig. 6).
        assert!(rows.first().unwrap().speedup > rows.last().unwrap().speedup);
    }

    #[test]
    fn pmd_cache_improvement_in_papers_band() {
        let rows = fig08_pmd_cache();
        let multi: Vec<_> = rows.iter().filter(|r| r.pages >= 8).collect();
        let max = multi.iter().map(|r| r.improvement_pct).fold(0.0, f64::max);
        let avg = multi.iter().map(|r| r.improvement_pct).sum::<f64>() / multi.len() as f64;
        // Paper: up to 52.48%, average 36.73%.
        assert!((30.0..70.0).contains(&max), "max improvement {max}");
        assert!((20.0..60.0).contains(&avg), "avg improvement {avg}");
    }

    #[test]
    fn pinned_flush_scales_flat_while_naive_grows() {
        let rows = fig09_multicore(16);
        let first = &rows[0];
        let last = rows.last().unwrap();
        // Naive cost grows with core count; pinned stays near-flat.
        assert!(last.naive_us > first.naive_us * 3.0);
        assert!(last.pinned_us < first.pinned_us * 2.0);
        // Eq. 2: IPI ratio ≈ l̄ = 100.
        let gain = last.naive_ipis as f64 / last.pinned_ipis.max(1) as f64;
        assert!((50.0..150.0).contains(&gain), "IPI gain {gain}");
        // The access-tracking alternative also stays near-flat (it sends
        // IPIs only while warm TLBs remain), landing between pinned and
        // naive — the paper's §IV rationale for preferring the simpler
        // pinning protocol still holds on cost.
        assert!(last.tracked_ipis < last.naive_ipis / 10);
        assert!(last.tracked_us < last.naive_us / 2.0);
        assert!(last.tracked_us >= last.pinned_us * 0.8);
    }

    #[test]
    fn threshold_near_ten_pages() {
        for machine in [
            MachineConfig::xeon_gold_6130(),
            MachineConfig::xeon_gold_6240(),
        ] {
            let rows = fig10_threshold(&machine, 64);
            let be = break_even(&rows).expect("crossover exists");
            assert!(
                (3..=20).contains(&be),
                "{}: break-even {be} pages not near the paper's ~10",
                machine.name
            );
        }
    }
}
