//! Rendering of every figure/table: each experiment function runs its
//! simulation and writes the paper-matching rows into a [`Report`] sink —
//! aligned text tables plus `@json` row echoes on the text plane, rows /
//! headline counters / derived scalars on the simulated plane (which the
//! BENCH JSON emitter digests for the CI perf gate). The `bin/figNN_*`
//! binaries and `bin/all` are thin wrappers over [`crate::runner`].

use crate::micro;
use crate::report::{fnv1a, ms, pct, x, Report, Table};
use crate::suites::{self, GcTimeRow};
use crate::ablations;
use svagc_metrics::MachineConfig;
use svagc_workloads::driver::CollectorKind;

/// Fig. 1: execution time split of the full-GC phases (memmove prototype).
pub fn fig01(rep: &mut Report) {
    let rows = suites::fig01_rows();
    let mut t = Table::new(["benchmark", "mark", "forward", "adjust", "compact", "compact %"]);
    for r in &rows {
        let total = r.mark_ms + r.forward_ms + r.adjust_ms + r.compact_ms;
        t.row([
            r.name.clone(),
            ms(r.mark_ms),
            ms(r.forward_ms),
            ms(r.adjust_ms),
            ms(r.compact_ms),
            pct(100.0 * r.compact_ms / total),
        ]);
        rep.row("fig01", r);
        rep.counter("gc.pause_cycles", r.gc_pause_cycles);
        rep.counter("sim.total_cycles", r.total_cycles);
    }
    rep.table(&t);
    rep.say("(paper: compaction = 79.33% Sparse.large, 84.76% FFT.large)");
}

/// Fig. 2: multi-JVM scalability collapse under ParallelGC.
pub fn fig02(rep: &mut Report) {
    let rows = suites::multijvm_rows(CollectorKind::ParallelGc, &[1, 2, 4, 8, 16, 32]);
    multijvm_render("fig02", rep, &rows);
    let g = rows.last().unwrap().gc_total_ms / rows[0].gc_total_ms;
    let a = rows.last().unwrap().app_ms / rows[0].app_ms;
    rep.derived("gc_growth_1_to_32", g);
    rep.derived("app_growth_1_to_32", a);
    rep.say(format!(
        "1->32 JVMs: GC time x{g:.2}, app time x{a:.2} (paper: both rise significantly)"
    ));
}

fn multijvm_render(tag: &str, rep: &mut Report, rows: &[suites::MultiJvmRow]) {
    let mut t = Table::new(["JVMs", "GC total (ms)", "GC max (ms)", "app (ms)", "total (ms)"]);
    for r in rows {
        t.row([
            r.jvms.to_string(),
            ms(r.gc_total_ms),
            ms(r.gc_max_ms),
            ms(r.app_ms),
            ms(r.total_ms),
        ]);
        rep.row(tag, r);
        rep.counter("gc.pause_cycles", r.gc_pause_cycles);
        rep.counter("sim.total_cycles", r.total_cycles);
    }
    rep.table(&t);
}

/// Fig. 6: aggregated vs separated SwapVA calls.
pub fn fig06(rep: &mut Report) {
    let rows = micro::fig06_aggregation(1024);
    let mut t = Table::new(["pages/req", "requests", "separated (us)", "aggregated (us)", "speedup"]);
    for r in &rows {
        t.row([
            r.pages_per_request.to_string(),
            r.requests.to_string(),
            format!("{:.1}", r.separated_us),
            format!("{:.1}", r.aggregated_us),
            x(r.speedup),
        ]);
        rep.row("fig06", r);
        rep.counter("swap.separated_cycles", r.separated_cycles);
        rep.counter("swap.aggregated_cycles", r.aggregated_cycles);
    }
    rep.table(&t);
    rep.say("(paper: aggregation wins most for small requests; gap closes as input size grows)");
}

/// Fig. 8: PMD-caching benefit.
pub fn fig08(rep: &mut Report) {
    let rows = micro::fig08_pmd_cache();
    let mut t = Table::new(["pages", "no cache (us)", "cached (us)", "improvement"]);
    for r in &rows {
        t.row([
            r.pages.to_string(),
            format!("{:.2}", r.uncached_us),
            format!("{:.2}", r.cached_us),
            pct(r.improvement_pct),
        ]);
        rep.row("fig08", r);
        rep.counter("swap.uncached_cycles", r.uncached_cycles);
        rep.counter("swap.cached_cycles", r.cached_cycles);
    }
    rep.table(&t);
    let multi: Vec<_> = rows.iter().filter(|r| r.pages >= 8).collect();
    let max = multi.iter().map(|r| r.improvement_pct).fold(0.0, f64::max);
    let avg = multi.iter().map(|r| r.improvement_pct).sum::<f64>() / multi.len() as f64;
    rep.derived("multi_page_improvement_max_pct", max);
    rep.derived("multi_page_improvement_avg_pct", avg);
    rep.say(format!(
        "multi-page: max {max:.1}%, avg {avg:.1}% (paper: up to 52.5%, avg 36.7%)"
    ));
}

/// Fig. 9: multi-core shootdown optimizations.
pub fn fig09(rep: &mut Report) {
    let rows = micro::fig09_multicore(16);
    let mut t = Table::new([
        "cores",
        "memmove (us)",
        "naive (us)",
        "pinned (us)",
        "tracked (us)",
        "naive IPIs",
        "pinned IPIs",
        "tracked IPIs",
    ]);
    for r in &rows {
        t.row([
            r.cores.to_string(),
            format!("{:.1}", r.memmove_us),
            format!("{:.1}", r.naive_us),
            format!("{:.1}", r.pinned_us),
            format!("{:.1}", r.tracked_us),
            r.naive_ipis.to_string(),
            r.pinned_ipis.to_string(),
            r.tracked_ipis.to_string(),
        ]);
        rep.row("fig09", r);
        rep.counter("ipi.naive", r.naive_ipis);
        rep.counter("ipi.pinned", r.pinned_ipis);
        rep.counter("ipi.tracked", r.tracked_ipis);
        rep.counter("swap.naive_cycles", r.naive_cycles);
        rep.counter("swap.pinned_cycles", r.pinned_cycles);
        rep.counter("swap.tracked_cycles", r.tracked_cycles);
    }
    rep.table(&t);
    let last = rows.last().unwrap();
    let gain = last.naive_ipis as f64 / last.pinned_ipis.max(1) as f64;
    rep.derived("ipi_reduction_32_cores", gain);
    rep.say(format!(
        "IPI reduction at 32 cores: {gain:.0}x (Eq. 2 predicts l-bar = 100)"
    ));
}

/// Fig. 10: memmove/SwapVA break-even threshold on two machines.
pub fn fig10(rep: &mut Report) {
    for machine in [MachineConfig::xeon_gold_6130(), MachineConfig::xeon_gold_6240()] {
        rep.say(format!("\n-- {} --", machine.name));
        let rows = micro::fig10_threshold(&machine, 24);
        let mut t = Table::new(["pages", "memmove (us)", "SwapVA (us)"]);
        for r in &rows {
            t.row([
                r.pages.to_string(),
                format!("{:.2}", r.memmove_us),
                format!("{:.2}", r.swapva_us),
            ]);
            rep.row("fig10", r);
            rep.counter("move.memmove_cycles", r.memmove_cycles);
            rep.counter("move.swapva_cycles", r.swapva_cycles);
        }
        rep.table(&t);
        match micro::break_even(&rows) {
            Some(p) => {
                rep.counter("threshold.break_even_pages", p);
                rep.say(format!(
                    "break-even: {p} pages (paper: ~10; cost-model formula derives {})",
                    machine.derived_threshold_pages()
                ));
            }
            None => rep.say("no crossover in range"),
        }
    }
}

fn suite_pair(factor: f64) -> (Vec<GcTimeRow>, Vec<GcTimeRow>) {
    (
        suites::suite_rows(CollectorKind::SvagcMemmove, factor, None),
        suites::suite_rows(CollectorKind::Svagc, factor, None),
    )
}

/// Fig. 11: GC time −/+ SwapVA per benchmark, compaction vs other phases.
pub fn fig11(rep: &mut Report) {
    let (memmove, swap) = suite_pair(1.2);
    let mut t = Table::new([
        "benchmark",
        "-SwapVA compact",
        "-SwapVA other",
        "+SwapVA compact",
        "+SwapVA other",
        "GC reduction",
    ]);
    for (m, s) in memmove.iter().zip(&swap) {
        assert_eq!(m.name, s.name);
        let red = 100.0 * (1.0 - s.gc_total_ms / m.gc_total_ms.max(1e-12));
        t.row([
            m.name.clone(),
            ms(m.compact_ms),
            ms(m.other_ms),
            ms(s.compact_ms),
            ms(s.other_ms),
            pct(red),
        ]);
        rep.row("fig11_memmove", m);
        rep.row("fig11_swapva", s);
        rep.counter("gc.pause_cycles.memmove", m.gc_pause_cycles);
        rep.counter("gc.pause_cycles.swapva", s.gc_pause_cycles);
        rep.counter("swap.objects", s.swapped_objects);
    }
    rep.table(&t);
    rep.say("(paper: pause reduced up to 70.9% Sparse.large/4, 97% Sigverify)");
}

fn three_way(factor: f64) -> [Vec<GcTimeRow>; 3] {
    [
        suites::suite_rows(CollectorKind::Shenandoah, factor, None),
        suites::suite_rows(CollectorKind::ParallelGc, factor, None),
        suites::suite_rows(CollectorKind::Svagc, factor, None),
    ]
}

fn render_latency(
    rep: &mut Report,
    fig: &str,
    metric: fn(&GcTimeRow) -> f64,
    paper_note: &str,
) {
    for factor in [1.2, 2.0] {
        rep.say(format!("\n-- heap = {factor}x minimum --"));
        let [shen, pgc, svagc] = three_way(factor);
        let mut t =
            Table::new(["benchmark", "Shenandoah", "ParallelGC", "SVAGC", "PGC/SVAGC", "Shen/SVAGC"]);
        let (mut rp, mut rs, mut n) = (0.0, 0.0, 0);
        for ((sh, pg), sv) in shen.iter().zip(&pgc).zip(&svagc) {
            let (a, b, c) = (metric(sh), metric(pg), metric(sv));
            t.row([
                sv.name.clone(),
                ms(a),
                ms(b),
                ms(c),
                x(b / c.max(1e-12)),
                x(a / c.max(1e-12)),
            ]);
            rp += b / c.max(1e-12);
            rs += a / c.max(1e-12);
            n += 1;
            rep.row(&format!("{}_{}", fig.to_lowercase().replace(". ", ""), factor), sv);
            rep.counter("gc.pause_cycles.shenandoah", sh.gc_pause_cycles);
            rep.counter("gc.pause_cycles.parallelgc", pg.gc_pause_cycles);
            rep.counter("gc.pause_cycles.svagc", sv.gc_pause_cycles);
        }
        rep.table(&t);
        let (mean_p, mean_s) = (rp / n as f64, rs / n as f64);
        rep.derived(&format!("mean_ratio_parallelgc_{factor}"), mean_p);
        rep.derived(&format!("mean_ratio_shenandoah_{factor}"), mean_s);
        rep.say(format!(
            "mean ratio vs SVAGC: ParallelGC {mean_p:.2}x, Shenandoah {mean_s:.2}x  {paper_note}"
        ));
    }
}

/// Fig. 12: average Full-GC latency, SVAGC vs baselines.
pub fn fig12(rep: &mut Report) {
    render_latency(
        rep,
        "Fig. 12",
        |r| r.gc_avg_ms,
        "(paper @1.2x: 3.82x / 16.05x; @2x: 2.74x / 13.62x)",
    );
}

/// Fig. 13: maximum pause, SVAGC vs baselines.
pub fn fig13(rep: &mut Report) {
    render_latency(
        rep,
        "Fig. 13",
        |r| r.gc_max_ms,
        "(paper @1.2x: 4.49x / 18.25x; @2x: 3.60x / 12.24x)",
    );
}

/// Fig. 14: SVAGC multi-JVM scaling.
pub fn fig14(rep: &mut Report) {
    let rows = suites::multijvm_rows(CollectorKind::Svagc, &[1, 2, 4, 8, 16, 32]);
    multijvm_render("fig14", rep, &rows);
    let g = 100.0 * (rows.last().unwrap().gc_total_ms / rows[0].gc_total_ms - 1.0);
    let a = 100.0 * (rows.last().unwrap().app_ms / rows[0].app_ms - 1.0);
    rep.derived("gc_growth_pct_1_to_32", g);
    rep.derived("app_growth_pct_1_to_32", a);
    rep.say(format!(
        "1->32 JVMs: GC time +{g:.0}%, app time +{a:.0}% (paper: +52% GC vs +327.5% app)"
    ));
}

/// Fig. 15: application throughput gain from SwapVA at 1.2× heap.
pub fn fig15(rep: &mut Report) {
    let (memmove, swap) = suite_pair(1.2);
    let mut t = Table::new(["benchmark", "-SwapVA (steps/s)", "+SwapVA (steps/s)", "improvement"]);
    for (m, s) in memmove.iter().zip(&swap) {
        let imp = 100.0 * (s.throughput / m.throughput - 1.0);
        t.row([
            m.name.clone(),
            format!("{:.1}", m.throughput),
            format!("{:.1}", s.throughput),
            pct(imp),
        ]);
        rep.row("fig15", s);
        rep.counter("sim.total_cycles.memmove", m.total_cycles);
        rep.counter("sim.total_cycles.swapva", s.total_cycles);
    }
    rep.table(&t);
    rep.say("(paper: +15.2% CryptoAES ... +86.9% Sparse.large)");
}

/// Fig. 16: application throughput, SVAGC vs baselines at both factors.
pub fn fig16(rep: &mut Report) {
    for factor in [1.2, 2.0] {
        rep.say(format!("\n-- heap = {factor}x minimum --"));
        let [shen, pgc, svagc] = three_way(factor);
        let mut t = Table::new(["benchmark", "Shenandoah", "ParallelGC", "SVAGC", "vs PGC", "vs Shen"]);
        let (mut ip, mut is_, mut n) = (0.0, 0.0, 0);
        for ((sh, pg), sv) in shen.iter().zip(&pgc).zip(&svagc) {
            let vp = 100.0 * (sv.throughput / pg.throughput - 1.0);
            let vs = 100.0 * (sv.throughput / sh.throughput - 1.0);
            t.row([
                sv.name.clone(),
                format!("{:.1}", sh.throughput),
                format!("{:.1}", pg.throughput),
                format!("{:.1}", sv.throughput),
                pct(vp),
                pct(vs),
            ]);
            ip += vp;
            is_ += vs;
            n += 1;
            rep.row(&format!("fig16_{factor}"), sv);
            rep.counter("sim.total_cycles.shenandoah", sh.total_cycles);
            rep.counter("sim.total_cycles.parallelgc", pg.total_cycles);
            rep.counter("sim.total_cycles.svagc", sv.total_cycles);
        }
        rep.table(&t);
        let (mean_p, mean_s) = (ip / n as f64, is_ / n as f64);
        rep.derived(&format!("mean_improvement_vs_parallelgc_{factor}"), mean_p);
        rep.derived(&format!("mean_improvement_vs_shenandoah_{factor}"), mean_s);
        rep.say(format!(
            "mean improvement: vs ParallelGC {mean_p:.1}%, vs Shenandoah {mean_s:.1}% (paper @1.2x: 30.95%/37.27%; @2x: 15.26%/16.79%)"
        ));
    }
}

/// Table I: applicability matrix.
pub fn table1(rep: &mut Report) {
    let text = svagc_core::applicability::render_table();
    // Static tables have no numeric rows; pin the rendered text itself.
    rep.counter("render.text_fnv", fnv1a(text.as_bytes()));
    rep.say(text.trim_end());
}

/// Table II: benchmark configuration.
pub fn table2(rep: &mut Report) {
    let text = svagc_workloads::render_table_ii();
    rep.counter("render.text_fnv", fnv1a(text.as_bytes()));
    rep.say(text.trim_end());
}

/// Table III: cache & DTLB miss rates.
pub fn table3(rep: &mut Report) {
    let rows = suites::table3_rows(Some(25));
    let mut t = Table::new([
        "benchmark",
        "cache% memmove",
        "cache% SwapVA",
        "dtlb% memmove",
        "dtlb% SwapVA",
    ]);
    let pair = |p: (f64, f64)| format!("{:.2}({:.2})", p.0, p.1);
    for r in &rows {
        t.row([
            r.name.clone(),
            pair(r.cache_memmove),
            pair(r.cache_swapva),
            pair(r.dtlb_memmove),
            pair(r.dtlb_swapva),
        ]);
        rep.row("table3", r);
    }
    // Summary rows (min/max/geomean, as in the paper).
    let gm = |f: fn(&suites::CacheDtlbRow) -> f64| suites::geomean(rows.iter().map(f));
    let (gc_m, gc_s) = (gm(|r| r.cache_memmove.0), gm(|r| r.cache_swapva.0));
    let (gd_m, gd_s) = (gm(|r| r.dtlb_memmove.0), gm(|r| r.dtlb_swapva.0));
    t.row([
        "geomean".to_string(),
        format!("{gc_m:.2}"),
        format!("{gc_s:.2}"),
        format!("{gd_m:.2}"),
        format!("{gd_s:.2}"),
    ]);
    rep.derived("cache_geomean_memmove_1.2x", gc_m);
    rep.derived("cache_geomean_swapva_1.2x", gc_s);
    rep.derived("dtlb_geomean_memmove_1.2x", gd_m);
    rep.derived("dtlb_geomean_swapva_1.2x", gd_s);
    rep.table(&t);
    rep.say("(paper geomeans @1.2x: cache 69.32 -> 65.71, DTLB 1.28 -> 0.52)");
}

/// Ablation A: MoveObject threshold sweep (16-page objects).
pub fn ablation_threshold(rep: &mut Report) {
    let mut t = Table::new(["threshold (pages)", "GC pause (us)", "objects swapped"]);
    for r in ablations::threshold_ablation() {
        t.row([
            r.threshold_pages.to_string(),
            format!("{:.1}", r.pause_us),
            r.swapped.to_string(),
        ]);
        rep.row("ablation_threshold", &r);
        rep.counter("gc.pause_cycles", r.pause_cycles);
        rep.counter("swap.objects", r.swapped);
    }
    rep.table(&t);
}

/// Ablation B: aggregation batch size (10-page objects).
pub fn ablation_aggregation(rep: &mut Report) {
    let mut t = Table::new(["batch", "GC pause (us)", "syscalls"]);
    for r in ablations::aggregation_ablation() {
        t.row([
            if r.batch == 0 { "separated".to_string() } else { r.batch.to_string() },
            format!("{:.1}", r.pause_us),
            r.syscalls.to_string(),
        ]);
        rep.row("ablation_aggregation", &r);
        rep.counter("gc.pause_cycles", r.pause_cycles);
        rep.counter("kernel.syscalls", r.syscalls);
    }
    rep.table(&t);
}

/// Ablation C: mechanism toggles (64-page objects).
pub fn ablation_mechanism(rep: &mut Report) {
    let mut t = Table::new(["variant", "GC pause (us)", "IPIs"]);
    for r in ablations::mechanism_ablation() {
        t.row([r.variant.clone(), format!("{:.1}", r.pause_us), r.ipis.to_string()]);
        rep.row("ablation_mechanism", &r);
        rep.counter("gc.pause_cycles", r.pause_cycles);
        rep.counter("kernel.ipis", r.ipis);
    }
    rep.table(&t);
}

/// Ablation E: LOS design vs SVAGC (the intro's critique).
pub fn ablation_los(rep: &mut Report) {
    let mut t =
        Table::new(["design", "GCs", "LOS compactions", "total GC (us)", "max pause (us)", "frag"]);
    for r in ablations::los_comparison() {
        t.row([
            r.design.clone(),
            r.gcs.to_string(),
            r.los_compactions.to_string(),
            format!("{:.1}", r.total_gc_us),
            format!("{:.1}", r.max_pause_us),
            format!("{:.2}", r.fragmentation),
        ]);
        rep.row("ablation_los", &r);
        rep.counter("gc.total_cycles", r.total_gc_cycles);
        rep.counter("los.compactions", r.los_compactions);
    }
    rep.table(&t);
}

/// Ablation D: Minor-GC promotion mechanism (Table I row 2).
pub fn ablation_minor(rep: &mut Report) {
    let mut t = Table::new(["object pages", "memmove (us)", "SwapVA (us)"]);
    for r in ablations::minor_gc_ablation() {
        t.row([
            r.obj_pages.to_string(),
            format!("{:.1}", r.memmove_us),
            format!("{:.1}", r.swapva_us),
        ]);
        rep.row("ablation_minor", &r);
        rep.counter("minor.memmove_cycles", r.memmove_cycles);
        rep.counter("minor.swapva_cycles", r.swapva_cycles);
    }
    rep.table(&t);
}

/// Packet-scheduler scaling: full-GC makespan vs worker count, barrier
/// pipeline vs work-packet scheduler, on a skewed heap (swap-heavy bigs
/// low, ref-dense smalls high). Not a paper figure — it documents the
/// scheduler this reproduction adds on top of the paper's pipeline.
pub fn packet_scaling(rep: &mut Report) {
    let rows = suites::packet_scaling_rows(&[1, 2, 4, 8]);
    let mut t = Table::new(["GC threads", "barrier (kcycles)", "packets (kcycles)", "speedup", "packets run", "steals"]);
    for r in &rows {
        t.row([
            r.workers.to_string(),
            (r.barrier_cycles / 1000).to_string(),
            (r.packets_cycles / 1000).to_string(),
            x(r.barrier_cycles as f64 / r.packets_cycles as f64),
            r.packets.to_string(),
            r.steals.to_string(),
        ]);
        rep.row("packet_scaling", r);
        rep.counter("sched.barrier_cycles", r.barrier_cycles);
        rep.counter("sched.packets_cycles", r.packets_cycles);
    }
    rep.table(&t);
    for r in rows.iter().filter(|r| r.workers >= 4) {
        assert!(
            r.packets_cycles < r.barrier_cycles,
            "packet scheduler must strictly beat the barrier pipeline at \
             {} workers: packets {} >= barrier {}",
            r.workers,
            r.packets_cycles,
            r.barrier_cycles
        );
    }
    let last = rows.last().unwrap();
    rep.derived(
        "packets_speedup_at_8",
        last.barrier_cycles as f64 / last.packets_cycles as f64,
    );
    rep.say("packet overlap beats the four-barrier pipeline at every multi-worker point");
}

/// Noisy-neighbor blast radius: healthy-tenant throughput and survival as
/// the victim tenant's injected fault rate rises, under a shared frame
/// pool with the pressure ladder armed. Not a paper figure — it documents
/// the fleet-isolation layer this reproduction adds: every point runs the
/// faulty fleet *and* a fault-free twin, and both the isolation oracle
/// (healthy heaps bit-identical to the twin's) and the frame-leak oracle
/// (pool in-use == survivors' footprints, ownership audit clean) must
/// hold for the row to exist at all.
pub fn noisy_neighbor(rep: &mut Report) {
    let rows = suites::noisy_neighbor_rows(&[0, 1, 5, 10]);
    let mut t = Table::new([
        "victim fault rate",
        "survivors",
        "victim",
        "healthy steps/s",
        "healthy GC (ms)",
        "isolation compared",
        "frames audited",
    ]);
    for r in &rows {
        t.row([
            pct(r.fault_rate_pct),
            format!("{}/{}", r.survivors, r.survivors + r.quarantined),
            r.victim.clone(),
            format!("{:.1}", r.healthy_throughput),
            ms(r.healthy_gc_total_ms),
            r.isolation_compared.to_string(),
            r.frames_audited.to_string(),
        ]);
        rep.row("noisy_neighbor", r);
        rep.counter(
            &format!("fleet.survivors.{}pct", r.fault_rate_pct as u32),
            r.survivors,
        );
        rep.counter(
            &format!("fleet.healthy_total_cycles.{}pct", r.fault_rate_pct as u32),
            r.healthy_total_cycles,
        );
    }
    rep.table(&t);
    let base = &rows[0];
    let worst = rows.last().unwrap();
    assert_eq!(
        base.quarantined, 0,
        "fault-free fleet must survive whole under the quota squeeze"
    );
    assert_eq!(
        worst.victim, "fault-abort",
        "a 10% permanent fault rate must quarantine the victim"
    );
    assert_eq!(
        worst.survivors + 1,
        base.survivors,
        "only the victim may fall at the top rate"
    );
    let retained = worst.healthy_throughput / base.healthy_throughput;
    rep.derived("healthy_throughput_retained_at_10pct", retained);
    rep.say(format!(
        "healthy tenants retain {:.1}% of fault-free throughput with the victim quarantined at 10% faults",
        100.0 * retained
    ));
}

/// Pause CDF: SVAGC stop-the-world vs SVAGC `--concurrent` vs Shenandoah
/// with its SATB barrier armed, on Bisort. Not a paper figure — it
/// documents the concurrent-marking mode this reproduction adds. Two
/// invariants are load-bearing and asserted here: the concurrent run's
/// final heap is bit-identical to the STW run's (SATB floats garbage but
/// never changes survivors), and the concurrent max pause beats
/// Shenandoah's (whose degenerated evacuation is a serial memmove).
pub fn pause_cdf(rep: &mut Report) {
    let rows = suites::pause_cdf_rows();
    let mut t = Table::new([
        "collector",
        "GCs",
        "p50 (kcycles)",
        "p90 (kcycles)",
        "p99 (kcycles)",
        "max (kcycles)",
        "concurrent mark (kcycles)",
        "SATB logged",
    ]);
    for r in &rows {
        t.row([
            r.collector.clone(),
            r.gcs.to_string(),
            (r.p50_cycles / 1000).to_string(),
            (r.p90_cycles / 1000).to_string(),
            (r.p99_cycles / 1000).to_string(),
            (r.max_cycles / 1000).to_string(),
            (r.concurrent_mark_cycles / 1000).to_string(),
            r.satb_logged.to_string(),
        ]);
        rep.row("pause_cdf", r);
        let key = |s: &str| {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect::<String>()
        };
        rep.counter(&format!("pause.max_cycles.{}", key(&r.collector)), r.max_cycles);
        rep.counter(&format!("pause.p50_cycles.{}", key(&r.collector)), r.p50_cycles);
        assert!(r.verify_ok, "{}: end-of-run verification failed", r.collector);
    }
    rep.table(&t);
    let (stw, conc, shen) = (&rows[0], &rows[1], &rows[2]);
    assert_eq!(
        conc.heap_hash, stw.heap_hash,
        "concurrent heap must be bit-identical to STW"
    );
    assert!(
        conc.satb_logged > 0,
        "Bisort's parent-link overwrites must exercise the deletion barrier"
    );
    assert!(conc.concurrent_mark_cycles > 0, "marking must run off-pause");
    assert!(
        conc.max_cycles < shen.max_cycles,
        "concurrent max pause {} must beat Shenandoah {}",
        conc.max_cycles,
        shen.max_cycles
    );
    assert!(
        conc.max_cycles < stw.max_cycles,
        "moving the mark off-pause must shrink the max pause: {} !< {}",
        conc.max_cycles,
        stw.max_cycles
    );
    rep.derived(
        "max_pause_vs_shenandoah",
        shen.max_cycles as f64 / conc.max_cycles as f64,
    );
    rep.derived(
        "max_pause_vs_stw",
        stw.max_cycles as f64 / conc.max_cycles as f64,
    );
    rep.say(format!(
        "max pause: concurrent {:.2}x below STW, {:.2}x below Shenandoah; heaps bit-identical",
        stw.max_cycles as f64 / conc.max_cycles as f64,
        shen.max_cycles as f64 / conc.max_cycles as f64
    ));
}

/// Tiering resilience: SVAGC vs its memmove ablation on LRUCache with a
/// fallible far-memory tier underneath, swept over DRAM fraction ×
/// device fault rate. Not a paper figure — it documents the
/// fault-tolerant cold-object tiering this reproduction adds. Two
/// invariants are load-bearing and asserted here: every run's final heap
/// is bit-identical to its collector's DRAM-only run (the tier and its
/// retry ladder are invisible to the mutator at every point of the
/// matrix), and tiering costs memmove far more than it costs SVAGC —
/// memmove compaction drags cold pages back through the fallible device
/// to copy every live word (more on-access fetches, more re-demotions)
/// and journals full pre-images of every copy into the WAL that
/// crash-consistent tiering requires, while PTE swaps move far pages
/// with O(1) intents and no device traffic. The contrast is pinned on
/// GC-overhead inflation (tiered GC cycles over the collector's own
/// DRAM-only GC cycles) and on the fetch-on-access thrash count.
pub fn tiering_resilience(rep: &mut Report) {
    let rows = suites::tiering_resilience_rows();
    let mut t = Table::new([
        "collector",
        "DRAM",
        "dev faults",
        "steps/s",
        "tier (kcycles)",
        "demotions",
        "on-access fetches",
        "retries",
        "torn caught",
        "mode",
    ]);
    for r in &rows {
        t.row([
            r.collector.clone(),
            pct(100.0 * r.dram_fraction),
            pct(100.0 * r.fault_rate),
            format!("{:.1}", r.throughput),
            (r.tier_cycles / 1000).to_string(),
            r.demotions.to_string(),
            r.fetch_on_access.to_string(),
            r.retries.to_string(),
            r.torn_caught.to_string(),
            r.tier_mode.clone(),
        ]);
        rep.row("tiering_resilience", r);
        assert!(
            r.verify_ok,
            "{} f={} p={}: end-of-run verification failed",
            r.collector, r.dram_fraction, r.fault_rate
        );
        let key = |s: &str| {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect::<String>()
        };
        rep.counter(
            &format!(
                "tier.cycles.{}.f{}.p{}",
                key(&r.collector),
                (100.0 * r.dram_fraction) as u32,
                (100.0 * r.fault_rate) as u32
            ),
            r.tier_cycles,
        );
    }
    rep.table(&t);
    // Invisibility across the whole matrix: every tiered run's heap is
    // bit-identical to its collector's DRAM-only reference, whatever the
    // device fault rate.
    for reference in rows.iter().filter(|r| r.dram_fraction == 1.0) {
        assert_eq!(reference.tier_mode, "off");
        for r in rows.iter().filter(|r| r.collector == reference.collector) {
            assert_eq!(
                r.heap_hash, reference.heap_hash,
                "{} f={} p={}: tiering must be invisible to the mutator",
                r.collector, r.dram_fraction, r.fault_rate
            );
        }
    }
    let find = |c: &str, f: f64, p: f64| {
        rows.iter()
            .find(|r| r.collector == c && r.dram_fraction == f && r.fault_rate == p)
            .unwrap_or_else(|| panic!("missing row {c} f={f} p={p}"))
    };
    let worst = find("SVAGC", 0.3, 0.10);
    assert!(worst.retries > 0, "10% device faults must surface as retries");
    assert!(
        worst.torn_caught > 0,
        "the uniform fault mix at 10% must tear at least one writeback"
    );
    assert!(worst.demotions > 0 && worst.tier_mode == "tiered");
    // The GC-cost contract: tiering inflates memmove's GC time far more
    // than SVAGC's. Memmove's compaction copies pull far pages through
    // the device and its pre-image journaling is per byte copied; SVAGC
    // swaps PTEs, so a far page moves with one logged intent and zero
    // device requests.
    let mm_worst = find("SVAGC(-SwapVA)", 0.3, 0.10);
    let sv_inflation =
        worst.gc_total_cycles as f64 / find("SVAGC", 1.0, 0.0).gc_total_cycles as f64;
    let mm_inflation = mm_worst.gc_total_cycles as f64
        / find("SVAGC(-SwapVA)", 1.0, 0.0).gc_total_cycles as f64;
    assert!(
        sv_inflation < mm_inflation,
        "tiering must cost memmove GC more than SVAGC GC: \
         {sv_inflation:.1}x !< {mm_inflation:.1}x"
    );
    // The thrash contract: copying compaction re-fetches cold pages the
    // swap-based compactor never touches.
    assert!(
        worst.fetch_on_access < mm_worst.fetch_on_access,
        "PTE-swap compaction must thrash less than memmove: {} !< {}",
        worst.fetch_on_access,
        mm_worst.fetch_on_access
    );
    assert!(
        worst.demotions < mm_worst.demotions,
        "memmove's re-promoted pages must cost extra re-demotions: {} !< {}",
        worst.demotions,
        mm_worst.demotions
    );
    rep.derived("svagc_gc_inflation_worst", sv_inflation);
    rep.derived("memmove_gc_inflation_worst", mm_inflation);
    rep.derived(
        "thrash_ratio_memmove_over_svagc",
        mm_worst.fetch_on_access as f64 / worst.fetch_on_access.max(1) as f64,
    );
    rep.say(format!(
        "at 30% DRAM + 10% device faults: tiering inflates GC time {sv_inflation:.1}x for SVAGC vs {mm_inflation:.1}x for memmove ({} vs {} on-access fetches); all 14 heaps bit-identical",
        worst.fetch_on_access, mm_worst.fetch_on_access
    ));
}
