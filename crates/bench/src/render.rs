//! Rendering of every figure/table: each `figNN()` runs its experiment and
//! prints the paper-matching rows (aligned table + `@json` lines). The
//! `bin/figNN_*` binaries and `bin/all` are thin wrappers.

use crate::micro;
use crate::report::{banner, json_line, ms, pct, x, Table};
use crate::suites::{self, GcTimeRow};
use svagc_metrics::MachineConfig;
use svagc_workloads::driver::CollectorKind;

/// Fig. 1: execution time split of the full-GC phases (memmove prototype).
pub fn fig01() {
    banner("Fig. 1", "Execution time of the full GC phases (i5-7600)");
    let rows = suites::fig01_rows();
    let mut t = Table::new(["benchmark", "mark", "forward", "adjust", "compact", "compact %"]);
    for r in &rows {
        let total = r.mark_ms + r.forward_ms + r.adjust_ms + r.compact_ms;
        t.row([
            r.name.clone(),
            ms(r.mark_ms),
            ms(r.forward_ms),
            ms(r.adjust_ms),
            ms(r.compact_ms),
            pct(100.0 * r.compact_ms / total),
        ]);
        json_line("fig01", r);
    }
    println!("{}", t.render());
    println!("(paper: compaction = 79.33% Sparse.large, 84.76% FFT.large)");
}

/// Fig. 2: multi-JVM scalability collapse under ParallelGC.
pub fn fig02() {
    banner("Fig. 2", "Scalability issue in LRU Cache under ParallelGC (32-core Xeon)");
    let rows = suites::multijvm_rows(CollectorKind::ParallelGc, &[1, 2, 4, 8, 16, 32]);
    let mut t = Table::new(["JVMs", "GC total (ms)", "GC max (ms)", "app (ms)", "total (ms)"]);
    for r in &rows {
        t.row([
            r.jvms.to_string(),
            ms(r.gc_total_ms),
            ms(r.gc_max_ms),
            ms(r.app_ms),
            ms(r.total_ms),
        ]);
        json_line("fig02", r);
    }
    println!("{}", t.render());
    let g = rows.last().unwrap().gc_total_ms / rows[0].gc_total_ms;
    let a = rows.last().unwrap().app_ms / rows[0].app_ms;
    println!("1->32 JVMs: GC time x{g:.2}, app time x{a:.2} (paper: both rise significantly)");
}

/// Fig. 6: aggregated vs separated SwapVA calls.
pub fn fig06() {
    banner("Fig. 6", "Aggregated vs separated SwapVA calls (i5-7600)");
    let rows = micro::fig06_aggregation(1024);
    let mut t = Table::new(["pages/req", "requests", "separated (us)", "aggregated (us)", "speedup"]);
    for r in &rows {
        t.row([
            r.pages_per_request.to_string(),
            r.requests.to_string(),
            format!("{:.1}", r.separated_us),
            format!("{:.1}", r.aggregated_us),
            x(r.speedup),
        ]);
        json_line("fig06", r);
    }
    println!("{}", t.render());
    println!("(paper: aggregation wins most for small requests; gap closes as input size grows)");
}

/// Fig. 8: PMD-caching benefit.
pub fn fig08() {
    banner("Fig. 8", "Benefits of PMD caching (i5-7600)");
    let rows = micro::fig08_pmd_cache();
    let mut t = Table::new(["pages", "no cache (us)", "cached (us)", "improvement"]);
    for r in &rows {
        t.row([
            r.pages.to_string(),
            format!("{:.2}", r.uncached_us),
            format!("{:.2}", r.cached_us),
            pct(r.improvement_pct),
        ]);
        json_line("fig08", r);
    }
    println!("{}", t.render());
    let multi: Vec<_> = rows.iter().filter(|r| r.pages >= 8).collect();
    let max = multi.iter().map(|r| r.improvement_pct).fold(0.0, f64::max);
    let avg = multi.iter().map(|r| r.improvement_pct).sum::<f64>() / multi.len() as f64;
    println!("multi-page: max {max:.1}%, avg {avg:.1}% (paper: up to 52.5%, avg 36.7%)");
}

/// Fig. 9: multi-core shootdown optimizations.
pub fn fig09() {
    banner("Fig. 9", "Multi-core optimizations to SwapVA (Xeon 6130, 100 objects)");
    let rows = micro::fig09_multicore(16);
    let mut t = Table::new([
        "cores",
        "memmove (us)",
        "naive (us)",
        "pinned (us)",
        "tracked (us)",
        "naive IPIs",
        "pinned IPIs",
        "tracked IPIs",
    ]);
    for r in &rows {
        t.row([
            r.cores.to_string(),
            format!("{:.1}", r.memmove_us),
            format!("{:.1}", r.naive_us),
            format!("{:.1}", r.pinned_us),
            format!("{:.1}", r.tracked_us),
            r.naive_ipis.to_string(),
            r.pinned_ipis.to_string(),
            r.tracked_ipis.to_string(),
        ]);
        json_line("fig09", r);
    }
    println!("{}", t.render());
    let last = rows.last().unwrap();
    println!(
        "IPI reduction at 32 cores: {:.0}x (Eq. 2 predicts l-bar = 100)",
        last.naive_ipis as f64 / last.pinned_ipis.max(1) as f64
    );
}

/// Fig. 10: memmove/SwapVA break-even threshold on two machines.
pub fn fig10() {
    banner("Fig. 10", "Threshold value for SwapVA in different CPU/memory configs");
    for machine in [MachineConfig::xeon_gold_6130(), MachineConfig::xeon_gold_6240()] {
        println!("\n-- {} --", machine.name);
        let rows = micro::fig10_threshold(&machine, 24);
        let mut t = Table::new(["pages", "memmove (us)", "SwapVA (us)"]);
        for r in &rows {
            t.row([
                r.pages.to_string(),
                format!("{:.2}", r.memmove_us),
                format!("{:.2}", r.swapva_us),
            ]);
            json_line("fig10", r);
        }
        println!("{}", t.render());
        match micro::break_even(&rows) {
            Some(p) => println!(
                "break-even: {p} pages (paper: ~10; cost-model formula derives {})",
                machine.derived_threshold_pages()
            ),
            None => println!("no crossover in range"),
        }
    }
}

fn suite_pair(factor: f64) -> (Vec<GcTimeRow>, Vec<GcTimeRow>) {
    (
        suites::suite_rows(CollectorKind::SvagcMemmove, factor, None),
        suites::suite_rows(CollectorKind::Svagc, factor, None),
    )
}

/// Fig. 11: GC time −/+ SwapVA per benchmark, compaction vs other phases.
pub fn fig11() {
    banner("Fig. 11", "GC time -/+ SwapVA on SVAGC at 1.2x min heap");
    let (memmove, swap) = suite_pair(1.2);
    let mut t = Table::new([
        "benchmark",
        "-SwapVA compact",
        "-SwapVA other",
        "+SwapVA compact",
        "+SwapVA other",
        "GC reduction",
    ]);
    for (m, s) in memmove.iter().zip(&swap) {
        assert_eq!(m.name, s.name);
        let red = 100.0 * (1.0 - s.gc_total_ms / m.gc_total_ms.max(1e-12));
        t.row([
            m.name.clone(),
            ms(m.compact_ms),
            ms(m.other_ms),
            ms(s.compact_ms),
            ms(s.other_ms),
            pct(red),
        ]);
        json_line("fig11_memmove", m);
        json_line("fig11_swapva", s);
    }
    println!("{}", t.render());
    println!("(paper: pause reduced up to 70.9% Sparse.large/4, 97% Sigverify)");
}

fn three_way(factor: f64) -> [Vec<GcTimeRow>; 3] {
    [
        suites::suite_rows(CollectorKind::Shenandoah, factor, None),
        suites::suite_rows(CollectorKind::ParallelGc, factor, None),
        suites::suite_rows(CollectorKind::Svagc, factor, None),
    ]
}

fn render_latency(fig: &str, caption: &str, metric: fn(&GcTimeRow) -> f64, paper_note: &str) {
    banner(fig, caption);
    for factor in [1.2, 2.0] {
        println!("\n-- heap = {factor}x minimum --");
        let [shen, pgc, svagc] = three_way(factor);
        let mut t = Table::new(["benchmark", "Shenandoah", "ParallelGC", "SVAGC", "PGC/SVAGC", "Shen/SVAGC"]);
        let (mut rp, mut rs, mut n) = (0.0, 0.0, 0);
        for ((sh, pg), sv) in shen.iter().zip(&pgc).zip(&svagc) {
            let (a, b, c) = (metric(sh), metric(pg), metric(sv));
            t.row([
                sv.name.clone(),
                ms(a),
                ms(b),
                ms(c),
                x(b / c.max(1e-12)),
                x(a / c.max(1e-12)),
            ]);
            rp += b / c.max(1e-12);
            rs += a / c.max(1e-12);
            n += 1;
            json_line(&format!("{}_{}", fig.to_lowercase().replace(". ", ""), factor), sv);
        }
        println!("{}", t.render());
        println!(
            "mean ratio vs SVAGC: ParallelGC {:.2}x, Shenandoah {:.2}x  {paper_note}",
            rp / n as f64,
            rs / n as f64
        );
    }
}

/// Fig. 12: average Full-GC latency, SVAGC vs baselines.
pub fn fig12() {
    render_latency(
        "Fig. 12",
        "Average Full-GC latency vs Shenandoah/ParallelGC",
        |r| r.gc_avg_ms,
        "(paper @1.2x: 3.82x / 16.05x; @2x: 2.74x / 13.62x)",
    );
}

/// Fig. 13: maximum pause, SVAGC vs baselines.
pub fn fig13() {
    render_latency(
        "Fig. 13",
        "Maximum GC pause vs Shenandoah/ParallelGC",
        |r| r.gc_max_ms,
        "(paper @1.2x: 4.49x / 18.25x; @2x: 3.60x / 12.24x)",
    );
}

/// Fig. 14: SVAGC multi-JVM scaling.
pub fn fig14() {
    banner("Fig. 14", "Scalability of SVAGC in single/multi-JVM setting (32 cores)");
    let rows = suites::multijvm_rows(CollectorKind::Svagc, &[1, 2, 4, 8, 16, 32]);
    let mut t = Table::new(["JVMs", "GC total (ms)", "GC max (ms)", "app (ms)", "total (ms)"]);
    for r in &rows {
        t.row([
            r.jvms.to_string(),
            ms(r.gc_total_ms),
            ms(r.gc_max_ms),
            ms(r.app_ms),
            ms(r.total_ms),
        ]);
        json_line("fig14", r);
    }
    println!("{}", t.render());
    let g = 100.0 * (rows.last().unwrap().gc_total_ms / rows[0].gc_total_ms - 1.0);
    let a = 100.0 * (rows.last().unwrap().app_ms / rows[0].app_ms - 1.0);
    println!("1->32 JVMs: GC time +{g:.0}%, app time +{a:.0}% (paper: +52% GC vs +327.5% app)");
}

/// Fig. 15: application throughput gain from SwapVA at 1.2× heap.
pub fn fig15() {
    banner("Fig. 15", "Application throughput of SVAGC at 1.2x min heap (+/- SwapVA)");
    let (memmove, swap) = suite_pair(1.2);
    let mut t = Table::new(["benchmark", "-SwapVA (steps/s)", "+SwapVA (steps/s)", "improvement"]);
    for (m, s) in memmove.iter().zip(&swap) {
        let imp = 100.0 * (s.throughput / m.throughput - 1.0);
        t.row([
            m.name.clone(),
            format!("{:.1}", m.throughput),
            format!("{:.1}", s.throughput),
            pct(imp),
        ]);
        json_line("fig15", s);
    }
    println!("{}", t.render());
    println!("(paper: +15.2% CryptoAES ... +86.9% Sparse.large)");
}

/// Fig. 16: application throughput, SVAGC vs baselines at both factors.
pub fn fig16() {
    banner("Fig. 16", "Throughput of SVAGC vs Shenandoah/ParallelGC");
    for factor in [1.2, 2.0] {
        println!("\n-- heap = {factor}x minimum --");
        let [shen, pgc, svagc] = three_way(factor);
        let mut t = Table::new(["benchmark", "Shenandoah", "ParallelGC", "SVAGC", "vs PGC", "vs Shen"]);
        let (mut ip, mut is_, mut n) = (0.0, 0.0, 0);
        for ((sh, pg), sv) in shen.iter().zip(&pgc).zip(&svagc) {
            let vp = 100.0 * (sv.throughput / pg.throughput - 1.0);
            let vs = 100.0 * (sv.throughput / sh.throughput - 1.0);
            t.row([
                sv.name.clone(),
                format!("{:.1}", sh.throughput),
                format!("{:.1}", pg.throughput),
                format!("{:.1}", sv.throughput),
                pct(vp),
                pct(vs),
            ]);
            ip += vp;
            is_ += vs;
            n += 1;
            json_line(&format!("fig16_{factor}"), sv);
        }
        println!("{}", t.render());
        println!(
            "mean improvement: vs ParallelGC {:.1}%, vs Shenandoah {:.1}% (paper @1.2x: 30.95%/37.27%; @2x: 15.26%/16.79%)",
            ip / n as f64,
            is_ / n as f64
        );
    }
}

/// Table I: applicability matrix.
pub fn table1() {
    banner("Table I", "Applicability of SwapVA and optimizations");
    print!("{}", svagc_core::applicability::render_table());
}

/// Table II: benchmark configuration.
pub fn table2() {
    banner("Table II", "Benchmarks configuration (paper values; see EXPERIMENTS.md for scaling)");
    print!("{}", svagc_workloads::render_table_ii());
}

/// Table III: cache & DTLB miss rates.
pub fn table3() {
    banner("Table III", "Cache & DTLB misses at 1.2x (2x) minimum heap");
    let rows = suites::table3_rows(Some(25));
    let mut t = Table::new([
        "benchmark",
        "cache% memmove",
        "cache% SwapVA",
        "dtlb% memmove",
        "dtlb% SwapVA",
    ]);
    let pair = |p: (f64, f64)| format!("{:.2}({:.2})", p.0, p.1);
    for r in &rows {
        t.row([
            r.name.clone(),
            pair(r.cache_memmove),
            pair(r.cache_swapva),
            pair(r.dtlb_memmove),
            pair(r.dtlb_swapva),
        ]);
        json_line("table3", r);
    }
    // Summary rows (min/max/geomean, as in the paper).
    let gm = |f: fn(&suites::CacheDtlbRow) -> f64| suites::geomean(rows.iter().map(f));
    t.row([
        "geomean".to_string(),
        format!("{:.2}", gm(|r| r.cache_memmove.0)),
        format!("{:.2}", gm(|r| r.cache_swapva.0)),
        format!("{:.2}", gm(|r| r.dtlb_memmove.0)),
        format!("{:.2}", gm(|r| r.dtlb_swapva.0)),
    ]);
    println!("{}", t.render());
    println!("(paper geomeans @1.2x: cache 69.32 -> 65.71, DTLB 1.28 -> 0.52)");
}
