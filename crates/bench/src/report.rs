//! Report formatting shared by the figure harnesses: aligned text tables
//! on stdout plus machine-readable JSON lines.

use std::fmt::Write as _;
use svagc_metrics::ToJson;

/// A simple aligned-column table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells stringified by the caller).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Print a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("\n=== {id}: {caption} ===");
}

/// Emit one JSON record (prefixed so it greps cleanly out of mixed logs).
pub fn json_line<T: ToJson + ?Sized>(tag: &str, value: &T) {
    println!("@json {tag} {}", value.to_json());
}

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Format a speedup factor.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with("longer-name"));
        assert!(lines[0].contains("value"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(123.4), "123");
        assert_eq!(ms(12.34), "12.34");
        assert_eq!(ms(0.1234), "0.1234");
        assert_eq!(pct(12.34), "12.3%");
        assert_eq!(x(3.821), "3.82x");
    }
}
