//! Report formatting shared by the figure harnesses: aligned text tables
//! on stdout plus machine-readable JSON lines, and the [`Report`] sink
//! that turns one experiment run into a `BENCH_<experiment>.json` record.

use std::fmt::Write as _;
use svagc_metrics::json::write_json_str;
use svagc_metrics::{Registry, ToJson};

/// A simple aligned-column table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells stringified by the caller).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Print a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("\n=== {id}: {caption} ===");
}

/// Emit one JSON record (prefixed so it greps cleanly out of mixed logs).
pub fn json_line<T: ToJson + ?Sized>(tag: &str, value: &T) {
    println!("@json {tag} {}", value.to_json());
}

/// Version tag of the per-experiment BENCH JSON layout.
pub const BENCH_REPORT_SCHEMA: &str = "svagc-bench-report-v1";

/// 64-bit FNV-1a over `bytes` — the digest that pins an experiment's
/// simulated output for the perf gate.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The sink one experiment writes into instead of stdout.
///
/// Everything an experiment produces splits into two planes:
///
/// * **Simulated** — rows (the `@json` records), headline counters, and
///   derived scalars. All of it is a pure function of the simulation, so
///   it must be byte-identical between serial and host-parallel runs;
///   [`Report::sim_digest`] hashes the canonical JSON of this plane and is
///   the exact-match key the CI perf gate compares.
/// * **Host** — the rendered text (human tables, paper notes) and wall
///   time, which the runner measures. Excluded from the digest.
pub struct Report {
    id: String,
    caption: String,
    text: String,
    rows: Vec<(String, String)>,
    counters: Registry,
    derived: Vec<(String, f64)>,
}

impl Report {
    /// Empty report for experiment `id`.
    pub fn new(id: &str, caption: &str) -> Report {
        Report {
            id: id.to_string(),
            caption: caption.to_string(),
            text: String::new(),
            rows: Vec::new(),
            counters: Registry::new(),
            derived: Vec::new(),
        }
    }

    /// Experiment identifier (`fig06`, `table3`, `ablation_threshold`...).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Human caption.
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// Append one text line (the `println!` replacement).
    pub fn say(&mut self, line: impl AsRef<str>) {
        self.text.push_str(line.as_ref());
        self.text.push('\n');
    }

    /// Append a rendered table.
    pub fn table(&mut self, t: &Table) {
        self.text.push_str(&t.render());
    }

    /// Record one simulated row: stored for the BENCH JSON and echoed as
    /// an `@json tag {...}` text line, keeping stdout greppable as before.
    pub fn row<T: ToJson + ?Sized>(&mut self, tag: &str, value: &T) {
        let json = value.to_json();
        let _ = writeln!(self.text, "@json {tag} {json}");
        self.rows.push((tag.to_string(), json));
    }

    /// Record (accumulate) a headline simulated counter.
    pub fn counter(&mut self, name: &str, v: u64) {
        self.counters.add(name, v);
    }

    /// Fold a whole registry into the headline counters.
    pub fn counters_from(&mut self, reg: &Registry) {
        for (k, v) in reg.iter() {
            self.counters.add(k, v);
        }
    }

    /// Record a derived simulated scalar (speedups, geomeans, ...).
    pub fn derived(&mut self, name: &str, v: f64) {
        self.derived.push((name.to_string(), v));
    }

    /// The rendered human text (tables + notes + `@json` echo lines).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Canonical JSON of the simulated plane. Deterministic: rows in
    /// emission order, counters key-sorted, derived in emission order,
    /// floats via Rust's shortest-round-trip `Display`.
    pub fn sim_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.rows.len() * 128);
        out.push_str("{\"rows\":[");
        for (i, (tag, json)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tag\":");
            write_json_str(&mut out, tag);
            out.push_str(",\"data\":");
            out.push_str(json);
            out.push('}');
        }
        out.push_str("],\"counters\":");
        out.push_str(&self.counters.to_json());
        out.push_str(",\"derived\":{");
        for (i, (name, v)) in self.derived.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, name);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Exact-match key over [`Report::sim_json`], e.g. `fnv1a:9f86d081884c7d65`.
    pub fn sim_digest(&self) -> String {
        format!("fnv1a:{:016x}", fnv1a(self.sim_json().as_bytes()))
    }

    /// Headline counters (for the summary roll-up).
    pub fn counters(&self) -> &Registry {
        &self.counters
    }

    /// The full `BENCH_<experiment>.json` document.
    pub fn bench_json(&self, host: &HostInfo) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\":\"");
        out.push_str(BENCH_REPORT_SCHEMA);
        out.push_str("\",\"experiment\":");
        write_json_str(&mut out, &self.id);
        out.push_str(",\"caption\":");
        write_json_str(&mut out, &self.caption);
        out.push_str(",\"sim\":");
        out.push_str(&self.sim_json());
        out.push_str(",\"sim_digest\":\"");
        out.push_str(&self.sim_digest());
        out.push_str("\",\"host\":");
        host.write_json(&mut out);
        out.push('}');
        out
    }
}

/// The host-measurement section of a BENCH record: everything here is
/// machine-dependent and therefore outside the simulated digest.
#[derive(Debug, Clone, Copy)]
pub struct HostInfo {
    /// Host wall-clock time of the experiment, milliseconds.
    pub wall_ms: f64,
    /// Host worker threads the runner used.
    pub threads: usize,
    /// Was the experiment part of a host-parallel fan-out?
    pub parallel: bool,
}

svagc_metrics::impl_to_json!(HostInfo { wall_ms, threads, parallel });

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Format a speedup factor.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with("longer-name"));
        assert!(lines[0].contains("value"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(123.4), "123");
        assert_eq!(ms(12.34), "12.34");
        assert_eq!(ms(0.1234), "0.1234");
        assert_eq!(pct(12.34), "12.3%");
        assert_eq!(x(3.821), "3.82x");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    fn sample_report() -> Report {
        struct Row {
            pages: u64,
            us: f64,
        }
        svagc_metrics::impl_to_json!(Row { pages, us });
        let mut rep = Report::new("fig99", "a synthetic experiment");
        rep.say("hello");
        rep.row("fig99", &Row { pages: 8, us: 1.25 });
        rep.counter("gc.pause_cycles", 1 << 40);
        rep.derived("speedup", 2.5);
        rep
    }

    #[test]
    fn sim_json_is_stable_and_digested() {
        let rep = sample_report();
        assert_eq!(
            rep.sim_json(),
            r#"{"rows":[{"tag":"fig99","data":{"pages":8,"us":1.25}}],"counters":{"gc.pause_cycles":1099511627776},"derived":{"speedup":2.5}}"#
        );
        assert_eq!(rep.sim_digest(), rep.sim_digest());
        assert!(rep.sim_digest().starts_with("fnv1a:"));
        assert_eq!(rep.sim_digest().len(), "fnv1a:".len() + 16);
        // Text lines (host plane) must not move the digest.
        let mut other = sample_report();
        other.say("extra narration");
        assert_eq!(other.sim_digest(), rep.sim_digest());
        // Simulated rows must.
        let mut changed = sample_report();
        changed.counter("gc.pause_cycles", 1);
        assert_ne!(changed.sim_digest(), rep.sim_digest());
    }

    #[test]
    fn bench_json_parses_and_carries_both_planes() {
        use svagc_metrics::{parse_json, JsonValue};
        let rep = sample_report();
        let host = HostInfo { wall_ms: 12.5, threads: 4, parallel: true };
        let doc = parse_json(&rep.bench_json(&host)).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(BENCH_REPORT_SCHEMA)
        );
        assert_eq!(doc.get("experiment").and_then(JsonValue::as_str), Some("fig99"));
        assert_eq!(
            doc.get("sim_digest").and_then(JsonValue::as_str),
            Some(rep.sim_digest().as_str())
        );
        let sim = doc.get("sim").unwrap();
        assert_eq!(
            sim.get("counters").unwrap().get("gc.pause_cycles").and_then(JsonValue::as_u64),
            Some(1 << 40)
        );
        let host_v = doc.get("host").unwrap();
        assert_eq!(host_v.get("wall_ms").and_then(JsonValue::as_f64), Some(12.5));
        assert_eq!(host_v.get("parallel"), Some(&JsonValue::Bool(true)));
        // The text echo of rows stays greppable.
        assert!(rep.text().contains("@json fig99 {\"pages\":8"));
    }
}
