//! The experiment registry and the serial / host-parallel runner behind
//! `bin/all`, `bin/ablations`, and the thin `bin/figNN_*` wrappers.
//!
//! Every entry in [`EXPERIMENTS`] is an independent simulation — it builds
//! its own `Kernel`, `AddressSpace`, and counters — so fanning experiments
//! across host threads cannot change any simulated number, only the host
//! wall time. The runner leans on that: [`run_ids`] maps the requested
//! experiments through `par_map` (order-preserving) or a plain serial
//! loop, and parallel `bin/all` runs re-verify a probe subset serially,
//! byte-comparing the canonical sim JSON.

use crate::render;
use crate::report::{HostInfo, Report};
use std::path::{Path, PathBuf};
use std::time::Instant;
use svagc_metrics::json::write_json_str;
use svagc_metrics::{host_threads, par_map};

/// One registered experiment.
pub struct Experiment {
    /// Stable identifier: names the `BENCH_<id>.json` file.
    pub id: &'static str,
    /// Paper-facing label ("Fig. 6", "Ablation A", ...).
    pub title: &'static str,
    /// Human caption for the banner and the BENCH record.
    pub caption: &'static str,
    /// The experiment body.
    pub run: fn(&mut Report),
}

/// Every figure, table, and ablation, in `bin/all` output order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "fig01",
        title: "Fig. 1",
        caption: "Execution time of the full GC phases (i5-7600)",
        run: render::fig01,
    },
    Experiment {
        id: "fig02",
        title: "Fig. 2",
        caption: "Scalability issue in LRU Cache under ParallelGC (32-core Xeon)",
        run: render::fig02,
    },
    Experiment {
        id: "table1",
        title: "Table I",
        caption: "Applicability of SwapVA and optimizations",
        run: render::table1,
    },
    Experiment {
        id: "table2",
        title: "Table II",
        caption: "Benchmarks configuration (paper values; see EXPERIMENTS.md for scaling)",
        run: render::table2,
    },
    Experiment {
        id: "fig06",
        title: "Fig. 6",
        caption: "Aggregated vs separated SwapVA calls (i5-7600)",
        run: render::fig06,
    },
    Experiment {
        id: "fig08",
        title: "Fig. 8",
        caption: "Benefits of PMD caching (i5-7600)",
        run: render::fig08,
    },
    Experiment {
        id: "fig09",
        title: "Fig. 9",
        caption: "Multi-core optimizations to SwapVA (Xeon 6130, 100 objects)",
        run: render::fig09,
    },
    Experiment {
        id: "fig10",
        title: "Fig. 10",
        caption: "Threshold value for SwapVA in different CPU/memory configs",
        run: render::fig10,
    },
    Experiment {
        id: "fig11",
        title: "Fig. 11",
        caption: "GC time -/+ SwapVA on SVAGC at 1.2x min heap",
        run: render::fig11,
    },
    Experiment {
        id: "fig12",
        title: "Fig. 12",
        caption: "Average Full-GC latency vs Shenandoah/ParallelGC",
        run: render::fig12,
    },
    Experiment {
        id: "fig13",
        title: "Fig. 13",
        caption: "Maximum GC pause vs Shenandoah/ParallelGC",
        run: render::fig13,
    },
    Experiment {
        id: "fig14",
        title: "Fig. 14",
        caption: "Scalability of SVAGC in single/multi-JVM setting (32 cores)",
        run: render::fig14,
    },
    Experiment {
        id: "fig15",
        title: "Fig. 15",
        caption: "Application throughput of SVAGC at 1.2x min heap (+/- SwapVA)",
        run: render::fig15,
    },
    Experiment {
        id: "fig16",
        title: "Fig. 16",
        caption: "Throughput of SVAGC vs Shenandoah/ParallelGC",
        run: render::fig16,
    },
    Experiment {
        id: "table3",
        title: "Table III",
        caption: "Cache & DTLB misses at 1.2x (2x) minimum heap",
        run: render::table3,
    },
    Experiment {
        id: "ablation_threshold",
        title: "Ablation A",
        caption: "MoveObject threshold sweep (16-page objects)",
        run: render::ablation_threshold,
    },
    Experiment {
        id: "ablation_aggregation",
        title: "Ablation B",
        caption: "Aggregation batch size (10-page objects)",
        run: render::ablation_aggregation,
    },
    Experiment {
        id: "ablation_mechanism",
        title: "Ablation C",
        caption: "Mechanism toggles (64-page objects)",
        run: render::ablation_mechanism,
    },
    Experiment {
        id: "ablation_los",
        title: "Ablation E",
        caption: "LOS design vs SVAGC (the intro's critique)",
        run: render::ablation_los,
    },
    Experiment {
        id: "ablation_minor",
        title: "Ablation D",
        caption: "Minor-GC promotion mechanism (Table I row 2)",
        run: render::ablation_minor,
    },
    Experiment {
        id: "packet_scaling",
        title: "Packet scaling",
        caption: "Full-GC makespan vs workers: barrier pipeline vs packet scheduler",
        run: render::packet_scaling,
    },
    Experiment {
        id: "pause_cdf",
        title: "Pause CDF",
        caption: "Full-GC pause percentiles: SVAGC STW vs --concurrent vs Shenandoah (SATB armed)",
        run: render::pause_cdf,
    },
    Experiment {
        id: "noisy_neighbor",
        title: "Noisy neighbor",
        caption: "Healthy-tenant throughput & survival vs victim fault rate (blast-radius isolation)",
        run: render::noisy_neighbor,
    },
    Experiment {
        id: "tiering_resilience",
        title: "Tiering resilience",
        caption: "Throughput & invisibility vs DRAM fraction x device fault rate (SVAGC vs memmove)",
        run: render::tiering_resilience,
    },
];

/// The five design-choice studies `bin/ablations` runs.
pub const ABLATION_IDS: [&str; 5] = [
    "ablation_threshold",
    "ablation_aggregation",
    "ablation_mechanism",
    "ablation_los",
    "ablation_minor",
];

/// Cheap experiments a parallel `bin/all` re-runs serially as an
/// always-on determinism probe (milliseconds each).
pub const DETERMINISM_PROBE_IDS: [&str; 2] = ["fig06", "fig08"];

/// Look up an experiment by id.
pub fn find(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

/// All registered ids, in run order.
pub fn all_ids() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|e| e.id).collect()
}

/// One finished experiment plus its host wall time.
pub struct Outcome {
    /// The filled report.
    pub report: Report,
    /// Host wall-clock milliseconds the experiment took.
    pub wall_ms: f64,
}

/// Run one experiment, timing it on the host clock.
pub fn run_experiment(exp: &Experiment) -> Outcome {
    let mut rep = Report::new(exp.id, exp.caption);
    rep.say("");
    rep.say(format!("=== {}: {} ===", exp.title, exp.caption));
    let t0 = Instant::now();
    (exp.run)(&mut rep);
    Outcome {
        report: rep,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// Run `ids` serially or host-parallel. Output order always follows
/// `ids`; with `parallel` only the host scheduling changes — each
/// experiment is a self-contained simulation, so its simulated plane is
/// identical either way (see `tests/parallel_determinism.rs`).
pub fn run_ids(ids: &[&str], parallel: bool) -> Vec<Outcome> {
    let exps: Vec<&'static Experiment> = ids
        .iter()
        .map(|id| find(id).unwrap_or_else(|| panic!("unknown experiment {id:?}")))
        .collect();
    if parallel {
        par_map(exps, run_experiment)
    } else {
        exps.into_iter().map(run_experiment).collect()
    }
}

/// Version tag of the `BENCH_summary.json` layout.
pub const BENCH_SUMMARY_SCHEMA: &str = "svagc-bench-summary-v1";

/// The rolled-up summary document: one entry per experiment with the
/// digest, headline counters, and host wall time. The CI perf gate
/// compares this file against a checked-in baseline.
pub fn summary_json(outcomes: &[Outcome], parallel: bool) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"");
    out.push_str(BENCH_SUMMARY_SCHEMA);
    out.push_str("\",\"parallel\":");
    out.push_str(if parallel { "true" } else { "false" });
    out.push_str(&format!(",\"host_threads\":{}", host_threads()));
    out.push_str(",\"experiments\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"experiment\":");
        write_json_str(&mut out, o.report.id());
        out.push_str(",\"sim_digest\":\"");
        out.push_str(&o.report.sim_digest());
        out.push_str("\",\"counters\":");
        out.push_str(&o.report.counters().to_json());
        out.push_str(&format!(",\"wall_ms\":{}", o.wall_ms));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Write one `BENCH_<id>.json` per outcome into `dir`; returns the paths.
pub fn write_bench_files(
    dir: &Path,
    outcomes: &[Outcome],
    parallel: bool,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let threads = if parallel { host_threads() } else { 1 };
    let mut paths = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        let host = HostInfo {
            wall_ms: o.wall_ms,
            threads,
            parallel,
        };
        let path = dir.join(format!("BENCH_{}.json", o.report.id()));
        std::fs::write(&path, o.report.bench_json(&host))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Write the `BENCH_summary.json` roll-up into `dir`.
pub fn write_summary(dir: &Path, outcomes: &[Outcome], parallel: bool) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_summary.json");
    std::fs::write(&path, summary_json(outcomes, parallel))?;
    Ok(path)
}

/// Re-run `probe_ids` serially and byte-compare their canonical sim JSON
/// against the already-collected `outcomes`; returns the mismatching ids.
pub fn verify_against_serial(outcomes: &[Outcome], probe_ids: &[&str]) -> Vec<String> {
    let mut bad = Vec::new();
    for id in probe_ids {
        let Some(o) = outcomes.iter().find(|o| o.report.id() == *id) else {
            bad.push(format!("{id}: not present in the parallel run"));
            continue;
        };
        let serial = run_experiment(find(id).expect("probe id registered"));
        if serial.report.sim_json() != o.report.sim_json() {
            bad.push(format!(
                "{id}: parallel sim JSON diverged from serial ({} vs {})",
                o.report.sim_digest(),
                serial.report.sim_digest()
            ));
        }
    }
    bad
}

/// Pull `--out DIR` out of a raw argument list (for the thin bins).
fn parse_out(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Entry point of the thin `bin/figNN_*` / `bin/tableN_*` wrappers: run
/// one experiment, print its text, and honor `--out DIR` by writing the
/// `BENCH_<id>.json` record.
pub fn main_single(id: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exp = find(id).unwrap_or_else(|| panic!("{id} is not a registered experiment"));
    let o = run_experiment(exp);
    print!("{}", o.report.text());
    if let Some(dir) = parse_out(&args) {
        let paths = write_bench_files(&dir, std::slice::from_ref(&o), false)
            .unwrap_or_else(|e| panic!("cannot write BENCH files to {}: {e}", dir.display()));
        println!("wrote {}", paths[0].display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let ids = all_ids();
        for (i, id) in ids.iter().enumerate() {
            assert!(find(id).is_some());
            assert!(!ids[i + 1..].contains(id), "duplicate id {id}");
            assert!(
                id.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{id} must be filename-safe"
            );
        }
        for probe in DETERMINISM_PROBE_IDS {
            assert!(find(probe).is_some());
        }
        for ab in ABLATION_IDS {
            assert!(find(ab).is_some());
        }
    }

    #[test]
    fn summary_json_parses_and_lists_experiments() {
        use svagc_metrics::{parse_json, JsonValue};
        let mut rep = Report::new("fake", "synthetic");
        rep.counter("gc.pause_cycles", 42);
        let outcomes = vec![Outcome { report: rep, wall_ms: 1.5 }];
        let doc = parse_json(&summary_json(&outcomes, true)).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(BENCH_SUMMARY_SCHEMA)
        );
        assert_eq!(doc.get("parallel"), Some(&JsonValue::Bool(true)));
        let exps = doc.get("experiments").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(exps.len(), 1);
        assert_eq!(
            exps[0].get("experiment").and_then(JsonValue::as_str),
            Some("fake")
        );
        assert_eq!(
            exps[0].get("counters").unwrap().get("gc.pause_cycles").and_then(JsonValue::as_u64),
            Some(42)
        );
        assert_eq!(exps[0].get("wall_ms").and_then(JsonValue::as_f64), Some(1.5));
    }
}
