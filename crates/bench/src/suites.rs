//! Whole-benchmark experiments: Figs. 1, 2, 11-16 and Table III.
//!
//! Each function returns serializable rows; the `bin/figNN_*` binaries
//! render them as tables + JSON. Everything is deterministic.

use svagc_metrics::{impl_to_json, par_map, MachineConfig};
use svagc_workloads::driver::{run, CollectorKind, RunConfig, RunResult};
use svagc_workloads::lrucache::LruCache;
use svagc_workloads::multijvm::run_multi;
use svagc_workloads::suite;

/// One benchmark × collector × heap-factor measurement.
#[derive(Debug, Clone)]
pub struct GcTimeRow {
    /// Benchmark name.
    pub name: String,
    /// Collector label.
    pub collector: &'static str,
    /// Heap factor (1.2 / 2.0).
    pub factor: f64,
    /// Full GC cycles run.
    pub gcs: usize,
    /// Total GC pause (ms).
    pub gc_total_ms: f64,
    /// Average pause (ms).
    pub gc_avg_ms: f64,
    /// Max pause (ms).
    pub gc_max_ms: f64,
    /// Marking time total (ms).
    pub mark_ms: f64,
    /// Forwarding time total (ms).
    pub forward_ms: f64,
    /// Pointer-adjust time total (ms).
    pub adjust_ms: f64,
    /// Compaction time total incl. shootdown (ms).
    pub compact_ms: f64,
    /// Non-compaction phase total (ms).
    pub other_ms: f64,
    /// Application wall time (ms).
    pub app_ms: f64,
    /// Total wall time (ms).
    pub total_ms: f64,
    /// Total GC pause in exact simulated cycles (the `_ms` fields round
    /// through `f64`; the perf gate pins this u64 byte-for-byte).
    pub gc_pause_cycles: u64,
    /// Total wall time in exact simulated cycles.
    pub total_cycles: u64,
    /// Steps per simulated second.
    pub throughput: f64,
    /// perf-style cache-miss % over the run.
    pub cache_miss_pct: f64,
    /// DTLB miss % over the run.
    pub dtlb_miss_pct: f64,
    /// Objects moved by PTE swap.
    pub swapped_objects: u64,
    /// Kernel faults injected over the run (0 unless fault injection is on).
    pub faults_injected: u64,
    /// SwapVA retries after transient faults.
    pub swap_retries: u64,
    /// Objects demoted to memmove after permanent faults.
    pub swap_fallbacks: u64,
    /// Batch swaps split at a failing index and resumed.
    pub batch_splits: u64,
    /// End-of-run integrity check.
    pub verify_ok: bool,
}

impl_to_json!(GcTimeRow {
    name,
    collector,
    factor,
    gcs,
    gc_total_ms,
    gc_avg_ms,
    gc_max_ms,
    mark_ms,
    forward_ms,
    adjust_ms,
    compact_ms,
    other_ms,
    app_ms,
    total_ms,
    gc_pause_cycles,
    total_cycles,
    throughput,
    cache_miss_pct,
    dtlb_miss_pct,
    swapped_objects,
    faults_injected,
    swap_retries,
    swap_fallbacks,
    batch_splits,
    verify_ok,
});

impl GcTimeRow {
    fn from_result(r: &RunResult, factor: f64) -> GcTimeRow {
        let t = |c: svagc_metrics::Cycles| c.at_ghz(r.freq_ghz).as_millis();
        let phases = r.gc.phase_totals();
        GcTimeRow {
            name: r.workload.clone(),
            collector: r.collector,
            factor,
            gcs: r.gc.count(),
            gc_total_ms: r.gc_total_ms(),
            gc_avg_ms: r.gc_avg_ms(),
            gc_max_ms: r.gc_max_ms(),
            mark_ms: t(phases.mark),
            forward_ms: t(phases.forward),
            adjust_ms: t(phases.adjust),
            compact_ms: t(phases.compact_total()),
            other_ms: t(phases.non_compact()),
            app_ms: t(r.app_wall),
            total_ms: t(r.total_wall),
            gc_pause_cycles: r.gc_pause_cycles(),
            total_cycles: r.total_cycles(),
            throughput: r.throughput(),
            cache_miss_pct: r.perf.cache_miss_pct(),
            dtlb_miss_pct: r.perf.dtlb_miss_pct(),
            swapped_objects: r.perf.objects_swapped,
            faults_injected: r.gc.total_faults_injected(),
            swap_retries: r.gc.total_swap_retries(),
            swap_fallbacks: r.gc.total_swap_fallbacks(),
            batch_splits: r.gc.total_batch_splits(),
            verify_ok: r.verify_ok,
        }
    }
}

/// Run one named benchmark under `kind` at `factor`.
///
/// When `SVAGC_TRACE_DIR` is set, the run records trace events and drops
/// a Chrome trace_event JSON per row into that directory — any figure of
/// the suite can be replayed with full cycle-level visibility without
/// touching the figure binaries.
pub fn run_one(
    name: &str,
    kind: CollectorKind,
    factor: f64,
    machine: MachineConfig,
    steps: Option<usize>,
    instrumented: bool,
) -> GcTimeRow {
    let mut w = suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut cfg = RunConfig::new(kind);
    cfg.machine = machine;
    cfg.heap_factor = factor;
    cfg.steps = steps;
    cfg.instrumented = instrumented;
    let trace_dir = std::env::var("SVAGC_TRACE_DIR").ok();
    cfg.trace = trace_dir.is_some();
    let r = run(w.as_mut(), &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
    if let Some(dir) = trace_dir {
        write_row_trace(&dir, name, &cfg, &r);
    }
    GcTimeRow::from_result(&r, factor)
}

/// Emit one suite row's trace as `<dir>/<bench>_<collector>_<factor>.json`.
fn write_row_trace(dir: &str, name: &str, cfg: &RunConfig, r: &RunResult) {
    let sanitize = |s: &str| {
        s.chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '.' { c } else { '-' })
            .collect::<String>()
    };
    let file = format!(
        "{}_{}_{:.1}x.json",
        sanitize(name),
        sanitize(r.collector),
        cfg.heap_factor
    );
    let path = std::path::Path::new(dir).join(file);
    if let Err(e) = std::fs::write(&path, svagc_metrics::chrome_trace_json(&r.trace)) {
        eprintln!("SVAGC_TRACE_DIR: cannot write {}: {e}", path.display());
    }
}

/// The benchmark list used by Figs. 11-16.
pub const FIG11_SUITE: [&str; 15] = [
    "FFT.large",
    "FFT.large/8",
    "FFT.large/16",
    "Sparse.large",
    "Sparse.large/2",
    "Sparse.large/4",
    "SOR.large",
    "SOR.large x10",
    "LU.large",
    "Compress",
    "Sigverify",
    "CryptoAES",
    "PR",
    "Bisort",
    "ParallelSort",
];

/// Run the whole suite under one collector/factor. Benchmarks run
/// host-parallel — each is a self-contained deterministic simulation, so
/// the results are identical to a sequential run.
pub fn suite_rows(kind: CollectorKind, factor: f64, steps: Option<usize>) -> Vec<GcTimeRow> {
    par_map(FIG11_SUITE.to_vec(), |name| {
        run_one(
            name,
            kind,
            factor,
            MachineConfig::xeon_gold_6130(),
            steps,
            false,
        )
    })
}

/// Fig. 1: phase breakdown of the memmove LISP2 prototype on the i5-7600.
pub fn fig01_rows() -> Vec<GcTimeRow> {
    ["FFT.large", "Sparse.large"]
        .iter()
        .map(|name| {
            run_one(
                name,
                CollectorKind::SvagcMemmove,
                1.2,
                MachineConfig::i5_7600(),
                None,
                false,
            )
        })
        .collect()
}

/// One N-JVM data point for Figs. 2/14.
#[derive(Debug, Clone)]
pub struct MultiJvmRow {
    /// Concurrent JVM count.
    pub jvms: usize,
    /// Mean total GC time per JVM (ms).
    pub gc_total_ms: f64,
    /// Mean max pause per JVM (ms).
    pub gc_max_ms: f64,
    /// Mean app wall time per JVM (ms).
    pub app_ms: f64,
    /// Mean total wall time per JVM (ms).
    pub total_ms: f64,
    /// Summed GC pause across JVMs, exact simulated cycles.
    pub gc_pause_cycles: u64,
    /// Summed total wall time across JVMs, exact simulated cycles.
    pub total_cycles: u64,
}

impl_to_json!(MultiJvmRow {
    jvms,
    gc_total_ms,
    gc_max_ms,
    app_ms,
    total_ms,
    gc_pause_cycles,
    total_cycles,
});

/// Figs. 2 (ParallelGC) / 14 (SVAGC): LRUCache × N JVMs, 4 GC threads
/// each, on the 32-core machine.
pub fn multijvm_rows(kind: CollectorKind, counts: &[usize]) -> Vec<MultiJvmRow> {
    counts
        .iter()
        .map(|&n| {
            let mut base = RunConfig::new(kind);
            base.machine = MachineConfig::xeon_gold_6130();
            base.gc_threads = 4; // the paper pins GCThreadsCount=4
            base.heap_factor = 1.2;
            let res = run_multi(
                n,
                // Paper geometry: values log-uniform in [1 B, 2 MB]
                // (capacity scaled; see EXPERIMENTS.md).
                |i| Box::new(LruCache::new(192, 2 << 20, 8, 100 + i as u64)),
                &base,
            )
            .expect("multi-JVM run");
            MultiJvmRow {
                jvms: n,
                gc_total_ms: res.avg_gc_total_ms(),
                gc_max_ms: res.avg_gc_max_ms(),
                app_ms: res.avg_app_ms(),
                total_ms: res.avg_total_ms(),
                gc_pause_cycles: res.gc_pause_cycles(),
                total_cycles: res.total_cycles(),
            }
        })
        .collect()
}

/// One Table III row: miss rates under memmove vs SwapVA at both heap
/// factors.
#[derive(Debug, Clone)]
pub struct CacheDtlbRow {
    /// Benchmark name.
    pub name: String,
    /// Cache miss % (memmove) at 1.2× (2×).
    pub cache_memmove: (f64, f64),
    /// Cache miss % (SwapVA) at 1.2× (2×).
    pub cache_swapva: (f64, f64),
    /// DTLB miss % (memmove) at 1.2× (2×).
    pub dtlb_memmove: (f64, f64),
    /// DTLB miss % (SwapVA) at 1.2× (2×).
    pub dtlb_swapva: (f64, f64),
}

impl_to_json!(CacheDtlbRow {
    name,
    cache_memmove,
    cache_swapva,
    dtlb_memmove,
    dtlb_swapva,
});

/// The Table III benchmark list (paper order).
pub const TABLE3_SUITE: [&str; 14] = [
    "Bisort",
    "ParallelSort",
    "Sparse.large/4",
    "Sparse.large/2",
    "Sparse.large",
    "FFT.large/16",
    "FFT.large/8",
    "FFT.large",
    "SOR.large x10",
    "LU.large",
    "CryptoAES",
    "Sigverify",
    "Compress",
    "PR",
];

/// Table III: run each benchmark instrumented under both copy mechanisms
/// and both heap factors (host-parallel; each cell is independent).
pub fn table3_rows(steps: Option<usize>) -> Vec<CacheDtlbRow> {
    par_map(TABLE3_SUITE.to_vec(), |name| {
            let m = MachineConfig::xeon_gold_6130();
            let cell = |kind, factor| {
                let row = run_one(name, kind, factor, m.clone(), steps, true);
                (row.cache_miss_pct, row.dtlb_miss_pct)
            };
            let (cm12, dm12) = cell(CollectorKind::SvagcMemmove, 1.2);
            let (cm20, dm20) = cell(CollectorKind::SvagcMemmove, 2.0);
            let (cs12, ds12) = cell(CollectorKind::Svagc, 1.2);
            let (cs20, ds20) = cell(CollectorKind::Svagc, 2.0);
            CacheDtlbRow {
                name: name.to_string(),
                cache_memmove: (cm12, cm20),
                cache_swapva: (cs12, cs20),
                dtlb_memmove: (dm12, dm20),
                dtlb_swapva: (ds12, ds20),
            }
    })
}

/// One packet-scheduler scaling measurement: the same skewed full-GC
/// heap collected under both schedulers at `workers` GC threads.
#[derive(Debug, Clone)]
pub struct PacketScalingRow {
    /// Simulated GC worker (thread) count.
    pub workers: usize,
    /// Full-GC makespan (pause cycles) under the four-barrier pipeline.
    pub barrier_cycles: u64,
    /// Same heap and worker count under the work-packet scheduler.
    pub packets_cycles: u64,
    /// Packets recorded by the packet run's `gc.sched.*` counters.
    pub packets: u64,
    /// Steals recorded by the packet run.
    pub steals: u64,
}
impl_to_json!(PacketScalingRow {
    workers,
    barrier_cycles,
    packets_cycles,
    packets,
    steals
});

/// Packet-scheduler scaling figure: makespan vs worker count, barrier vs
/// packets, on a skewed heap — the low half is swap-heavy big data
/// objects with no adjust dependencies, the high half is ref-dense
/// smalls whose adjust dominates. The barrier pipeline stalls the big
/// compact work behind the slowest adjust packet; the packet scheduler
/// flows workers across the bucket boundary.
pub fn packet_scaling_rows(counts: &[usize]) -> Vec<PacketScalingRow> {
    use svagc_core::{GcConfig, Lisp2Collector, SchedulerKind};
    use svagc_heap::{Heap, HeapConfig, HeapVerifier, ObjShape, RootSet};
    use svagc_kernel::{CoreId, Kernel};
    use svagc_vmem::{Asid, PAGE_SIZE};
    const CORE: CoreId = CoreId(0);

    let run = |workers: usize, kind: SchedulerKind| {
        let heap_bytes: u64 = 96 << 20;
        let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), heap_bytes + (8 << 20));
        let mut h = Heap::new(&mut k, Asid(1), HeapConfig::new(heap_bytes)).unwrap();
        let mut roots = RootSet::new();
        let fill = |k: &mut Kernel, h: &mut Heap, shape: ObjShape, seed: u64| {
            let (obj, _) = h.alloc(k, CORE, shape).unwrap();
            for i in 0..shape.data_words as u64 {
                h.write_data(k, CORE, obj, shape.num_refs as u64, i, seed + i).unwrap();
            }
            obj
        };
        // Low half: rooted 16-page bigs, each followed by doomed filler so
        // every survivor really slides.
        for i in 0..24u64 {
            let big = fill(&mut k, &mut h, ObjShape::data_bytes(16 * PAGE_SIZE), i);
            roots.push(big);
            fill(&mut k, &mut h, ObjShape::data_bytes(8 * PAGE_SIZE), 600_000 + i);
        }
        // High half: ref-dense smalls cross-linked into a dependency mesh.
        let ref_shape = ObjShape::with_refs(16, 8);
        let mut smalls = Vec::new();
        for i in 0..240u64 {
            let obj = fill(&mut k, &mut h, ref_shape, i);
            roots.push(obj);
            smalls.push(obj);
            fill(&mut k, &mut h, ObjShape::data(64), 500_000 + i);
        }
        for (i, &obj) in smalls.iter().enumerate() {
            for r in 0..16usize {
                h.write_ref(&mut k, CORE, obj, r as u64, smalls[(i + r + 1) % smalls.len()])
                    .unwrap();
            }
        }
        let mut gc = Lisp2Collector::new(GcConfig::svagc(workers).with_scheduler(kind));
        let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
        let hash = HeapVerifier::new().content_hash(&k, &mut h);
        (stats, hash)
    };

    counts
        .iter()
        .map(|&n| {
            let (b, bh) = run(n, svagc_core::SchedulerKind::Barrier);
            let (p, ph) = run(n, svagc_core::SchedulerKind::Packets);
            assert_eq!(
                bh, ph,
                "schedulers must produce identical heaps at {n} workers"
            );
            PacketScalingRow {
                workers: n,
                barrier_cycles: b.phases.total().get(),
                packets_cycles: p.phases.total().get(),
                packets: p.sched_packets,
                steals: p.sched_steals,
            }
        })
        .collect()
}

/// One noisy-neighbor chaos measurement: the standard 4-tenant pooled
/// fleet at one victim fault rate, run against its fault-free twin with
/// both blast-radius oracles applied.
#[derive(Debug, Clone)]
pub struct NoisyNeighborRow {
    /// Victim per-swap-request fault rate, percent.
    pub fault_rate_pct: f64,
    /// Tenants that ran (and verified) to completion.
    pub survivors: u64,
    /// Tenants quarantined.
    pub quarantined: u64,
    /// The victim tenant's outcome: "completed" or its failure label.
    pub victim: String,
    /// Mean healthy-tenant throughput (steps per simulated second).
    pub healthy_throughput: f64,
    /// Mean healthy-tenant total GC pause (ms).
    pub healthy_gc_total_ms: f64,
    /// Healthy tenants the isolation oracle compared bit-identical.
    pub isolation_compared: u64,
    /// Frames the leak oracle audited in the faulty pool.
    pub frames_audited: u64,
    /// Summed healthy-tenant wall time, exact simulated cycles (the
    /// digest-pinned scalar behind `healthy_throughput`).
    pub healthy_total_cycles: u64,
    /// Summed healthy-tenant GC pause, exact simulated cycles.
    pub healthy_gc_pause_cycles: u64,
}
impl_to_json!(NoisyNeighborRow {
    fault_rate_pct,
    survivors,
    quarantined,
    victim,
    healthy_throughput,
    healthy_gc_total_ms,
    isolation_compared,
    frames_audited,
    healthy_total_cycles,
    healthy_gc_pause_cycles,
});

/// Noisy-neighbor figure: healthy-tenant throughput and survival vs the
/// victim's injected fault rate. Each rate is an independent experiment
/// (its own pool, fleets, and twin), so the sweep is host-parallel.
pub fn noisy_neighbor_rows(rates_pct: &[u32]) -> Vec<NoisyNeighborRow> {
    use svagc_workloads::noisy::{default_collector, run_noisy_neighbor, NoisySpec};
    par_map(rates_pct.to_vec(), |rate_pct| {
        let spec = NoisySpec::standard(rate_pct as f64 / 100.0, 42);
        let base = RunConfig::new(default_collector());
        let out = run_noisy_neighbor(&spec, &base)
            .unwrap_or_else(|e| panic!("noisy-neighbor oracle failure at {rate_pct}%: {e}"));
        let healthy = out.faulty.completed();
        let n = healthy.len().max(1) as f64;
        NoisyNeighborRow {
            fault_rate_pct: rate_pct as f64,
            survivors: out.faulty.survivors() as u64,
            quarantined: out.faulty.quarantined() as u64,
            victim: match &out.faulty.outcomes[spec.victims[0]] {
                svagc_workloads::multijvm::TenantOutcome::Completed(_) => "completed".into(),
                svagc_workloads::multijvm::TenantOutcome::Quarantined { kind, .. } => {
                    kind.label().into()
                }
            },
            healthy_throughput: healthy.iter().map(|(_, r)| r.throughput()).sum::<f64>() / n,
            healthy_gc_total_ms: healthy.iter().map(|(_, r)| r.gc_total_ms()).sum::<f64>() / n,
            isolation_compared: out.isolation_compared as u64,
            frames_audited: out.frames_audited as u64,
            healthy_total_cycles: healthy.iter().map(|(_, r)| r.total_cycles()).sum(),
            healthy_gc_pause_cycles: healthy.iter().map(|(_, r)| r.gc_pause_cycles()).sum(),
        }
    })
}

/// One collector's full-GC pause distribution for the pause-CDF figure.
#[derive(Debug, Clone)]
pub struct PauseCdfRow {
    /// Collector label.
    pub collector: String,
    /// Full GC cycles observed.
    pub gcs: usize,
    /// Median pause (simulated cycles).
    pub p50_cycles: u64,
    /// 90th-percentile pause.
    pub p90_cycles: u64,
    /// 99th-percentile pause.
    pub p99_cycles: u64,
    /// Maximum pause.
    pub max_cycles: u64,
    /// Marking cycles run concurrently with mutators (0 for STW runs).
    pub concurrent_mark_cycles: u64,
    /// SATB deletion-barrier entries drained across all cycles.
    pub satb_logged: u64,
    /// FNV content hash of the final live heap.
    pub heap_hash: u64,
    /// End-of-run data verification.
    pub verify_ok: bool,
}
impl_to_json!(PauseCdfRow {
    collector,
    gcs,
    p50_cycles,
    p90_cycles,
    p99_cycles,
    max_cycles,
    concurrent_mark_cycles,
    satb_logged,
    heap_hash,
    verify_ok
});

/// Exact percentile over a sorted pause list (nearest-rank, cycles).
fn percentile_cycles(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() as u64 - 1) * p / 100) as usize]
}

/// Pause-CDF suite: SVAGC stop-the-world vs SVAGC `--concurrent` vs
/// Shenandoah (SATB barrier armed), all on Bisort — the suite workload
/// whose subtree rebuilds overwrite live parent→child references, so the
/// deletion barrier sees genuine mutator churn. Returns rows in that
/// order. The SVAGC pair runs on identical heaps; the renderer pins
/// `concurrent.heap_hash == stw.heap_hash` (bit-identity) and
/// `concurrent.max < shenandoah.max` (the low-pause claim).
pub fn pause_cdf_rows() -> Vec<PauseCdfRow> {
    let run_one = |kind: CollectorKind, concurrent: bool| {
        let mut w = suite::by_name("Bisort").expect("Bisort is a suite workload");
        let mut cfg = RunConfig::new(kind).with_concurrent(concurrent);
        cfg.steps = Some(80);
        let r = run(w.as_mut(), &cfg).unwrap_or_else(|e| panic!("pause_cdf: {e}"));
        let mut pauses: Vec<u64> = r.gc.cycles.iter().map(|c| c.pause().get()).collect();
        pauses.sort_unstable();
        PauseCdfRow {
            collector: r.collector.to_string(),
            gcs: r.gc.count(),
            p50_cycles: percentile_cycles(&pauses, 50),
            p90_cycles: percentile_cycles(&pauses, 90),
            p99_cycles: percentile_cycles(&pauses, 99),
            max_cycles: percentile_cycles(&pauses, 100),
            concurrent_mark_cycles: r.gc.total_concurrent_mark().get(),
            satb_logged: r.gc.total_satb_logged(),
            heap_hash: r.heap_hash,
            verify_ok: r.verify_ok,
        }
    };
    vec![
        run_one(CollectorKind::Svagc, false),
        run_one(CollectorKind::Svagc, true),
        run_one(CollectorKind::Shenandoah, true),
    ]
}

/// One tiering-resilience measurement: collector × DRAM fraction ×
/// device fault rate on LRUCache.
#[derive(Debug, Clone)]
pub struct TieringResilienceRow {
    /// Collector label.
    pub collector: String,
    /// Fraction of the heap kept resident (1.0 == tiering off).
    pub dram_fraction: f64,
    /// Per-request device fault probability.
    pub fault_rate: f64,
    /// Steps per simulated second.
    pub throughput: f64,
    /// Total GC pause cycles.
    pub gc_total_cycles: u64,
    /// Cycles charged to tier traffic (writebacks, fetches, backoff).
    pub tier_cycles: u64,
    /// Pages demoted to the far device.
    pub demotions: u64,
    /// Promotions triggered by a mutator/GC access (the thrash metric).
    pub fetch_on_access: u64,
    /// Device operations retried after a transient fault.
    pub retries: u64,
    /// Torn writebacks caught by the mandatory read-back verify.
    pub torn_caught: u64,
    /// Final tier mode (`"off"`, `"tiered"`, `"dram-only"`).
    pub tier_mode: String,
    /// FNV content hash of the final live heap.
    pub heap_hash: u64,
    /// End-of-run data verification.
    pub verify_ok: bool,
}
impl_to_json!(TieringResilienceRow {
    collector,
    dram_fraction,
    fault_rate,
    throughput,
    gc_total_cycles,
    tier_cycles,
    demotions,
    fetch_on_access,
    retries,
    torn_caught,
    tier_mode,
    heap_hash,
    verify_ok
});

/// Tiering-resilience suite: SVAGC vs its memmove ablation on LRUCache,
/// swept over DRAM fraction {1.0, 0.6, 0.3} × device fault rate
/// {0, 1%, 10%}. SVAGC compacts by PTE swaps, so far pages move without
/// touching the device; memmove must copy every live word and drags cold
/// pages back through the fallible device each cycle. The renderer pins
/// the two contracts: every row's heap is bit-identical to its
/// collector's DRAM-only run (the tier + retry ladder are invisible),
/// and SVAGC retains more of its DRAM-only throughput than memmove at
/// the harshest point of the matrix.
pub fn tiering_resilience_rows() -> Vec<TieringResilienceRow> {
    const DEVICE_SEED: u64 = 0xD1CE;
    let mut plan: Vec<(CollectorKind, f64, f64)> = Vec::new();
    for kind in [CollectorKind::Svagc, CollectorKind::SvagcMemmove] {
        plan.push((kind, 1.0, 0.0)); // DRAM-only reference
        for frac in [0.6, 0.3] {
            for rate in [0.0, 0.01, 0.10] {
                plan.push((kind, frac, rate));
            }
        }
    }
    par_map(plan, |(kind, frac, rate)| {
        let mut w = suite::by_name("LRUCache").expect("LRUCache is a suite workload");
        let mut cfg = RunConfig::new(kind).with_verify_phases(true);
        if frac < 1.0 {
            cfg = cfg.with_tiering(frac).with_tier_batch(4096);
            if rate > 0.0 {
                cfg = cfg.with_device_faults(rate, DEVICE_SEED);
            }
        }
        let r = run(w.as_mut(), &cfg)
            .unwrap_or_else(|e| panic!("tiering_resilience f={frac} p={rate}: {e}"));
        TieringResilienceRow {
            collector: r.collector.to_string(),
            dram_fraction: frac,
            fault_rate: rate,
            throughput: r.throughput(),
            gc_total_cycles: r.gc.total_pause().get(),
            tier_cycles: r.tier_cycles.get(),
            demotions: r.tier.demotions,
            fetch_on_access: r.tier.fetch_on_access,
            retries: r.tier.writeback_retries + r.tier.fetch_retries,
            torn_caught: r.device.torn_writebacks,
            tier_mode: r.tier_mode.to_string(),
            heap_hash: r.heap_hash,
            verify_ok: r.verify_ok,
        }
    })
}

/// Geometric mean helper for the Table III summary rows.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for v in values {
        log_sum += v.max(1e-9).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 9.0]) - 6.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn fig01_compaction_dominates() {
        // Paper Fig. 1: compaction is 79-85% of the memmove prototype's
        // full-GC time on FFT.large / Sparse.large.
        for row in fig01_rows() {
            let pct = 100.0 * row.compact_ms / (row.compact_ms + row.other_ms);
            assert!(
                (60.0..97.0).contains(&pct),
                "{}: compaction share {pct:.1}%",
                row.name
            );
            assert!(row.verify_ok);
        }
    }

    #[test]
    fn multijvm_scaling_shapes() {
        // ParallelGC degrades much faster than SVAGC as JVMs multiply
        // (Fig. 2 vs Fig. 14).
        let counts = [1usize, 8, 32];
        let pgc = multijvm_rows(CollectorKind::ParallelGc, &counts);
        let svagc = multijvm_rows(CollectorKind::Svagc, &counts);
        let growth = |rows: &[MultiJvmRow]| rows.last().unwrap().gc_total_ms / rows[0].gc_total_ms;
        let g_pgc = growth(&pgc);
        let g_svagc = growth(&svagc);
        assert!(
            g_pgc > g_svagc,
            "ParallelGC GC-time growth {g_pgc:.2}x should exceed SVAGC {g_svagc:.2}x"
        );
        // App time rises with contention for both.
        assert!(pgc.last().unwrap().app_ms > pgc[0].app_ms);
    }
}
