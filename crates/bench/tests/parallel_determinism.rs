//! The host-parallel runner must not change a single simulated byte:
//! every experiment builds its own simulated machine, so fanning them
//! across host threads may only change wall time. These tests pin that
//! on two representative figure experiments (a kernel micro-sweep and a
//! whole-run driver figure) plus the ablation subset.

use svagc_bench::runner;
use svagc_metrics::{parse_json, JsonValue};

const IDS: [&str; 2] = ["fig06", "fig08"];

#[test]
fn representative_figures_are_bitwise_identical_serial_vs_parallel() {
    // Force a real fan-out even on single-core CI runners.
    std::env::set_var("SVAGC_HOST_THREADS", "4");
    let serial = runner::run_ids(&IDS, false);
    let par = runner::run_ids(&IDS, true);
    assert_eq!(serial.len(), par.len());
    for (s, p) in serial.iter().zip(&par) {
        assert_eq!(s.report.id(), p.report.id(), "outcome order must follow input order");
        assert_eq!(
            s.report.sim_json(),
            p.report.sim_json(),
            "{}: simulated plane diverged between serial and parallel",
            s.report.id()
        );
        assert_eq!(s.report.sim_digest(), p.report.sim_digest());
        assert_eq!(
            s.report.text(),
            p.report.text(),
            "{}: rendered text diverged between serial and parallel",
            s.report.id()
        );
    }
    // The always-on probe `bin/all --parallel` runs must agree too.
    assert!(runner::verify_against_serial(&par, &IDS).is_empty());
}

#[test]
fn bench_files_from_a_parallel_run_parse_and_match_serial_digests() {
    std::env::set_var("SVAGC_HOST_THREADS", "4");
    let dir = std::env::temp_dir().join(format!("svagc_bench_test_{}", std::process::id()));
    let par = runner::run_ids(&runner::ABLATION_IDS, true);
    runner::write_bench_files(&dir, &par, true).unwrap();
    runner::write_summary(&dir, &par, true).unwrap();

    let serial = runner::run_ids(&runner::ABLATION_IDS, false);
    let summary =
        parse_json(&std::fs::read_to_string(dir.join("BENCH_summary.json")).unwrap()).unwrap();
    let entries = summary.get("experiments").and_then(JsonValue::as_arr).unwrap();
    assert_eq!(entries.len(), serial.len());
    for (entry, s) in entries.iter().zip(&serial) {
        let id = entry.get("experiment").and_then(JsonValue::as_str).unwrap();
        assert_eq!(id, s.report.id());
        // The digest recorded by the parallel run equals a fresh serial one.
        assert_eq!(
            entry.get("sim_digest").and_then(JsonValue::as_str).unwrap(),
            s.report.sim_digest()
        );
        // And the per-experiment BENCH file round-trips through the parser
        // with the same digest and schema.
        let doc =
            parse_json(&std::fs::read_to_string(dir.join(format!("BENCH_{id}.json"))).unwrap())
                .unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(svagc_bench::report::BENCH_REPORT_SCHEMA)
        );
        assert_eq!(
            doc.get("sim_digest").and_then(JsonValue::as_str).unwrap(),
            s.report.sim_digest()
        );
        assert_eq!(doc.get("host").unwrap().get("parallel"), Some(&JsonValue::Bool(true)));
    }
    std::fs::remove_dir_all(&dir).ok();
}
