//! Table I: applicability of SwapVA and its optimizations per GC phase.
//!
//! A static capability matrix — SwapVA itself fits any moving phase;
//! aggregation needs batched copy requests (compaction has them, concurrent
//! evacuation does not); overlap handling needs src/dst in one shared
//! addressable window (only full/major compaction slides that way).

use std::fmt;

/// The GC cycle/phase rows of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPhaseKind {
    /// Full & Major GC: compact / moving phase.
    FullCompact,
    /// Minor GC: copying (scavenge) phase.
    MinorCopy,
    /// Concurrent GC: evacuation / relocation phase.
    ConcurrentEvacuation,
}

impl GcPhaseKind {
    /// All rows in Table I order.
    pub const ALL: [GcPhaseKind; 3] = [
        GcPhaseKind::FullCompact,
        GcPhaseKind::MinorCopy,
        GcPhaseKind::ConcurrentEvacuation,
    ];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            GcPhaseKind::FullCompact => "Full & Major (Compact, Moving)",
            GcPhaseKind::MinorCopy => "Minor (Copying)",
            GcPhaseKind::ConcurrentEvacuation => "Concurrent (Evacuation, Reloc.)",
        }
    }
}

/// The optimization columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Optimization {
    /// The base SwapVA call.
    SwapVa,
    /// Request aggregation.
    Aggregation,
    /// PMD caching.
    PmdCaching,
    /// Overlapping-area handling (Algorithm 2).
    Overlapping,
}

impl Optimization {
    /// All columns in Table I order.
    pub const ALL: [Optimization; 4] = [
        Optimization::SwapVa,
        Optimization::Aggregation,
        Optimization::PmdCaching,
        Optimization::Overlapping,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Optimization::SwapVa => "SwapVA",
            Optimization::Aggregation => "Aggregation",
            Optimization::PmdCaching => "PMD Caching",
            Optimization::Overlapping => "Overlapping",
        }
    }
}

/// Is `opt` applicable in `phase`? (The checkmarks of Table I.)
pub fn applicable(phase: GcPhaseKind, opt: Optimization) -> bool {
    use GcPhaseKind::*;
    use Optimization::*;
    match (phase, opt) {
        // The base call and PMD caching apply everywhere.
        (_, SwapVa) | (_, PmdCaching) => true,
        // Aggregation needs grouped requests: not in concurrent evacuation
        // where each copy is independent.
        (FullCompact, Aggregation) | (MinorCopy, Aggregation) => true,
        (ConcurrentEvacuation, Aggregation) => false,
        // Overlap handling needs a shared addressable window: only sliding
        // compaction has one.
        (FullCompact, Overlapping) => true,
        (MinorCopy, Overlapping) | (ConcurrentEvacuation, Overlapping) => false,
    }
}

/// Render Table I as text.
pub fn render_table() -> String {
    let mut out = String::new();
    use fmt::Write;
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>12} {:>12} {:>12}",
        "GC (Phase)", "SwapVA", "Aggregation", "PMD Caching", "Overlapping"
    );
    for phase in GcPhaseKind::ALL {
        let mark = |o| if applicable(phase, o) { "yes" } else { "-" };
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>12} {:>12} {:>12}",
            phase.label(),
            mark(Optimization::SwapVa),
            mark(Optimization::Aggregation),
            mark(Optimization::PmdCaching),
            mark(Optimization::Overlapping),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_i() {
        use GcPhaseKind::*;
        use Optimization::*;
        // Row 1: all four check.
        for o in Optimization::ALL {
            assert!(applicable(FullCompact, o));
        }
        // Row 2: all but overlapping.
        assert!(applicable(MinorCopy, SwapVa));
        assert!(applicable(MinorCopy, Aggregation));
        assert!(applicable(MinorCopy, PmdCaching));
        assert!(!applicable(MinorCopy, Overlapping));
        // Row 3: SwapVA + PMD caching only.
        assert!(applicable(ConcurrentEvacuation, SwapVa));
        assert!(!applicable(ConcurrentEvacuation, Aggregation));
        assert!(applicable(ConcurrentEvacuation, PmdCaching));
        assert!(!applicable(ConcurrentEvacuation, Overlapping));
    }

    #[test]
    fn table_renders_all_rows() {
        let t = render_table();
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("Minor (Copying)"));
    }
}
