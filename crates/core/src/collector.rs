//! The common collector interface used by drivers and baselines.

use crate::error::GcError;
use crate::stats::{GcCycleStats, GcLog};
use svagc_heap::{Heap, HeapError, ObjRef, RootSet};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::Cycles;

/// A stop-the-world (or partially concurrent) garbage collector.
pub trait Collector {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Run one collection cycle.
    fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError>;

    /// The log of completed cycles.
    fn log(&self) -> &GcLog;

    /// Run a collection cheaper than a full cycle, if the collector has
    /// one (a young-generation/minor pass). The pressure ladder's first
    /// rung calls this; `None` (the default) means "unsupported" and the
    /// caller escalates to a full [`Collector::collect`] instead.
    fn collect_minor(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Option<Result<GcCycleStats, GcError>> {
        let _ = (kernel, heap, roots);
        None
    }

    /// Pressure-driven degrade: force the collector one rung down its
    /// degraded-mode ladder (memmove-only first) so subsequent cycles
    /// avoid SwapVA side allocations and pack the heap as tightly as
    /// possible. Returns `false` when the collector has no ladder or it
    /// is already exhausted.
    fn pressure_degrade(&mut self) -> bool {
        false
    }

    /// Mutator write barrier, invoked *before* a reference field is
    /// overwritten. SATB collectors log the old value into a deletion
    /// buffer; the default is a no-op that performs no simulated reads,
    /// so non-concurrent collectors stay byte-identical with or without
    /// the hook wired into the mutator loop. Returns the barrier's
    /// mutator-side cycle cost.
    fn write_barrier(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        core: CoreId,
        obj: ObjRef,
        field: u64,
    ) -> Result<Cycles, HeapError> {
        let _ = (kernel, heap, core, obj, field);
        Ok(Cycles::ZERO)
    }
}

impl Collector for crate::lisp2::Lisp2Collector {
    fn name(&self) -> &'static str {
        if self.cfg.use_swapva {
            "SVAGC"
        } else {
            "LISP2-memmove"
        }
    }

    fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError> {
        Lisp2Collector::collect(self, kernel, heap, roots)
    }

    fn log(&self) -> &GcLog {
        &self.log
    }

    fn pressure_degrade(&mut self) -> bool {
        self.degrade.force_escalate().is_some()
    }
}

use crate::lisp2::Lisp2Collector;
