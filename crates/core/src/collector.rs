//! The common collector interface used by drivers and baselines.

use crate::error::GcError;
use crate::stats::{GcCycleStats, GcLog};
use svagc_heap::{Heap, RootSet};
use svagc_kernel::Kernel;

/// A stop-the-world (or partially concurrent) garbage collector.
pub trait Collector {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Run one collection cycle.
    fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError>;

    /// The log of completed cycles.
    fn log(&self) -> &GcLog;
}

impl Collector for crate::lisp2::Lisp2Collector {
    fn name(&self) -> &'static str {
        if self.cfg.use_swapva {
            "SVAGC"
        } else {
            "LISP2-memmove"
        }
    }

    fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError> {
        Lisp2Collector::collect(self, kernel, heap, roots)
    }

    fn log(&self) -> &GcLog {
        &self.log
    }
}

use crate::lisp2::Lisp2Collector;
