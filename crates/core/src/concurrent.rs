//! `--concurrent`: snapshot-at-the-beginning (SATB) concurrent marking.
//!
//! The STW [`Lisp2Collector`] pays for the whole transitive-closure trace
//! inside the pause. This wrapper moves the trace off-pause:
//!
//! 1. **Initial mark** (short pause): snapshot the root set and seed the
//!    mark bitmap.
//! 2. **Concurrent mark**: trace the snapshot's reachability interleaved
//!    with mutator execution in virtual time. Mutator ref overwrites go
//!    through the SATB *deletion barrier* ([`Collector::write_barrier`]):
//!    the old value is logged into a per-tenant [`SatbBuffer`] so the
//!    mutator cannot hide a snapshot-reachable object from the trace.
//! 3. **Final mark** (short pause): drain the SATB buffer (plus a root
//!    re-scan and the allocation watermark), completing the snapshot's
//!    marks.
//! 4. **Compaction stays in the pause**: forwarding, adjust, and the
//!    SwapVA per-object remap run through the unchanged transactional
//!    [`Lisp2Collector`] machinery via [`Premark`] — journal bracketing,
//!    watchdog, degradation ladder, packet scheduler and all. Moving
//!    objects under a running mutator would need a read barrier the
//!    object model doesn't have; SwapVA makes the evacuation pause cheap
//!    enough (O(pages moved), no byte copies) that it stays STW.
//!
//! Two entry paths share this machinery:
//!
//! * **The driver path** ([`Collector::collect`] from the `Idle` state):
//!   the whole cycle is modeled at trigger time — the trace runs against
//!   the heap as it is *now*, so the mark set is exactly the STW
//!   collector's and the final heap is bit-identical to an STW run. The
//!   trace cost is charged off-pause (as mutator interference), only the
//!   initial-mark and SATB-drain charges land in the pause. This is what
//!   figure workloads measure.
//! * **The incremental API** ([`ConcurrentCollector::begin_mark`] /
//!   [`ConcurrentCollector::mark_step`]): true interleaved SATB marking
//!   for tests and adversaries — the snapshot is real, mutator writes
//!   race the trace, and the deletion barrier is load-bearing (disable it
//!   and the lost-object bug reproduces deterministically). A
//!   [`Collector::collect`] issued while a mark is in flight follows the
//!   **abort-or-finish rule**: the mark is *finished* (drain in the
//!   pause) and exactly one transactional cycle runs — never two
//!   overlapping cycles.

use crate::collector::Collector;
use crate::error::GcError;
use crate::lisp2::{Lisp2Collector, Premark};
use crate::stats::{GcCycleStats, GcLog};
use svagc_heap::{Heap, HeapError, MarkBitmap, ObjRef, RootSet, SatbBuffer};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::Cycles;
use svagc_vmem::VirtAddr;

/// Initial-mark charge per live root slot (stack scan, no heap reads).
pub const INIT_MARK_ROOT_COST: Cycles = Cycles(2);

/// Mutator-side cost of appending one entry to the SATB buffer (the
/// deletion barrier's slow path; the old-value load is costed separately
/// as a real heap read).
pub const SATB_LOG_COST: Cycles = Cycles(4);

/// Final-mark charge per SATB entry drained (pop, mark-check, push).
pub const SATB_DRAIN_ENTRY_COST: Cycles = Cycles(6);

/// An in-flight concurrent mark.
#[derive(Debug)]
struct Marking {
    /// Marks accumulated so far (over the snapshot's reachability).
    bitmap: MarkBitmap,
    /// Allocation cursor at snapshot time: objects at or above this
    /// address were born during the mark and are live by watermark.
    snapshot_top: VirtAddr,
    /// Gray stack: marked, fields not yet scanned.
    gray: Vec<ObjRef>,
    /// The initial-mark pause already charged.
    init_pause: Cycles,
    /// Trace cycles spent off-pause so far.
    concurrent_cycles: Cycles,
}

/// The SATB concurrent-marking wrapper around [`Lisp2Collector`].
#[derive(Debug)]
pub struct ConcurrentCollector {
    /// The wrapped transactional STW collector (owns the cycle log).
    pub inner: Lisp2Collector,
    satb: SatbBuffer,
    marking: Option<Marking>,
    barrier_enabled: bool,
}

impl ConcurrentCollector {
    /// Wrap a configured STW collector. The deletion barrier starts
    /// enabled; [`ConcurrentCollector::set_barrier_enabled`] exists so
    /// tests can reproduce the lost-object bug.
    pub fn new(inner: Lisp2Collector) -> ConcurrentCollector {
        ConcurrentCollector {
            inner,
            satb: SatbBuffer::new(),
            marking: None,
            barrier_enabled: true,
        }
    }

    /// Enable/disable the SATB deletion barrier (tests only — disabling
    /// it mid-mark loses objects, which is the point of the adversary
    /// suite).
    pub fn set_barrier_enabled(&mut self, on: bool) {
        self.barrier_enabled = on;
    }

    /// Is the deletion barrier armed?
    pub fn barrier_enabled(&self) -> bool {
        self.barrier_enabled
    }

    /// Is a concurrent mark in flight?
    pub fn marking(&self) -> bool {
        self.marking.is_some()
    }

    /// SATB entries currently buffered (not yet drained).
    pub fn satb_pending(&self) -> usize {
        self.satb.len()
    }

    /// Is `obj` marked by the in-flight mark? `false` when idle.
    pub fn is_marked(&self, obj: ObjRef) -> bool {
        self.marking
            .as_ref()
            .is_some_and(|m| m.bitmap.is_marked(obj.header_va()))
    }

    fn trace_core(&self, kernel: &Kernel) -> CoreId {
        CoreId(self.inner.cfg.core_base % kernel.cores())
    }

    /// Begin an incremental concurrent mark: take the snapshot (roots +
    /// allocation watermark) in a short initial-mark pause. Returns
    /// `false` (and does nothing) if a mark is already in flight — the
    /// abort-or-finish rule forbids overlapping cycles.
    pub fn begin_mark(&mut self, heap: &Heap, roots: &RootSet) -> bool {
        if self.marking.is_some() {
            return false;
        }
        // Entries logged before this snapshot belong to no cycle.
        self.satb.drain();
        let mut bitmap = MarkBitmap::new(heap.base(), heap.extent_words());
        let mut gray = Vec::new();
        let mut slots = 0u64;
        for r in roots.iter_live() {
            slots += 1;
            if heap.contains(r.0) && bitmap.mark(r.header_va()) {
                gray.push(r);
            }
        }
        self.marking = Some(Marking {
            bitmap,
            snapshot_top: heap.top(),
            gray,
            init_pause: INIT_MARK_ROOT_COST * slots.max(1),
            concurrent_cycles: Cycles::ZERO,
        });
        true
    }

    /// Run up to `max_objects` gray-stack scans of the in-flight mark,
    /// interleaved with mutator execution. Returns `true` when the gray
    /// stack is empty (the trace is quiescent; SATB entries still drain
    /// at final mark). No-op `true` when no mark is in flight.
    pub fn mark_step(
        &mut self,
        kernel: &mut Kernel,
        heap: &Heap,
        max_objects: usize,
    ) -> Result<bool, HeapError> {
        let core = self.trace_core(kernel);
        let Some(m) = self.marking.as_mut() else {
            return Ok(true);
        };
        let mut t = Cycles::ZERO;
        for _ in 0..max_objects {
            let Some(obj) = m.gray.pop() else {
                break;
            };
            let (hdr, ht) = heap.read_header(kernel, core, obj)?;
            t += ht;
            for i in 0..hdr.num_refs as u64 {
                let (tgt, tc) = heap.read_ref(kernel, core, obj, i)?;
                t += tc;
                if !tgt.is_null() && heap.contains(tgt.0) && m.bitmap.mark(tgt.header_va()) {
                    m.gray.push(tgt);
                }
            }
        }
        m.concurrent_cycles += t;
        Ok(m.gray.is_empty())
    }

    /// Finish an in-flight incremental mark inside the pause: complete
    /// any remaining trace, drain the SATB buffer (tracing each logged
    /// reference), re-scan the roots, and apply the allocation
    /// watermark. All of it is charged to the STW final-mark portion —
    /// the abort-or-finish rule pays for unfinished concurrent work in
    /// the pause rather than letting cycles overlap.
    fn finish_mark(
        &mut self,
        kernel: &mut Kernel,
        heap: &Heap,
        roots: &RootSet,
    ) -> Result<Premark, HeapError> {
        let core = self.trace_core(kernel);
        let mut m = self.marking.take().expect("finish_mark requires an in-flight mark");
        let mut drain = Cycles::ZERO;

        // SATB drain: every overwritten reference is a mark root.
        let entries = self.satb.drain();
        let satb_logged = entries.len() as u64;
        drain += SATB_DRAIN_ENTRY_COST * satb_logged;
        for old in entries {
            if !old.is_null() && heap.contains(old.0) && m.bitmap.mark(old.header_va()) {
                m.gray.push(old);
            }
        }
        // Root re-scan: stores into root slots during the mark may
        // reference objects whose in-heap edges were never traced.
        for r in roots.iter_live() {
            if heap.contains(r.0) && m.bitmap.mark(r.header_va()) {
                m.gray.push(r);
            }
        }
        // Complete the trace from everything gray.
        while let Some(obj) = m.gray.pop() {
            let (hdr, ht) = heap.read_header(kernel, core, obj)?;
            drain += ht;
            for i in 0..hdr.num_refs as u64 {
                let (tgt, tc) = heap.read_ref(kernel, core, obj, i)?;
                drain += tc;
                if !tgt.is_null() && heap.contains(tgt.0) && m.bitmap.mark(tgt.header_va()) {
                    m.gray.push(tgt);
                }
            }
        }
        // Allocation watermark: objects born after the snapshot are live
        // this cycle regardless of reachability. Their fields only ever
        // held references the mutator obtained from the snapshot graph
        // (traced above) or from other new objects, so no re-trace is
        // needed — the standard SATB allocation rule.
        let (_, objects) = heap.space_and_objects();
        for &obj in objects {
            if obj.0 >= m.snapshot_top {
                m.bitmap.mark(obj.header_va());
            }
        }

        Ok(Premark {
            bitmap: m.bitmap,
            stw_mark: m.init_pause + drain,
            concurrent_mark: m.concurrent_cycles,
            satb_logged,
        })
    }

    /// The driver path: model a whole concurrent cycle at trigger time.
    /// The trace runs against the current heap, so the mark set — and
    /// therefore the compacted heap — is bit-identical to what the STW
    /// collector would produce; only the *accounting* differs (trace
    /// cycles charged off-pause, drain charged per logged entry).
    fn model_cycle(
        &mut self,
        kernel: &mut Kernel,
        heap: &Heap,
        roots: &RootSet,
    ) -> Result<Premark, HeapError> {
        let core = self.trace_core(kernel);
        let mut bitmap = MarkBitmap::new(heap.base(), heap.extent_words());
        let mut gray = Vec::new();
        let mut slots = 0u64;
        for r in roots.iter_live() {
            slots += 1;
            if heap.contains(r.0) && bitmap.mark(r.header_va()) {
                gray.push(r);
            }
        }
        let init_pause = INIT_MARK_ROOT_COST * slots.max(1);
        let mut concurrent = Cycles::ZERO;
        while let Some(obj) = gray.pop() {
            let (hdr, ht) = heap.read_header(kernel, core, obj)?;
            concurrent += ht;
            for i in 0..hdr.num_refs as u64 {
                let (tgt, tc) = heap.read_ref(kernel, core, obj, i)?;
                concurrent += tc;
                if !tgt.is_null() && heap.contains(tgt.0) && bitmap.mark(tgt.header_va()) {
                    gray.push(tgt);
                }
            }
        }
        // Drain the window's deletion-barrier log. The trace above is
        // already complete over the current heap, so every snapshot-live
        // entry is marked; the drain is the final-mark pause's visit cost,
        // proportional to how much the mutator overwrote since the last
        // cycle.
        let entries = self.satb.drain();
        let satb_logged = entries.len() as u64;
        Ok(Premark {
            bitmap,
            stw_mark: init_pause + SATB_DRAIN_ENTRY_COST * satb_logged,
            concurrent_mark: concurrent,
            satb_logged,
        })
    }
}

impl Collector for ConcurrentCollector {
    fn name(&self) -> &'static str {
        "SVAGC-concurrent"
    }

    fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError> {
        let premark = if self.marking.is_some() {
            // Abort-or-finish: a pressure-driven (or explicit) full GC
            // arriving mid-mark finishes the mark in this pause and runs
            // one transactional cycle — never two overlapping cycles.
            self.finish_mark(kernel, heap, roots)?
        } else {
            self.model_cycle(kernel, heap, roots)?
        };
        self.inner
            .collect_with_premark(kernel, heap, roots, Some(&premark))
    }

    fn log(&self) -> &GcLog {
        &self.inner.log
    }

    fn pressure_degrade(&mut self) -> bool {
        self.inner.degrade.force_escalate().is_some()
    }

    fn write_barrier(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        core: CoreId,
        obj: ObjRef,
        field: u64,
    ) -> Result<Cycles, HeapError> {
        if !self.barrier_enabled {
            return Ok(Cycles::ZERO);
        }
        // Deletion barrier: load the value about to be overwritten.
        let (old, mut cost) = heap.read_ref(kernel, core, obj, field)?;
        if !old.is_null() && heap.contains(old.0) {
            // Mid-mark, already-marked old values need no log entry (the
            // standard SATB filter); idle-window entries are kept so the
            // next cycle's drain charge reflects real mutator churn.
            let log_it = match &self.marking {
                Some(m) => !m.bitmap.is_marked(old.header_va()),
                None => true,
            };
            if log_it {
                self.satb.log(old);
                cost += SATB_LOG_COST;
            }
        }
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use svagc_heap::{HeapConfig, HeapVerifier, ObjShape};
    use svagc_kernel::Kernel;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::Asid;

    fn setup(bytes: u64) -> (Kernel, Heap, RootSet) {
        let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
        let heap = Heap::new(&mut k, Asid(1), HeapConfig::new(bytes)).unwrap();
        (k, heap, RootSet::new())
    }

    /// Build: root -> a -> b, plus garbage. Returns (a, b).
    fn linked_pair(
        k: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> (ObjRef, ObjRef) {
        let c0 = CoreId(0);
        let (a, _) = heap.alloc(k, c0, ObjShape::with_refs(2, 4)).unwrap();
        let (b, _) = heap.alloc(k, c0, ObjShape::with_refs(1, 4)).unwrap();
        heap.write_ref(k, c0, a, 0, b).unwrap();
        heap.write_data(k, c0, b, 1, 0, 0xB0B).unwrap();
        roots.push(a);
        for _ in 0..6 {
            heap.alloc(k, c0, ObjShape::data(16)).unwrap();
        }
        (a, b)
    }

    #[test]
    fn driver_path_matches_stw_bit_for_bit() {
        let (mut k1, mut h1, mut r1) = setup(8 << 20);
        linked_pair(&mut k1, &mut h1, &mut r1);
        let mut stw = Lisp2Collector::new(GcConfig::svagc(4));
        let s1 = stw.collect(&mut k1, &mut h1, &mut r1).unwrap();

        let (mut k2, mut h2, mut r2) = setup(8 << 20);
        linked_pair(&mut k2, &mut h2, &mut r2);
        let mut conc = ConcurrentCollector::new(Lisp2Collector::new(GcConfig::svagc(4)));
        let s2 = conc.collect(&mut k2, &mut h2, &mut r2).unwrap();

        let v = HeapVerifier::new();
        assert_eq!(
            v.content_hash(&k1, &mut h1),
            v.content_hash(&k2, &mut h2),
            "concurrent driver path must be bit-identical to STW"
        );
        assert_eq!(s1.live_objects, s2.live_objects);
        assert!(s2.concurrent_mark.get() > 0, "trace charged off-pause");
        assert!(
            s2.phases.mark < s1.phases.mark,
            "STW mark charge must shrink: {} !< {}",
            s2.phases.mark.get(),
            s1.phases.mark.get()
        );
        assert!(
            s2.phases.mark + s2.concurrent_mark >= s1.phases.mark,
            "work is moved, not deleted"
        );
    }

    #[test]
    fn lost_object_adversary_needs_the_barrier() {
        for barrier in [true, false] {
            let (mut k, mut heap, mut roots) = setup(8 << 20);
            let (a, b) = linked_pair(&mut k, &mut heap, &mut roots);
            let mut gc = ConcurrentCollector::new(Lisp2Collector::new(GcConfig::svagc(2)));
            gc.set_barrier_enabled(barrier);

            assert!(gc.begin_mark(&heap, &roots));
            // Initial mark saw only the roots: `a` is gray, `b` untouched.
            assert!(gc.is_marked(a));
            assert!(!gc.is_marked(b));
            // Hide `b` before the tracer visits `a`: move the only
            // reference into a root slot and null the field mid-mark (the
            // deletion barrier's moment).
            let rid = roots.push(b);
            let c0 = CoreId(0);
            let cost = gc.write_barrier(&mut k, &mut heap, c0, a, 0).unwrap();
            heap.write_ref(&mut k, c0, a, 0, ObjRef::NULL).unwrap();
            if barrier {
                assert!(cost.get() > 0 && gc.satb_pending() == 1);
            } else {
                assert_eq!(gc.satb_pending(), 0);
            }
            // Drop the root again: `b` is now hidden from any future scan
            // — only the SATB log remembers it was live at the snapshot.
            roots.set(rid, ObjRef::NULL);
            while !gc.mark_step(&mut k, &heap, 64).unwrap() {}
            let stats = gc.collect(&mut k, &mut heap, &mut roots).unwrap();
            if barrier {
                assert!(gc.is_marked(b) || stats.live_objects >= 2);
                // `b` survived: find it among the live objects by payload.
                let found = heap.objects_sorted().to_vec().iter().any(|&o| {
                    let (hdr, _) = heap.read_header(&mut k, c0, o).unwrap();
                    hdr.num_refs == 1
                        && heap.read_data(&mut k, c0, o, 1, 0).unwrap().0 == 0xB0B
                });
                assert!(found, "barrier on: hidden object survives the cycle");
                assert_eq!(stats.satb_logged, 1);
            } else {
                let found = heap.objects_sorted().to_vec().iter().any(|&o| {
                    let (hdr, _) = heap.read_header(&mut k, c0, o).unwrap();
                    hdr.num_refs == 1
                        && heap.read_data(&mut k, c0, o, 1, 0).unwrap().0 == 0xB0B
                });
                assert!(!found, "barrier off: the lost-object bug reproduces");
            }
        }
    }

    #[test]
    fn overlapping_begin_mark_is_rejected() {
        let (mut k, mut heap, mut roots) = setup(4 << 20);
        linked_pair(&mut k, &mut heap, &mut roots);
        let mut gc = ConcurrentCollector::new(Lisp2Collector::new(GcConfig::svagc(2)));
        assert!(gc.begin_mark(&heap, &roots));
        assert!(!gc.begin_mark(&heap, &roots), "abort-or-finish: no overlap");
        assert!(gc.marking());
        gc.collect(&mut k, &mut heap, &mut roots).unwrap();
        assert!(!gc.marking(), "collect finished the in-flight mark");
        assert!(gc.begin_mark(&heap, &roots), "idle again after the cycle");
    }

    #[test]
    fn satb_invariant_overwritten_refs_marked_or_logged() {
        // Property: between initial and final mark, every overwritten
        // in-heap reference is either already marked or in the SATB
        // buffer (never silently dropped).
        let (mut k, mut heap, mut roots) = setup(8 << 20);
        let c0 = CoreId(0);
        let mut objs = Vec::new();
        for i in 0..16u64 {
            let (o, _) = heap.alloc(&mut k, c0, ObjShape::with_refs(2, 2)).unwrap();
            if i % 3 == 0 {
                roots.push(o);
            }
            objs.push(o);
        }
        for i in 0..objs.len() {
            heap.write_ref(&mut k, c0, objs[i], 0, objs[(i + 5) % objs.len()])
                .unwrap();
        }
        let mut gc = ConcurrentCollector::new(Lisp2Collector::new(GcConfig::svagc(2)));
        assert!(gc.begin_mark(&heap, &roots));
        // Interleave partial marking with overwrites, checking the
        // invariant after every overwrite.
        let mut overwritten: Vec<ObjRef> = Vec::new();
        for &holder in &objs {
            gc.mark_step(&mut k, &heap, 2).unwrap();
            let (old, _) = heap.read_ref(&mut k, c0, holder, 0).unwrap();
            gc.write_barrier(&mut k, &mut heap, c0, holder, 0).unwrap();
            heap.write_ref(&mut k, c0, holder, 0, ObjRef::NULL).unwrap();
            if !old.is_null() && heap.contains(old.0) {
                overwritten.push(old);
            }
            for &o in &overwritten {
                let logged = gc.satb.entries().contains(&o);
                assert!(
                    gc.is_marked(o) || logged,
                    "overwritten ref {o:?} neither marked nor logged"
                );
            }
        }
        gc.collect(&mut k, &mut heap, &mut roots).unwrap();
    }

    #[test]
    fn idle_window_logging_feeds_drain_charge() {
        let (mut k, mut heap, mut roots) = setup(8 << 20);
        let (a, _b) = linked_pair(&mut k, &mut heap, &mut roots);
        let c0 = CoreId(0);
        let mut gc = ConcurrentCollector::new(Lisp2Collector::new(GcConfig::svagc(2)));
        // Idle-window overwrite: logged, drained (visit-only) at the next
        // cycle, charged into the final-mark portion of the pause.
        gc.write_barrier(&mut k, &mut heap, c0, a, 0).unwrap();
        heap.write_ref(&mut k, c0, a, 0, ObjRef::NULL).unwrap();
        assert_eq!(gc.satb_pending(), 1);
        let stats = gc.collect(&mut k, &mut heap, &mut roots).unwrap();
        assert_eq!(stats.satb_logged, 1);
        assert_eq!(gc.satb_pending(), 0);
        assert!(stats.phases.mark >= SATB_DRAIN_ENTRY_COST);
    }
}
