//! Collector configuration: which of the paper's mechanisms are active.

use crate::degrade::DegradePolicy;
use crate::resilience::RetryPolicy;

/// Which scheduling substrate drives the parallel LISP2 phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The classic four-phase pipeline: each phase fills a [`crate::WorkerPool`],
    /// hits a global barrier, and resets.
    #[default]
    Barrier,
    /// Work-packet scheduler ([`crate::packets`]): typed packets in
    /// dependency-ordered buckets; workers drain packets greedily with
    /// deterministic least-loaded stealing and flow across bucket
    /// boundaries wherever the dependency graph allows.
    Packets,
}

impl SchedulerKind {
    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "barrier" => Some(SchedulerKind::Barrier),
            "packets" => Some(SchedulerKind::Packets),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Barrier => "barrier",
            SchedulerKind::Packets => "packets",
        }
    }
}

/// Tunables of the LISP2/SVAGC collector.
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Parallel GC worker count (the paper tunes `GCThreadsCount`).
    pub gc_threads: usize,
    /// Use SwapVA for objects at/above the heap's threshold; `false` is the
    /// "memmove-only" variant (left bars of Fig. 11).
    pub use_swapva: bool,
    /// Aggregate up to this many swap requests per syscall (Fig. 5/6);
    /// `None` issues one syscall per move.
    pub aggregation: Option<usize>,
    /// PMD walk caching inside SwapVA (Fig. 7/8).
    pub pmd_cache: bool,
    /// Algorithm 2 for overlapping src/dst; when off such moves fall back
    /// to memmove.
    pub overlap_opt: bool,
    /// Algorithm 4: pin compaction workers, broadcast the shootdown once
    /// per cycle, then flush only locally. When off, every SwapVA call
    /// broadcasts IPIs to all cores (the "non-optimized" line of Fig. 9).
    pub pinned_compaction: bool,
    /// Work-stealing (greedy) load balance across GC workers; `false`
    /// models a statically partitioned phase (Shenandoah's copy phase).
    pub work_stealing: bool,
    /// Worker count override for the compaction phase only. `None` uses
    /// `gc_threads`. Shenandoah's copy phase "does not utilize the
    /// work-stealing mechanism and parallelism" (§V-A), modeled as
    /// `Some(1)`.
    pub compact_threads: Option<usize>,
    /// Run the heap verifier after each LISP2 phase and abort the cycle
    /// (with [`crate::GcError::Corruption`]) on any violation. Verification
    /// uses uncosted functional reads, so timings are unaffected.
    pub verify_phases: bool,
    /// Retry/backoff budget for transient SwapVA faults.
    pub retry: RetryPolicy,
    /// Per-phase watchdog deadline in virtual cycles; exceeding it aborts
    /// the cycle with [`crate::GcError::Deadline`]. `None` disarms the
    /// watchdog.
    pub deadline_cycles: Option<u64>,
    /// Circuit-breaker policy deciding whether an aborted cycle is
    /// retried in a degraded mode (see [`crate::degrade`]).
    pub degrade: DegradePolicy,
    /// Scheduling substrate for the parallel phases (barrier pipeline or
    /// work packets).
    pub scheduler: SchedulerKind,
    /// First machine core this collector's workers pin to (worker `w` →
    /// core `(core_base + w) % cores`). Multi-JVM tenants get disjoint
    /// bases so their pinned cores — and therefore Tracked-shootdown
    /// victim sets — never collide.
    pub core_base: usize,
}

impl GcConfig {
    /// Full SVAGC: everything the paper proposes, on.
    pub fn svagc(gc_threads: usize) -> GcConfig {
        GcConfig {
            gc_threads,
            use_swapva: true,
            aggregation: Some(32),
            pmd_cache: true,
            overlap_opt: true,
            pinned_compaction: true,
            work_stealing: true,
            compact_threads: None,
            verify_phases: false,
            retry: RetryPolicy::default(),
            deadline_cycles: None,
            degrade: DegradePolicy::off(),
            scheduler: SchedulerKind::Barrier,
            core_base: 0,
        }
    }

    /// The same LISP2 collector with SwapVA disabled (pure memmove) — the
    /// "-SwapVA" bars of Fig. 11.
    pub fn lisp2_memmove(gc_threads: usize) -> GcConfig {
        GcConfig {
            use_swapva: false,
            aggregation: None,
            ..GcConfig::svagc(gc_threads)
        }
    }

    /// SVAGC with the naive per-call global shootdown (Fig. 9 baseline).
    pub fn svagc_naive_flush(gc_threads: usize) -> GcConfig {
        GcConfig {
            pinned_compaction: false,
            ..GcConfig::svagc(gc_threads)
        }
    }

    /// Builder-style toggles (ablation benches).
    pub fn with_swapva(mut self, on: bool) -> GcConfig {
        self.use_swapva = on;
        self
    }

    /// Set aggregation batch size (`None` = separated calls).
    pub fn with_aggregation(mut self, batch: Option<usize>) -> GcConfig {
        self.aggregation = batch;
        self
    }

    /// Toggle PMD caching.
    pub fn with_pmd_cache(mut self, on: bool) -> GcConfig {
        self.pmd_cache = on;
        self
    }

    /// Toggle Algorithm 2 overlap handling.
    pub fn with_overlap(mut self, on: bool) -> GcConfig {
        self.overlap_opt = on;
        self
    }

    /// Toggle Algorithm 4 pinned compaction.
    pub fn with_pinned(mut self, on: bool) -> GcConfig {
        self.pinned_compaction = on;
        self
    }

    /// Toggle work stealing.
    pub fn with_stealing(mut self, on: bool) -> GcConfig {
        self.work_stealing = on;
        self
    }

    /// Override the compaction-phase worker count.
    pub fn with_compact_threads(mut self, n: Option<usize>) -> GcConfig {
        self.compact_threads = n;
        self
    }

    /// Toggle post-phase heap verification.
    pub fn with_verify_phases(mut self, on: bool) -> GcConfig {
        self.verify_phases = on;
        self
    }

    /// Override the transient-fault retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> GcConfig {
        self.retry = retry;
        self
    }

    /// Arm (or disarm) the per-phase watchdog deadline.
    pub fn with_deadline(mut self, cycles: Option<u64>) -> GcConfig {
        self.deadline_cycles = cycles;
        self
    }

    /// Set the degraded-mode circuit-breaker policy.
    pub fn with_degrade(mut self, policy: DegradePolicy) -> GcConfig {
        self.degrade = policy;
        self
    }

    /// Select the scheduling substrate (barrier pipeline or work packets).
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> GcConfig {
        self.scheduler = kind;
        self
    }

    /// Set this collector's core-affinity base (multi-tenant pinning).
    pub fn with_core_base(mut self, base: usize) -> GcConfig {
        self.core_base = base;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let s = GcConfig::svagc(8);
        assert!(s.use_swapva && s.pinned_compaction && s.pmd_cache);
        assert_eq!(s.gc_threads, 8);
        let m = GcConfig::lisp2_memmove(8);
        assert!(!m.use_swapva);
        assert!(m.work_stealing, "memmove variant keeps parallel phases");
        let n = GcConfig::svagc_naive_flush(4);
        assert!(n.use_swapva && !n.pinned_compaction);
    }

    #[test]
    fn builders_compose() {
        let c = GcConfig::svagc(2)
            .with_aggregation(None)
            .with_pmd_cache(false)
            .with_overlap(false)
            .with_stealing(false);
        assert!(c.aggregation.is_none());
        assert!(!c.pmd_cache && !c.overlap_opt && !c.work_stealing);
    }

    #[test]
    fn transaction_knobs_default_off() {
        let s = GcConfig::svagc(4);
        assert!(s.deadline_cycles.is_none());
        assert!(!s.degrade.enabled);
        let c = s
            .with_deadline(Some(1 << 20))
            .with_degrade(DegradePolicy::standard());
        assert_eq!(c.deadline_cycles, Some(1 << 20));
        assert!(c.degrade.enabled);
    }

    #[test]
    fn scheduler_defaults_and_parsing() {
        let s = GcConfig::svagc(4);
        assert_eq!(s.scheduler, SchedulerKind::Barrier);
        assert_eq!(s.core_base, 0);
        let c = s
            .with_scheduler(SchedulerKind::Packets)
            .with_core_base(8);
        assert_eq!(c.scheduler, SchedulerKind::Packets);
        assert_eq!(c.core_base, 8);
        assert_eq!(SchedulerKind::parse("packets"), Some(SchedulerKind::Packets));
        assert_eq!(SchedulerKind::parse("barrier"), Some(SchedulerKind::Barrier));
        assert_eq!(SchedulerKind::parse("bogus"), None);
        assert_eq!(SchedulerKind::Packets.name(), "packets");
    }
}
