//! Degraded-mode state machine: a circuit breaker over GC mechanisms.
//!
//! When a transactional cycle aborts (an unrecoverable SwapVA fault, or a
//! watchdog deadline), retrying with the exact same configuration would
//! most likely hit the exact same failure. The [`DegradeController`]
//! instead walks a ladder of progressively more conservative
//! configurations:
//!
//! ```text
//!             abort                    abort
//!   Normal ──────────► MemmoveOnly ──────────► SingleThreaded
//!     ▲                    │  ▲                     │
//!     └────────────────────┘  └─────────────────────┘
//!        N clean cycles           N clean cycles
//! ```
//!
//! * **MemmoveOnly** disables SwapVA entirely: every move is a byte copy,
//!   so the faulty syscall path is simply never entered.
//! * **SingleThreaded** additionally collapses the worker pool to one
//!   thread with no work stealing — the most deterministic, least
//!   concurrent shape the collector has.
//!
//! Recovery is probation-based: after [`DegradePolicy::probation`]
//! consecutive clean cycles at a degraded level, the controller steps
//! *one* level back toward [`DegradedMode::Normal`] (a half-open circuit
//! breaker — a new abort during probation re-escalates immediately).

use crate::config::GcConfig;
use crate::minor::MinorConfig;

/// How conservatively the next GC cycle runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradedMode {
    /// Full configuration as the user requested it.
    Normal,
    /// SwapVA disabled; all moves are byte copies.
    MemmoveOnly,
    /// MemmoveOnly plus a single GC worker, no work stealing.
    SingleThreaded,
}

impl DegradedMode {
    /// Numeric severity (0 = Normal), used for stats and trace args.
    pub fn level(&self) -> u8 {
        match self {
            DegradedMode::Normal => 0,
            DegradedMode::MemmoveOnly => 1,
            DegradedMode::SingleThreaded => 2,
        }
    }

    /// Human-readable name (CLI output, trace args).
    pub fn name(&self) -> &'static str {
        match self {
            DegradedMode::Normal => "normal",
            DegradedMode::MemmoveOnly => "memmove-only",
            DegradedMode::SingleThreaded => "single-threaded",
        }
    }

    /// The mode at numeric severity `level` (values past the ladder clamp
    /// to [`DegradedMode::SingleThreaded`]).
    pub fn from_level(level: u8) -> DegradedMode {
        match level {
            0 => DegradedMode::Normal,
            1 => DegradedMode::MemmoveOnly,
            _ => DegradedMode::SingleThreaded,
        }
    }

    /// One step more conservative (saturating at the bottom of the ladder).
    fn escalate(self) -> DegradedMode {
        DegradedMode::from_level((self.level() + 1).min(2))
    }

    /// One step back toward Normal.
    fn recover(self) -> DegradedMode {
        DegradedMode::from_level(self.level().saturating_sub(1))
    }
}

/// Policy knobs of the degradation circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// When false, aborts propagate to the caller without any in-cycle
    /// retry or mode escalation (the pre-transactional behavior).
    pub enabled: bool,
    /// Consecutive clean cycles required before stepping one level back
    /// toward Normal.
    pub probation: u32,
}

impl DegradePolicy {
    /// Degradation off: aborted cycles fail outright.
    pub fn off() -> DegradePolicy {
        DegradePolicy {
            enabled: false,
            probation: 2,
        }
    }

    /// Degradation on with a 2-clean-cycle probation.
    pub fn standard() -> DegradePolicy {
        DegradePolicy {
            enabled: true,
            probation: 2,
        }
    }

    /// Parse a CLI policy string: `off`, `standard`, or `standard:N`
    /// (probation of `N` clean cycles). Returns `None` on anything else.
    pub fn parse(s: &str) -> Option<DegradePolicy> {
        match s {
            "off" => Some(DegradePolicy::off()),
            "standard" => Some(DegradePolicy::standard()),
            _ => {
                let n = s.strip_prefix("standard:")?.parse::<u32>().ok()?;
                Some(DegradePolicy {
                    enabled: true,
                    probation: n.max(1),
                })
            }
        }
    }
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy::off()
    }
}

/// A mode transition reported by the controller (for tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeTransition {
    /// Mode before the transition.
    pub from: DegradedMode,
    /// Mode after the transition.
    pub to: DegradedMode,
}

/// The live circuit-breaker state carried across GC cycles.
#[derive(Debug, Clone)]
pub struct DegradeController {
    policy: DegradePolicy,
    mode: DegradedMode,
    clean_cycles: u32,
    /// Total escalations (aborts that raised the level).
    pub escalations: u64,
    /// Total recoveries (probations served, level lowered).
    pub recoveries: u64,
}

impl DegradeController {
    /// A controller starting at [`DegradedMode::Normal`].
    pub fn new(policy: DegradePolicy) -> DegradeController {
        DegradeController {
            policy,
            mode: DegradedMode::Normal,
            clean_cycles: 0,
            escalations: 0,
            recoveries: 0,
        }
    }

    /// The mode the next cycle should run in.
    pub fn mode(&self) -> DegradedMode {
        self.mode
    }

    /// The active policy.
    pub fn policy(&self) -> DegradePolicy {
        self.policy
    }

    /// An aborted cycle: escalate one level (when enabled) and restart
    /// probation. Returns the transition if the mode actually changed —
    /// `None` means the ladder is exhausted and the abort should propagate.
    pub fn on_abort(&mut self) -> Option<ModeTransition> {
        self.clean_cycles = 0;
        if !self.policy.enabled {
            return None;
        }
        let from = self.mode;
        let to = from.escalate();
        if to == from {
            return None;
        }
        self.mode = to;
        self.escalations += 1;
        Some(ModeTransition { from, to })
    }

    /// Pressure-driven escalation (the pressure ladder's memmove-only
    /// rung): unconditionally step one level more conservative, even when
    /// the abort-driven policy is disabled — memory pressure is an
    /// explicit request, not a speculative retry. Returns `None` only
    /// when the ladder is already at its last rung.
    pub fn force_escalate(&mut self) -> Option<ModeTransition> {
        self.clean_cycles = 0;
        let from = self.mode;
        let to = from.escalate();
        if to == from {
            return None;
        }
        self.mode = to;
        self.escalations += 1;
        Some(ModeTransition { from, to })
    }

    /// A committed cycle: count toward probation; after
    /// [`DegradePolicy::probation`] consecutive clean cycles, step one
    /// level back toward Normal. Returns the recovery transition, if any.
    pub fn on_clean(&mut self) -> Option<ModeTransition> {
        if self.mode == DegradedMode::Normal {
            self.clean_cycles = 0;
            return None;
        }
        self.clean_cycles += 1;
        if self.clean_cycles < self.policy.probation.max(1) {
            return None;
        }
        let from = self.mode;
        let to = from.recover();
        self.mode = to;
        self.clean_cycles = 0;
        self.recoveries += 1;
        Some(ModeTransition { from, to })
    }

    /// The full-GC configuration the current mode dictates, derived from
    /// the user's requested `cfg`.
    pub fn apply(&self, cfg: &GcConfig) -> GcConfig {
        match self.mode {
            DegradedMode::Normal => *cfg,
            DegradedMode::MemmoveOnly => cfg.with_swapva(false).with_aggregation(None),
            DegradedMode::SingleThreaded => {
                let mut c = cfg.with_swapva(false).with_aggregation(None);
                c.gc_threads = 1;
                c.compact_threads = Some(1);
                c.work_stealing = false;
                c
            }
        }
    }

    /// The minor-GC configuration the current mode dictates.
    pub fn apply_minor(&self, cfg: &MinorConfig) -> MinorConfig {
        match self.mode {
            DegradedMode::Normal => *cfg,
            DegradedMode::MemmoveOnly => MinorConfig {
                use_swapva: false,
                aggregation: None,
                ..*cfg
            },
            DegradedMode::SingleThreaded => MinorConfig {
                use_swapva: false,
                aggregation: None,
                gc_threads: 1,
                ..*cfg
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_escalates_and_saturates() {
        let mut c = DegradeController::new(DegradePolicy::standard());
        assert_eq!(c.mode(), DegradedMode::Normal);
        let t = c.on_abort().unwrap();
        assert_eq!((t.from, t.to), (DegradedMode::Normal, DegradedMode::MemmoveOnly));
        let t = c.on_abort().unwrap();
        assert_eq!(t.to, DegradedMode::SingleThreaded);
        assert!(c.on_abort().is_none(), "ladder exhausted");
        assert_eq!(c.mode(), DegradedMode::SingleThreaded);
        assert_eq!(c.escalations, 2);
    }

    #[test]
    fn disabled_policy_never_escalates() {
        let mut c = DegradeController::new(DegradePolicy::off());
        assert!(c.on_abort().is_none());
        assert_eq!(c.mode(), DegradedMode::Normal);
    }

    #[test]
    fn probation_recovers_one_level_at_a_time() {
        let mut c = DegradeController::new(DegradePolicy::standard());
        c.on_abort();
        c.on_abort(); // SingleThreaded
        assert!(c.on_clean().is_none(), "1 of 2 clean cycles");
        let t = c.on_clean().unwrap();
        assert_eq!(t.to, DegradedMode::MemmoveOnly);
        assert!(c.on_clean().is_none());
        let t = c.on_clean().unwrap();
        assert_eq!(t.to, DegradedMode::Normal);
        assert_eq!(c.recoveries, 2);
        assert!(c.on_clean().is_none(), "Normal cycles are not transitions");
    }

    #[test]
    fn abort_during_probation_re_escalates() {
        let mut c = DegradeController::new(DegradePolicy::standard());
        c.on_abort(); // MemmoveOnly
        c.on_clean(); // 1 of 2
        let t = c.on_abort().unwrap(); // probation reset AND escalation
        assert_eq!(t.to, DegradedMode::SingleThreaded);
        c.on_clean();
        assert_eq!(c.mode(), DegradedMode::SingleThreaded, "counter restarted");
    }

    #[test]
    fn apply_shapes_the_config() {
        let base = GcConfig::svagc(8);
        let mut c = DegradeController::new(DegradePolicy::standard());
        assert!(c.apply(&base).use_swapva);
        c.on_abort();
        let m = c.apply(&base);
        assert!(!m.use_swapva && m.aggregation.is_none());
        assert_eq!(m.gc_threads, 8, "MemmoveOnly keeps parallelism");
        c.on_abort();
        let s = c.apply(&base);
        assert_eq!(s.gc_threads, 1);
        assert_eq!(s.compact_threads, Some(1));
        assert!(!s.work_stealing);
    }

    #[test]
    fn apply_minor_shapes_the_config() {
        let base = MinorConfig::svagc(4);
        let mut c = DegradeController::new(DegradePolicy::standard());
        c.on_abort();
        let m = c.apply_minor(&base);
        assert!(!m.use_swapva && m.aggregation.is_none());
        assert_eq!(m.gc_threads, 4);
        c.on_abort();
        assert_eq!(c.apply_minor(&base).gc_threads, 1);
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(DegradePolicy::parse("off"), Some(DegradePolicy::off()));
        assert_eq!(DegradePolicy::parse("standard"), Some(DegradePolicy::standard()));
        assert_eq!(
            DegradePolicy::parse("standard:5"),
            Some(DegradePolicy {
                enabled: true,
                probation: 5
            })
        );
        assert_eq!(DegradePolicy::parse("standard:0").unwrap().probation, 1);
        assert!(DegradePolicy::parse("bogus").is_none());
    }
}
