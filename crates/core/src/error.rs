//! The GC-level error hierarchy.
//!
//! Lower layers stay specific — [`VmError`] for the memory model,
//! [`SwapVaError`] for the syscall layer, [`HeapError`] for allocation —
//! and [`GcError`] is the type a collection cycle actually returns:
//! everything a driver or workload has to be prepared for, including
//! heap corruption detected by the post-phase verifier.

use std::fmt;
use svagc_heap::{HeapError, VerifyReport};
use svagc_kernel::{CrashPoint, SwapVaError, TierError};
use svagc_metrics::Cycles;
use svagc_vmem::VmError;

/// Failure of a GC cycle (or of heap access on behalf of the mutator).
#[derive(Debug, Clone)]
pub enum GcError {
    /// Heap-level failure (allocation, out of frames, unmapped access).
    Heap(HeapError),
    /// A SwapVA failure the resilient executor could not absorb — the
    /// retry budget ran out on a transient fault *and* the memmove
    /// fallback itself failed, or a structural error surfaced.
    Swap(SwapVaError),
    /// A GC phase blew past its watchdog deadline
    /// ([`crate::GcConfig::deadline_cycles`]). The transactional collector
    /// treats this exactly like an unrecoverable fault: abort, roll back,
    /// escalate the degraded mode.
    Deadline {
        /// Phase whose makespan exceeded the budget.
        phase: &'static str,
        /// The makespan at the failed check.
        elapsed: Cycles,
        /// The per-phase budget.
        budget: Cycles,
    },
    /// The post-phase heap verifier found broken invariants. Collection
    /// aborts rather than letting a corrupted heap reach the mutator.
    Corruption {
        /// LISP2 phase after which the verifier ran.
        phase: &'static str,
        /// Number of violations found.
        violations: usize,
        /// The first violation, rendered (the one that matters).
        first: String,
    },
    /// A seeded crash point fired mid-cycle: the simulated machine is
    /// dead. Bypasses rollback, retry, and the degraded-mode ladder — the
    /// process that would run them no longer exists. The crash/recovery
    /// harness takes over from the durable state.
    Crashed {
        /// Where the machine died.
        point: CrashPoint,
    },
    /// The degraded-mode ladder was already at its last rung when this
    /// operational error aborted the cycle: there is nothing left to
    /// degrade to, so the collector gives up. Wraps the error that
    /// exhausted it.
    Exhausted(Box<GcError>),
    /// The pressure-escalation ladder ran out of remedies: early GC, full
    /// GC, and degraded mode all failed to bring the tenant back under its
    /// frame budget, so this allocation cannot be satisfied. Strictly
    /// tenant-local — the fleet layer quarantines the tenant; it never
    /// panics and never touches another tenant's frames.
    OutOfMemory {
        /// Bytes the failed allocation requested.
        requested: u64,
        /// The pressure-ladder rung that was the last remedy attempted.
        last_action: &'static str,
    },
    /// The far-memory tier failed in a way its own ladder could not
    /// absorb: a demoted page is unfetchable after retries (the device
    /// lost data the heap needs) or the device died mid-operation. This
    /// is the tenant-local terminal failure of cold-object tiering — it
    /// never panics and never touches another tenant's frames.
    Tier(TierError),
}

impl GcError {
    /// Build a corruption error from a failed verification pass.
    /// Panics if the report is clean — calling this on a clean report is
    /// itself a bug in the collector.
    pub fn corruption(report: &VerifyReport) -> GcError {
        let v = report
            .violations
            .first()
            .expect("GcError::corruption requires a failed VerifyReport");
        GcError::Corruption {
            phase: report.phase,
            violations: report.violations.len(),
            first: format!("{} at {}: {}", v.invariant, v.at, v.detail),
        }
    }
}

impl GcError {
    /// Operational failures — an injected/hardware fault the executor
    /// could not absorb, or a watchdog expiry. These are the errors the
    /// degraded-mode ladder may retry after rollback; everything else
    /// (allocation pressure, structural [`VmError`]s, verifier-detected
    /// corruption) must propagate to the caller unchanged.
    pub fn is_operational(&self) -> bool {
        matches!(
            self,
            GcError::Swap(SwapVaError::Fault { .. }) | GcError::Deadline { .. }
        )
    }

    /// The crash point, if this error (or the error an
    /// [`GcError::Exhausted`] wraps) is a machine crash.
    pub fn crash_point(&self) -> Option<CrashPoint> {
        match self {
            GcError::Crashed { point } => Some(*point),
            GcError::Swap(SwapVaError::Crashed { point }) => Some(*point),
            GcError::Tier(TierError::Crashed { point }) => Some(*point),
            GcError::Exhausted(inner) => inner.crash_point(),
            _ => None,
        }
    }

    /// True when this error means the far-memory device permanently lost
    /// or refused data the heap needs (directly, via the VM layer's
    /// fetch-on-access path, or wrapped by the degrade ladder). Drivers
    /// map this to a dedicated process exit code.
    pub fn is_device_failure(&self) -> bool {
        match self {
            GcError::Tier(e) => !matches!(e, TierError::Crashed { .. }),
            GcError::Heap(HeapError::Vm(VmError::FarPageLost(_))) => true,
            GcError::Exhausted(inner) => inner.is_device_failure(),
            _ => false,
        }
    }
}

impl From<TierError> for GcError {
    fn from(e: TierError) -> GcError {
        match e {
            // A machine crash is a machine crash regardless of which
            // subsystem tripped it — keep the crash/recovery harness's
            // classification uniform.
            TierError::Crashed { point } => GcError::Crashed { point },
            other => GcError::Tier(other),
        }
    }
}

impl From<HeapError> for GcError {
    fn from(e: HeapError) -> GcError {
        GcError::Heap(e)
    }
}

impl From<SwapVaError> for GcError {
    fn from(e: SwapVaError) -> GcError {
        GcError::Swap(e)
    }
}

impl From<VmError> for GcError {
    fn from(e: VmError) -> GcError {
        GcError::Heap(HeapError::Vm(e))
    }
}

impl fmt::Display for GcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcError::Heap(e) => write!(f, "heap error: {e}"),
            GcError::Swap(e) => write!(f, "unrecoverable swap failure: {e}"),
            GcError::Deadline {
                phase,
                elapsed,
                budget,
            } => write!(
                f,
                "watchdog deadline expired in {phase} phase ({elapsed} elapsed, budget {budget})"
            ),
            GcError::Corruption {
                phase,
                violations,
                first,
            } => write!(
                f,
                "heap corruption after {phase} phase ({violations} violation(s); first: {first})"
            ),
            GcError::Crashed { point } => {
                write!(f, "machine crashed at seeded crash point {point}")
            }
            GcError::Exhausted(inner) => {
                write!(f, "degraded-mode ladder exhausted ({inner})")
            }
            GcError::OutOfMemory { requested, last_action } => write!(
                f,
                "out of memory: {requested} B unsatisfiable after pressure ladder (last action: {last_action})"
            ),
            GcError::Tier(e) => write!(f, "far-memory tier failure: {e}"),
        }
    }
}

impl std::error::Error for GcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GcError::Heap(e) => Some(e),
            GcError::Swap(e) => Some(e),
            GcError::Tier(e) => Some(e),
            GcError::Exhausted(inner) => Some(inner),
            GcError::Deadline { .. }
            | GcError::Corruption { .. }
            | GcError::Crashed { .. }
            | GcError::OutOfMemory { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_vmem::VirtAddr;

    #[test]
    fn conversions_compose() {
        let g: GcError = VmError::OutOfFrames.into();
        assert!(matches!(g, GcError::Heap(HeapError::Vm(_))));
        let g: GcError = HeapError::TooLarge { requested: 1 }.into();
        assert!(format!("{g}").contains("heap error"));
    }

    #[test]
    fn deadline_renders_and_classifies() {
        let e = GcError::Deadline {
            phase: "compact",
            elapsed: Cycles(5000),
            budget: Cycles(4096),
        };
        let s = format!("{e}");
        assert!(s.contains("deadline") && s.contains("compact"));
        assert!(e.is_operational());
        assert!(!GcError::Heap(HeapError::TooLarge { requested: 1 }).is_operational());
        let vm: GcError = VmError::OutOfFrames.into();
        assert!(!vm.is_operational(), "structural errors are not retried");
    }

    #[test]
    fn corruption_renders_first_violation() {
        let report = VerifyReport {
            phase: "compact",
            checked: 3,
            violations: vec![svagc_heap::Violation {
                invariant: "forwarding-cleared",
                at: VirtAddr(0x1000),
                detail: "stale".to_string(),
            }],
        };
        let g = GcError::corruption(&report);
        let s = format!("{g}");
        assert!(s.contains("compact") && s.contains("forwarding-cleared"));
    }
}
