//! The GC transaction protocol: every cycle is all-or-nothing.
//!
//! A [`CompactionJournal`] brackets one collection attempt:
//!
//! 1. [`CompactionJournal::begin`] snapshots the collector-visible
//!    pre-state — the heap's object index and cursor, the root slots, and
//!    (when verification is on) the FNV content hash of every live object
//!    — and arms the kernel's undo journal, which from then on records
//!    every PTE swap, memmove, and word write the cycle applies.
//! 2. On success, [`CompactionJournal::commit`] discards the journal:
//!    the new heap layout is published and the transaction is over.
//! 3. On *any* error, [`CompactionJournal::abort`] replays the kernel
//!    journal backward (restoring memory and page tables bit-for-bit),
//!    restores the heap index and root slots, and broadcasts a TLB
//!    shootdown so no core can see a rolled-back mapping. After an abort
//!    the mutator-visible heap is exactly the pre-GC heap — the caller
//!    may retry the cycle (typically degraded, see
//!    [`crate::degrade::DegradeController`]) or surface the error.
//!
//! The undo journal lives in the *kernel* layer ([`svagc_kernel::OpJournal`])
//! because that is the only layer that sees every mutation: collector code
//! never writes memory except through `Kernel` entry points. This wrapper
//! adds the collector-side pre-state that the kernel cannot know about.

use crate::error::GcError;
use crate::recovery::CycleMeta;
use svagc_heap::{Heap, HeapSnapshot, HeapVerifier, ObjRef, RootSet};
use svagc_kernel::{CoreId, CrashPoint, Kernel, RollbackError};
use svagc_metrics::Cycles;

/// What one rollback cost and undid.
#[derive(Debug, Clone, Copy)]
pub struct RollbackReport {
    /// Journal entries replayed backward.
    pub ops: usize,
    /// Pages rewritten (PTE re-swaps and byte restores).
    pub pages: u64,
    /// Simulated cycles the rollback itself consumed.
    pub cycles: Cycles,
}

/// Pre-state of one transactional GC cycle. See the module docs.
#[derive(Debug)]
pub struct CompactionJournal {
    heap: HeapSnapshot,
    roots: Vec<ObjRef>,
    pre_hash: Option<u64>,
}

impl CompactionJournal {
    /// Open the transaction: snapshot collector pre-state and arm the
    /// kernel undo journal. When `want_hash` is set, the heap's content
    /// hash is computed up front so an abort can prove bit-for-bit
    /// restoration.
    ///
    /// When the kernel's write-ahead log is armed, this also opens a WAL
    /// epoch whose begin record carries the full pre-cycle snapshot
    /// ([`CycleMeta`]) — the state crash recovery restores if this cycle
    /// never commits. The content hash is always computed in that case:
    /// it is the recovery oracle's ground truth.
    pub fn begin(
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &RootSet,
        want_hash: bool,
    ) -> CompactionJournal {
        let pre_hash = (want_hash || kernel.wal_enabled())
            .then(|| HeapVerifier::new().content_hash(kernel, heap));
        let txn = CompactionJournal {
            heap: heap.snapshot(),
            roots: roots.snapshot(),
            pre_hash,
        };
        if kernel.wal_enabled() {
            let meta = CycleMeta::capture(heap, roots, pre_hash.unwrap_or(0));
            kernel.wal_cycle_begin(meta.encode());
        }
        kernel.journal_begin();
        txn
    }

    /// The pre-GC content hash, when `begin` was asked to compute one.
    pub fn pre_hash(&self) -> Option<u64> {
        self.pre_hash
    }

    /// Commit: the cycle succeeded; drop the undo journal. When a WAL
    /// epoch is open, the commit record — carrying the full post-cycle
    /// snapshot and content hash — is appended first, making the cycle
    /// durable: a crash from here on recovers to the *post*-cycle heap.
    pub fn commit(self, kernel: &mut Kernel, heap: &mut Heap, roots: &RootSet) {
        if kernel.wal_cycle_open() {
            let hash = HeapVerifier::new().content_hash(kernel, heap);
            let meta = CycleMeta::capture(heap, roots, hash);
            kernel.wal_commit(meta.encode());
        }
        kernel.journal_retire();
    }

    /// Abort: replay the kernel journal backward, restore the heap index
    /// and roots, and broadcast a shootdown so every core drops mappings
    /// the rollback may have re-swapped. `core` is charged for the work.
    /// Once the rollback has fully restored the pre-cycle state, the open
    /// WAL epoch (if any) is closed with an abort record — the durable
    /// promise that recovery after a later crash need not undo this cycle.
    ///
    /// Errors are [`GcError::Crashed`] when a seeded crash point killed
    /// the machine mid-rollback (the WAL epoch then stays open, so crash
    /// recovery redoes the undo from the durable log), or
    /// [`GcError::Corruption`] when the undo journal itself is
    /// inconsistent — a simulator bug, not an operational condition.
    pub fn abort(
        self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
        core: CoreId,
    ) -> Result<RollbackReport, GcError> {
        let journal = kernel.journal_take().unwrap_or_default();
        let ops = journal.len();
        // Memory and page tables first (needs the space the cycle ran in)…
        let (mut cycles, pages) =
            kernel
                .rollback(heap.space_mut(), journal, core)
                .map_err(|e| match e {
                    RollbackError::Vm(v) => GcError::from(v),
                    RollbackError::Crashed => GcError::Crashed {
                        point: CrashPoint::MidRollback,
                    },
                    RollbackError::Replayed { id } => GcError::Corruption {
                        phase: "rollback",
                        violations: 1,
                        first: format!("undo journal {id} was already replayed"),
                    },
                })?;
        // …then the collector-side index and roots…
        let asid = heap.space().asid();
        heap.restore(self.heap);
        roots.restore(self.roots);
        // …then make sure no core's TLB still caches a rolled-back PTE.
        let (flush, _intf) = kernel.flush_asid_all_cores(core, asid);
        cycles += flush;
        if let Some(point) = kernel.crashed() {
            return Err(GcError::Crashed { point });
        }
        kernel.wal_cycle_aborted();
        Ok(RollbackReport { ops, pages, cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_heap::{HeapConfig, ObjShape};
    use svagc_metrics::MachineConfig;
    use svagc_vmem::Asid;

    const CORE: CoreId = CoreId(0);

    #[test]
    fn abort_restores_heap_hash_and_roots() {
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 16 << 20);
        let mut heap = Heap::new(&mut k, Asid(1), HeapConfig::new(4 << 20)).unwrap();
        let mut roots = RootSet::new();
        let (a, _) = heap.alloc(&mut k, CORE, ObjShape::data(8)).unwrap();
        let (b, _) = heap.alloc(&mut k, CORE, ObjShape::data(8)).unwrap();
        let rid = roots.push(a);
        let verifier = HeapVerifier::new();
        let pre = verifier.content_hash(&k, &mut heap);

        let txn = CompactionJournal::begin(&mut k, &mut heap, &roots, true);
        assert_eq!(txn.pre_hash(), Some(pre));
        // Scribble like a half-done cycle: payload writes, a root retarget.
        heap.write_data(&mut k, CORE, a, 0, 0, 0xDEAD).unwrap();
        heap.write_data(&mut k, CORE, b, 0, 1, 0xBEEF).unwrap();
        roots.set(rid, b);
        assert_ne!(verifier.content_hash(&k, &mut heap), pre);

        let report = txn.abort(&mut k, &mut heap, &mut roots, CORE).unwrap();
        assert!(report.ops >= 2);
        assert_eq!(verifier.content_hash(&k, &mut heap), pre, "bit-for-bit");
        assert_eq!(roots.get(rid), a);
    }

    #[test]
    fn commit_discards_the_journal() {
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 16 << 20);
        let mut heap = Heap::new(&mut k, Asid(1), HeapConfig::new(4 << 20)).unwrap();
        let roots = RootSet::new();
        let txn = CompactionJournal::begin(&mut k, &mut heap, &roots, false);
        assert!(txn.pre_hash().is_none());
        txn.commit(&mut k, &mut heap, &roots);
        assert!(k.journal_take().is_none(), "commit consumed the journal");
    }
}
