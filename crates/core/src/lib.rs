//! SVAGC — the paper's collector: a parallel LISP2 mark-compact full GC
//! whose compaction phase moves large objects by swapping their page-table
//! entries (the SwapVA system call) instead of copying bytes.
//!
//! * [`config`] — which mechanisms are on ([`GcConfig::svagc`] vs
//!   [`GcConfig::lisp2_memmove`] is the paper's central comparison).
//! * [`lisp2`] — the four STW phases over real simulated memory.
//! * [`scheduler`] — deterministic virtual-time model of parallel GC
//!   workers (work stealing vs static partitioning).
//! * [`packets`] — the work-packet/work-bucket scheduling substrate
//!   (`--scheduler packets`): typed packets in dependency-ordered buckets
//!   with deterministic least-loaded stealing.
//! * [`stats`] — per-phase and per-cycle accounting behind every figure.
//! * [`collector`] — the [`Collector`] trait baselines also implement.
//! * [`applicability`] — Table I as code.
//! * [`error`] / [`resilience`] — the typed [`GcError`] hierarchy and the
//!   retry/fallback/split executor that keeps compaction alive under
//!   injected SwapVA faults.
//! * [`journal`] / [`watchdog`] / [`degrade`] — the transactional cycle
//!   protocol: every collection is all-or-nothing (undo journal +
//!   rollback), bounded in time (per-phase deadlines), and survivable
//!   (the degraded-mode circuit breaker).
//! * [`recovery`] — the crash-recovery state machine: classify the
//!   write-ahead log after a simulated crash, undo torn cycles, and
//!   rebuild a heap proven bit-identical to a pre- or post-cycle
//!   snapshot (never a hybrid).
//! * [`protocol`] — a schedule-exploring model checker of the §IV
//!   TLB-coherence protocols, with a built-in mutation suite proving the
//!   checker itself has teeth.

#![warn(missing_docs)]

pub mod applicability;
pub mod collector;
pub mod concurrent;
pub mod config;
pub mod degrade;
pub mod error;
pub mod journal;
pub mod lisp2;
pub mod minor;
pub mod packets;
pub mod pressure;
pub mod protocol;
pub mod recovery;
pub mod resilience;
pub mod scheduler;
pub mod stats;
pub mod tier;
pub mod watchdog;

pub use collector::Collector;
pub use concurrent::{ConcurrentCollector, INIT_MARK_ROOT_COST, SATB_DRAIN_ENTRY_COST, SATB_LOG_COST};
pub use config::{GcConfig, SchedulerKind};
pub use degrade::{DegradeController, DegradePolicy, DegradedMode, ModeTransition};
pub use error::GcError;
pub use journal::{CompactionJournal, RollbackReport};
pub use lisp2::{Lisp2Collector, Premark};
pub use minor::{full_collect_generational, MinorConfig, MinorGc, MinorStats};
pub use packets::{PacketKind, PacketScheduler, PacketTicket, SchedStats};
pub use pressure::{PressureAction, PressureEscalator, PressureStats};
pub use protocol::{
    check_protocol, mutation_suite, Counterexample, ExploreReport, ModelConfig, Mutation,
};
pub use recovery::{
    recover, CycleClass, CycleMeta, RecoveryError, RecoveryFailure, RecoveryReport,
    RecoverySuccess,
};
pub use resilience::{execute_swaps, RetryPolicy, SwapOutcome};
pub use scheduler::{Placement, WorkerPool};
pub use stats::{GcCycleStats, GcLog, PhaseBreakdown};
pub use tier::{TierController, TierCtlStats, TierMode, TierPolicy};
pub use watchdog::GcWatchdog;
