//! The parallel LISP2 mark-compact collector with SwapVA integration.
//!
//! Four STW phases (paper §II), all operating on real simulated memory:
//!
//! 1. **Mark** — trace from roots, set header bits in a [`MarkBitmap`].
//! 2. **Forward** — `CALCNEWADD` (Algorithm 3): slide a compaction cursor
//!    over live objects in address order, page-aligning SwapVA candidates,
//!    and store each object's destination in its forwarding word.
//! 3. **Adjust** — rewrite every reference field (and root slot) to the
//!    target's forwarding address.
//! 4. **Compact** — `MOVEOBJECT` + `COMPACTOPT` (Algorithms 3/4): move each
//!    live object to its destination, by PTE swap when it is at least the
//!    threshold and both endpoints are page-aligned, else by memmove; under
//!    Algorithm 4 the shootdown is broadcast once and per-move flushes stay
//!    local.
//!
//! Execution is host-sequential in ascending address order (which is what
//! makes sliding safe) while cycle costs are attributed to simulated
//! workers via [`WorkerPool`] — see that module for the model.

use crate::config::{GcConfig, SchedulerKind};
use crate::degrade::DegradeController;
use crate::error::GcError;
use crate::journal::CompactionJournal;
use crate::packets::{chunk_ranges, PacketKind, PacketScheduler, PacketTicket, MARK_CHUNK};
use crate::resilience::execute_swaps;
use crate::scheduler::WorkerPool;
use crate::stats::{GcCycleStats, GcLog};
use crate::watchdog::GcWatchdog;
use svagc_heap::{Heap, HeapError, HeapVerifier, MarkBitmap, ObjHeader, ObjRef, RootSet, VerifyReport};
use svagc_kernel::{CoreId, FlushMode, Kernel, SwapBatch, SwapRequest, SwapVaOptions};
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::{VirtAddr, PAGE_SIZE};

/// During an STW phase the victims of an IPI broadcast are the *other GC
/// workers* — every naive per-call shootdown stalls all of them for one
/// interrupt handling. (`interference` is total remote cycles across all
/// cores; each worker core absorbs its per-core share.)
fn stall_coworkers(pool: &mut WorkerPool, kernel: &Kernel, interference: Cycles) {
    if interference.get() == 0 {
        return;
    }
    let peers = (kernel.cores() as u64 - 1).max(1);
    pool.charge_all(interference / peers);
}

/// A LISP2 mark-compact collector (SVAGC when `cfg.use_swapva`).
#[derive(Debug)]
pub struct Lisp2Collector {
    /// Active configuration.
    pub cfg: GcConfig,
    /// Per-cycle statistics log.
    pub log: GcLog,
    /// Degraded-mode circuit breaker carried across cycles: decides how
    /// conservatively the *next* cycle runs after aborts, and recovers
    /// toward normal after clean cycles.
    pub degrade: DegradeController,
    /// Cumulative GC virtual time: the trace-timeline position where the
    /// next cycle's events begin. Counts only GC work (phase makespans) —
    /// mutator execution between cycles is excluded, so traces from runs
    /// with different allocation rates stay comparable.
    timeline: Cycles,
}

/// A pending move computed in the forward phase.
#[derive(Debug, Clone, Copy)]
struct PlannedMove {
    src: ObjRef,
    dst: ObjRef,
    header: ObjHeader,
}

/// A finished concurrent (SATB) mark handed to the STW cycle.
///
/// [`Lisp2Collector::collect_with_premark`] skips its own mark phase and
/// compacts against this bitmap instead: the trace already ran interleaved
/// with the mutator, so the pause charges only the short STW portion
/// (initial root scan plus the final SATB-buffer drain). The off-pause
/// trace cycles are charged as mutator interference, exactly like IPI
/// shootdown time.
#[derive(Debug, Clone)]
pub struct Premark {
    /// Marks for every object the cycle must keep. May be a strict
    /// superset of current reachability (SATB floating garbage), never a
    /// subset.
    pub bitmap: MarkBitmap,
    /// STW marking charge: initial-mark pause + final-mark SATB drain.
    pub stw_mark: Cycles,
    /// Trace cycles spent off-pause, interleaved with the mutator.
    pub concurrent_mark: Cycles,
    /// SATB deletion-barrier entries drained at final mark.
    pub satb_logged: u64,
}

impl Lisp2Collector {
    /// A collector with the given configuration.
    ///
    /// ```
    /// use svagc_core::{GcConfig, Lisp2Collector};
    /// use svagc_heap::{Heap, HeapConfig, ObjShape, RootSet};
    /// use svagc_kernel::{CoreId, Kernel};
    /// use svagc_metrics::MachineConfig;
    /// use svagc_vmem::Asid;
    ///
    /// let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 16 << 20);
    /// let mut heap = Heap::new(&mut k, Asid(1), HeapConfig::new(8 << 20)).unwrap();
    /// let mut roots = RootSet::new();
    ///
    /// // One surviving large object among garbage.
    /// for i in 0..10u64 {
    ///     let (obj, _) = heap.alloc(&mut k, CoreId(0), ObjShape::data_bytes(64 << 10)).unwrap();
    ///     if i == 5 { roots.push(obj); }
    /// }
    ///
    /// let mut gc = Lisp2Collector::new(GcConfig::svagc(4));
    /// let stats = gc.collect(&mut k, &mut heap, &mut roots).unwrap();
    /// assert_eq!(stats.live_objects, 1);
    /// assert_eq!(stats.dead_objects, 9);
    /// assert_eq!(stats.swapped_objects, 1); // moved by PTE swap
    /// ```
    pub fn new(cfg: GcConfig) -> Lisp2Collector {
        Lisp2Collector {
            cfg,
            log: GcLog::new(),
            degrade: DegradeController::new(cfg.degrade),
            timeline: Cycles::ZERO,
        }
    }

    /// Run one full STW collection as a **transaction**. Returns this
    /// cycle's statistics (also appended to [`Lisp2Collector::log`]).
    ///
    /// Every attempt is bracketed by a [`CompactionJournal`]: on any error
    /// the attempt's swaps, copies, and metadata writes are rolled back so
    /// the heap is bit-for-bit the pre-GC heap. Operational errors (an
    /// unrecoverable SwapVA fault, a watchdog deadline) then escalate the
    /// degraded-mode ladder and retry within this call; structural errors
    /// propagate after rollback. The controller's state persists across
    /// calls, so cycles after a recovery-by-degradation keep running
    /// degraded until probation is served.
    pub fn collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
    ) -> Result<GcCycleStats, GcError> {
        self.collect_with_premark(kernel, heap, roots, None)
    }

    /// [`Lisp2Collector::collect`], optionally seeded with a finished
    /// concurrent mark. With `premark == None` this is byte-for-byte the
    /// plain STW collection; with `Some`, the mark phase is skipped and the
    /// cycle compacts against the premark bitmap (see [`Premark`]). The
    /// premark survives aborts: every retry attempt re-clones the bitmap,
    /// and the rollback restores the pre-GC addresses it describes.
    pub fn collect_with_premark(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
        premark: Option<&Premark>,
    ) -> Result<GcCycleStats, GcError> {
        let core0 = CoreId(0);
        // The concurrent trace happened before this pause on the virtual
        // timeline; emit its span once (attempt retries restart after it).
        if let Some(pm) = premark {
            if pm.concurrent_mark.get() > 0 {
                kernel.trace.span_abs(
                    TraceKind::ConcurrentMarkPhase,
                    self.timeline,
                    pm.concurrent_mark,
                    0,
                    &[("satb_entries", pm.satb_logged)],
                );
                self.timeline += pm.concurrent_mark;
                kernel.trace.set_base(self.timeline);
            }
        }
        let user_cfg = self.cfg;
        let mut aborts = 0u64;
        let mut watchdog_expiries = 0u64;
        let mut rollback_pages = 0u64;
        let mut abort_overhead = Cycles::ZERO;
        loop {
            let attempt_start = self.timeline;
            let effective = self.degrade.apply(&user_cfg);
            let mut watchdog = GcWatchdog::new(effective.deadline_cycles);
            let txn = CompactionJournal::begin(kernel, heap, roots, user_cfg.verify_phases);
            let pre_hash = txn.pre_hash();
            let mut stats = GcCycleStats::default();
            // The phase methods read `self.cfg`; swap in the (possibly
            // degraded) effective config for the duration of the attempt.
            self.cfg = effective;
            let attempt = self.try_collect(kernel, heap, roots, &mut watchdog, &mut stats, premark);
            self.cfg = user_cfg;
            match attempt {
                Ok(()) => {
                    txn.commit(kernel, heap, roots);
                    stats.aborts = aborts;
                    stats.watchdog_expiries = watchdog_expiries;
                    stats.rollback_pages = rollback_pages;
                    stats.abort_overhead = abort_overhead;
                    stats.mode = self.degrade.mode().level();
                    if let Some(t) = self.degrade.on_clean() {
                        kernel.trace.instant(
                            TraceKind::ModeChange,
                            Cycles::ZERO,
                            0,
                            &[("from", t.from.level() as u64), ("to", t.to.level() as u64)],
                        );
                    }
                    self.log.push(stats);
                    return Ok(stats);
                }
                Err(e) => {
                    // A seeded crash is not an abort: the machine is dead,
                    // so no code runs to roll anything back. Leave the undo
                    // journal armed and the WAL epoch open — exactly the
                    // torn state crash recovery expects in the durable log.
                    if let Some(point) = e.crash_point() {
                        return Err(GcError::Crashed { point });
                    }
                    // Roll back memory, page tables, heap index, roots.
                    let rb = txn.abort(kernel, heap, roots, core0)?;
                    aborts += 1;
                    rollback_pages += rb.pages;
                    if matches!(e, GcError::Deadline { .. }) {
                        watchdog_expiries += 1;
                    }
                    // The aborted attempt and its rollback burned real
                    // virtual time: it is part of this cycle's pause.
                    let attempt_cost = stats.phases.total() + rb.cycles;
                    abort_overhead += attempt_cost;
                    self.timeline = attempt_start + attempt_cost;
                    kernel.trace.set_base(self.timeline);
                    kernel.trace.instant(
                        TraceKind::CycleAbort,
                        Cycles::ZERO,
                        0,
                        &[
                            ("attempt", aborts),
                            ("mode", self.degrade.mode().level() as u64),
                            ("rollback_ops", rb.ops as u64),
                            ("rollback_pages", rb.pages),
                        ],
                    );
                    // Prove the rollback before touching anything else:
                    // bit-for-bit content, clean layout and boundaries.
                    if user_cfg.verify_phases {
                        let verifier = HeapVerifier::new();
                        let post = verifier.content_hash(kernel, heap);
                        if Some(post) != pre_hash {
                            return Err(GcError::Corruption {
                                phase: "rollback",
                                violations: 1,
                                first: format!(
                                    "post-rollback content hash {post:#018x} != pre-GC {:#018x}",
                                    pre_hash.unwrap_or(0)
                                ),
                            });
                        }
                        Self::require_clean(verifier.verify_layout(kernel, heap), &mut stats)?;
                        Self::require_clean(verifier.verify_boundaries(kernel, heap), &mut stats)?;
                    }
                    // Operational failures walk the degradation ladder and
                    // retry; anything else — or an exhausted ladder —
                    // propagates (heap already restored).
                    let escalation = if e.is_operational() {
                        self.degrade.on_abort()
                    } else {
                        None
                    };
                    match escalation {
                        Some(t) => {
                            kernel.trace.instant(
                                TraceKind::ModeChange,
                                Cycles::ZERO,
                                0,
                                &[("from", t.from.level() as u64), ("to", t.to.level() as u64)],
                            );
                        }
                        None => {
                            // An operational error that found the ladder
                            // already on its last rung is a distinct outcome
                            // for the driver: the collector did not merely
                            // fail, it ran out of fallbacks.
                            return Err(
                                if e.is_operational() && self.degrade.policy().enabled {
                                    GcError::Exhausted(Box::new(e))
                                } else {
                                    e
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    /// One collection attempt (no transaction bracketing — `collect` owns
    /// that). Partial phase makespans accumulate into `stats` even on
    /// error, so an abort can account the time the attempt burned.
    fn try_collect(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
        watchdog: &mut GcWatchdog,
        stats: &mut GcCycleStats,
        premark: Option<&Premark>,
    ) -> Result<(), GcError> {
        if self.cfg.scheduler == SchedulerKind::Packets {
            return self.try_collect_packets(kernel, heap, roots, watchdog, stats, premark);
        }
        let cycle_start = self.timeline;
        let cores = kernel.cores();
        let threads = self.cfg.gc_threads.min(cores).max(1);
        let mut pool = WorkerPool::with_core_base(threads, self.cfg.core_base);
        let objects: Vec<ObjRef> = heap.objects_sorted().to_vec();
        let verifier = HeapVerifier::new();
        let faults_before = kernel.perf.swap_faults_injected;

        // ---- Phase I: mark -------------------------------------------
        let bitmap = match premark {
            Some(pm) => {
                // The trace already ran off-pause; charge only the STW
                // portion here. The SATB bitmap may strictly contain the
                // snapshot's reachable set (floating garbage), so the
                // exact-reachability verify_marks check does not apply —
                // forwarding and post-compact verification still run.
                stats.phases.mark = pm.stw_mark;
                stats.concurrent_mark = pm.concurrent_mark;
                stats.satb_logged = pm.satb_logged;
                stats.interference += pm.concurrent_mark;
                pm.bitmap.clone()
            }
            None => {
                let mut bitmap = MarkBitmap::new(heap.base(), heap.extent_words());
                self.mark_phase(kernel, heap, roots, &mut bitmap, &mut pool)?;
                stats.phases.mark = pool.makespan();
                bitmap
            }
        };
        watchdog.check("mark", stats.phases.mark)?;
        if self.cfg.verify_phases && premark.is_none() {
            Self::require_clean(verifier.verify_marks(kernel, heap, &bitmap, roots), stats)?;
        }

        // ---- Phase II: forwarding address calculation ----------------
        pool.reset();
        let (moves, new_top) =
            self.forward_phase(kernel, heap, &objects, &bitmap, &mut pool, stats)?;
        stats.phases.forward = pool.makespan();
        watchdog.check("forward", stats.phases.forward)?;
        if self.cfg.verify_phases {
            Self::require_clean(verifier.verify_forwarding(kernel, heap, &bitmap), stats)?;
        }

        // ---- Phase III: adjust pointers ------------------------------
        pool.reset();
        self.adjust_phase(kernel, heap, roots, &moves, &mut pool)?;
        stats.phases.adjust = pool.makespan();
        watchdog.check("adjust", stats.phases.adjust)?;
        if self.cfg.verify_phases {
            // Adjust rewrites fields but must leave the move plan intact.
            Self::require_clean(verifier.verify_forwarding(kernel, heap, &bitmap), stats)?;
        }

        // ---- Phase IV: compaction ------------------------------------
        let compact_workers = self
            .cfg
            .compact_threads
            .unwrap_or(threads)
            .min(cores)
            .max(1);
        let mut compact_pool = WorkerPool::with_core_base(compact_workers, self.cfg.core_base);
        // Kernel-side trace events (SwapVA spans, shootdowns, fallbacks)
        // are positioned relative to the tracer base; anchor it where the
        // compact phase begins on the cumulative GC timeline so they nest
        // under this cycle's CompactPhase span.
        self.timeline =
            cycle_start + stats.phases.mark + stats.phases.forward + stats.phases.adjust;
        kernel.trace.set_base(self.timeline);
        self.compact_phase(kernel, heap, &moves, &mut compact_pool, watchdog, stats)?;
        stats.phases.compact = compact_pool.makespan();
        watchdog.check("compact", stats.phases.compact)?;

        // Publish the new heap layout.
        let survivors: Vec<ObjRef> = moves.iter().map(|m| m.dst).collect();
        stats.live_objects = survivors.len() as u64;
        stats.dead_objects = objects.len() as u64 - survivors.len() as u64;
        heap.complete_gc(survivors, new_top);
        if self.cfg.verify_phases {
            Self::require_clean(verifier.verify_post_compact(kernel, heap, roots), stats)?;
        }

        stats.faults_injected = kernel.perf.swap_faults_injected - faults_before;

        self.emit_phase_spans(kernel, cycle_start, stats, objects.len() as u64);
        Ok(())
    }

    /// Emit the cycle's phase spans on the cumulative GC timeline (tid 0 =
    /// the VM/GC coordinator lane; per-core kernel events carry their own
    /// tids) and advance the timeline past this cycle. Under the packet
    /// scheduler the four "phases" are the bucket milestone deltas, so the
    /// same additive span layout holds.
    fn emit_phase_spans(
        &mut self,
        kernel: &mut Kernel,
        cycle_start: Cycles,
        stats: &GcCycleStats,
        total_objects: u64,
    ) {
        let mut at = cycle_start;
        kernel.trace.span_abs(
            TraceKind::MarkPhase,
            at,
            stats.phases.mark,
            0,
            &[("objects", total_objects)],
        );
        at += stats.phases.mark;
        kernel.trace.span_abs(
            TraceKind::ForwardPhase,
            at,
            stats.phases.forward,
            0,
            &[("live", stats.live_objects), ("live_bytes", stats.live_bytes)],
        );
        at += stats.phases.forward;
        kernel.trace.span_abs(TraceKind::AdjustPhase, at, stats.phases.adjust, 0, &[]);
        at += stats.phases.adjust;
        kernel.trace.span_abs(
            TraceKind::CompactPhase,
            at,
            stats.phases.compact,
            0,
            &[
                ("moved", stats.moved_objects),
                ("swapped", stats.swapped_objects),
                ("memmove_bytes", stats.memmove_bytes),
            ],
        );
        kernel.trace.span_abs(
            TraceKind::GcCycle,
            cycle_start,
            stats.phases.total(),
            0,
            &[("live", stats.live_objects), ("dead", stats.dead_objects)],
        );
        self.timeline = cycle_start + stats.phases.total();
        kernel.trace.set_base(self.timeline);
    }

    /// Emit one packet's trace span at its absolute schedule position,
    /// on the executing core's lane.
    fn emit_packet(
        kernel: &mut Kernel,
        sched: &PacketScheduler,
        cycle_start: Cycles,
        ticket: &PacketTicket,
        cost: Cycles,
        items: u64,
    ) {
        sched.emit_span(&mut kernel.trace, cycle_start, ticket, cost, items);
    }

    /// One collection attempt under the **work-packet scheduler**
    /// (`--scheduler packets`).
    ///
    /// Functional effects still execute host-sequentially in heap order —
    /// exactly the same heap mutations as the barrier path — but *time*
    /// is scheduled as typed packets in dependency-ordered buckets:
    ///
    /// * **mark-roots** → **mark-chunk**: a chunk is ready when the
    ///   packets that discovered its objects complete.
    /// * **forward-range**: ranges are mutually independent once marking
    ///   is done (the destination cursor is a prefix sum of live sizes a
    ///   real implementation computes in a cheap size-scan pass; see
    ///   DESIGN.md §13), so every range is ready at the mark milestone.
    /// * **adjust-range / adjust-roots**: ready at the forward milestone.
    /// * **compact-batch**: ready when (a) forwarding is done and (b)
    ///   every adjust packet that touched the batch's region — fields it
    ///   copies, forwarding words it swaps away or overwrites — has
    ///   completed. Workers that finish adjusting early therefore flow
    ///   straight into compaction while the slowest adjust packet is
    ///   still running — the overlap the four global barriers forbid.
    ///
    /// Compaction always uses access-tracked shootdowns here: buckets
    /// overlap in virtual time, so another worker may still be adjusting
    /// (and translating) while a batch swaps PTEs; `FlushMode::Tracked`
    /// IPIs exactly the cores holding the ASID, which stays confined to
    /// this collector's pinned workers.
    fn try_collect_packets(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
        watchdog: &mut GcWatchdog,
        stats: &mut GcCycleStats,
        premark: Option<&Premark>,
    ) -> Result<(), GcError> {
        let cycle_start = self.timeline;
        let cores = kernel.cores();
        let threads = self.cfg.gc_threads.min(cores).max(1);
        let mut sched = PacketScheduler::new(threads, cores, self.cfg.core_base);
        let objects: Vec<ObjRef> = heap.objects_sorted().to_vec();
        let verifier = HeapVerifier::new();
        let faults_before = kernel.perf.swap_faults_injected;

        if let Some(pm) = premark {
            // Concurrent premark: bucket 1 collapses to the STW charge
            // (initial mark + SATB drain); forward packets become ready at
            // that milestone, exactly as they would at the mark milestone.
            stats.phases.mark = pm.stw_mark;
            stats.concurrent_mark = pm.concurrent_mark;
            stats.satb_logged = pm.satb_logged;
            stats.interference += pm.concurrent_mark;
            watchdog.check("mark", stats.phases.mark)?;
            return self.finish_packets_cycle(
                kernel,
                heap,
                roots,
                watchdog,
                stats,
                &pm.bitmap,
                pm.stw_mark,
                cycle_start,
                sched,
                objects,
                faults_before,
            );
        }

        // ---- Bucket 1: mark ------------------------------------------
        let mut bitmap = MarkBitmap::new(heap.base(), heap.extent_words());
        // Each stack entry carries its discovery time: the completion of
        // the packet that found it.
        let mut stack: Vec<(ObjRef, Cycles)> = Vec::new();
        let mut t_mark;
        {
            // Root scanning is uncosted in the barrier path too; the
            // packet is the ordering point stamping the roots' discovery.
            let ticket = sched.begin(PacketKind::MarkRoots, Cycles::ZERO);
            let done = sched.finish(ticket, Cycles::ZERO);
            let mut seeded = 0u64;
            for r in roots.iter_live() {
                if heap.contains(r.0) && bitmap.mark(r.header_va()) {
                    stack.push((r, done));
                    seeded += 1;
                }
            }
            Self::emit_packet(kernel, &sched, cycle_start, &ticket, Cycles::ZERO, seeded);
            t_mark = done;
        }
        while !stack.is_empty() {
            let take = stack.len().min(MARK_CHUNK);
            let chunk: Vec<(ObjRef, Cycles)> = stack.split_off(stack.len() - take);
            let ready = chunk
                .iter()
                .map(|&(_, d)| d)
                .fold(Cycles::ZERO, Cycles::max);
            let ticket = sched.begin(PacketKind::MarkChunk, ready);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            let mut discovered: Vec<ObjRef> = Vec::new();
            for &(obj, _) in &chunk {
                let (hdr, ht) = heap.read_header(kernel, core, obj)?;
                t += ht;
                for i in 0..hdr.num_refs as u64 {
                    let (tgt, tc) = heap.read_ref(kernel, core, obj, i)?;
                    t += tc;
                    if !tgt.is_null() && heap.contains(tgt.0) && bitmap.mark(tgt.header_va()) {
                        discovered.push(tgt);
                    }
                }
            }
            let done = sched.finish(ticket, t);
            Self::emit_packet(kernel, &sched, cycle_start, &ticket, t, take as u64);
            for d in discovered {
                stack.push((d, done));
            }
            t_mark = t_mark.max(done);
        }
        stats.phases.mark = t_mark;
        watchdog.check("mark", stats.phases.mark)?;
        if self.cfg.verify_phases {
            Self::require_clean(verifier.verify_marks(kernel, heap, &bitmap, roots), stats)?;
        }
        self.finish_packets_cycle(
            kernel,
            heap,
            roots,
            watchdog,
            stats,
            &bitmap,
            t_mark,
            cycle_start,
            sched,
            objects,
            faults_before,
        )
    }

    /// Buckets 2-4 of the packet-scheduled cycle (forward, adjust,
    /// compact), shared by the STW path (after its mark bucket) and the
    /// concurrent path (which replaces the mark bucket with the SATB
    /// premark's STW charge).
    #[allow(clippy::too_many_arguments)]
    fn finish_packets_cycle(
        &mut self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        roots: &mut RootSet,
        watchdog: &mut GcWatchdog,
        stats: &mut GcCycleStats,
        bitmap: &MarkBitmap,
        t_mark: Cycles,
        cycle_start: Cycles,
        mut sched: PacketScheduler,
        objects: Vec<ObjRef>,
        faults_before: u64,
    ) -> Result<(), GcError> {
        let cores = kernel.cores();
        let threads = self.cfg.gc_threads.min(cores).max(1);
        let peers = (cores as u64 - 1).max(1);
        let verifier = HeapVerifier::new();

        // ---- Bucket 2: forward ---------------------------------------
        let mut comp_pnt = heap.base();
        let mut moves: Vec<PlannedMove> = Vec::new();
        let mut t_fwd = t_mark;
        for (s, e) in chunk_ranges(objects.len(), threads) {
            let ticket = sched.begin(PacketKind::ForwardRange, t_mark);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            for &obj in &objects[s..e] {
                let (hdr, ht) = heap.read_header(kernel, core, obj)?;
                t += ht;
                if bitmap.is_marked(obj.header_va()) {
                    if hdr.is_large() {
                        comp_pnt = comp_pnt.align_up();
                    }
                    let dst = ObjRef(comp_pnt);
                    comp_pnt = comp_pnt + hdr.size_bytes();
                    if hdr.is_large() {
                        comp_pnt = comp_pnt.align_up();
                    }
                    t += kernel.write_word(heap.space(), core, obj.forwarding_va(), dst.0.get())?;
                    stats.live_bytes += hdr.size_bytes();
                    moves.push(PlannedMove {
                        src: obj,
                        dst,
                        header: hdr,
                    });
                }
            }
            let done = sched.finish(ticket, t);
            Self::emit_packet(kernel, &sched, cycle_start, &ticket, t, (e - s) as u64);
            t_fwd = t_fwd.max(done);
        }
        let new_top = comp_pnt;
        stats.phases.forward = Cycles(t_fwd.get().saturating_sub(t_mark.get()));
        watchdog.check("forward", stats.phases.forward)?;
        if self.cfg.verify_phases {
            Self::require_clean(verifier.verify_forwarding(kernel, heap, bitmap), stats)?;
        }

        // ---- Compact-batch partition (needed before adjust: conflict
        // tracking maps every adjust access to the batch it constrains) --
        let batch_bounds = chunk_ranges(moves.len(), threads);
        let n_batches = batch_bounds.len();
        // Destination span of each batch: [first dst, last dst + size).
        let dst_spans: Vec<(u64, u64)> = batch_bounds
            .iter()
            .map(|&(s, e)| {
                let last = &moves[e - 1];
                (moves[s].dst.0.get(), last.dst.0.get() + last.header.size_bytes())
            })
            .collect();
        // Move index -> owning batch.
        let mut batch_of_move = vec![0usize; moves.len()];
        for (bi, &(s, e)) in batch_bounds.iter().enumerate() {
            for b in batch_of_move.iter_mut().take(e).skip(s) {
                *b = bi;
            }
        }
        // The batch whose destination range covers `va` (the one that will
        // overwrite it), if any.
        let dst_batch_covering = |va: u64| -> Option<usize> {
            let i = dst_spans.partition_point(|&(lo, _)| lo <= va);
            if i == 0 {
                return None;
            }
            let bi = i - 1;
            (va < dst_spans[bi].1).then_some(bi)
        };
        // The move whose source object sits at `src` (moves are in
        // ascending source order), if any.
        let move_at = |src: VirtAddr| -> Option<usize> {
            moves.binary_search_by(|m| m.src.0.cmp(&src)).ok()
        };

        // ---- Bucket 3: adjust ----------------------------------------
        // `batch_ready[b]` accumulates the completion of every adjust
        // packet whose accesses land in batch b's way.
        let mut batch_ready: Vec<Cycles> = vec![Cycles::ZERO; n_batches];
        let mut t_adj = t_fwd;
        let fold = |conflicts: &[usize], done: Cycles, ready: &mut [Cycles]| {
            for &b in conflicts {
                ready[b] = ready[b].max(done);
            }
        };
        for (s, e) in chunk_ranges(moves.len(), threads) {
            let ticket = sched.begin(PacketKind::AdjustRange, t_fwd);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            let mut conflicts: Vec<usize> = Vec::new();
            for (idx, m) in moves.iter().enumerate().take(e).skip(s) {
                if m.header.num_refs == 0 {
                    continue;
                }
                // Field writes at the object's source: its batch must not
                // copy the data before they land.
                conflicts.push(batch_of_move[idx]);
                for i in 0..m.header.num_refs as u64 {
                    let (tgt, tc) = heap.read_ref(kernel, core, m.src, i)?;
                    t += tc;
                    if tgt.is_null() || !heap.contains(tgt.0) {
                        continue;
                    }
                    let (fwd, fc) = kernel.read_word(heap.space(), core, tgt.forwarding_va())?;
                    t += fc;
                    t += heap.write_ref(kernel, core, m.src, i, ObjRef(VirtAddr(fwd)))?;
                    // The forwarding word lives at the target's *old*
                    // address: the target's own batch swaps it away, and
                    // the batch whose destinations cover it overwrites it.
                    if let Some(ti) = move_at(tgt.0) {
                        conflicts.push(batch_of_move[ti]);
                    }
                    if let Some(b) = dst_batch_covering(tgt.forwarding_va().get()) {
                        conflicts.push(b);
                    }
                }
            }
            let done = sched.finish(ticket, t);
            Self::emit_packet(kernel, &sched, cycle_start, &ticket, t, (e - s) as u64);
            fold(&conflicts, done, &mut batch_ready);
            t_adj = t_adj.max(done);
        }
        {
            // Root slots: one packet for the VM thread's scan.
            let ticket = sched.begin(PacketKind::AdjustRoots, t_fwd);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            let mut conflicts: Vec<usize> = Vec::new();
            let mut slots = 0u64;
            for slot in roots.slots_mut() {
                if slot.is_null() || !heap.contains(slot.0) {
                    continue;
                }
                let (fwd, fc) = kernel.read_word(heap.space(), core, slot.forwarding_va())?;
                t += fc;
                if let Some(ti) = move_at(slot.0) {
                    conflicts.push(batch_of_move[ti]);
                }
                if let Some(b) = dst_batch_covering(slot.forwarding_va().get()) {
                    conflicts.push(b);
                }
                *slot = ObjRef(VirtAddr(fwd));
                slots += 1;
            }
            let done = sched.finish(ticket, t);
            Self::emit_packet(kernel, &sched, cycle_start, &ticket, t, slots);
            fold(&conflicts, done, &mut batch_ready);
            t_adj = t_adj.max(done);
        }
        stats.phases.adjust = Cycles(t_adj.get().saturating_sub(t_fwd.get()));
        watchdog.check("adjust", stats.phases.adjust)?;
        if self.cfg.verify_phases {
            Self::require_clean(verifier.verify_forwarding(kernel, heap, bitmap), stats)?;
        }

        // ---- Bucket 4: compact ---------------------------------------
        let threshold_bytes = heap.threshold_pages() * PAGE_SIZE;
        // Buckets overlap in virtual time, so a batch's PTE swaps can race
        // other workers' cached translations: always shoot down by access
        // tracking (IPIs reach exactly the ASID holders — this collector's
        // pinned workers, never other tenants' cores).
        let flush_mode = if !self.cfg.pinned_compaction {
            FlushMode::GlobalBroadcast
        } else {
            FlushMode::Tracked
        };
        let swap_opts = SwapVaOptions {
            pmd_cache: self.cfg.pmd_cache,
            overlap_opt: self.cfg.overlap_opt,
            flush: flush_mode,
        };
        let any_swaps = self.cfg.use_swapva
            && moves.iter().any(|m| {
                m.src != m.dst
                    && m.header.size_bytes() >= threshold_bytes
                    && m.src.0.is_page_aligned()
                    && m.dst.0.is_page_aligned()
            });

        if self.cfg.pinned_compaction && any_swaps {
            // Algorithm 4 prologue, positioned at the adjust milestone on
            // the trace (its cost is shootdown overhead, not worker time).
            kernel.trace.set_base(cycle_start + t_adj);
            let asid = heap.space().asid();
            let pin_cost = kernel.pin(sched.pool().core_of(0, cores));
            let (bcast, intf) = kernel.flush_asid_all_cores(sched.pool().core_of(0, cores), asid);
            stats.phases.shootdown += pin_cost + bcast;
            stats.interference += intf.0;
            if let Some(point) = kernel.crashed() {
                return Err(GcError::Crashed { point });
            }
        }

        // Intra-bucket sliding safety is the same assumption the barrier
        // compactor already makes for its parallel movers (ascending-order
        // claiming, per the paper's parallel LISP2); what the packet edges
        // add is the *finer cross-bucket* constraint — a batch may not run
        // until every adjust packet that read or wrote its region is done —
        // which is exactly the hazard the barrier scheduler could only
        // express as a global phase barrier.
        let mut t_end = t_adj;
        for (bi, &(s, e)) in batch_bounds.iter().enumerate() {
            let ready = batch_ready[bi].max(t_fwd);
            let ticket = sched.begin(PacketKind::CompactBatch, ready);
            let core = sched.core(&ticket);
            let pkt_base = cycle_start + ticket.placement.start;
            let mut t = Cycles::ZERO;
            let mut intf_total = Cycles::ZERO;
            let mut batch = SwapBatch::new(
                self.cfg.aggregation.unwrap_or(1),
                8 * heap.threshold_pages().max(1),
            );
            for m in &moves[s..e] {
                kernel.trace.set_base(pkt_base + t);
                let (_, fc) = kernel.read_word(heap.space(), core, m.src.forwarding_va())?;
                t += fc;
                kernel.trace.advance(fc);
                let size = m.header.size_bytes();
                if m.src != m.dst {
                    let pages = size.div_ceil(PAGE_SIZE);
                    let swappable = self.cfg.use_swapva
                        && pages >= heap.threshold_pages()
                        && m.src.0.is_page_aligned()
                        && m.dst.0.is_page_aligned()
                        && size >= threshold_bytes;
                    let overlap_unsupported = !self.cfg.overlap_opt
                        && m.src.0.get().abs_diff(m.dst.0.get()) < pages * PAGE_SIZE;
                    if swappable && !overlap_unsupported {
                        let req = SwapRequest {
                            a: m.src.0,
                            b: m.dst.0,
                            pages,
                        };
                        stats.swapped_objects += 1;
                        stats.swapped_bytes += size;
                        if batch.push(req, size) {
                            let (c, intf) =
                                self.flush_batch(kernel, heap, &mut batch, swap_opts, core, stats)?;
                            t += c;
                            intf_total += intf;
                            watchdog.check("compact", t)?;
                        }
                    } else {
                        let (c, intf) =
                            self.flush_batch(kernel, heap, &mut batch, swap_opts, core, stats)?;
                        t += c;
                        intf_total += intf;
                        watchdog.check("compact", t)?;
                        t += kernel.memmove(heap.space(), core, m.src.0, m.dst.0, size)?;
                        stats.memmove_bytes += size;
                    }
                    stats.moved_objects += 1;
                    kernel.perf.objects_moved += 1;
                }
            }
            if !batch.is_empty() {
                let (c, intf) = self.flush_batch(kernel, heap, &mut batch, swap_opts, core, stats)?;
                t += c;
                intf_total += intf;
            }
            // This packet owns its destinations' forwarding-word clears:
            // no later batch reads below its own destination cursor, so
            // the clears need no cross-batch barrier.
            for m in &moves[s..e] {
                t += kernel.write_word(heap.space(), core, m.dst.forwarding_va(), 0)?;
            }
            let done = sched.finish(ticket, t);
            Self::emit_packet(kernel, &sched, cycle_start, &ticket, t, (e - s) as u64);
            if intf_total.get() > 0 {
                // Tracked IPIs stall the other pinned workers.
                sched.charge_all(intf_total / peers);
            }
            t_end = t_end.max(done);
        }
        t_end = t_end.max(sched.makespan());

        if self.cfg.pinned_compaction && any_swaps {
            // Algorithm 4 epilogue.
            kernel.trace.set_base(cycle_start + t_end);
            let asid = heap.space().asid();
            let (bcast, intf) = kernel.flush_asid_all_cores(sched.pool().core_of(0, cores), asid);
            let unpin = kernel.unpin();
            stats.phases.shootdown += bcast + unpin;
            stats.interference += intf.0;
            if let Some(point) = kernel.crashed() {
                return Err(GcError::Crashed { point });
            }
        }
        kernel.perf.objects_swapped += stats.swapped_objects;
        kernel.perf.gc_cycles += 1;
        stats.phases.compact = Cycles(t_end.get().saturating_sub(t_adj.get()));
        watchdog.check("compact", stats.phases.compact)?;

        // Publish the new heap layout.
        let survivors: Vec<ObjRef> = moves.iter().map(|m| m.dst).collect();
        stats.live_objects = survivors.len() as u64;
        stats.dead_objects = objects.len() as u64 - survivors.len() as u64;
        heap.complete_gc(survivors, new_top);
        if self.cfg.verify_phases {
            Self::require_clean(verifier.verify_post_compact(kernel, heap, roots), stats)?;
        }
        stats.faults_injected = kernel.perf.swap_faults_injected - faults_before;
        stats.sched_packets = sched.stats.packets;
        stats.sched_steals = sched.stats.steals;
        stats.sched_steal_cycles = sched.stats.steal_cycles;

        self.emit_phase_spans(kernel, cycle_start, stats, objects.len() as u64);
        Ok(())
    }

    /// Turn a failed verification pass into a [`GcError::Corruption`] abort.
    fn require_clean(report: VerifyReport, stats: &mut GcCycleStats) -> Result<(), GcError> {
        if report.is_clean() {
            Ok(())
        } else {
            stats.verify_violations += report.violations.len() as u64;
            Err(GcError::corruption(&report))
        }
    }

    /// Phase I: trace the object graph from the roots.
    fn mark_phase(
        &self,
        kernel: &mut Kernel,
        heap: &Heap,
        roots: &RootSet,
        bitmap: &mut MarkBitmap,
        pool: &mut WorkerPool,
    ) -> Result<(), HeapError> {
        let cores = kernel.cores();
        let mut stack: Vec<ObjRef> = Vec::new();
        for r in roots.iter_live() {
            // Roots outside this heap (e.g. nursery objects during an
            // old-generation-only collection) are not ours to trace.
            if heap.contains(r.0) && bitmap.mark(r.header_va()) {
                stack.push(r);
            }
        }
        while let Some(obj) = stack.pop() {
            // rr-cursor audit: `pool` is freshly constructed in
            // `try_collect` before this phase, so the static cursor starts
            // at 0 and the schedule is a pure function of the mark order.
            let w = if self.cfg.work_stealing {
                pool.least_loaded()
            } else {
                pool.dispatch_static(Cycles::ZERO)
            };
            let core = pool.core_of(w, cores);
            let (hdr, mut t) = heap.read_header(kernel, core, obj)?;
            for i in 0..hdr.num_refs as u64 {
                let (tgt, tc) = heap.read_ref(kernel, core, obj, i)?;
                t += tc;
                if !tgt.is_null() && heap.contains(tgt.0) && bitmap.mark(tgt.header_va()) {
                    stack.push(tgt);
                }
            }
            pool.dispatch_to(w, t);
        }
        Ok(())
    }

    /// Phase II: compute destinations (`CALCNEWADD`). Returns the move plan
    /// (ascending source order) and the post-compaction cursor.
    #[allow(clippy::type_complexity)]
    fn forward_phase(
        &self,
        kernel: &mut Kernel,
        heap: &Heap,
        objects: &[ObjRef],
        bitmap: &MarkBitmap,
        pool: &mut WorkerPool,
        stats: &mut GcCycleStats,
    ) -> Result<(Vec<PlannedMove>, VirtAddr), HeapError> {
        let cores = kernel.cores();
        let mut comp_pnt = heap.base();
        let mut moves = Vec::new();
        for &obj in objects {
            // rr-cursor audit: `try_collect` calls `pool.reset()` right
            // before this phase, rewinding the static cursor — assignment
            // depends only on this phase's own item sequence.
            let w = if self.cfg.work_stealing {
                pool.least_loaded()
            } else {
                pool.dispatch_static(Cycles::ZERO)
            };
            let core = pool.core_of(w, cores);
            // Heap parsing touches every header, live or dead.
            let (hdr, mut t) = heap.read_header(kernel, core, obj)?;
            if bitmap.is_marked(obj.header_va()) {
                // IFSWAPALIGN before and after (Algorithm 3 lines 22/25).
                if hdr.is_large() {
                    comp_pnt = comp_pnt.align_up();
                }
                let dst = ObjRef(comp_pnt);
                comp_pnt = comp_pnt + hdr.size_bytes();
                if hdr.is_large() {
                    comp_pnt = comp_pnt.align_up();
                }
                t += kernel.write_word(
                    heap.space(),
                    core,
                    obj.forwarding_va(),
                    dst.0.get(),
                )?;
                stats.live_bytes += hdr.size_bytes();
                moves.push(PlannedMove {
                    src: obj,
                    dst,
                    header: hdr,
                });
            }
            pool.dispatch_to(w, t);
        }
        Ok((moves, comp_pnt))
    }

    /// Phase III: rewrite reference fields and roots via forwarding words.
    fn adjust_phase(
        &self,
        kernel: &mut Kernel,
        heap: &Heap,
        roots: &mut RootSet,
        moves: &[PlannedMove],
        pool: &mut WorkerPool,
    ) -> Result<(), HeapError> {
        let cores = kernel.cores();
        for m in moves {
            if m.header.num_refs == 0 {
                continue;
            }
            // rr-cursor audit: `try_collect` calls `pool.reset()` right
            // before this phase (see above) — no cursor leaks in from the
            // forward phase's item count.
            let w = if self.cfg.work_stealing {
                pool.least_loaded()
            } else {
                pool.dispatch_static(Cycles::ZERO)
            };
            let core = pool.core_of(w, cores);
            let mut t = Cycles::ZERO;
            for i in 0..m.header.num_refs as u64 {
                let (tgt, tc) = heap.read_ref(kernel, core, m.src, i)?;
                t += tc;
                // Out-of-heap targets (nursery objects) don't move here.
                if tgt.is_null() || !heap.contains(tgt.0) {
                    continue;
                }
                let (fwd, fc) = kernel.read_word(heap.space(), core, tgt.forwarding_va())?;
                t += fc;
                t += heap.write_ref(kernel, core, m.src, i, ObjRef(VirtAddr(fwd)))?;
            }
            pool.dispatch_to(w, t);
        }
        // Root slots (charged to worker 0 — the VM thread).
        let core0 = pool.core_of(0, cores);
        let mut t = Cycles::ZERO;
        for slot in roots.slots_mut() {
            if slot.is_null() || !heap.contains(slot.0) {
                continue;
            }
            let (fwd, fc) = kernel.read_word(heap.space(), core0, slot.forwarding_va())?;
            t += fc;
            *slot = ObjRef(VirtAddr(fwd));
        }
        pool.dispatch_to(0, t);
        Ok(())
    }

    /// Phase IV: move everything (`COMPACTOPT` + `MOVEOBJECT`).
    fn compact_phase(
        &self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        moves: &[PlannedMove],
        pool: &mut WorkerPool,
        watchdog: &mut GcWatchdog,
        stats: &mut GcCycleStats,
    ) -> Result<(), GcError> {
        let cores = kernel.cores();
        let threshold_bytes = heap.threshold_pages() * PAGE_SIZE;
        // Algorithm 4's local-only flush is sound for exactly one pinned
        // compactor: every translation it caches lives on the core it
        // flushes. With parallel movers that precondition fails — worker X
        // reads a forwarding word, worker Y's batch remaps the page with a
        // local flush on Y, and X's next read translates through the dead
        // entry (the stale-TLB oracle catches this on real workloads).
        // Multi-worker compaction therefore uses access-tracked shootdowns:
        // each swap IPIs precisely the cores still holding the ASID — a
        // subset of the GC workers once the prologue broadcast has run, so
        // other JVMs' cores are still never interrupted.
        let flush_mode = if !self.cfg.pinned_compaction {
            FlushMode::GlobalBroadcast
        } else if pool.len() > 1 {
            FlushMode::Tracked
        } else {
            FlushMode::LocalOnly
        };
        let swap_opts = SwapVaOptions {
            pmd_cache: self.cfg.pmd_cache,
            overlap_opt: self.cfg.overlap_opt,
            flush: flush_mode,
        };

        // Will any move actually go through SwapVA this cycle? The pinning
        // protocol's broadcasts only pay for themselves when PTEs change.
        let any_swaps = self.cfg.use_swapva
            && moves.iter().any(|m| {
                m.src != m.dst
                    && m.header.size_bytes() >= threshold_bytes
                    && m.src.0.is_page_aligned()
                    && m.dst.0.is_page_aligned()
            });

        if self.cfg.pinned_compaction && any_swaps {
            // Algorithm 4 prologue: pin workers, broadcast the shootdown
            // once so every core sees fresh mappings from here on.
            let asid = heap.space().asid();
            let pin_cost = kernel.pin(pool.core_of(0, cores));
            let (bcast, intf) = kernel.flush_asid_all_cores(pool.core_of(0, cores), asid);
            stats.phases.shootdown += pin_cost + bcast;
            stats.interference += intf.0;
            // The broadcast is infallible by signature; a seeded mid-IPI
            // crash latches instead, and the phase must stop here.
            if let Some(point) = kernel.crashed() {
                return Err(GcError::Crashed { point });
            }
        }

        // Aggregation buffer: a run of consecutive swap-eligible moves,
        // flushed as one syscall (Fig. 5b). Any intervening memmove flushes
        // it first to preserve ascending-order safety. The cap/page-budget
        // policy lives in [`SwapBatch`], shared with the packet scheduler's
        // per-packet batches.
        let mut batch = SwapBatch::new(
            self.cfg.aggregation.unwrap_or(1),
            8 * heap.threshold_pages().max(1),
        );

        for m in moves {
            // rr-cursor audit: the compact phase runs on a *fresh*
            // `compact_pool` (its worker count may differ from the other
            // phases'), so the static cursor necessarily starts at 0.
            let w = if self.cfg.work_stealing {
                pool.least_loaded()
            } else {
                pool.dispatch_static(Cycles::ZERO)
            };
            let core = pool.core_of(w, cores);
            // Kernel events for this move start at the worker's current
            // virtual-clock position within the phase.
            kernel.trace.set_base(self.timeline + pool.load(w));
            let mut t = Cycles::ZERO;

            // Read the forwarding word at the source (Algorithm 4 line 9).
            let (_, fc) = kernel.read_word(heap.space(), core, m.src.forwarding_va())?;
            t += fc;
            kernel.trace.advance(fc);

            let size = m.header.size_bytes();
            if m.src != m.dst {
                let pages = size.div_ceil(PAGE_SIZE);
                let swappable = self.cfg.use_swapva
                    && pages >= heap.threshold_pages()
                    && m.src.0.is_page_aligned()
                    && m.dst.0.is_page_aligned()
                    && size >= threshold_bytes;
                let overlap_unsupported = !self.cfg.overlap_opt
                    && m.src.0.get().abs_diff(m.dst.0.get()) < pages * PAGE_SIZE;
                if swappable && !overlap_unsupported {
                    let req = SwapRequest {
                        a: m.src.0,
                        b: m.dst.0,
                        pages,
                    };
                    stats.swapped_objects += 1;
                    stats.swapped_bytes += size;
                    if batch.push(req, size) {
                        let (c, intf) =
                            self.flush_batch(kernel, heap, &mut batch, swap_opts, core, stats)?;
                        t += c;
                        stall_coworkers(pool, kernel, intf);
                        // Mid-phase deadline check: the watchdog can abort
                        // a runaway compaction between batches, not only
                        // at phase barriers.
                        watchdog.check("compact", pool.makespan() + t)?;
                    }
                } else {
                    // memmove path: drain pending swaps first (ordering).
                    let (c, intf) =
                        self.flush_batch(kernel, heap, &mut batch, swap_opts, core, stats)?;
                    t += c;
                    stall_coworkers(pool, kernel, intf);
                    watchdog.check("compact", pool.makespan() + t)?;
                    t += kernel.memmove(heap.space(), core, m.src.0, m.dst.0, size)?;
                    stats.memmove_bytes += size;
                }
                stats.moved_objects += 1;
                kernel.perf.objects_moved += 1;
            }
            pool.dispatch_to(w, t);
        }
        // Drain the tail of the batch.
        if !batch.is_empty() {
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            kernel.trace.set_base(self.timeline + pool.load(w));
            let (t, intf) = self.flush_batch(kernel, heap, &mut batch, swap_opts, core, stats)?;
            pool.dispatch_to(w, t);
            stall_coworkers(pool, kernel, intf);
        }

        // Workers resynchronize at the phase barrier: each flushes its own
        // TLB so the forwarding-word clears below cannot read mappings
        // staled by *other* workers' swaps. Tracked swaps already IPI every
        // holder, so only the local-only protocol needs the barrier flush.
        if any_swaps && flush_mode == FlushMode::LocalOnly {
            let asid = heap.space().asid();
            let mut worst = Cycles::ZERO;
            for w in 0..pool.len() {
                let c = kernel.flush_tlb_local(pool.core_of(w, cores), asid);
                worst = worst.max(c);
            }
            pool.charge_all(worst);
        }

        // Clear forwarding words at the destinations.
        for m in moves {
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            let t = kernel.write_word(heap.space(), core, m.dst.forwarding_va(), 0)?;
            pool.dispatch_to(w, t);
        }

        if self.cfg.pinned_compaction && any_swaps {
            // Algorithm 4 epilogue: unpin; mutators get fresh TLBs via one
            // final broadcast (the post-GC cost §V-C mentions).
            kernel.trace.set_base(self.timeline + pool.makespan());
            let asid = heap.space().asid();
            let (bcast, intf) = kernel.flush_asid_all_cores(pool.core_of(0, cores), asid);
            let unpin = kernel.unpin();
            stats.phases.shootdown += bcast + unpin;
            stats.interference += intf.0;
            if let Some(point) = kernel.crashed() {
                return Err(GcError::Crashed { point });
            }
        }
        kernel.perf.objects_swapped += stats.swapped_objects;
        kernel.perf.gc_cycles += 1;
        Ok(())
    }

    /// Execute and clear the aggregation buffer through the resilient
    /// executor: transient faults retry with backoff, permanent faults
    /// demote single requests to memmove, mid-batch faults split the
    /// batch. With aggregation disabled the buffer never exceeds one
    /// request, so this degenerates to separated calls.
    fn flush_batch(
        &self,
        kernel: &mut Kernel,
        heap: &mut Heap,
        batch: &mut SwapBatch,
        opts: SwapVaOptions,
        core: svagc_kernel::CoreId,
        stats: &mut GcCycleStats,
    ) -> Result<(Cycles, Cycles), GcError> {
        if batch.is_empty() {
            return Ok((Cycles::ZERO, Cycles::ZERO));
        }
        let entries = batch.take();
        let reqs: Vec<SwapRequest> = entries.iter().map(|(r, _)| *r).collect();
        kernel.trace.instant(
            TraceKind::BatchFlush,
            Cycles::ZERO,
            core.0 as u32,
            &[
                ("requests", reqs.len() as u64),
                ("pages", reqs.iter().map(|r| r.pages).sum()),
            ],
        );
        let out = execute_swaps(
            kernel,
            heap.space_mut(),
            &reqs,
            opts,
            core,
            self.cfg.aggregation.is_some(),
            &self.cfg.retry,
        )?;
        stats.swap_retries += out.retries;
        stats.batch_splits += out.batch_splits;
        for &i in &out.fallback {
            // This object was queued as a swap but moved by copy: shift it
            // from the swap columns to the fallback/memmove ones. The
            // executor guarantees distinct ascending indices, so each entry
            // is rebooked at most once; saturate anyway so a miscount can
            // never escalate into a debug-build panic mid-collection.
            let size = entries[i].1;
            stats.swapped_objects = stats.swapped_objects.saturating_sub(1);
            stats.swapped_bytes = stats.swapped_bytes.saturating_sub(size);
            stats.memmove_bytes += size;
            stats.swap_fallback_objects += 1;
            stats.swap_fallback_bytes += size;
        }
        stats.interference += out.interference;
        Ok((out.cycles, out.interference))
    }
}
