//! Minor GC: a copying scavenge of the nursery with SwapVA-accelerated
//! promotion — Table I's second row made concrete.
//!
//! Phases (all STW, like HotSpot's parallel scavenge):
//!
//! 1. **Young roots** — root slots pointing into eden, plus old-generation
//!    reference fields found by scanning the dirty cards of the remembered
//!    set.
//! 2. **Trace** — mark the transitively live *young* subgraph (references
//!    into the old generation are not followed; old objects don't move).
//! 3. **Forward** — assign each survivor a promotion address at the old
//!    generation's cursor, `IFSWAPALIGN`-aligned for large objects.
//! 4. **Adjust** — rewrite young-pointing references (roots, dirty old
//!    fields, and survivors' own fields) to the forwarding addresses.
//! 5. **Promote** — move each survivor: by **SwapVA** when it is at least
//!    the threshold and both endpoints are page-aligned (requests
//!    **aggregated** per Fig. 5 — eden and old space are disjoint, so the
//!    overlap machinery is never needed, exactly as Table I says), else by
//!    memmove. Then reset eden; the remembered set is clean by
//!    construction (no young objects remain).

use crate::config::SchedulerKind;
use crate::degrade::{DegradeController, DegradePolicy};
use crate::error::GcError;
use crate::journal::CompactionJournal;
use crate::packets::{chunk_ranges, PacketKind, PacketScheduler, PacketTicket, MARK_CHUNK};
use crate::resilience::{execute_swaps, RetryPolicy};
use crate::scheduler::WorkerPool;
use crate::watchdog::GcWatchdog;
use svagc_heap::{GenHeap, HeapError, MarkBitmap, ObjRef, RootSet, CARD_BYTES};
use svagc_kernel::{CoreId, FlushMode, Kernel, SwapBatch, SwapRequest, SwapVaOptions};
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::{VirtAddr, PAGE_SIZE};

/// Minor-collector configuration.
#[derive(Debug, Clone, Copy)]
pub struct MinorConfig {
    /// Scavenger worker threads.
    pub gc_threads: usize,
    /// Promote large survivors by PTE swapping.
    pub use_swapva: bool,
    /// Aggregate up to this many swap requests per syscall.
    pub aggregation: Option<usize>,
    /// PMD walk caching inside SwapVA.
    pub pmd_cache: bool,
    /// Retry/backoff budget for transient SwapVA faults during promotion.
    pub retry: RetryPolicy,
    /// Per-phase watchdog deadline in virtual cycles (`None` disarms).
    pub deadline_cycles: Option<u64>,
    /// Degraded-mode circuit-breaker policy for aborted scavenges.
    pub degrade: DegradePolicy,
    /// Scheduling substrate for the scavenge phases (barrier pipeline or
    /// work packets).
    pub scheduler: SchedulerKind,
    /// First machine core this scavenger's workers pin to (multi-tenant
    /// affinity; see [`crate::GcConfig::core_base`]).
    pub core_base: usize,
}

impl MinorConfig {
    /// Everything on (the SVAGC-style scavenger).
    pub fn svagc(gc_threads: usize) -> MinorConfig {
        MinorConfig {
            gc_threads,
            use_swapva: true,
            aggregation: Some(32),
            pmd_cache: true,
            retry: RetryPolicy::default(),
            deadline_cycles: None,
            degrade: DegradePolicy::off(),
            scheduler: SchedulerKind::Barrier,
            core_base: 0,
        }
    }

    /// memmove-only baseline.
    pub fn memmove(gc_threads: usize) -> MinorConfig {
        MinorConfig {
            use_swapva: false,
            aggregation: None,
            ..MinorConfig::svagc(gc_threads)
        }
    }

    /// Select the scheduling substrate.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> MinorConfig {
        self.scheduler = kind;
        self
    }

    /// Set the core-affinity base.
    pub fn with_core_base(mut self, base: usize) -> MinorConfig {
        self.core_base = base;
        self
    }
}

/// Statistics of one scavenge.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinorStats {
    /// STW pause (cycles).
    pub pause: Cycles,
    /// Young objects found live and promoted.
    pub promoted_objects: u64,
    /// Bytes promoted.
    pub promoted_bytes: u64,
    /// Of those objects, promoted by PTE swap.
    pub swapped_objects: u64,
    /// Young objects reclaimed with eden.
    pub dead_young: u64,
    /// Dirty cards scanned.
    pub scanned_cards: u64,
    /// Old objects inspected via dirty cards, deduped: an object spanning
    /// several dirty cards is scanned (and charged) exactly once.
    pub scanned_objects: u64,
    /// IPI interference pushed onto other cores.
    pub interference: Cycles,
    /// Transient-fault retries during promotion swaps.
    pub swap_retries: u64,
    /// Promotions demoted from SwapVA to memmove by permanent faults.
    pub swap_fallback_objects: u64,
    /// Aggregated promotion batches split by a mid-batch fault.
    pub batch_splits: u64,
    /// Attempts of this scavenge that aborted and rolled back before the
    /// committed attempt.
    pub aborts: u64,
    /// Pages rewritten by the aborted attempts' rollbacks.
    pub rollback_pages: u64,
    /// Degradation level the committed attempt ran at (0 = normal).
    pub mode: u8,
}

/// The minor collector.
#[derive(Debug)]
pub struct MinorGc {
    /// Active configuration.
    pub cfg: MinorConfig,
    /// Per-scavenge log.
    pub log: Vec<MinorStats>,
    /// Degraded-mode circuit breaker carried across scavenges.
    pub degrade: DegradeController,
}

impl MinorGc {
    /// A scavenger with the given configuration.
    ///
    /// ```
    /// use svagc_core::{MinorConfig, MinorGc};
    /// use svagc_heap::{GenHeap, ObjShape, RootSet};
    /// use svagc_kernel::{CoreId, Kernel};
    /// use svagc_metrics::MachineConfig;
    /// use svagc_vmem::Asid;
    ///
    /// let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 32 << 20);
    /// let mut gh = GenHeap::new(&mut k, Asid(1), 16 << 20, 4 << 20, 10).unwrap();
    /// let mut roots = RootSet::new();
    ///
    /// let (live, _) = gh.alloc_young(&mut k, CoreId(0), ObjShape::data(32)).unwrap();
    /// roots.push(live);
    /// gh.alloc_young(&mut k, CoreId(0), ObjShape::data(32)).unwrap(); // garbage
    ///
    /// let mut minor = MinorGc::new(MinorConfig::svagc(2));
    /// let stats = minor.collect(&mut k, &mut gh, &mut roots).unwrap();
    /// assert_eq!(stats.promoted_objects, 1);
    /// assert_eq!(stats.dead_young, 1);
    /// assert!(gh.in_old(roots.iter_live().next().unwrap().0));
    /// ```
    pub fn new(cfg: MinorConfig) -> MinorGc {
        MinorGc {
            cfg,
            log: Vec::new(),
            degrade: DegradeController::new(cfg.degrade),
        }
    }

    /// Run one scavenge as a **transaction**: on any error the attempt's
    /// promotions and metadata writes are rolled back (eden and the
    /// remembered set are only touched on success), operational errors
    /// escalate the degraded-mode ladder and retry within this call, and
    /// structural errors — notably [`HeapError::NeedGc`], which the caller
    /// must answer with a full collection — propagate after rollback.
    pub fn collect(
        &mut self,
        kernel: &mut Kernel,
        gh: &mut GenHeap,
        roots: &mut RootSet,
    ) -> Result<MinorStats, GcError> {
        let core0 = CoreId(0);
        let user_cfg = self.cfg;
        let mut aborts = 0u64;
        let mut rollback_pages = 0u64;
        loop {
            let effective = self.degrade.apply_minor(&user_cfg);
            let mut watchdog = GcWatchdog::new(effective.deadline_cycles);
            let txn = CompactionJournal::begin(kernel, &mut gh.old, roots, false);
            self.cfg = effective;
            let attempt = self.try_collect(kernel, gh, roots, &mut watchdog);
            self.cfg = user_cfg;
            match attempt {
                Ok(mut stats) => {
                    txn.commit(kernel, &mut gh.old, roots);
                    stats.aborts = aborts;
                    stats.rollback_pages = rollback_pages;
                    stats.mode = self.degrade.mode().level();
                    if let Some(t) = self.degrade.on_clean() {
                        kernel.trace.instant(
                            TraceKind::ModeChange,
                            Cycles::ZERO,
                            0,
                            &[("from", t.from.level() as u64), ("to", t.to.level() as u64)],
                        );
                    }
                    // Success: only now is eden wiped (and with it the
                    // remembered set — no young objects remain).
                    gh.reset_eden();
                    self.log.push(stats);
                    return Ok(stats);
                }
                Err(e) => {
                    // A seeded crash bypasses rollback entirely: the undo
                    // journal and WAL epoch stay open for crash recovery.
                    if let Some(point) = e.crash_point() {
                        return Err(GcError::Crashed { point });
                    }
                    let rb = txn.abort(kernel, &mut gh.old, roots, core0)?;
                    aborts += 1;
                    rollback_pages += rb.pages;
                    kernel.trace.instant(
                        TraceKind::CycleAbort,
                        Cycles::ZERO,
                        0,
                        &[
                            ("attempt", aborts),
                            ("mode", self.degrade.mode().level() as u64),
                            ("rollback_pages", rb.pages),
                        ],
                    );
                    let escalation = if e.is_operational() {
                        self.degrade.on_abort()
                    } else {
                        None
                    };
                    match escalation {
                        Some(t) => {
                            kernel.trace.instant(
                                TraceKind::ModeChange,
                                Cycles::ZERO,
                                0,
                                &[("from", t.from.level() as u64), ("to", t.to.level() as u64)],
                            );
                        }
                        None => {
                            return Err(
                                if e.is_operational() && self.degrade.policy().enabled {
                                    GcError::Exhausted(Box::new(e))
                                } else {
                                    e
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    /// One scavenge attempt (no transaction bracketing — `collect` owns
    /// that; eden is untouched here so an abort only needs to restore the
    /// old generation).
    fn try_collect(
        &mut self,
        kernel: &mut Kernel,
        gh: &mut GenHeap,
        roots: &mut RootSet,
        watchdog: &mut GcWatchdog,
    ) -> Result<MinorStats, GcError> {
        if self.cfg.scheduler == SchedulerKind::Packets {
            return self.try_collect_packets(kernel, gh, roots, watchdog);
        }
        let mut stats = MinorStats::default();
        // Anchor of this scavenge on the cumulative GC trace timeline
        // (kernel emissions below advance the base as they consume cycles).
        let trace_start = kernel.trace.base();
        let cores = kernel.cores();
        let threads = self.cfg.gc_threads.min(cores).max(1);
        let mut pool = WorkerPool::with_core_base(threads, self.cfg.core_base);
        let (eden_base, eden_end) = gh.eden_range();
        let eden_words = (eden_end - eden_base) / 8;
        let mut bitmap = MarkBitmap::new(eden_base, eden_words);

        // ---- Phase 1+2: young roots and trace ------------------------
        // `slots`: every location that holds a young pointer and must be
        // rewritten: root indices and (holder, field) pairs in old space.
        let mut old_slots: Vec<(ObjRef, u64)> = Vec::new();
        let mut stack: Vec<ObjRef> = Vec::new();
        for r in roots.iter_live() {
            if gh.in_young(r.0) && bitmap.mark(r.header_va()) {
                stack.push(r);
            }
        }
        // Scan dirty cards: find old objects overlapping each card and
        // inspect their reference fields.
        let dirty: Vec<VirtAddr> = gh.cards.iter_dirty().collect();
        stats.scanned_cards = dirty.len() as u64;
        let old_objects: Vec<ObjRef> = gh.old.objects_sorted().to_vec();
        // An old object can overlap several adjacent dirty cards; scanning
        // it once per card would double-push its young-pointing slots into
        // `old_slots` (duplicate pointer adjustments) and double-charge the
        // scan cycles. Cards iterate in ascending address order, so the
        // index one past the last scanned object dedupes the sweep.
        let mut scanned_upto = 0usize;
        for card in dirty {
            let card_end = card + CARD_BYTES;
            // Objects whose extent intersects [card, card_end): start from
            // the last object at or before the card, skipping any already
            // scanned under a previous card.
            let start_idx = old_objects
                .partition_point(|o| o.0 <= card)
                .saturating_sub(1)
                .max(scanned_upto);
            for (idx, &obj) in old_objects.iter().enumerate().skip(start_idx) {
                if obj.0 >= card_end {
                    break;
                }
                scanned_upto = idx + 1;
                stats.scanned_objects += 1;
                let w = pool.least_loaded();
                let core = pool.core_of(w, cores);
                let (hdr, mut t) = gh.old.read_header(kernel, core, obj)?;
                // Imprecise card scan (as HotSpot does): inspect every
                // reference field of each object overlapping the card.
                for i in 0..hdr.num_refs as u64 {
                    let (tgt, tc) = gh.old.read_ref(kernel, core, obj, i)?;
                    t += tc;
                    if !tgt.is_null() && gh.in_young(tgt.0) {
                        old_slots.push((obj, i));
                        if bitmap.mark(tgt.header_va()) {
                            stack.push(tgt);
                        }
                    }
                }
                pool.dispatch_to(w, t);
            }
        }
        // Trace the young subgraph.
        while let Some(obj) = stack.pop() {
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            let (hdr, mut t) = gh.old.read_header(kernel, core, obj)?;
            for i in 0..hdr.num_refs as u64 {
                let (tgt, tc) = gh.old.read_ref(kernel, core, obj, i)?;
                t += tc;
                if !tgt.is_null() && gh.in_young(tgt.0) && bitmap.mark(tgt.header_va()) {
                    stack.push(tgt);
                }
            }
            pool.dispatch_to(w, t);
        }
        watchdog.check("minor-trace", pool.makespan())?;

        // ---- Phase 3: forwarding (promotion addresses) ----------------
        struct Promo {
            src: ObjRef,
            dst: ObjRef,
            size: u64,
            large: bool,
        }
        let young: Vec<ObjRef> = gh.young_objects().to_vec();
        // First pass: read survivor shapes and pre-check old-gen capacity
        // so a promotion failure aborts *before* any state changes (the
        // caller must run a full collection and retry).
        let mut survivors: Vec<(ObjRef, svagc_heap::ObjShape, bool)> = Vec::new();
        let mut demand = 0u64;
        let mut large_count = 0u64;
        for &obj in &young {
            if !bitmap.is_marked(obj.header_va()) {
                stats.dead_young += 1;
                continue;
            }
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            let (hdr, t) = gh.old.read_header(kernel, core, obj)?;
            let shape = svagc_heap::ObjShape::with_refs(
                hdr.num_refs,
                hdr.size_words - 2 - hdr.num_refs,
            );
            demand += hdr.size_bytes();
            if hdr.is_large() {
                large_count += 1;
            }
            survivors.push((obj, shape, hdr.is_large()));
            pool.dispatch_to(w, t);
        }
        if demand + (2 * large_count + 1) * PAGE_SIZE > gh.old.free_bytes() {
            return Err(GcError::Heap(HeapError::NeedGc { requested: demand }));
        }
        let mut promos: Vec<Promo> = Vec::new();
        for (obj, shape, large) in survivors {
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            let dst = gh.old.adopt_at_top(kernel, shape)?;
            let t = kernel.write_word(gh.old.space(), core, obj.forwarding_va(), dst.0.get())?;
            stats.promoted_bytes += shape.size_bytes();
            promos.push(Promo {
                src: obj,
                dst,
                size: shape.size_bytes(),
                large,
            });
            pool.dispatch_to(w, t);
        }
        stats.promoted_objects = promos.len() as u64;
        watchdog.check("minor-forward", pool.makespan())?;

        // ---- Phase 4: adjust references -------------------------------
        let read_fwd = |kernel: &mut Kernel, gh: &GenHeap, core, tgt: ObjRef| {
            kernel.read_word(gh.old.space(), core, tgt.forwarding_va())
        };
        // Root slots.
        {
            let core0 = pool.core_of(0, cores);
            let mut t = Cycles::ZERO;
            for slot in roots.slots_mut() {
                if !slot.is_null() && slot.0 >= eden_base && slot.0 < eden_end {
                    let (fwd, c) = kernel.read_word(gh.old.space(), core0, slot.forwarding_va())?;
                    t += c;
                    *slot = ObjRef(VirtAddr(fwd));
                }
            }
            pool.dispatch_to(0, t);
        }
        // Old-generation fields discovered via cards.
        for (holder, field) in old_slots {
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            let (tgt, mut t) = gh.old.read_ref(kernel, core, holder, field)?;
            if !tgt.is_null() && gh.in_young(tgt.0) {
                let (fwd, c) = read_fwd(kernel, gh, core, tgt)?;
                t += c;
                t += gh.old.write_ref(kernel, core, holder, field, ObjRef(VirtAddr(fwd)))?;
            }
            pool.dispatch_to(w, t);
        }
        // Survivors' own fields (young targets forward; old targets keep).
        for p in &promos {
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            let (hdr, mut t) = gh.old.read_header(kernel, core, p.src)?;
            for i in 0..hdr.num_refs as u64 {
                let (tgt, tc) = gh.old.read_ref(kernel, core, p.src, i)?;
                t += tc;
                if !tgt.is_null() && gh.in_young(tgt.0) {
                    let (fwd, c) = read_fwd(kernel, gh, core, tgt)?;
                    t += c;
                    t += gh.old.write_ref(kernel, core, p.src, i, ObjRef(VirtAddr(fwd)))?;
                }
            }
            pool.dispatch_to(w, t);
        }
        watchdog.check("minor-adjust", pool.makespan())?;

        // ---- Phase 5: promote (copy or swap) ---------------------------
        let threshold_pages = gh.old.threshold_pages();
        let swap_opts = SwapVaOptions {
            pmd_cache: self.cfg.pmd_cache,
            overlap_opt: false, // Table I: not applicable to Minor copying
            flush: FlushMode::LocalOnly,
        };
        let any_swaps = self.cfg.use_swapva
            && promos.iter().any(|p| {
                p.large && p.src.0.is_page_aligned() && p.dst.0.is_page_aligned()
            });
        if any_swaps {
            let asid = gh.old.space().asid();
            let c0 = pool.core_of(0, cores);
            let pin = kernel.pin(c0);
            let (b, intf) = kernel.flush_asid_all_cores(c0, asid);
            pool.dispatch_to(0, pin + b);
            stats.interference += intf.0;
            if let Some(point) = kernel.crashed() {
                return Err(GcError::Crashed { point });
            }
        }
        let mut batch: Vec<SwapRequest> = Vec::new();
        let mut batch_pages = 0u64;
        let batch_cap = self.cfg.aggregation.unwrap_or(1).max(1);
        // Aggregation amortizes syscall entry across *small* promotions; a
        // page budget keeps one batch from serializing big-object swaps
        // onto a single worker.
        let batch_page_budget = 8 * threshold_pages.max(1);
        for p in &promos {
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            let mut t = Cycles::ZERO;
            let pages = p.size.div_ceil(PAGE_SIZE);
            let swappable = self.cfg.use_swapva
                && p.large
                && pages >= threshold_pages
                && p.src.0.is_page_aligned()
                && p.dst.0.is_page_aligned();
            if swappable {
                // Eden and old space never overlap: this is always the
                // disjoint fast path.
                debug_assert!(
                    !(SwapRequest { a: p.src.0, b: p.dst.0, pages }).overlaps(),
                    "eden and old generation must be disjoint"
                );
                stats.swapped_objects += 1;
                batch.push(SwapRequest { a: p.src.0, b: p.dst.0, pages });
                batch_pages += pages;
                if batch.len() >= batch_cap || batch_pages >= batch_page_budget {
                    let out = execute_swaps(
                        kernel,
                        gh.old.space_mut(),
                        &batch,
                        swap_opts,
                        core,
                        self.cfg.aggregation.is_some(),
                        &self.cfg.retry,
                    )?;
                    stats.swap_retries += out.retries;
                    stats.batch_splits += out.batch_splits;
                    // Fallback indices are distinct within one call and the
                    // batch is cleared after every flush, so this rebooking
                    // site and the post-loop one below never see the same
                    // request twice — each subtraction is bounded by the
                    // requests booked for its own batch. Saturating (as the
                    // full collector does) so a miscount degrades the stats
                    // instead of panicking.
                    debug_assert!(out.fallback.len() <= batch.len());
                    stats.swapped_objects =
                        stats.swapped_objects.saturating_sub(out.fallback.len() as u64);
                    stats.swap_fallback_objects += out.fallback.len() as u64;
                    batch.clear();
                    batch_pages = 0;
                    t += out.cycles;
                    stats.interference += out.interference;
                    // Mid-phase deadline check between promotion batches.
                    watchdog.check("minor-promote", pool.makespan() + t)?;
                }
            } else {
                t += kernel.memmove(gh.old.space(), core, p.src.0, p.dst.0, p.size)?;
            }
            pool.dispatch_to(w, t);
        }
        if !batch.is_empty() {
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            let out = execute_swaps(
                kernel,
                gh.old.space_mut(),
                &batch,
                swap_opts,
                core,
                self.cfg.aggregation.is_some(),
                &self.cfg.retry,
            )?;
            stats.swap_retries += out.retries;
            stats.batch_splits += out.batch_splits;
            // Second rebooking site: this drains only the final partial
            // batch, disjoint from every mid-loop flush above, so the two
            // sites cannot double-subtract the same fallback even when both
            // run within one scavenge (pinned by minor_counters tests).
            debug_assert!(out.fallback.len() <= batch.len());
            stats.swapped_objects =
                stats.swapped_objects.saturating_sub(out.fallback.len() as u64);
            stats.swap_fallback_objects += out.fallback.len() as u64;
            stats.interference += out.interference;
            pool.dispatch_to(w, out.cycles);
        }
        // Clear forwarding words at the destinations (after every deferred
        // swap has executed, so the words land in the final frames).
        if any_swaps {
            let asid = gh.old.space().asid();
            for w in 0..pool.len() {
                kernel.flush_tlb_local(pool.core_of(w, cores), asid);
            }
        }
        for p in &promos {
            let w = pool.least_loaded();
            let core = pool.core_of(w, cores);
            let t = kernel.write_word(gh.old.space(), core, p.dst.forwarding_va(), 0)?;
            pool.dispatch_to(w, t);
        }
        if any_swaps {
            let asid = gh.old.space().asid();
            let c0 = pool.core_of(0, cores);
            let (b, intf) = kernel.flush_asid_all_cores(c0, asid);
            pool.dispatch_to(0, b + kernel.unpin());
            stats.interference += intf.0;
            if let Some(point) = kernel.crashed() {
                return Err(GcError::Crashed { point });
            }
        }

        stats.pause = pool.makespan();
        watchdog.check("minor-promote", stats.pause)?;
        kernel.trace.span_abs(
            TraceKind::MinorCycle,
            trace_start,
            stats.pause,
            0,
            &[
                ("promoted", stats.promoted_objects),
                ("swapped", stats.swapped_objects),
                ("dead_young", stats.dead_young),
            ],
        );
        // Stack successive scavenges (and their kernel-side events) on the
        // cumulative GC timeline.
        kernel.trace.set_base(trace_start + stats.pause);
        kernel.perf.gc_cycles += 1;
        kernel.perf.objects_moved += stats.promoted_objects;
        kernel.perf.objects_swapped += stats.swapped_objects;
        Ok(stats)
    }

    /// One scavenge attempt under the **work-packet scheduler**
    /// (`--scheduler packets`). Functional effects run in the same host
    /// order as the barrier path — only time attribution and core choice
    /// differ — with the scavenge decomposed into [`PacketKind::MinorChunk`]
    /// packets: card-scan and trace chunks stamped with discovery-time
    /// dependencies, forward/adjust range chunks at bucket milestones, and
    /// promotion batches that start as soon as every adjust packet that
    /// read their forwarding words has completed.
    fn try_collect_packets(
        &mut self,
        kernel: &mut Kernel,
        gh: &mut GenHeap,
        roots: &mut RootSet,
        watchdog: &mut GcWatchdog,
    ) -> Result<MinorStats, GcError> {
        let mut stats = MinorStats::default();
        let trace_start = kernel.trace.base();
        let cores = kernel.cores();
        let threads = self.cfg.gc_threads.min(cores).max(1);
        let mut sched = PacketScheduler::new(threads, cores, self.cfg.core_base);
        let (eden_base, eden_end) = gh.eden_range();
        let eden_words = (eden_end - eden_base) / 8;
        let mut bitmap = MarkBitmap::new(eden_base, eden_words);

        // ---- Bucket 1: young roots, card scan, trace -----------------
        let mut old_slots: Vec<(ObjRef, u64)> = Vec::new();
        let mut stack: Vec<(ObjRef, Cycles)> = Vec::new();
        let mut t_trace;
        {
            let ticket = sched.begin(PacketKind::MarkRoots, Cycles::ZERO);
            let done = sched.finish(ticket, Cycles::ZERO);
            let mut seeded = 0u64;
            for r in roots.iter_live() {
                if gh.in_young(r.0) && bitmap.mark(r.header_va()) {
                    stack.push((r, done));
                    seeded += 1;
                }
            }
            sched.emit_span(&mut kernel.trace, trace_start, &ticket, Cycles::ZERO, seeded);
            t_trace = done;
        }
        // Card scan in chunks of [`MARK_CHUNK`] inspected old objects, all
        // ready immediately (dirty cards are mutually independent).
        let dirty: Vec<VirtAddr> = gh.cards.iter_dirty().collect();
        stats.scanned_cards = dirty.len() as u64;
        let old_objects: Vec<ObjRef> = gh.old.objects_sorted().to_vec();
        let mut scanned_upto = 0usize;
        // The open card-scan packet: ticket, accumulated cost, item count;
        // `found` holds young objects it discovered, stamped at its finish.
        let mut open: Option<(PacketTicket, Cycles, u64)> = None;
        let mut found: Vec<ObjRef> = Vec::new();
        for card in dirty {
            let card_end = card + CARD_BYTES;
            let start_idx = old_objects
                .partition_point(|o| o.0 <= card)
                .saturating_sub(1)
                .max(scanned_upto);
            for (idx, &obj) in old_objects.iter().enumerate().skip(start_idx) {
                if obj.0 >= card_end {
                    break;
                }
                scanned_upto = idx + 1;
                stats.scanned_objects += 1;
                let (ticket, mut t, mut items) = open.take().unwrap_or_else(|| {
                    (
                        sched.begin(PacketKind::MinorChunk, Cycles::ZERO),
                        Cycles::ZERO,
                        0,
                    )
                });
                let core = sched.core(&ticket);
                let (hdr, ht) = gh.old.read_header(kernel, core, obj)?;
                t += ht;
                for i in 0..hdr.num_refs as u64 {
                    let (tgt, tc) = gh.old.read_ref(kernel, core, obj, i)?;
                    t += tc;
                    if !tgt.is_null() && gh.in_young(tgt.0) {
                        old_slots.push((obj, i));
                        if bitmap.mark(tgt.header_va()) {
                            found.push(tgt);
                        }
                    }
                }
                items += 1;
                if items as usize >= MARK_CHUNK {
                    let done = sched.finish(ticket, t);
                    sched.emit_span(&mut kernel.trace, trace_start, &ticket, t, items);
                    for f in found.drain(..) {
                        stack.push((f, done));
                    }
                    t_trace = t_trace.max(done);
                } else {
                    open = Some((ticket, t, items));
                }
            }
        }
        if let Some((ticket, t, items)) = open.take() {
            let done = sched.finish(ticket, t);
            sched.emit_span(&mut kernel.trace, trace_start, &ticket, t, items);
            for f in found.drain(..) {
                stack.push((f, done));
            }
            t_trace = t_trace.max(done);
        }
        // Trace the young subgraph; each chunk is ready when the packets
        // that discovered its objects complete.
        while !stack.is_empty() {
            let take = stack.len().min(MARK_CHUNK);
            let chunk: Vec<(ObjRef, Cycles)> = stack.split_off(stack.len() - take);
            let ready = chunk
                .iter()
                .map(|&(_, d)| d)
                .fold(Cycles::ZERO, Cycles::max);
            let ticket = sched.begin(PacketKind::MinorChunk, ready);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            let mut discovered: Vec<ObjRef> = Vec::new();
            for &(obj, _) in &chunk {
                let (hdr, ht) = gh.old.read_header(kernel, core, obj)?;
                t += ht;
                for i in 0..hdr.num_refs as u64 {
                    let (tgt, tc) = gh.old.read_ref(kernel, core, obj, i)?;
                    t += tc;
                    if !tgt.is_null() && gh.in_young(tgt.0) && bitmap.mark(tgt.header_va()) {
                        discovered.push(tgt);
                    }
                }
            }
            let done = sched.finish(ticket, t);
            sched.emit_span(&mut kernel.trace, trace_start, &ticket, t, take as u64);
            for d in discovered {
                stack.push((d, done));
            }
            t_trace = t_trace.max(done);
        }
        watchdog.check("minor-trace", t_trace)?;

        // ---- Bucket 2: forward (promotion addresses) -----------------
        struct Promo {
            src: ObjRef,
            dst: ObjRef,
            size: u64,
            large: bool,
        }
        let young: Vec<ObjRef> = gh.young_objects().to_vec();
        let mut survivors: Vec<(ObjRef, svagc_heap::ObjShape, bool)> = Vec::new();
        let mut demand = 0u64;
        let mut large_count = 0u64;
        let mut t_shape = t_trace;
        for (s, e) in chunk_ranges(young.len(), threads) {
            let ticket = sched.begin(PacketKind::MinorChunk, t_trace);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            for &obj in &young[s..e] {
                if !bitmap.is_marked(obj.header_va()) {
                    stats.dead_young += 1;
                    continue;
                }
                let (hdr, ht) = gh.old.read_header(kernel, core, obj)?;
                t += ht;
                let shape = svagc_heap::ObjShape::with_refs(
                    hdr.num_refs,
                    hdr.size_words - 2 - hdr.num_refs,
                );
                demand += hdr.size_bytes();
                if hdr.is_large() {
                    large_count += 1;
                }
                survivors.push((obj, shape, hdr.is_large()));
            }
            let done = sched.finish(ticket, t);
            sched.emit_span(&mut kernel.trace, trace_start, &ticket, t, (e - s) as u64);
            t_shape = t_shape.max(done);
        }
        if demand + (2 * large_count + 1) * PAGE_SIZE > gh.old.free_bytes() {
            return Err(GcError::Heap(HeapError::NeedGc { requested: demand }));
        }
        // Destination assignment: the cursor is a prefix sum over survivor
        // sizes (DESIGN.md §13), so ranges only need the shape milestone.
        let mut promos: Vec<Promo> = Vec::new();
        let mut t_fwd = t_shape;
        for (s, e) in chunk_ranges(survivors.len(), threads) {
            let ticket = sched.begin(PacketKind::MinorChunk, t_shape);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            for &(obj, shape, large) in &survivors[s..e] {
                let dst = gh.old.adopt_at_top(kernel, shape)?;
                t += kernel.write_word(gh.old.space(), core, obj.forwarding_va(), dst.0.get())?;
                stats.promoted_bytes += shape.size_bytes();
                promos.push(Promo {
                    src: obj,
                    dst,
                    size: shape.size_bytes(),
                    large,
                });
            }
            let done = sched.finish(ticket, t);
            sched.emit_span(&mut kernel.trace, trace_start, &ticket, t, (e - s) as u64);
            t_fwd = t_fwd.max(done);
        }
        stats.promoted_objects = promos.len() as u64;
        watchdog.check("minor-forward", t_fwd)?;

        // ---- Bucket 3: adjust ----------------------------------------
        // Promotion-batch partition, computed now so every adjust access
        // to a forwarding word records the batch it constrains.
        let batch_bounds = chunk_ranges(promos.len(), threads);
        let mut batch_ready: Vec<Cycles> = vec![Cycles::ZERO; batch_bounds.len()];
        let mut batch_of_promo = vec![0usize; promos.len()];
        for (bi, &(s, e)) in batch_bounds.iter().enumerate() {
            for b in batch_of_promo.iter_mut().take(e).skip(s) {
                *b = bi;
            }
        }
        // Promos are in ascending source (eden) order by construction.
        let promo_batch_of = |src: ObjRef| -> Option<usize> {
            promos
                .binary_search_by(|p| p.src.0.cmp(&src.0))
                .ok()
                .map(|i| batch_of_promo[i])
        };
        let fold = |conflicts: &[usize], done: Cycles, ready: &mut [Cycles]| {
            for &b in conflicts {
                ready[b] = ready[b].max(done);
            }
        };
        let mut t_adj = t_fwd;
        {
            // Root slots (the VM thread's packet).
            let ticket = sched.begin(PacketKind::MinorChunk, t_fwd);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            let mut conflicts: Vec<usize> = Vec::new();
            let mut slots = 0u64;
            for slot in roots.slots_mut() {
                if !slot.is_null() && slot.0 >= eden_base && slot.0 < eden_end {
                    let (fwd, c) = kernel.read_word(gh.old.space(), core, slot.forwarding_va())?;
                    t += c;
                    if let Some(b) = promo_batch_of(*slot) {
                        conflicts.push(b);
                    }
                    *slot = ObjRef(VirtAddr(fwd));
                    slots += 1;
                }
            }
            let done = sched.finish(ticket, t);
            sched.emit_span(&mut kernel.trace, trace_start, &ticket, t, slots);
            fold(&conflicts, done, &mut batch_ready);
            t_adj = t_adj.max(done);
        }
        // Old-generation fields discovered via cards.
        for (s, e) in chunk_ranges(old_slots.len(), threads) {
            let ticket = sched.begin(PacketKind::MinorChunk, t_fwd);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            let mut conflicts: Vec<usize> = Vec::new();
            for &(holder, field) in &old_slots[s..e] {
                let (tgt, tc) = gh.old.read_ref(kernel, core, holder, field)?;
                t += tc;
                if !tgt.is_null() && gh.in_young(tgt.0) {
                    let (fwd, c) = kernel.read_word(gh.old.space(), core, tgt.forwarding_va())?;
                    t += c;
                    t += gh.old.write_ref(kernel, core, holder, field, ObjRef(VirtAddr(fwd)))?;
                    if let Some(b) = promo_batch_of(tgt) {
                        conflicts.push(b);
                    }
                }
            }
            let done = sched.finish(ticket, t);
            sched.emit_span(&mut kernel.trace, trace_start, &ticket, t, (e - s) as u64);
            fold(&conflicts, done, &mut batch_ready);
            t_adj = t_adj.max(done);
        }
        // Survivors' own fields share the promotion-batch partition, so
        // chunk `bi`'s writes land in batch `bi` by construction.
        for (bi, &(s, e)) in batch_bounds.iter().enumerate() {
            let ticket = sched.begin(PacketKind::MinorChunk, t_fwd);
            let core = sched.core(&ticket);
            let mut t = Cycles::ZERO;
            let mut conflicts: Vec<usize> = vec![bi];
            for p in &promos[s..e] {
                let (hdr, ht) = gh.old.read_header(kernel, core, p.src)?;
                t += ht;
                for i in 0..hdr.num_refs as u64 {
                    let (tgt, tc) = gh.old.read_ref(kernel, core, p.src, i)?;
                    t += tc;
                    if !tgt.is_null() && gh.in_young(tgt.0) {
                        let (fwd, c) =
                            kernel.read_word(gh.old.space(), core, tgt.forwarding_va())?;
                        t += c;
                        t += gh.old.write_ref(kernel, core, p.src, i, ObjRef(VirtAddr(fwd)))?;
                        if let Some(b) = promo_batch_of(tgt) {
                            conflicts.push(b);
                        }
                    }
                }
            }
            let done = sched.finish(ticket, t);
            sched.emit_span(&mut kernel.trace, trace_start, &ticket, t, (e - s) as u64);
            fold(&conflicts, done, &mut batch_ready);
            t_adj = t_adj.max(done);
        }
        watchdog.check("minor-adjust", t_adj)?;

        // ---- Bucket 4: promote ---------------------------------------
        let threshold_pages = gh.old.threshold_pages();
        let swap_opts = SwapVaOptions {
            pmd_cache: self.cfg.pmd_cache,
            overlap_opt: false, // Table I: not applicable to Minor copying
            flush: FlushMode::LocalOnly,
        };
        let any_swaps = self.cfg.use_swapva
            && promos.iter().any(|p| {
                p.large && p.src.0.is_page_aligned() && p.dst.0.is_page_aligned()
            });
        if any_swaps {
            // Algorithm 4 prologue: a global sync point every worker
            // stalls for, positioned at the adjust milestone.
            kernel.trace.set_base(trace_start + t_adj);
            let asid = gh.old.space().asid();
            let c0 = sched.pool().core_of(0, cores);
            let pin = kernel.pin(c0);
            let (b, intf) = kernel.flush_asid_all_cores(c0, asid);
            sched.charge_all(pin + b);
            stats.interference += intf.0;
            if let Some(point) = kernel.crashed() {
                return Err(GcError::Crashed { point });
            }
        }
        let mut t_end = t_adj;
        for (bi, &(s, e)) in batch_bounds.iter().enumerate() {
            let ready = batch_ready[bi].max(t_fwd);
            let ticket = sched.begin(PacketKind::MinorChunk, ready);
            let core = sched.core(&ticket);
            kernel.trace.set_base(trace_start + ticket.placement.start);
            let mut t = Cycles::ZERO;
            let mut batch = SwapBatch::new(
                self.cfg.aggregation.unwrap_or(1),
                8 * threshold_pages.max(1),
            );
            for p in &promos[s..e] {
                let pages = p.size.div_ceil(PAGE_SIZE);
                let swappable = self.cfg.use_swapva
                    && p.large
                    && pages >= threshold_pages
                    && p.src.0.is_page_aligned()
                    && p.dst.0.is_page_aligned();
                if swappable {
                    debug_assert!(
                        !(SwapRequest { a: p.src.0, b: p.dst.0, pages }).overlaps(),
                        "eden and old generation must be disjoint"
                    );
                    stats.swapped_objects += 1;
                    if batch.push(SwapRequest { a: p.src.0, b: p.dst.0, pages }, p.size) {
                        t += Self::flush_promotions(
                            kernel, gh, &mut batch, swap_opts, core, &self.cfg, &mut stats,
                        )?;
                        watchdog.check("minor-promote", ticket.placement.start + t)?;
                    }
                } else {
                    t += kernel.memmove(gh.old.space(), core, p.src.0, p.dst.0, p.size)?;
                }
            }
            if !batch.is_empty() {
                t += Self::flush_promotions(
                    kernel, gh, &mut batch, swap_opts, core, &self.cfg, &mut stats,
                )?;
            }
            // Clear this batch's destinations' forwarding words. The
            // clears run on the same core as the batch's swaps — which
            // LocalOnly-flushed it — so no extra TLB pass is needed.
            for p in &promos[s..e] {
                t += kernel.write_word(gh.old.space(), core, p.dst.forwarding_va(), 0)?;
            }
            let done = sched.finish(ticket, t);
            sched.emit_span(&mut kernel.trace, trace_start, &ticket, t, (e - s) as u64);
            t_end = t_end.max(done);
        }
        t_end = t_end.max(sched.makespan());
        if any_swaps {
            // Algorithm 4 epilogue: one final broadcast for the mutators.
            kernel.trace.set_base(trace_start + t_end);
            let asid = gh.old.space().asid();
            let c0 = sched.pool().core_of(0, cores);
            let (b, intf) = kernel.flush_asid_all_cores(c0, asid);
            sched.charge_all(b + kernel.unpin());
            stats.interference += intf.0;
            if let Some(point) = kernel.crashed() {
                return Err(GcError::Crashed { point });
            }
        }

        stats.pause = sched.makespan();
        watchdog.check("minor-promote", stats.pause)?;
        kernel.trace.span_abs(
            TraceKind::MinorCycle,
            trace_start,
            stats.pause,
            0,
            &[
                ("promoted", stats.promoted_objects),
                ("swapped", stats.swapped_objects),
                ("dead_young", stats.dead_young),
            ],
        );
        kernel.trace.set_base(trace_start + stats.pause);
        kernel.perf.gc_cycles += 1;
        kernel.perf.objects_moved += stats.promoted_objects;
        kernel.perf.objects_swapped += stats.swapped_objects;
        Ok(stats)
    }

    /// Flush a promotion batch through the resilient executor, rebooking
    /// fallback promotions in the stats (see the barrier path's rebooking
    /// comments — batches are cleared on every flush, so each fallback is
    /// rebooked at most once). Returns the cycles charged to the worker.
    fn flush_promotions(
        kernel: &mut Kernel,
        gh: &mut GenHeap,
        batch: &mut SwapBatch,
        opts: SwapVaOptions,
        core: CoreId,
        cfg: &MinorConfig,
        stats: &mut MinorStats,
    ) -> Result<Cycles, GcError> {
        if batch.is_empty() {
            return Ok(Cycles::ZERO);
        }
        let entries = batch.take();
        let reqs: Vec<SwapRequest> = entries.iter().map(|(r, _)| *r).collect();
        let out = execute_swaps(
            kernel,
            gh.old.space_mut(),
            &reqs,
            opts,
            core,
            cfg.aggregation.is_some(),
            &cfg.retry,
        )?;
        stats.swap_retries += out.retries;
        stats.batch_splits += out.batch_splits;
        debug_assert!(out.fallback.len() <= reqs.len());
        stats.swapped_objects = stats
            .swapped_objects
            .saturating_sub(out.fallback.len() as u64);
        stats.swap_fallback_objects += out.fallback.len() as u64;
        stats.interference += out.interference;
        Ok(out.cycles)
    }

    /// Total scavenge pause across the log.
    pub fn total_pause(&self) -> Cycles {
        self.log.iter().map(|s| s.pause).sum()
    }
}

/// Full collection of the *old generation* while a nursery exists (e.g.
/// after a promotion failure): young-held references into the old space
/// are pinned as temporary roots so the full collector keeps and updates
/// them, the collection runs on the old heap only (its phases ignore
/// out-of-heap roots and targets), the updated values are written back
/// into the young holders, and the remembered set is rebuilt for the
/// moved old objects.
pub fn full_collect_generational(
    kernel: &mut Kernel,
    gh: &mut GenHeap,
    roots: &mut RootSet,
    full: &mut crate::lisp2::Lisp2Collector,
) -> Result<crate::stats::GcCycleStats, GcError> {
    let core = svagc_kernel::CoreId(0);
    // Pin young-held old references as temporary roots.
    let mut temp: Vec<(ObjRef, u64, svagc_heap::RootId)> = Vec::new();
    for &y in &gh.young_objects().to_vec() {
        let (hdr, _) = gh.old.read_header(kernel, core, y)?;
        for i in 0..hdr.num_refs as u64 {
            let (tgt, _) = gh.old.read_ref(kernel, core, y, i)?;
            if !tgt.is_null() && gh.in_old(tgt.0) {
                temp.push((y, i, roots.push(tgt)));
            }
        }
    }

    let stats = full.collect(kernel, &mut gh.old, roots)?;

    // Write the updated addresses back into the young holders and retire
    // the temporary roots.
    for (holder, field, rid) in temp {
        let updated = roots.get(rid);
        gh.old.write_ref(kernel, core, holder, field, updated)?;
        roots.set(rid, ObjRef::NULL);
    }

    // Old objects moved: rebuild the remembered set by scanning the
    // surviving old objects for young-pointing fields.
    gh.cards.clear();
    for &obj in &gh.old.objects_sorted().to_vec() {
        let (hdr, _) = gh.old.read_header(kernel, core, obj)?;
        for i in 0..hdr.num_refs as u64 {
            let (tgt, _) = gh.old.read_ref(kernel, core, obj, i)?;
            if !tgt.is_null() && gh.in_young(tgt.0) {
                gh.cards.dirty(obj.ref_field_va(i));
            }
        }
    }
    Ok(stats)
}
