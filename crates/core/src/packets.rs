//! Work-packet scheduling for the parallel LISP2 phases.
//!
//! The barrier pipeline (the default) runs each phase to completion on a
//! freshly reset [`WorkerPool`] and joins at four global barriers. This
//! module provides the alternative `--scheduler packets` substrate, after
//! mmtk-core's `work_bucket` architecture: GC work is decomposed into
//! **typed packets** (mark roots, mark-transitive-closure chunks, forward
//! ranges, adjust ranges, compact/SwapVA batches) organized into
//! dependency-ordered buckets. Workers drain packets greedily with
//! deterministic least-loaded stealing and flow across bucket boundaries
//! wherever the dependency graph allows, instead of stalling at the
//! barriers.
//!
//! # Model
//!
//! Functional effects still execute host-sequentially in heap order (what
//! makes sliding compaction safe); only *time* is scheduled. Each packet
//! has:
//!
//! * an **owner** — the worker whose deque it was pushed onto, assigned
//!   round-robin by creation order (the deterministic stand-in for "the
//!   worker that generated the work");
//! * a **ready time** — the virtual time its dependencies complete;
//! * a **cost** — measured by running its functional effects.
//!
//! Placement is two-phase ([`WorkerPool::place_packet`] then
//! [`WorkerPool::commit_packet`]) because the executing core must be known
//! *before* the packet's kernel accesses run (core identity feeds the TLB
//! and cache simulators), while the cost is only known *after*. Executing
//! a packet off its owner's deque is a **steal** and pays [`STEAL_COST`]
//! — the CAS + cache-line transfer of popping a remote deque — so the
//! schedule prefers locality and only migrates work when the owner's
//! backlog exceeds the steal charge.
//!
//! # Determinism
//!
//! The schedule is a pure function of the packet sequence (kinds, ready
//! times, costs): owners are assigned by a counter, placement ties break
//! owner-first then lowest-index, and all host-side execution is
//! sequential. Repeated runs — and runs under any `SVAGC_HOST_THREADS` —
//! produce bit-identical virtual-time schedules.

use crate::scheduler::{Placement, WorkerPool};
use svagc_kernel::CoreId;
use svagc_metrics::{Cycles, TraceKind, Tracer};

/// Cycles charged for executing a packet off its owner's deque: the
/// steal's CAS plus the cache-line transfer of the deque top. Small enough
/// that stealing wins whenever a worker is meaningfully backlogged, large
/// enough that the schedule keeps honest locality.
pub const STEAL_COST: Cycles = Cycles(24);

/// Objects per mark-transitive-closure packet. Small chunks keep the mark
/// bucket's load balance close to the barrier scheduler's per-object
/// greedy dispatch while still modeling packet-granular handoff.
pub const MARK_CHUNK: usize = 8;

/// Range-packet count per worker for the forward/adjust/compact buckets:
/// each bucket is split into about `CHUNKS_PER_WORKER * workers`
/// contiguous ranges.
pub const CHUNKS_PER_WORKER: usize = 8;

/// The packet types the LISP2 buckets are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Scan the root set and seed the mark stack.
    MarkRoots,
    /// Trace a chunk of the transitive closure.
    MarkChunk,
    /// `CALCNEWADD` over a contiguous object range.
    ForwardRange,
    /// Rewrite reference fields over a contiguous move range.
    AdjustRange,
    /// Rewrite the root slots.
    AdjustRoots,
    /// Move a contiguous run of objects (SwapVA batches + memmoves) and
    /// clear its destinations' forwarding words.
    CompactBatch,
    /// A minor-collection work chunk (the scavenger's buckets are
    /// per-phase and coarser).
    MinorChunk,
    /// Drain a SATB deletion-barrier buffer during the final-mark pause
    /// of a concurrent cycle (`--concurrent`).
    SatbDrain,
    /// Demote a batch of cold pages to the far-memory tier (writeback +
    /// verify + residency record per page), piggybacked on the end of a
    /// GC cycle.
    DemoteBatch,
}

impl PacketKind {
    /// Short name for trace args and logs.
    pub fn name(self) -> &'static str {
        match self {
            PacketKind::MarkRoots => "mark-roots",
            PacketKind::MarkChunk => "mark-chunk",
            PacketKind::ForwardRange => "forward-range",
            PacketKind::AdjustRange => "adjust-range",
            PacketKind::AdjustRoots => "adjust-roots",
            PacketKind::CompactBatch => "compact-batch",
            PacketKind::MinorChunk => "minor-chunk",
            PacketKind::SatbDrain => "satb-drain",
            PacketKind::DemoteBatch => "demote-batch",
        }
    }

    /// Stable numeric id (trace args are `u64`).
    pub fn id(self) -> u64 {
        match self {
            PacketKind::MarkRoots => 0,
            PacketKind::MarkChunk => 1,
            PacketKind::ForwardRange => 2,
            PacketKind::AdjustRange => 3,
            PacketKind::AdjustRoots => 4,
            PacketKind::CompactBatch => 5,
            PacketKind::MinorChunk => 6,
            PacketKind::SatbDrain => 7,
            PacketKind::DemoteBatch => 8,
        }
    }
}

/// A packet mid-execution: placement chosen, cost not yet known.
#[derive(Debug, Clone, Copy)]
pub struct PacketTicket {
    /// The packet's type.
    pub kind: PacketKind,
    /// Where and when it runs.
    pub placement: Placement,
}

/// `gc.sched.*` counters for one cycle's schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedStats {
    /// Packets executed.
    pub packets: u64,
    /// Packets executed off their owner's deque.
    pub steals: u64,
    /// Total steal charges paid (cycles).
    pub steal_cycles: u64,
}

/// The packet scheduler: a [`WorkerPool`] plus deterministic owner
/// assignment and steal accounting.
#[derive(Debug)]
pub struct PacketScheduler {
    pool: WorkerPool,
    cores: usize,
    next_owner: usize,
    /// Schedule counters, drained into [`crate::GcCycleStats`].
    pub stats: SchedStats,
}

impl PacketScheduler {
    /// A scheduler driving `threads` workers on a `cores`-core machine,
    /// pinned starting at `core_base` (see [`WorkerPool::with_core_base`]).
    pub fn new(threads: usize, cores: usize, core_base: usize) -> PacketScheduler {
        PacketScheduler {
            pool: WorkerPool::with_core_base(threads, core_base),
            cores,
            next_owner: 0,
            stats: SchedStats::default(),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.pool.len()
    }

    /// Create a packet (assigning the next round-robin owner) and place
    /// it: the returned ticket carries the executing worker and start
    /// time. Run the packet's functional effects on [`Self::core`] of the
    /// ticket, then [`Self::finish`] it with the measured cost.
    pub fn begin(&mut self, kind: PacketKind, ready: Cycles) -> PacketTicket {
        let owner = self.next_owner;
        self.next_owner = (self.next_owner + 1) % self.pool.len();
        let placement = self.pool.place_packet(owner, ready, STEAL_COST);
        PacketTicket { kind, placement }
    }

    /// The machine core a ticket's packet executes on.
    pub fn core(&self, t: &PacketTicket) -> CoreId {
        self.pool.core_of(t.placement.worker, self.cores)
    }

    /// Commit a packet's measured cost; returns its completion time
    /// (dependents' ready time).
    pub fn finish(&mut self, t: PacketTicket, cost: Cycles) -> Cycles {
        self.pool.commit_packet(t.placement, cost);
        self.stats.packets += 1;
        if t.placement.stolen {
            self.stats.steals += 1;
            self.stats.steal_cycles += STEAL_COST.get();
        }
        t.placement.start + cost
    }

    /// Emit a finished ticket's [`TraceKind::Packet`] span at its absolute
    /// schedule position, on the executing core's lane.
    pub fn emit_span(
        &self,
        trace: &mut Tracer,
        base: Cycles,
        ticket: &PacketTicket,
        cost: Cycles,
        items: u64,
    ) {
        trace.span_abs(
            TraceKind::Packet,
            base + ticket.placement.start,
            cost,
            self.core(ticket).0 as u32,
            &[
                ("kind", ticket.kind.id()),
                ("worker", ticket.placement.worker as u64),
                ("stolen", u64::from(ticket.placement.stolen)),
                ("items", items),
            ],
        );
    }

    /// The underlying pool (core pinning, per-worker clocks).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Schedule makespan so far: the slowest worker's clock.
    pub fn makespan(&self) -> Cycles {
        self.pool.makespan()
    }

    /// Charge every worker (IPI interference stalls all GC workers).
    pub fn charge_all(&mut self, cost: Cycles) {
        self.pool.charge_all(cost);
    }
}

/// Split `len` items into about `CHUNKS_PER_WORKER * workers` contiguous
/// `[start, end)` ranges of near-equal size (the forward/adjust/compact
/// bucket partition). Deterministic; never returns an empty range.
pub fn chunk_ranges(len: usize, workers: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = (CHUNKS_PER_WORKER * workers.max(1)).min(len).max(1);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let sz = base + usize::from(i < extra);
        out.push((start, start + sz));
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly() {
        for len in [0usize, 1, 5, 17, 100, 1000] {
            for workers in [1usize, 2, 4, 8] {
                let r = chunk_ranges(len, workers);
                let mut pos = 0;
                for &(s, e) in &r {
                    assert_eq!(s, pos, "contiguous");
                    assert!(e > s, "non-empty range");
                    pos = e;
                }
                assert_eq!(pos, len, "covers all items");
                if len > 0 {
                    assert!(r.len() <= CHUNKS_PER_WORKER * workers);
                }
            }
        }
    }

    #[test]
    fn owners_rotate_deterministically() {
        let mut a = PacketScheduler::new(3, 8, 0);
        let mut b = PacketScheduler::new(3, 8, 0);
        for i in 0..20u64 {
            let ta = a.begin(PacketKind::MarkChunk, Cycles::ZERO);
            let tb = b.begin(PacketKind::MarkChunk, Cycles::ZERO);
            assert_eq!(ta.placement, tb.placement, "packet {i}");
            let cost = Cycles(1 + (i * 7919) % 97);
            assert_eq!(a.finish(ta, cost), b.finish(tb, cost));
        }
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.stats.packets, 20);
        assert_eq!(a.stats.steals, b.stats.steals);
    }

    #[test]
    fn skewed_packets_get_stolen() {
        // One worker's deque fills with huge packets; the others steal.
        let mut s = PacketScheduler::new(2, 4, 0);
        let mut last = Cycles::ZERO;
        for i in 0..10u64 {
            let cost = if i % 2 == 0 { Cycles(1000) } else { Cycles(10) };
            let t = s.begin(PacketKind::CompactBatch, Cycles::ZERO);
            last = last.max(s.finish(t, cost));
        }
        assert!(s.stats.steals > 0, "skew must trigger steals");
        // Stealing bounds the makespan well below serializing the bigs.
        assert!(s.makespan() < Cycles(5000));
        assert_eq!(
            s.stats.steal_cycles,
            s.stats.steals * STEAL_COST.get(),
            "every steal pays exactly one charge"
        );
    }

    #[test]
    fn ready_times_defer_dependents() {
        let mut s = PacketScheduler::new(2, 4, 0);
        let t = s.begin(PacketKind::MarkRoots, Cycles::ZERO);
        let done = s.finish(t, Cycles(100));
        assert_eq!(done, Cycles(100));
        // A dependent packet cannot start before its dependency resolves,
        // even on the idle worker.
        let t2 = s.begin(PacketKind::MarkChunk, done);
        assert!(t2.placement.start >= done);
    }

    #[test]
    fn core_pinning_respects_base() {
        let s = PacketScheduler::new(2, 8, 4);
        let t = PacketTicket {
            kind: PacketKind::MarkChunk,
            placement: Placement {
                worker: 1,
                start: Cycles::ZERO,
                stolen: false,
            },
        };
        assert_eq!(s.core(&t), CoreId(5));
    }
}
