//! Pressure-escalation state machine: graceful backpressure under a
//! shared frame budget.
//!
//! A tenant running under a fleet [`svagc_vmem::FramePool`] sees two kinds
//! of memory-pressure input on its allocation path:
//!
//! * a **signal** — the typed [`Pressure`] level the pool reports as the
//!   tenant's committed footprint climbs toward its mutator budget, and
//! * a **denial** — a [`svagc_vmem::VmError::QuotaExceeded`] when a
//!   commit actually crosses the budget.
//!
//! The [`PressureEscalator`] turns both into an ordered ladder of
//! remedies, each strictly cheaper than what follows:
//!
//! ```text
//!   rising signal:   Elevated ──► early minor GC     Critical ──► full GC
//!   denial ladder:   minor GC ──► full GC ──► memmove-only degrade ──► OOM
//! ```
//!
//! The terminal rung is a *tenant-local* [`crate::GcError::OutOfMemory`]
//! — never a panic, never another tenant's frames. Signals are
//! edge-triggered (one remedy per rising edge, re-armed when pressure
//! falls back to nominal); the denial ladder resets whenever an
//! allocation succeeds.

use svagc_vmem::Pressure;

/// A remedy the escalator asks the driver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureAction {
    /// Run an early minor (young-generation) collection. Collectors
    /// without one fall back to [`PressureAction::FullGc`].
    MinorGc,
    /// Run a full collection (and trim the heap's committed pages after).
    FullGc,
    /// Force the collector one rung down its degraded-mode ladder
    /// (memmove-only) and collect again: SwapVA side allocations are
    /// avoided and compaction packs the heap as tightly as possible.
    Degrade,
    /// The ladder is exhausted: fail the allocation with a tenant-local
    /// [`crate::GcError::OutOfMemory`].
    GiveUp,
}

impl PressureAction {
    /// Stable label (traces, the OOM error's `last_action`).
    pub fn name(&self) -> &'static str {
        match self {
            PressureAction::MinorGc => "minor-gc",
            PressureAction::FullGc => "full-gc",
            PressureAction::Degrade => "degrade",
            PressureAction::GiveUp => "give-up",
        }
    }
}

/// Counters the escalator accumulates over a run (stats lines, BENCH).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureStats {
    /// Early minor GCs triggered by an elevated signal.
    pub signal_minor_gcs: u64,
    /// Full GCs triggered by a critical signal.
    pub signal_full_gcs: u64,
    /// Remedies run from the denial ladder (all rungs).
    pub denial_remedies: u64,
    /// Pressure-driven degrade escalations.
    pub degrades: u64,
    /// Terminal out-of-memory verdicts.
    pub ooms: u64,
}

/// The per-tenant escalation state machine.
#[derive(Debug, Clone)]
pub struct PressureEscalator {
    enabled: bool,
    /// Highest signal level already acted on since the last nominal
    /// reading (edge triggering).
    signal_level: u8,
    /// Current rung of the denial ladder (reset on allocation success).
    rung: u8,
    /// Accumulated counters.
    pub stats: PressureStats,
}

impl PressureEscalator {
    /// An escalator; disabled escalators never emit an action.
    pub fn new(enabled: bool) -> PressureEscalator {
        PressureEscalator {
            enabled,
            signal_level: 0,
            rung: 0,
            stats: PressureStats::default(),
        }
    }

    /// Is pressure handling on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Feed a background pressure reading (taken after an allocation).
    /// Returns a proactive remedy on a rising edge: `Elevated` asks for
    /// one early minor GC, `Critical` for one full GC. Each level fires
    /// once until pressure falls back to nominal.
    pub fn on_signal(&mut self, p: Pressure) -> Option<PressureAction> {
        if !self.enabled {
            return None;
        }
        match p {
            Pressure::Nominal => {
                self.signal_level = 0;
                None
            }
            Pressure::Elevated => {
                if self.signal_level >= 1 {
                    return None;
                }
                self.signal_level = 1;
                self.stats.signal_minor_gcs += 1;
                Some(PressureAction::MinorGc)
            }
            Pressure::Critical => {
                if self.signal_level >= 2 {
                    return None;
                }
                self.signal_level = 2;
                self.stats.signal_full_gcs += 1;
                Some(PressureAction::FullGc)
            }
            // A fully consumed budget surfaces as a denial on the next
            // commit; the denial ladder owns that path.
            Pressure::Exhausted => None,
        }
    }

    /// A denied (or heap-full) allocation: return the next rung of the
    /// remedy ladder. Call [`PressureEscalator::on_success`] once the
    /// retried allocation lands to re-arm the ladder.
    pub fn on_denial(&mut self) -> PressureAction {
        let action = match self.rung {
            0 => PressureAction::MinorGc,
            1 => PressureAction::FullGc,
            2 => PressureAction::Degrade,
            _ => PressureAction::GiveUp,
        };
        self.rung = self.rung.saturating_add(1);
        match action {
            PressureAction::GiveUp => self.stats.ooms += 1,
            PressureAction::Degrade => {
                self.stats.denial_remedies += 1;
                self.stats.degrades += 1;
            }
            _ => self.stats.denial_remedies += 1,
        }
        action
    }

    /// The retried allocation succeeded: reset the denial ladder (the
    /// signal edge state is left alone — it re-arms on a nominal reading).
    pub fn on_success(&mut self) {
        self.rung = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denial_ladder_is_ordered_and_terminal() {
        let mut e = PressureEscalator::new(true);
        assert_eq!(e.on_denial(), PressureAction::MinorGc);
        assert_eq!(e.on_denial(), PressureAction::FullGc);
        assert_eq!(e.on_denial(), PressureAction::Degrade);
        assert_eq!(e.on_denial(), PressureAction::GiveUp);
        // Exhausted stays exhausted until a success re-arms it.
        assert_eq!(e.on_denial(), PressureAction::GiveUp);
        assert_eq!(e.stats.ooms, 2);
        e.on_success();
        assert_eq!(e.on_denial(), PressureAction::MinorGc);
    }

    #[test]
    fn signals_are_edge_triggered() {
        let mut e = PressureEscalator::new(true);
        assert_eq!(e.on_signal(Pressure::Elevated), Some(PressureAction::MinorGc));
        assert_eq!(e.on_signal(Pressure::Elevated), None, "same edge fires once");
        assert_eq!(e.on_signal(Pressure::Critical), Some(PressureAction::FullGc));
        assert_eq!(e.on_signal(Pressure::Critical), None);
        // Falling back to nominal re-arms both edges.
        assert_eq!(e.on_signal(Pressure::Nominal), None);
        assert_eq!(e.on_signal(Pressure::Critical), Some(PressureAction::FullGc));
        assert_eq!(e.stats.signal_minor_gcs, 1);
        assert_eq!(e.stats.signal_full_gcs, 2);
    }

    #[test]
    fn critical_subsumes_elevated() {
        let mut e = PressureEscalator::new(true);
        // Jumping straight to critical must not later re-fire elevated.
        assert_eq!(e.on_signal(Pressure::Critical), Some(PressureAction::FullGc));
        assert_eq!(e.on_signal(Pressure::Elevated), None);
        assert_eq!(e.on_signal(Pressure::Exhausted), None, "denials own exhaustion");
    }

    #[test]
    fn disabled_escalator_is_inert_on_signals() {
        let mut e = PressureEscalator::new(false);
        assert!(!e.enabled());
        assert_eq!(e.on_signal(Pressure::Critical), None);
        assert_eq!(e.stats, PressureStats::default());
    }
}
