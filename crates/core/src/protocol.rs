//! Schedule-exploring model checker of the TLB-coherence protocols
//! (§IV / Algorithm 4).
//!
//! The simulator executes GC phases host-sequentially, so no real
//! mutator/compactor interleaving ever stresses the paper's safety
//! argument — pin the compactor, broadcast one flush per GC cycle, then
//! flush only locally. This module checks that argument the way loom
//! checks lock-free code: an abstract state machine of cores × per-core
//! TLB entries × PTEs × protocol events, explored breadth-first over
//! *every* bounded interleaving of compactor steps, mutator reads, and
//! core migrations, with seen-state hashing to prune the exponent.
//!
//! The safety invariant is the one the whole §IV design rests on:
//!
//! > **No mutator or compactor read ever translates through a stale TLB
//! > entry** — an entry whose cached frame disagrees with the page table —
//! > and no stale entry survives the cycle to poison a later read.
//!
//! [`check_protocol`] verifies the invariant exhaustively (at the bound)
//! for the three [`FlushMode`]s. Because a checker that cannot fail is
//! worthless, [`mutation_suite`] re-runs the explorer against seeded
//! protocol bugs — a skipped cycle-start broadcast, an unpinned compactor
//! migration, a victim dropped from the `Tracked` IPI set, a local flush
//! deferred past the next swap — and each must be *detected* with a
//! minimal (BFS-shortest) counterexample schedule.
//!
//! The model is deliberately tiny (3 cores × 3 pages × 2 overlapping
//! swaps by default): TLB-coherence bugs of this class are not
//! size-dependent — numaPTE's were all expressible with two cores and a
//! handful of pages — and a small universe keeps exhaustive exploration
//! in the tens of thousands of states.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use svagc_kernel::FlushMode;

/// Geometry and schedule bounds of the model universe.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Number of cores (compactor starts on core 0).
    pub cores: usize,
    /// Number of virtual pages; page `p` initially maps to frame `p`.
    pub pages: usize,
    /// Page pairs the compactor swaps, in order. Overlapping pairs (a
    /// shared page) are the interesting case: the second swap's reads
    /// touch a page the first swap remapped.
    pub swaps: Vec<(usize, usize)>,
    /// Max concurrent mutator reads interleaved into the cycle.
    pub max_cycle_reads: usize,
    /// Max compactor core-migrations during the cycle (only possible
    /// while unpinned).
    pub max_migrations: usize,
}

impl ModelConfig {
    /// The default checked universe: 3 cores × 3 pages, two overlapping
    /// swaps (0↔1 then 1↔2), ≤2 interleaved mutator reads, ≤2 migrations.
    pub fn default_check() -> ModelConfig {
        ModelConfig {
            cores: 3,
            pages: 3,
            swaps: vec![(0, 1), (1, 2)],
            max_cycle_reads: 2,
            max_migrations: 2,
        }
    }
}

/// The flush a [`Op::SwapFlush`] performs, atomically with its PTE swap.
///
/// Swap+flush is one op because the real SwapVA syscall performs both
/// before returning to userspace; modeling them as separate interleavable
/// steps would "detect" staleness in the window no mutator can observe.
/// The mutations below break protocols precisely by weakening this field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flush {
    /// No flush at all (only reachable through a mutation).
    None,
    /// Flush the compactor's own core (`LocalOnly`).
    Local,
    /// Flush every core (`GlobalBroadcast`).
    Global,
    /// Flush every core that holds entries of the space, except a core
    /// maliciously dropped from the victim set (`None` = correct).
    Tracked(Option<usize>),
}

/// One step of the compactor's protocol program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Pin the compactor to its current core (migrations now impossible).
    Pin,
    /// Unpin the compactor.
    Unpin,
    /// Stop the world: mutator reads no longer interleave.
    StopMutators,
    /// Restart the world.
    StartMutators,
    /// Broadcast-flush every core (the once-per-cycle `flush_tlb_all_cores`).
    Broadcast,
    /// The compactor reads `page` (e.g. loading the object it will move);
    /// translates through the compactor core's TLB.
    CompactorRead(usize),
    /// Swap the PTEs of two pages and apply `flush`, atomically.
    SwapFlush {
        /// First page of the exchanged pair.
        a: usize,
        /// Second page of the exchanged pair.
        b: usize,
        /// TLB maintenance fused to the swap.
        flush: Flush,
    },
    /// A bare local flush of the compactor's core, *not* fused to any
    /// swap (only emitted by the deferred-flush mutation).
    LocalFlush,
}

/// A seeded protocol bug the explorer must be able to detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Skip the cycle-start broadcast (`LocalOnly` keeps pre-cycle
    /// entries alive on remote cores).
    SkipBroadcast,
    /// The compactor never pins, so the OS may migrate it mid-cycle onto
    /// a core whose TLB its local flushes never cleaned.
    UnpinnedMigration,
    /// Drop this core from every `Tracked` shootdown's victim set even
    /// when it holds entries (a tracking-state bug à la numaPTE).
    DropTrackedVictim(usize),
    /// Reorder each swap's local flush to after the *next* swap — the
    /// compactor's own reads for swap *k+1* can hit entries staled by
    /// swap *k*.
    DeferLocalFlush,
}

impl Mutation {
    /// The flush mode whose protocol this mutation corrupts.
    pub fn target_mode(self) -> FlushMode {
        match self {
            Mutation::SkipBroadcast
            | Mutation::UnpinnedMigration
            | Mutation::DeferLocalFlush => FlushMode::LocalOnly,
            Mutation::DropTrackedVictim(_) => FlushMode::Tracked,
        }
    }

    /// Short human label for reports.
    pub fn label(self) -> String {
        match self {
            Mutation::SkipBroadcast => "skip cycle-start broadcast".to_string(),
            Mutation::UnpinnedMigration => "compactor migrates while unpinned".to_string(),
            Mutation::DropTrackedVictim(c) => {
                format!("drop core {c} from the Tracked IPI victim set")
            }
            Mutation::DeferLocalFlush => "defer local flush past the next swap".to_string(),
        }
    }

    /// The four seeded bugs of the built-in teeth test.
    pub fn suite(cfg: &ModelConfig) -> Vec<Mutation> {
        vec![
            Mutation::SkipBroadcast,
            Mutation::UnpinnedMigration,
            // Core 1 is a plain mutator core in every config (the
            // compactor starts on 0), so dropping it from the victim set
            // is exactly the missed-IPI bug.
            Mutation::DropTrackedVictim(1 % cfg.cores.max(1)),
            Mutation::DeferLocalFlush,
        ]
    }
}

/// Build the compactor's protocol program for `mode`, optionally
/// corrupted by `mutation`.
pub fn program(mode: FlushMode, cfg: &ModelConfig, mutation: Option<Mutation>) -> Vec<Op> {
    let mut ops = Vec::new();
    match mode {
        FlushMode::LocalOnly => {
            // Algorithm 4: stop the world, pin, broadcast once, then
            // local-only flushes. There is deliberately *no* closing
            // broadcast: the opening one is what guarantees remote cores
            // hold nothing for the whole cycle (mutators are stopped and
            // cannot refill), and a closing broadcast would heal — and
            // therefore hide — a skipped opening one. (The production
            // collector adds a defensive epilogue broadcast anyway; the
            // model checks the minimal protocol the safety argument
            // actually needs.)
            ops.push(Op::StopMutators);
            if mutation != Some(Mutation::UnpinnedMigration) {
                ops.push(Op::Pin);
            }
            if mutation != Some(Mutation::SkipBroadcast) {
                ops.push(Op::Broadcast);
            }
            let defer = mutation == Some(Mutation::DeferLocalFlush);
            let mut deferred = 0usize;
            for (i, &(a, b)) in cfg.swaps.iter().enumerate() {
                ops.push(Op::CompactorRead(a));
                ops.push(Op::CompactorRead(b));
                let last = i + 1 == cfg.swaps.len();
                if defer && !last {
                    // This swap's flush is postponed past the next swap.
                    ops.push(Op::SwapFlush { a, b, flush: Flush::None });
                    deferred += 1;
                } else {
                    ops.push(Op::SwapFlush { a, b, flush: Flush::Local });
                    // Deferred flushes land here, after the next swap —
                    // too late for the reads above.
                    for _ in 0..deferred {
                        ops.push(Op::LocalFlush);
                    }
                    deferred = 0;
                }
            }
            if mutation != Some(Mutation::UnpinnedMigration) {
                ops.push(Op::Unpin);
            }
            ops.push(Op::StartMutators);
        }
        FlushMode::GlobalBroadcast => {
            // Naive mode: fully concurrent, every swap broadcasts.
            for &(a, b) in &cfg.swaps {
                ops.push(Op::CompactorRead(a));
                ops.push(Op::CompactorRead(b));
                ops.push(Op::SwapFlush { a, b, flush: Flush::Global });
            }
        }
        FlushMode::Tracked => {
            // Access-tracking shootdown: concurrent, every swap IPIs the
            // cores that hold entries of the space.
            let skip = match mutation {
                Some(Mutation::DropTrackedVictim(c)) => Some(c),
                _ => None,
            };
            for &(a, b) in &cfg.swaps {
                ops.push(Op::CompactorRead(a));
                ops.push(Op::CompactorRead(b));
                ops.push(Op::SwapFlush { a, b, flush: Flush::Tracked(skip) });
            }
        }
    }
    ops
}

/// One scheduling decision of the explorer — the alphabet counterexample
/// traces are written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Pre-cycle: a mutator on `core` reads `page`, warming its TLB.
    Warm {
        /// Reading core.
        core: usize,
        /// Page read.
        page: usize,
    },
    /// The GC cycle begins; the compactor program starts executing.
    BeginCycle,
    /// The compactor executes its next program op.
    Step(Op),
    /// The OS migrates the (unpinned) compactor to `core`.
    Migrate {
        /// Destination core.
        core: usize,
    },
    /// A concurrent mutator on `core` reads `page` mid-cycle.
    MutatorRead {
        /// Reading core.
        core: usize,
        /// Page read.
        page: usize,
    },
    /// Post-cycle: a mutator read on `core` translated `page` through a
    /// leftover stale entry (the end-state check).
    StaleRead {
        /// Reading core.
        core: usize,
        /// Page read.
        page: usize,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Warm { core, page } => {
                write!(f, "warm: mutator on core {core} reads page {page} (TLB caches frame {page})")
            }
            Event::BeginCycle => write!(f, "GC cycle begins"),
            Event::Step(op) => match op {
                Op::Pin => write!(f, "compactor: pin to current core"),
                Op::Unpin => write!(f, "compactor: unpin"),
                Op::StopMutators => write!(f, "compactor: stop the world"),
                Op::StartMutators => write!(f, "compactor: restart the world"),
                Op::Broadcast => write!(f, "compactor: broadcast flush to all cores"),
                Op::CompactorRead(p) => write!(f, "compactor: read page {p}"),
                Op::SwapFlush { a, b, flush } => {
                    write!(f, "compactor: swap PTEs of pages {a}<->{b}, flush {flush:?}")
                }
                Op::LocalFlush => write!(f, "compactor: (deferred) local flush"),
            },
            Event::Migrate { core } => write!(f, "OS migrates the compactor to core {core}"),
            Event::MutatorRead { core, page } => {
                write!(f, "mutator on core {core} reads page {page}")
            }
            Event::StaleRead { core, page } => {
                write!(f, "post-cycle: mutator on core {core} reads page {page}")
            }
        }
    }
}

/// A schedule that breaks the invariant, plus what exactly went wrong.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The minimal (BFS-shortest) event schedule reaching the violation.
    pub schedule: Vec<Event>,
    /// Human description of the stale translation.
    pub violation: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ev) in self.schedule.iter().enumerate() {
            writeln!(f, "  {:>2}. {ev}", i + 1)?;
        }
        write!(f, "  ** VIOLATION: {}", self.violation)
    }
}

/// Result of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Protocol explored.
    pub mode: FlushMode,
    /// Seeded bug, if any.
    pub mutation: Option<Mutation>,
    /// Distinct states visited.
    pub states_explored: usize,
    /// First (shortest) invariant violation found, `None` = invariant
    /// holds over every bounded schedule.
    pub counterexample: Option<Counterexample>,
}

// ---------------------------------------------------------------------------
// The abstract machine
// ---------------------------------------------------------------------------

/// Hard caps of the compact state encoding. Model universes are tiny by
/// design; the caps let [`State`] be a fixed-size `Copy` value so BFS
/// clones and seen-set hashing stay allocation-free.
const MAX_CORES: usize = 8;
/// See [`MAX_CORES`].
const MAX_PAGES: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Pre-cycle TLB warming (mutators read, PTEs untouched).
    Warm,
    /// The compactor program is running.
    Cycle,
}

/// Full abstract machine state. `Hash`/`Eq` drive the seen-state set.
/// TLB entries are encoded as `0` = no entry, `frame + 1` otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    /// Page table: `pt[page]` = frame.
    pt: [u8; MAX_PAGES],
    /// Per-core TLBs: `tlb[core][page]` = `0` or `frame + 1`.
    tlb: [[u8; MAX_PAGES]; MAX_CORES],
    /// Core the compactor currently runs on.
    cc: u8,
    /// Is the compactor pinned?
    pinned: bool,
    /// Are mutators running (may reads interleave)?
    mutators_running: bool,
    /// Program counter into the compactor program.
    pc: u8,
    /// Canonical warm cursor: warming in ascending (core, page) order
    /// only — warm reads commute, so one representative order suffices.
    warm_cursor: u8,
    phase: Phase,
    /// Mid-cycle mutator reads consumed (bound).
    cycle_reads: u8,
    /// Migrations consumed (bound).
    migrations: u8,
}

impl State {
    fn initial(cfg: &ModelConfig) -> State {
        let mut pt = [0u8; MAX_PAGES];
        for (i, f) in pt.iter_mut().enumerate().take(cfg.pages) {
            *f = i as u8;
        }
        State {
            pt,
            tlb: [[0; MAX_PAGES]; MAX_CORES],
            cc: 0,
            pinned: false,
            mutators_running: true,
            pc: 0,
            warm_cursor: 0,
            phase: Phase::Warm,
            cycle_reads: 0,
            migrations: 0,
        }
    }

    /// Translate `page` on `core`: a hit through a stale entry is the
    /// invariant violation; a miss warms the TLB from the page table.
    fn read(&mut self, core: usize, page: usize) -> Result<(), String> {
        let e = self.tlb[core][page];
        if e == 0 {
            self.tlb[core][page] = self.pt[page] + 1;
            Ok(())
        } else if e - 1 != self.pt[page] {
            Err(format!(
                "core {core} translates page {page} through a stale TLB entry \
                 (cached frame {}, page table says frame {})",
                e - 1,
                self.pt[page]
            ))
        } else {
            Ok(())
        }
    }

    /// Would a read on `(core, page)` change anything? A hit through a
    /// valid entry is a no-op, and a schedule that burns read budget on
    /// one cannot reach any violation a cheaper schedule misses — so the
    /// explorer prunes such successors.
    fn read_matters(&self, core: usize, page: usize) -> bool {
        let e = self.tlb[core][page];
        e == 0 || e - 1 != self.pt[page]
    }

    /// Apply one compactor op. `Err` = the op itself tripped the invariant
    /// (a compactor read through a stale entry).
    fn apply(&mut self, op: Op) -> Result<(), String> {
        match op {
            Op::Pin => self.pinned = true,
            Op::Unpin => self.pinned = false,
            Op::StopMutators => self.mutators_running = false,
            Op::StartMutators => self.mutators_running = true,
            Op::Broadcast => self.tlb = [[0; MAX_PAGES]; MAX_CORES],
            Op::LocalFlush => self.tlb[self.cc as usize] = [0; MAX_PAGES],
            Op::CompactorRead(p) => self.read(self.cc as usize, p)?,
            Op::SwapFlush { a, b, flush } => {
                self.pt.swap(a, b);
                match flush {
                    Flush::None => {}
                    Flush::Local => self.tlb[self.cc as usize] = [0; MAX_PAGES],
                    Flush::Global => self.tlb = [[0; MAX_PAGES]; MAX_CORES],
                    Flush::Tracked(skip) => {
                        // The initiator always flushes locally; every
                        // other *holder* is IPIed — unless dropped.
                        for (c, t) in self.tlb.iter_mut().enumerate() {
                            let holder = t.iter().any(|&e| e != 0);
                            if c == self.cc as usize || (holder && Some(c) != skip) {
                                *t = [0; MAX_PAGES];
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

/// Breadth-first exploration of every bounded schedule of `mode`'s
/// protocol program (optionally corrupted by `mutation`) against all
/// interleaved mutator reads, migrations, and TLB warmings allowed by
/// `cfg`. BFS means the first violation found has a shortest-possible
/// schedule — the "minimal counterexample".
pub fn explore(
    mode: FlushMode,
    mutation: Option<Mutation>,
    cfg: &ModelConfig,
) -> ExploreReport {
    assert!(
        cfg.cores >= 2 && cfg.cores <= MAX_CORES && cfg.pages >= 1 && cfg.pages <= MAX_PAGES,
        "model universe must fit the compact encoding (2..=8 cores, 1..=8 pages)"
    );
    assert!(
        cfg.swaps.iter().all(|&(a, b)| a < cfg.pages && b < cfg.pages && a != b),
        "swap pairs must name distinct in-range pages"
    );
    let prog = program(mode, cfg, mutation);
    let mut seen: HashSet<State> = HashSet::new();
    // Parent-pointer arena so queue entries stay O(1): (event, parent).
    let mut arena: Vec<(Event, usize)> = Vec::new();
    let mut queue: VecDeque<(State, usize)> = VecDeque::new();
    const ROOT: usize = usize::MAX;

    let init = State::initial(cfg);
    seen.insert(init);
    queue.push_back((init, ROOT));
    let mut states = 0usize;

    let trace_of = |arena: &[(Event, usize)], mut at: usize| -> Vec<Event> {
        let mut out = Vec::new();
        while at != ROOT {
            let (ev, parent) = arena[at];
            out.push(ev);
            at = parent;
        }
        out.reverse();
        out
    };

    while let Some((st, parent)) = queue.pop_front() {
        states += 1;
        let push = |succ: State,
                        ev: Event,
                        seen: &mut HashSet<State>,
                        arena: &mut Vec<(Event, usize)>,
                        queue: &mut VecDeque<(State, usize)>| {
            if seen.insert(succ) {
                arena.push((ev, parent));
                queue.push_back((succ, arena.len() - 1));
            }
        };

        match st.phase {
            Phase::Warm => {
                // Warm any suffix of the canonical (core, page) order.
                for idx in st.warm_cursor as usize..cfg.cores * cfg.pages {
                    let (core, page) = (idx / cfg.pages, idx % cfg.pages);
                    let mut s = st;
                    s.read(core, page).expect("pre-cycle reads cannot be stale");
                    s.warm_cursor = (idx + 1) as u8;
                    push(s, Event::Warm { core, page }, &mut seen, &mut arena, &mut queue);
                }
                let mut s = st;
                s.phase = Phase::Cycle;
                push(s, Event::BeginCycle, &mut seen, &mut arena, &mut queue);
            }
            Phase::Cycle => {
                if st.pc as usize >= prog.len() {
                    // Program done: any surviving stale entry poisons the
                    // first post-cycle mutator read of that page.
                    for (core, t) in st.tlb.iter().enumerate().take(cfg.cores) {
                        for (page, &entry) in t.iter().enumerate().take(cfg.pages) {
                            if entry != 0 {
                                let cached = entry - 1;
                                if cached != st.pt[page] {
                                    let mut schedule = trace_of(&arena, parent);
                                    schedule.push(Event::StaleRead { core, page });
                                    return ExploreReport {
                                        mode,
                                        mutation,
                                        states_explored: states,
                                        counterexample: Some(Counterexample {
                                            schedule,
                                            violation: format!(
                                                "core {core} translates page {page} through a \
                                                 stale TLB entry that survived the GC cycle \
                                                 (cached frame {cached}, page table says frame {})",
                                                st.pt[page]
                                            ),
                                        }),
                                    };
                                }
                            }
                        }
                    }
                    continue; // clean terminal state
                }

                // 1. The compactor executes its next op.
                let op = prog[st.pc as usize];
                let mut s = st;
                s.pc += 1;
                match s.apply(op) {
                    Ok(()) => {
                        push(s, Event::Step(op), &mut seen, &mut arena, &mut queue)
                    }
                    Err(violation) => {
                        let mut schedule = trace_of(&arena, parent);
                        schedule.push(Event::Step(op));
                        return ExploreReport {
                            mode,
                            mutation,
                            states_explored: states,
                            counterexample: Some(Counterexample { schedule, violation }),
                        };
                    }
                }

                // 2. The OS migrates the unpinned compactor.
                if !st.pinned && (st.migrations as usize) < cfg.max_migrations {
                    for core in 0..cfg.cores {
                        if core == st.cc as usize {
                            continue;
                        }
                        let mut s = st;
                        s.cc = core as u8;
                        s.migrations += 1;
                        push(s, Event::Migrate { core }, &mut seen, &mut arena, &mut queue);
                    }
                }

                // 3. A concurrent mutator reads.
                if st.mutators_running && (st.cycle_reads as usize) < cfg.max_cycle_reads {
                    for core in 0..cfg.cores {
                        for page in 0..cfg.pages {
                            if !st.read_matters(core, page) {
                                continue;
                            }
                            let mut s = st;
                            s.cycle_reads += 1;
                            match s.read(core, page) {
                                Ok(()) => push(
                                    s,
                                    Event::MutatorRead { core, page },
                                    &mut seen,
                                    &mut arena,
                                    &mut queue,
                                ),
                                Err(violation) => {
                                    let mut schedule = trace_of(&arena, parent);
                                    schedule.push(Event::MutatorRead { core, page });
                                    return ExploreReport {
                                        mode,
                                        mutation,
                                        states_explored: states,
                                        counterexample: Some(Counterexample {
                                            schedule,
                                            violation,
                                        }),
                                    };
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    ExploreReport { mode, mutation, states_explored: states, counterexample: None }
}

/// Exhaustively verify the unmutated protocol of `mode` at the bound.
pub fn check_protocol(mode: FlushMode, cfg: &ModelConfig) -> ExploreReport {
    explore(mode, None, cfg)
}

/// Run the built-in mutation suite: each seeded bug explored under the
/// protocol it corrupts. A healthy checker detects every one.
pub fn mutation_suite(cfg: &ModelConfig) -> Vec<ExploreReport> {
    Mutation::suite(cfg)
        .into_iter()
        .map(|m| explore(m.target_mode(), Some(m), cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_protocols_pass_exhaustive_exploration() {
        let cfg = ModelConfig::default_check();
        for mode in [FlushMode::GlobalBroadcast, FlushMode::LocalOnly, FlushMode::Tracked] {
            let rep = check_protocol(mode, &cfg);
            assert!(
                rep.counterexample.is_none(),
                "{mode:?} must be safe, found:\n{}",
                rep.counterexample.unwrap()
            );
            assert!(rep.states_explored > 1_000, "exploration must be nontrivial");
        }
    }

    #[test]
    fn every_seeded_mutation_is_detected() {
        let cfg = ModelConfig::default_check();
        let reports = mutation_suite(&cfg);
        assert_eq!(reports.len(), 4);
        for rep in reports {
            let m = rep.mutation.unwrap();
            let cex = rep.counterexample.unwrap_or_else(|| {
                panic!("mutation {:?} must be detected but the invariant held", m)
            });
            assert!(!cex.schedule.is_empty());
            assert!(cex.violation.contains("stale"));
        }
    }

    #[test]
    fn skip_broadcast_counterexample_is_minimal() {
        // With the broadcast skipped, the violation can only surface
        // after the whole program ran (mutators are stopped mid-cycle),
        // so the shortest schedule is: one warm read of a remote entry,
        // BeginCycle, the full 10-op program, and the post-cycle stale
        // read — 13 events. BFS must find exactly that, nothing longer.
        let cfg = ModelConfig::default_check();
        let rep = explore(FlushMode::LocalOnly, Some(Mutation::SkipBroadcast), &cfg);
        let cex = rep.counterexample.expect("must be detected");
        assert!(
            cex.schedule.len() <= 13,
            "expected a minimal schedule, got {} events:\n{cex}",
            cex.schedule.len()
        );
    }

    #[test]
    fn dropped_tracked_victim_names_the_dropped_core() {
        let cfg = ModelConfig::default_check();
        let rep = explore(FlushMode::Tracked, Some(Mutation::DropTrackedVictim(1)), &cfg);
        let cex = rep.counterexample.expect("must be detected");
        assert!(
            cex.violation.contains("core 1"),
            "the stale read happens on the dropped core:\n{cex}"
        );
    }

    #[test]
    fn defer_local_flush_is_caught_via_the_shared_page() {
        let cfg = ModelConfig::default_check();
        let rep = explore(FlushMode::LocalOnly, Some(Mutation::DeferLocalFlush), &cfg);
        assert!(rep.counterexample.is_some(), "deferred flush must be detected");
    }

    #[test]
    fn disjoint_swaps_hide_the_deferred_flush_bug() {
        // Teeth check for the *config*: with no shared page between
        // swaps, the compactor never re-reads a staled page, so the
        // deferred flush is invisible — which is exactly why
        // `default_check` uses overlapping swaps.
        let cfg = ModelConfig {
            pages: 4,
            swaps: vec![(0, 1), (2, 3)],
            ..ModelConfig::default_check()
        };
        let rep = explore(FlushMode::LocalOnly, Some(Mutation::DeferLocalFlush), &cfg);
        assert!(
            rep.counterexample.is_none(),
            "disjoint swaps must mask the bug (got:\n{})",
            rep.counterexample.unwrap()
        );
    }

    #[test]
    fn bigger_universe_still_passes() {
        // A slightly larger exhaustive run (one extra core). The full
        // deep bound (4 cores × 4 pages × 3 swaps, ~tens of millions of
        // states) runs in the release-mode CI `protocol-check` job via
        // `svagc_cli protocol-check --deep`; in the debug test suite it
        // would dominate the whole run.
        let cfg = ModelConfig {
            cores: 4,
            pages: 3,
            swaps: vec![(0, 1), (1, 2)],
            max_cycle_reads: 2,
            max_migrations: 1,
        };
        for mode in [FlushMode::GlobalBroadcast, FlushMode::LocalOnly, FlushMode::Tracked] {
            let rep = check_protocol(mode, &cfg);
            assert!(rep.counterexample.is_none(), "{mode:?} must hold");
        }
    }
}
