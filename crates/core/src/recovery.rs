//! Crash recovery: rebuild a consistent heap from the durable state.
//!
//! After a simulated crash ([`svagc_kernel::CrashPoint`]) the only
//! surviving state is what the machine model calls durable: physical
//! memory, page tables, and the write-ahead log
//! ([`svagc_kernel::WriteAheadLog`]). Everything the collector knew —
//! the heap object index, the root set, the in-memory undo journal — is
//! gone. [`recover`] is the restart path: scan the log, classify the
//! cycles it records, undo whatever a torn cycle half-applied, and hand
//! back a heap whose content is **bit-identical** to either the
//! pre-cycle or the post-cycle snapshot. Never a hybrid — that invariant
//! is enforced by re-hashing the rebuilt heap against the hash the log
//! recorded, and recovery fails closed on any mismatch.
//!
//! Classification of the final epoch in the log:
//!
//! | log shape                       | class       | action                |
//! |---------------------------------|-------------|-----------------------|
//! | begin … commit                  | committed   | adopt post-cycle meta |
//! | begin … intents, no commit      | torn        | undo intents, adopt pre |
//! | begin only                      | uncommitted | adopt pre-cycle meta  |
//! | begin … aborted / recovered     | resolved    | adopt pre-cycle meta  |
//!
//! Every *earlier* epoch must already be resolved (committed, aborted,
//! or recovered) — an unresolved epoch buried under later ones means a
//! commit or abort record went missing, and recovery refuses the log
//! outright rather than guess ([`RecoveryError::BadLog`]).
//!
//! Recovery is itself crash-safe: undo records are idempotent absolute
//! pre-images, so a crash *inside recovery* (the double-crash case,
//! [`svagc_kernel::CrashPoint::InsideRecovery`]) leaves a log the next
//! recovery attempt can replay from scratch.

use crate::error::GcError;
use svagc_heap::{Heap, HeapConfig, HeapStats, HeapVerifier, ObjRef, RootSet};
use svagc_kernel::{CoreId, CrashPoint, Kernel, TierError, WalOp, WalPayload, TIER_EPOCH};
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::{AddressSpace, VirtAddr};

/// Version word opening every serialized [`CycleMeta`] payload.
const META_VERSION: u64 = 1;

/// The collector-side snapshot a begin/commit record carries: everything
/// needed to rebuild a [`Heap`] and [`RootSet`] around the surviving
/// address space, plus the content hash that proves the rebuild exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleMeta {
    /// Heap range start.
    pub base: u64,
    /// Heap range end (exclusive).
    pub end: u64,
    /// Allocation cursor.
    pub top: u64,
    /// [`HeapConfig::heap_bytes`].
    pub heap_bytes: u64,
    /// [`HeapConfig::swap_threshold_pages`].
    pub swap_threshold_pages: u64,
    /// [`HeapConfig::align_large`].
    pub align_large: bool,
    /// FNV content hash of every live object at snapshot time.
    pub content_hash: u64,
    /// Heap allocation counters (allocations, large allocations, bytes
    /// requested, alignment waste).
    pub stats: [u64; 4],
    /// Header VAs of every object, in address order.
    pub objects: Vec<u64>,
    /// Root slots (object header VAs; 0 = null slot).
    pub roots: Vec<u64>,
}

impl CycleMeta {
    /// Snapshot the collector-visible state of `heap` and `roots`.
    pub fn capture(heap: &mut Heap, roots: &RootSet, content_hash: u64) -> CycleMeta {
        let cfg = heap.config();
        CycleMeta {
            base: heap.base().get(),
            end: heap.end().get(),
            top: heap.top().get(),
            heap_bytes: cfg.heap_bytes,
            swap_threshold_pages: cfg.swap_threshold_pages,
            align_large: cfg.align_large,
            content_hash,
            stats: [
                heap.stats.allocations,
                heap.stats.large_allocations,
                heap.stats.bytes_requested,
                heap.stats.align_waste_bytes,
            ],
            objects: heap.objects_sorted().iter().map(|o| o.0.get()).collect(),
            roots: roots.snapshot().iter().map(|o| o.0.get()).collect(),
        }
    }

    /// Serialize for a WAL begin/commit record.
    pub fn encode(&self) -> Vec<u64> {
        let mut w = vec![
            META_VERSION,
            self.base,
            self.end,
            self.top,
            self.heap_bytes,
            self.swap_threshold_pages,
            u64::from(self.align_large),
            self.content_hash,
        ];
        w.extend_from_slice(&self.stats);
        w.push(self.objects.len() as u64);
        w.extend_from_slice(&self.objects);
        w.push(self.roots.len() as u64);
        w.extend_from_slice(&self.roots);
        w
    }

    /// Decode a WAL metadata payload (`None` on malformed or
    /// unrecognized-version input).
    pub fn decode(w: &[u64]) -> Option<CycleMeta> {
        if *w.first()? != META_VERSION || w.len() < 13 {
            return None;
        }
        let n_objects = w[12] as usize;
        let roots_at = 13 + n_objects;
        let n_roots = *w.get(roots_at)? as usize;
        if w.len() != roots_at + 1 + n_roots {
            return None;
        }
        Some(CycleMeta {
            base: w[1],
            end: w[2],
            top: w[3],
            heap_bytes: w[4],
            swap_threshold_pages: w[5],
            align_large: w[6] != 0,
            content_hash: w[7],
            stats: [w[8], w[9], w[10], w[11]],
            objects: w[13..roots_at].to_vec(),
            roots: w[roots_at + 1..].to_vec(),
        })
    }

    /// Rebuild the heap and root set this snapshot describes around the
    /// surviving address space.
    pub fn rebuild(&self, space: AddressSpace) -> (Heap, RootSet) {
        let cfg = HeapConfig {
            heap_bytes: self.heap_bytes,
            swap_threshold_pages: self.swap_threshold_pages,
            align_large: self.align_large,
            // Not serialized in the cycle snapshot; `Heap::rebuild` probes
            // the surviving page table's mapped extent and restores the
            // flag when the committed prefix stops short of `end`.
            commit_on_demand: false,
        };
        let stats = HeapStats {
            allocations: self.stats[0],
            large_allocations: self.stats[1],
            bytes_requested: self.stats[2],
            align_waste_bytes: self.stats[3],
        };
        let heap = Heap::rebuild(
            space,
            VirtAddr(self.base),
            VirtAddr(self.end),
            VirtAddr(self.top),
            cfg,
            self.objects.iter().map(|&v| ObjRef(VirtAddr(v))).collect(),
            stats,
        );
        let mut roots = RootSet::new();
        roots.restore(self.roots.iter().map(|&v| ObjRef(VirtAddr(v))).collect());
        (heap, roots)
    }
}

/// How the recovery state machine classified one logged GC cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleClass {
    /// Begin and commit present: the cycle fully applied; durable memory
    /// holds the post-cycle state.
    Committed,
    /// Begin and at least one intent, but no commit/abort: the crash hit
    /// mid-apply and the intents must be undone.
    Torn,
    /// Begin only: the cycle logged no mutation before the crash; the
    /// pre-cycle state is already in place.
    Uncommitted,
    /// An abort record closed the epoch: the in-process rollback finished
    /// before the crash, so memory is back at the pre-cycle state.
    Aborted,
    /// A previous recovery already resolved this epoch.
    Recovered,
}

impl CycleClass {
    /// Outcome code persisted in the epoch's `Recovered` record and
    /// emitted in the recovery trace event.
    pub fn code(self) -> u64 {
        match self {
            CycleClass::Committed => 1,
            CycleClass::Torn => 2,
            CycleClass::Uncommitted => 3,
            CycleClass::Aborted => 4,
            CycleClass::Recovered => 5,
        }
    }

    /// Human-readable name (CLI output).
    pub fn name(self) -> &'static str {
        match self {
            CycleClass::Committed => "committed",
            CycleClass::Torn => "torn",
            CycleClass::Uncommitted => "uncommitted",
            CycleClass::Aborted => "aborted",
            CycleClass::Recovered => "recovered",
        }
    }

    fn resolved(self) -> bool {
        matches!(
            self,
            CycleClass::Committed | CycleClass::Aborted | CycleClass::Recovered
        )
    }
}

/// Why recovery refused to hand back a heap. Every variant is
/// fail-closed: the caller gets the address space back untouched (beyond
/// idempotent undo writes) and must not treat it as a heap.
#[derive(Debug, Clone)]
pub enum RecoveryError {
    /// The log is structurally unusable: empty, malformed metadata, or an
    /// unresolved epoch buried under later ones.
    BadLog(String),
    /// The rebuilt heap's content hash matches neither the pre- nor the
    /// post-cycle snapshot — the one state recovery must never publish.
    HybridHeap {
        /// Hash the chosen snapshot recorded.
        expected: u64,
        /// Hash of the heap recovery actually rebuilt.
        actual: u64,
    },
    /// The rebuilt heap failed a structural verifier pass.
    Corruption(String),
    /// The far-memory device could not hand back demoted pages during
    /// recovery (permanent fetch failure or device offline). The DRAM
    /// image is incomplete and no undo pass can run over it.
    DeviceFailed(String),
    /// A seeded crash point fired *inside recovery* (the double-crash
    /// case). The log is untouched beyond idempotent undo writes; a fresh
    /// recovery attempt after another reboot can run to completion.
    Crashed {
        /// Where recovery died.
        point: CrashPoint,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::BadLog(why) => write!(f, "unrecoverable log: {why}"),
            RecoveryError::HybridHeap { expected, actual } => write!(
                f,
                "hybrid heap detected: content hash {actual:#018x} matches neither \
                 snapshot (expected {expected:#018x})"
            ),
            RecoveryError::Corruption(why) => {
                write!(f, "recovered heap failed verification: {why}")
            }
            RecoveryError::DeviceFailed(why) => {
                write!(f, "far-memory device failed during recovery: {why}")
            }
            RecoveryError::Crashed { point } => {
                write!(f, "machine crashed again inside recovery at {point}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What a successful recovery rebuilt and proved.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Epoch of the cycle recovery resolved.
    pub epoch: u64,
    /// How that cycle was classified.
    pub class: CycleClass,
    /// Intent records undone (torn cycles only).
    pub undone_ops: usize,
    /// Far-tier pages promoted back to DRAM before the undo pass (zero
    /// when no far tier is configured).
    pub far_restored: u32,
    /// Pages rewritten by the undo pass.
    pub undone_pages: u64,
    /// Simulated cycles the recovery pass consumed.
    pub cycles: Cycles,
    /// The log ended in a torn (mid-append) tail.
    pub torn_tail: bool,
    /// Content hash of the recovered heap (equals the chosen snapshot's).
    pub content_hash: u64,
    /// Objects in the recovered heap.
    pub objects: u64,
    /// Root slots in the recovered root set.
    pub roots: u64,
}

/// A recovered, verified heap.
#[derive(Debug)]
pub struct RecoverySuccess {
    /// The rebuilt heap (content-hash-verified).
    pub heap: Heap,
    /// The rebuilt root set.
    pub roots: RootSet,
    /// What recovery did and proved.
    pub report: RecoveryReport,
}

/// A refused recovery. Carries the address space back so the caller can
/// retry (after another [`Kernel::reboot`], for the double-crash case) or
/// surface the failure.
#[derive(Debug)]
pub struct RecoveryFailure {
    /// The surviving address space, returned untouched beyond idempotent
    /// undo writes.
    pub space: AddressSpace,
    /// Why recovery refused.
    pub error: RecoveryError,
}

/// One epoch's records, folded out of the log scan.
#[derive(Debug, Default)]
struct EpochState {
    epoch: u64,
    begin: Option<CycleMeta>,
    intents: Vec<WalOp>,
    commit: Option<CycleMeta>,
    aborted: bool,
    recovered: bool,
}

impl EpochState {
    fn classify(&self) -> CycleClass {
        if self.recovered {
            CycleClass::Recovered
        } else if self.aborted {
            CycleClass::Aborted
        } else if self.commit.is_some() {
            CycleClass::Committed
        } else if !self.intents.is_empty() {
            CycleClass::Torn
        } else {
            CycleClass::Uncommitted
        }
    }
}

/// Fold the scan into per-epoch state, in log order. Fails on records
/// that violate the protocol (an intent before its begin, undecodable
/// metadata, an intent whose pre-image checksum does not validate) —
/// those mean the log writer and reader disagree, and guessing would
/// risk publishing a hybrid heap.
///
/// Far-tier residency records live under the reserved [`TIER_EPOCH`]
/// outside the begin/commit protocol; they are skipped here and
/// replayed by [`Kernel::tier_recover`] instead.
fn fold_epochs(records: &[svagc_kernel::WalRecord]) -> Result<Vec<EpochState>, RecoveryError> {
    let mut epochs: Vec<EpochState> = Vec::new();
    for rec in records {
        if rec.epoch == TIER_EPOCH {
            continue;
        }
        match &rec.payload {
            WalPayload::CycleBegin { meta } => {
                let meta = CycleMeta::decode(meta).ok_or_else(|| {
                    RecoveryError::BadLog(format!("epoch {}: undecodable begin metadata", rec.epoch))
                })?;
                epochs.push(EpochState {
                    epoch: rec.epoch,
                    begin: Some(meta),
                    ..EpochState::default()
                });
            }
            other => {
                let cur = epochs.last_mut().filter(|e| e.epoch == rec.epoch).ok_or_else(|| {
                    RecoveryError::BadLog(format!(
                        "epoch {}: record without a preceding begin",
                        rec.epoch
                    ))
                })?;
                match other {
                    WalPayload::Intent(op) => cur.intents.push(op.clone()),
                    WalPayload::Commit { meta } => {
                        cur.commit = Some(CycleMeta::decode(meta).ok_or_else(|| {
                            RecoveryError::BadLog(format!(
                                "epoch {}: undecodable commit metadata",
                                rec.epoch
                            ))
                        })?);
                    }
                    WalPayload::CycleAborted => cur.aborted = true,
                    WalPayload::Recovered { .. } => cur.recovered = true,
                    // An intent record whose pre-image checksum failed:
                    // the log frame is intact but the payload is lying
                    // about what to restore. Undoing it would write
                    // garbage, skipping it would leave a half-applied
                    // cycle — refuse the log outright.
                    WalPayload::BadIntent => {
                        return Err(RecoveryError::BadLog(format!(
                            "epoch {}: intent pre-image checksum failed",
                            rec.epoch
                        )))
                    }
                    // Residency records outside TIER_EPOCH violate the
                    // protocol (the writer only ever appends them there).
                    WalPayload::TierDemote { .. } | WalPayload::TierPromote { .. } => {
                        return Err(RecoveryError::BadLog(format!(
                            "epoch {}: far-tier record outside the reserved epoch",
                            rec.epoch
                        )))
                    }
                    WalPayload::CycleBegin { .. } => unreachable!("matched above"),
                }
            }
        }
    }
    Ok(epochs)
}

/// Recover a consistent heap from the durable state after a crash.
///
/// Call after [`Kernel::reboot`]. On success the returned heap's content
/// hash is bit-identical to the snapshot the chosen class dictates
/// (post-cycle for committed, pre-cycle otherwise) — verified here, with
/// the TLB stale-translation oracle armed across the undo replay and a
/// final per-object translation sweep. On failure the address space
/// rides back in the [`RecoveryFailure`] so the caller can retry (the
/// double-crash path) or fail the run.
pub fn recover(
    kernel: &mut Kernel,
    space: AddressSpace,
    core: CoreId,
) -> Result<RecoverySuccess, Box<RecoveryFailure>> {
    let fail = |space: AddressSpace, error: RecoveryError| {
        Err(Box::new(RecoveryFailure { space, error }))
    };
    let scan = kernel.wal_scan();
    let epochs = match fold_epochs(&scan.records) {
        Ok(e) => e,
        Err(error) => return fail(space, error),
    };
    let Some(last) = epochs.last() else {
        return fail(
            space,
            RecoveryError::BadLog("empty log: no cycle to recover".into()),
        );
    };
    // Every epoch but the last must be resolved. Mutator writes between
    // cycles are not logged — only the next cycle's begin snapshot covers
    // them — so an unresolved epoch with successors cannot be undone
    // without clobbering later state. A missing commit record lands here.
    for e in &epochs[..epochs.len() - 1] {
        if !e.classify().resolved() {
            return fail(
                space,
                RecoveryError::BadLog(format!(
                    "epoch {} is unresolved but later epochs exist: a commit or abort \
                     record is missing",
                    e.epoch
                )),
            );
        }
    }

    let class = last.classify();
    let epoch = last.epoch;
    let mut cycles = Cycles::ZERO;
    let mut undone_ops = 0usize;
    let mut undone_pages = 0u64;
    let mut space = space;

    // Rebuild far-tier residency and promote every demoted page back to
    // DRAM *before* the undo pass: pre-images are absolute frame writes
    // and must land in resident frames, and the content-hash oracle
    // below reads the heap through uncosted paths that bypass the
    // fetch-on-access hook.
    let far_restored = match kernel.tier_recover() {
        Ok((restored, c)) => {
            cycles += c;
            restored
        }
        Err(TierError::Crashed { point }) => {
            return fail(space, RecoveryError::Crashed { point })
        }
        Err(e) => return fail(space, RecoveryError::DeviceFailed(e.to_string())),
    };

    if class == CycleClass::Torn {
        // Undo the intents in reverse. Pre-images are absolute, so this
        // pass is idempotent: it is safe when the final logged intent was
        // never applied, safe after a partial in-process rollback, and
        // safe to re-run wholesale after a crash inside recovery.
        for op in last.intents.iter().rev() {
            if kernel.crash_fire(CrashPoint::InsideRecovery) {
                return fail(
                    space,
                    RecoveryError::Crashed {
                        point: CrashPoint::InsideRecovery,
                    },
                );
            }
            match kernel.wal_undo_op(&mut space, op) {
                Ok((c, pages)) => {
                    cycles += c;
                    undone_pages += pages;
                    undone_ops += 1;
                }
                Err(e) => {
                    return fail(
                        space,
                        RecoveryError::BadLog(format!("undo of a logged intent failed: {e}")),
                    )
                }
            }
        }
    }
    let meta = match class {
        CycleClass::Committed => last.commit.as_ref(),
        _ => last.begin.as_ref(),
    };
    let Some(meta) = meta.cloned() else {
        return fail(
            space,
            RecoveryError::BadLog(format!("epoch {epoch}: no usable snapshot metadata")),
        );
    };

    // Rebuild, then make sure no core's TLB still caches a pre-crash (or
    // pre-undo) translation. Reboot starts the TLBs cold, but the undo
    // pass above walks page tables through this kernel, so flush again.
    let (mut heap, roots) = meta.rebuild(space);
    let asid = heap.space().asid();
    let (flush, _intf) = kernel.flush_asid_all_cores(core, asid);
    cycles += flush;
    if let Some(point) = kernel.crashed() {
        return fail(heap.into_space(), RecoveryError::Crashed { point });
    }

    // The oracle: the rebuilt heap must hash bit-identically to the
    // snapshot the class dictates. Anything else is a hybrid.
    let verifier = HeapVerifier::new();
    let hash = verifier.content_hash(kernel, &mut heap);
    if hash != meta.content_hash {
        return fail(
            heap.into_space(),
            RecoveryError::HybridHeap {
                expected: meta.content_hash,
                actual: hash,
            },
        );
    }
    for report in [
        verifier.verify_layout(kernel, &mut heap),
        verifier.verify_boundaries(kernel, &mut heap),
    ] {
        if !report.is_clean() {
            let why = GcError::corruption(&report).to_string();
            return fail(heap.into_space(), RecoveryError::Corruption(why));
        }
    }
    // TLB-oracle sweep: translate every recovered object's header on the
    // recovery core. With the stale-translation oracle armed, any cached
    // mapping that survived the crash or the undo pass trips it here.
    let objects: Vec<ObjRef> = heap.objects_sorted().to_vec();
    for obj in &objects {
        match kernel.translate(heap.space(), core, obj.header_va()) {
            Ok((_, c)) => cycles += c,
            Err(e) => {
                return fail(
                    heap.into_space(),
                    RecoveryError::Corruption(format!(
                        "recovered object at {} does not translate: {e}",
                        obj.0
                    )),
                )
            }
        }
    }

    if !class.resolved() {
        kernel.wal_mark_recovered(epoch, class.code());
    }
    kernel.trace.instant(
        TraceKind::Recovery,
        Cycles::ZERO,
        core.0 as u32,
        &[
            ("epoch", epoch),
            ("outcome", class.code()),
            ("undone_ops", undone_ops as u64),
            ("undone_pages", undone_pages),
        ],
    );
    let report = RecoveryReport {
        epoch,
        class,
        undone_ops,
        far_restored,
        undone_pages,
        cycles,
        torn_tail: scan.torn_tail,
        content_hash: hash,
        objects: objects.len() as u64,
        roots: roots.snapshot().len() as u64,
    };
    Ok(RecoverySuccess { heap, roots, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrips() {
        let meta = CycleMeta {
            base: 0x1000,
            end: 0x9000,
            top: 0x4008,
            heap_bytes: 0x8000,
            swap_threshold_pages: 2,
            align_large: true,
            content_hash: 0xDEAD_BEEF_CAFE_F00D,
            stats: [10, 2, 4096, 128],
            objects: vec![0x1000, 0x2000, 0x3000],
            roots: vec![0x2000, 0],
        };
        assert_eq!(CycleMeta::decode(&meta.encode()), Some(meta));
    }

    #[test]
    fn malformed_meta_is_rejected() {
        let meta = CycleMeta {
            base: 0,
            end: 0,
            top: 0,
            heap_bytes: 0,
            swap_threshold_pages: 0,
            align_large: false,
            content_hash: 0,
            stats: [0; 4],
            objects: vec![1, 2],
            roots: vec![3],
        };
        let mut w = meta.encode();
        assert!(CycleMeta::decode(&w[..w.len() - 1]).is_none(), "truncated");
        w[0] = 99;
        assert!(CycleMeta::decode(&w).is_none(), "unknown version");
        assert!(CycleMeta::decode(&[]).is_none(), "empty");
    }

    #[test]
    fn classification_covers_every_log_shape() {
        let begin = EpochState {
            epoch: 1,
            begin: Some(CycleMeta::decode(&CycleMeta {
                base: 0,
                end: 0,
                top: 0,
                heap_bytes: 0,
                swap_threshold_pages: 0,
                align_large: false,
                content_hash: 0,
                stats: [0; 4],
                objects: vec![],
                roots: vec![],
            }
            .encode())
            .unwrap()),
            ..EpochState::default()
        };
        assert_eq!(begin.classify(), CycleClass::Uncommitted);
        let torn = EpochState {
            intents: vec![WalOp::Word {
                at: VirtAddr(8),
                pre: 0,
            }],
            ..EpochState::default()
        };
        assert_eq!(torn.classify(), CycleClass::Torn);
        let aborted = EpochState {
            aborted: true,
            intents: vec![WalOp::Word {
                at: VirtAddr(8),
                pre: 0,
            }],
            ..EpochState::default()
        };
        assert_eq!(aborted.classify(), CycleClass::Aborted, "abort outranks intents");
        let recovered = EpochState {
            recovered: true,
            aborted: true,
            ..EpochState::default()
        };
        assert_eq!(recovered.classify(), CycleClass::Recovered);
    }
}
