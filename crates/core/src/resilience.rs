//! Resilient SwapVA execution: retry, fall back, split.
//!
//! The compaction phase must finish even when individual SwapVA calls
//! fail. [`execute_swaps`] wraps `swap_va`/`swap_va_batch` with the three
//! degradation moves, in order of preference:
//!
//! 1. **Retry** — transient faults (`EAGAIN` contention, shootdown
//!    timeout) are re-issued with a bounded, cycle-charged exponential
//!    backoff ([`RetryPolicy`]). Failed attempts cost real simulated time;
//!    the budget bounds how much one stubborn request can burn.
//! 2. **Fallback** — permanent faults (`EINVAL`, `ENOMEM`), or transients
//!    that exhaust the budget, demote *that one request* to `memmove` of
//!    the same whole pages. Byte copy places exactly the bytes the swap
//!    would have placed at the destination, so heap contents stay
//!    bit-identical to the fault-free run.
//! 3. **Split** — when a request mid-batch faults, the already-applied
//!    prefix MUST NOT be replayed (a second swap would undo the first).
//!    Execution resumes *from the failing index*, splitting the batch.
//!
//! The outcome reports retries, fallbacks, and splits so GC stats expose
//! how much degradation a run absorbed.

use crate::error::GcError;
use svagc_kernel::{CoreId, Kernel, SwapRequest, SwapVaError, SwapVaOptions};
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::{AddressSpace, PAGE_SIZE};

// The retry/backoff policy used to be defined here; it now lives in the
// kernel crate so the far-memory device I/O path can share it. Re-exported
// to keep every existing import site (`svagc_core::RetryPolicy`) intact.
pub use svagc_kernel::RetryPolicy;

/// What resilient execution of a request list cost and absorbed.
#[derive(Debug, Clone, Default)]
pub struct SwapOutcome {
    /// Cycles charged to the calling core (successful calls, failed
    /// attempts, backoff spins, fallback copies).
    pub cycles: Cycles,
    /// Shootdown interference pushed onto other cores.
    pub interference: Cycles,
    /// Transient-fault retries issued.
    pub retries: u64,
    /// Batches split because a mid-batch request faulted.
    pub batch_splits: u64,
    /// Indices (into the input slice) of requests demoted to `memmove`.
    pub fallback: Vec<usize>,
}

/// Execute `reqs` with retry/fallback/split resilience.
///
/// `aggregated` selects one `swap_va_batch` syscall over the remaining
/// run (re-issued from the failing index after each fault) versus one
/// `swap_va` syscall per request. Structural [`VmError`]s are *not*
/// degraded — they mean the collector built an invalid request, which is
/// a bug to surface, not an operational fault to absorb.
pub fn execute_swaps(
    kernel: &mut Kernel,
    space: &mut AddressSpace,
    reqs: &[SwapRequest],
    opts: SwapVaOptions,
    core: CoreId,
    aggregated: bool,
    policy: &RetryPolicy,
) -> Result<SwapOutcome, GcError> {
    let mut out = SwapOutcome::default();
    let mut start = 0usize; // first request not yet applied
    let mut attempts_at_head = 0u32; // retries spent on reqs[start]

    while start < reqs.len() {
        let result = if aggregated {
            kernel.swap_va_batch(space, core, &reqs[start..], opts)
        } else {
            kernel.swap_va(space, core, reqs[start], opts)
        };
        match result {
            Ok((t, intf)) => {
                out.cycles += t;
                out.interference += intf.0;
                kernel.trace.advance(t);
                if aggregated {
                    break; // the whole remaining run went through
                }
                start += 1;
                attempts_at_head = 0;
            }
            Err(e @ SwapVaError::Vm(_)) => return Err(GcError::Swap(e)),
            // A seeded crash killed the machine: never retried, never
            // demoted — surfaced so the caller abandons the cycle intact
            // for crash recovery.
            Err(SwapVaError::Crashed { point }) => return Err(GcError::Crashed { point }),
            Err(SwapVaError::Fault { kind, index, spent }) => {
                out.cycles += spent;
                kernel.trace.advance(spent);
                if index > 0 {
                    // Requests start..start+index were applied; the batch
                    // is now split. Resume FROM the failing request —
                    // replaying the prefix would swap it back.
                    out.batch_splits += 1;
                    start += index;
                    attempts_at_head = 0;
                    kernel.trace.instant(
                        TraceKind::BatchSplit,
                        Cycles::ZERO,
                        core.0 as u32,
                        &[("resume_index", start as u64)],
                    );
                }
                if kind.is_transient() && attempts_at_head < policy.max_retries {
                    attempts_at_head += 1;
                    out.retries += 1;
                    let backoff = policy.backoff(attempts_at_head);
                    out.cycles += backoff;
                    kernel.trace.instant(
                        TraceKind::SwapRetry,
                        Cycles::ZERO,
                        core.0 as u32,
                        &[("attempt", attempts_at_head as u64), ("backoff", backoff.get())],
                    );
                    kernel.trace.advance(backoff);
                } else {
                    // Permanent fault, or the retry budget ran dry: demote
                    // this one request to a whole-page byte copy — unless
                    // the fallback budget itself is exhausted, in which
                    // case the fault is unrecoverable at this layer and
                    // the (transactional) caller must abort the cycle.
                    if policy
                        .fallback_budget
                        .is_some_and(|b| out.fallback.len() as u64 >= b)
                    {
                        return Err(GcError::Swap(SwapVaError::Fault {
                            kind,
                            index: 0,
                            spent: Cycles::ZERO,
                        }));
                    }
                    let req = reqs[start];
                    kernel.trace.instant(
                        TraceKind::SwapFallback,
                        Cycles::ZERO,
                        core.0 as u32,
                        &[("index", start as u64), ("pages", req.pages)],
                    );
                    let copy =
                        kernel.memmove(space, core, req.a, req.b, req.pages * PAGE_SIZE)?;
                    out.cycles += copy;
                    kernel.trace.advance(copy);
                    out.fallback.push(start);
                    start += 1;
                    attempts_at_head = 0;
                }
            }
        }
    }
    // Accounting contract the compactor's stats rebooking relies on: each
    // fallback index identifies a distinct input request, reported at most
    // once and in ascending order (the cursor only moves forward).
    debug_assert!(
        out.fallback.windows(2).all(|w| w[0] < w[1]),
        "fallback indices must be strictly increasing: {:?}",
        out.fallback
    );
    debug_assert!(
        out.fallback.iter().all(|&i| i < reqs.len()),
        "fallback index out of range: {:?} (len {})",
        out.fallback,
        reqs.len()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_kernel::{FaultConfig, FaultPlan, FlushMode};
    use svagc_metrics::MachineConfig;
    use svagc_vmem::{Asid, VirtAddr};

    const CORE: CoreId = CoreId(0);

    fn setup(reqs: usize) -> (Kernel, AddressSpace, Vec<SwapRequest>) {
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 64 << 20);
        let mut space = AddressSpace::new(Asid(1));
        let base = VirtAddr(0x10_0000);
        let pages_per = 2u64;
        let total = reqs as u64 * 2 * pages_per;
        k.vmem.map_pages(&mut space, base, total).unwrap();
        let mut v = Vec::new();
        for i in 0..reqs as u64 {
            let a = base + i * 2 * pages_per * PAGE_SIZE;
            let b = a + pages_per * PAGE_SIZE;
            // Distinct content on each side so swaps are observable.
            k.vmem.write_u64(&space, a, 0xA000 + i).unwrap();
            k.vmem.write_u64(&space, b, 0xB000 + i).unwrap();
            v.push(SwapRequest {
                a,
                b,
                pages: pages_per,
            });
        }
        (k, space, v)
    }

    fn opts() -> SwapVaOptions {
        SwapVaOptions {
            pmd_cache: true,
            overlap_opt: true,
            flush: FlushMode::LocalOnly,
        }
    }

    /// Every request ends up applied: request i's `a` page holds what its
    /// `b` page held (swap) or a copy of `a` (fallback puts `a` at `b`).
    fn assert_all_applied(k: &Kernel, space: &AddressSpace, reqs: &[SwapRequest], out: &SwapOutcome) {
        for (i, r) in reqs.iter().enumerate() {
            let at_b = k.vmem.read_u64(space, r.b).unwrap();
            assert_eq!(at_b, 0xA000 + i as u64, "request {i}: dst holds src content");
            let at_a = k.vmem.read_u64(space, r.a).unwrap();
            if out.fallback.contains(&i) {
                // memmove copies a→b, leaving a unchanged.
                assert_eq!(at_a, 0xA000 + i as u64, "request {i}: fallback leaves src");
            } else {
                assert_eq!(at_a, 0xB000 + i as u64, "request {i}: swap exchanged");
            }
        }
    }

    #[test]
    fn fault_free_batch_is_one_syscall() {
        let (mut k, mut space, reqs) = setup(8);
        let out = execute_swaps(&mut k, &mut space, &reqs, opts(), CORE, true, &RetryPolicy::default())
            .unwrap();
        assert_eq!(out.retries, 0);
        assert_eq!(out.batch_splits, 0);
        assert!(out.fallback.is_empty());
        assert_eq!(k.perf.syscalls, 1);
        assert_all_applied(&k, &space, &reqs, &out);
    }

    #[test]
    fn transient_faults_are_retried_to_completion() {
        let (mut k, mut space, reqs) = setup(16);
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig::transient_only(0.3, 42))));
        let out = execute_swaps(&mut k, &mut space, &reqs, opts(), CORE, true, &RetryPolicy::default())
            .unwrap();
        assert!(out.retries > 0, "p=0.3 over 16 requests must fault");
        assert!(out.fallback.is_empty(), "transients never fall back");
        assert_all_applied(&k, &space, &reqs, &out);
    }

    #[test]
    fn permanent_faults_fall_back_to_memmove() {
        let (mut k, mut space, reqs) = setup(16);
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            p_transient: 0.0,
            p_invalid: 0.2,
            p_nomem: 0.1,
            p_timeout: 0.0,
            seed: 7,
        })));
        let bytes_before = k.perf.bytes_copied;
        let out = execute_swaps(&mut k, &mut space, &reqs, opts(), CORE, true, &RetryPolicy::default())
            .unwrap();
        assert!(!out.fallback.is_empty(), "p=0.3 permanent over 16 requests");
        assert!(k.perf.bytes_copied > bytes_before, "fallback copies bytes");
        assert_all_applied(&k, &space, &reqs, &out);
    }

    #[test]
    fn mid_batch_fault_splits_and_never_replays_prefix() {
        // High fault rate: guaranteed mid-batch faults. If the executor
        // ever replayed an applied prefix, some request would end up
        // double-swapped (back to its original content) and the content
        // check would fail.
        let (mut k, mut space, reqs) = setup(32);
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(0.4, 3))));
        let out = execute_swaps(&mut k, &mut space, &reqs, opts(), CORE, true, &RetryPolicy::default())
            .unwrap();
        assert!(out.batch_splits > 0, "p=0.4 over 32 requests splits batches");
        assert_all_applied(&k, &space, &reqs, &out);
    }

    #[test]
    fn separated_mode_retries_per_request() {
        let (mut k, mut space, reqs) = setup(12);
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(0.3, 11))));
        let out = execute_swaps(&mut k, &mut space, &reqs, opts(), CORE, false, &RetryPolicy::default())
            .unwrap();
        assert!(out.retries + out.fallback.len() as u64 > 0);
        assert_eq!(out.batch_splits, 0, "separated calls never split");
        assert_all_applied(&k, &space, &reqs, &out);
    }

    #[test]
    fn exhausted_retry_budget_falls_back() {
        let (mut k, mut space, reqs) = setup(4);
        // Every call faults transiently: with a zero budget each request
        // must fall back immediately.
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig::transient_only(1.0, 5))));
        let out = execute_swaps(
            &mut k,
            &mut space,
            &reqs,
            opts(),
            CORE,
            true,
            &RetryPolicy::with_max_retries(0),
        )
        .unwrap();
        assert_eq!(out.fallback, vec![0, 1, 2, 3]);
        assert_eq!(out.retries, 0);
        assert_all_applied(&k, &space, &reqs, &out);
    }

    #[test]
    fn failed_attempts_cost_cycles() {
        let (mut k1, mut s1, r1) = setup(8);
        let clean = execute_swaps(&mut k1, &mut s1, &r1, opts(), CORE, true, &RetryPolicy::default())
            .unwrap();
        let (mut k2, mut s2, r2) = setup(8);
        k2.set_fault_plan(Some(FaultPlan::new(FaultConfig::transient_only(0.5, 9))));
        let faulty = execute_swaps(&mut k2, &mut s2, &r2, opts(), CORE, true, &RetryPolicy::default())
            .unwrap();
        assert!(faulty.retries > 0);
        assert!(
            faulty.cycles > clean.cycles,
            "retries burn time: {} !> {}",
            faulty.cycles,
            clean.cycles
        );
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), Cycles(64));
        assert_eq!(p.backoff(2), Cycles(128));
        assert_eq!(p.backoff(7), Cycles(4096));
        assert_eq!(p.backoff(30), Cycles(4096), "capped");
    }

    /// Regression: `backoff` must saturate, never overflow, for any
    /// attempt number — even with a cap high enough that the saturated
    /// multiply is what protects us (a naive `base * (1 << shift)` panics
    /// in debug builds once attempt > 58 with the default base).
    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            backoff_base: u64::MAX / 2,
            backoff_cap: u64::MAX,
            fallback_budget: None,
        };
        assert_eq!(p.backoff(u32::MAX), Cycles(u64::MAX), "saturated, not wrapped");
        assert_eq!(p.backoff(64), Cycles(u64::MAX), "shift clamped at 63");
        // Default shape with an uncapped ceiling: large attempts still
        // return a sane (saturated) value rather than wrapping to ~0.
        let d = RetryPolicy {
            backoff_cap: u64::MAX,
            ..RetryPolicy::default()
        };
        assert_eq!(d.backoff(100), Cycles(64u64.saturating_mul(1 << 63)));
        assert!(d.backoff(100) >= d.backoff(58), "monotone under saturation");
    }

    /// Satellite: `FaultPlan::roll` draws exactly one PRNG value per swap
    /// request, so the per-request fault sequence is a pure function of
    /// the seed and the request order — *not* of how requests are grouped
    /// into batches. Aggregated execution (which splits batches at faults
    /// and re-issues from the failing index) must therefore absorb the
    /// identical faults as fully separated execution.
    #[test]
    fn fault_rolls_are_deterministic_across_batch_splits() {
        let cfg = FaultConfig::uniform(0.35, 77);
        let (mut k1, mut s1, r1) = setup(24);
        k1.set_fault_plan(Some(FaultPlan::new(cfg)));
        let agg = execute_swaps(&mut k1, &mut s1, &r1, opts(), CORE, true, &RetryPolicy::default())
            .unwrap();
        let (mut k2, mut s2, r2) = setup(24);
        k2.set_fault_plan(Some(FaultPlan::new(cfg)));
        let sep = execute_swaps(&mut k2, &mut s2, &r2, opts(), CORE, false, &RetryPolicy::default())
            .unwrap();
        assert!(agg.batch_splits > 0, "p=0.35 over 24 requests must split");
        assert_eq!(agg.retries, sep.retries, "same transient sequence");
        assert_eq!(agg.fallback, sep.fallback, "same permanent demotions");
        assert_eq!(
            k1.perf.swap_faults_injected, k2.perf.swap_faults_injected,
            "identical injected-fault count regardless of batching"
        );
        assert_all_applied(&k1, &s1, &r1, &agg);
        assert_all_applied(&k2, &s2, &r2, &sep);
    }

    #[test]
    fn exhausted_fallback_budget_is_unrecoverable() {
        let (mut k, mut space, reqs) = setup(8);
        // Every request faults permanently; a budget of 3 absorbs three
        // demotions and then surfaces the fourth as a hard error.
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            p_transient: 0.0,
            p_invalid: 1.0,
            p_nomem: 0.0,
            p_timeout: 0.0,
            seed: 13,
        })));
        let policy = RetryPolicy::default().with_fallback_budget(Some(3));
        let err = execute_swaps(&mut k, &mut space, &reqs, opts(), CORE, true, &policy)
            .unwrap_err();
        assert!(matches!(err, GcError::Swap(SwapVaError::Fault { .. })));
        assert!(err.is_operational(), "the transaction layer may retry this");
    }

    #[test]
    fn unset_fallback_budget_changes_nothing() {
        let (mut k, mut space, reqs) = setup(16);
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(0.4, 7))));
        let out = execute_swaps(&mut k, &mut space, &reqs, opts(), CORE, true, &RetryPolicy::default())
            .unwrap();
        assert_all_applied(&k, &space, &reqs, &out);
    }
}
