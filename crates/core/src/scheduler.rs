//! Deterministic virtual-time simulation of parallel GC workers.
//!
//! GC phases are executed host-sequentially (the functional side effects on
//! simulated memory happen in heap order, which is what makes sliding
//! compaction safe), while *time* is attributed to N simulated workers:
//!
//! * [`WorkerPool::dispatch`] — greedy least-loaded assignment, the
//!   classic makespan model of a work-stealing pool (SVAGC, ParallelGC).
//! * [`WorkerPool::dispatch_static`] — round-robin-by-chunk assignment
//!   modeling a statically partitioned phase with *no* stealing
//!   (Shenandoah's copy phase, per §V-A), which suffers under skew.
//!
//! The phase cost is the [`WorkerPool::makespan`]: the pause ends when the
//! slowest worker finishes. Determinism is total — same inputs, same
//! simulated times, bit for bit.

use svagc_kernel::CoreId;
use svagc_metrics::Cycles;

/// Where a work packet lands when placed on a [`WorkerPool`]: the chosen
/// worker, the virtual time execution begins, and whether the packet was
/// stolen off its owner's deque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Worker the packet executes on.
    pub worker: usize,
    /// Virtual time the packet starts: `max(worker clock, ready time)`,
    /// plus the steal charge when executed off-owner.
    pub start: Cycles,
    /// True when the executing worker is not the packet's owner.
    pub stolen: bool,
}

/// Saturating clock charge shared by every dispatch path. Worker clocks
/// must never wrap — a wrapped clock reports a tiny makespan, which an
/// adversarial deadline/cost config could otherwise exploit. The first
/// saturation is tolerated (the clock clamps at `u64::MAX`, keeping the
/// makespan huge); charging *more* onto an already-saturated clock trips
/// the debug assert because it means the simulation has left the regime
/// where virtual time is meaningful.
#[inline]
fn charge(load: &mut u64, cost: Cycles) {
    debug_assert!(
        *load < u64::MAX || cost.get() == 0,
        "worker clock already saturated at u64::MAX; cost {} would be lost",
        cost.get()
    );
    *load = load.saturating_add(cost.get());
}

/// A pool of simulated GC workers with per-worker virtual clocks.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    loads: Vec<u64>,
    /// Next chunk index for static dispatch.
    rr: usize,
    /// First core this pool's workers are pinned to (worker `w` runs on
    /// core `(base + w) % cores`). Distinct collectors sharing a machine
    /// (multi-JVM) use disjoint bases so their pinned cores never collide.
    base: usize,
}

impl WorkerPool {
    /// A pool of `n` workers (n ≥ 1).
    ///
    /// ```
    /// use svagc_core::WorkerPool;
    /// use svagc_metrics::Cycles;
    ///
    /// let mut pool = WorkerPool::new(4);
    /// for cost in [100, 100, 100, 100, 50, 50] {
    ///     pool.dispatch(Cycles(cost)); // least-loaded worker takes it
    /// }
    /// assert_eq!(pool.makespan(), Cycles(150)); // the slowest worker
    /// ```
    pub fn new(n: usize) -> WorkerPool {
        WorkerPool::with_core_base(n, 0)
    }

    /// A pool of `n` workers whose core pinning starts at `core_base`
    /// (worker `w` → core `(core_base + w) % cores`). Multi-tenant runs
    /// give each collector its own base so tenants' pinned cores are
    /// disjoint whenever the machine has enough cores.
    pub fn with_core_base(n: usize, core_base: usize) -> WorkerPool {
        assert!(n >= 1, "at least one GC worker");
        WorkerPool {
            loads: vec![0; n],
            rr: 0,
            base: core_base,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// True when the pool has no workers. The constructor rejects `n == 0`,
    /// so every constructed pool returns `false` — the method exists for
    /// the `len`/`is_empty` convention and must stay consistent with
    /// [`WorkerPool::len`] rather than hardcoding that invariant.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Worker `w`'s current virtual clock (its position within the phase).
    pub fn load(&self, w: usize) -> Cycles {
        Cycles(self.loads[w])
    }

    /// The least-loaded worker — where a work-stealing pool's next item
    /// lands. Ties break to the lowest index (determinism).
    pub fn least_loaded(&self) -> usize {
        self.loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .expect("WorkerPool invariant: constructed with at least one worker")
    }

    /// Charge `cost` to the least-loaded worker; returns who got it.
    pub fn dispatch(&mut self, cost: Cycles) -> usize {
        let w = self.least_loaded();
        charge(&mut self.loads[w], cost);
        w
    }

    /// Charge `cost` to worker `w` explicitly.
    pub fn dispatch_to(&mut self, w: usize, cost: Cycles) {
        charge(&mut self.loads[w], cost);
    }

    /// Static (non-stealing) dispatch: items are assigned to workers in
    /// fixed round-robin order regardless of load.
    ///
    /// Lifecycle: the round-robin cursor persists across
    /// [`WorkerPool::barrier`] (a barrier synchronizes *clocks*, not work
    /// assignment) and is cleared only by [`WorkerPool::reset`]. A phase
    /// that reuses a pool without `reset()` therefore starts its first
    /// assignment wherever the previous phase's item count left the
    /// cursor — callers running distinct phases (see
    /// `Lisp2Collector::collect`) must `reset()` between them so a phase's
    /// schedule depends only on its own inputs.
    pub fn dispatch_static(&mut self, cost: Cycles) -> usize {
        let w = self.rr % self.loads.len();
        self.rr += 1;
        charge(&mut self.loads[w], cost);
        w
    }

    /// The core a worker runs on: worker `w` is pinned to core
    /// `(core_base + w) mod cores`, so collectors constructed with
    /// disjoint bases (multi-JVM tenants) pin to disjoint cores whenever
    /// `cores >= tenants * threads`.
    pub fn core_of(&self, worker: usize, total_cores: usize) -> CoreId {
        CoreId((self.base + worker) % total_cores)
    }

    /// Pick where a work packet executes and when it starts, without
    /// charging anything yet (the packet's cost is only known after its
    /// functional effects run; callers follow up with
    /// [`WorkerPool::commit_packet`]).
    ///
    /// The packet becomes runnable at virtual time `ready` (the completion
    /// of its dependencies) and lives on `owner`'s deque. Every worker is
    /// a candidate: worker `w` could start it at `max(load(w), ready)`,
    /// plus `steal_cost` when `w != owner` (popping a remote deque). The
    /// earliest start wins; ties break owner-first, then lowest index —
    /// fully deterministic.
    pub fn place_packet(&self, owner: usize, ready: Cycles, steal_cost: Cycles) -> Placement {
        let (worker, start, stolen) = self
            .loads
            .iter()
            .enumerate()
            .map(|(w, &l)| {
                let stolen = w != owner;
                let base = l.max(ready.get());
                let start = if stolen {
                    base.saturating_add(steal_cost.get())
                } else {
                    base
                };
                (w, start, stolen)
            })
            .min_by_key(|&(w, start, stolen)| (start, stolen, w))
            .expect("WorkerPool invariant: constructed with at least one worker");
        Placement {
            worker,
            start: Cycles(start),
            stolen,
        }
    }

    /// Complete a placed packet: advance the executing worker's clock to
    /// `start + cost`. The clock may jump forward past its previous value
    /// even for `cost == 0` — that is the worker idling until the packet's
    /// dependencies resolved.
    pub fn commit_packet(&mut self, p: Placement, cost: Cycles) {
        let end = p.start.get().saturating_add(cost.get());
        debug_assert!(
            end >= self.loads[p.worker],
            "packet commit must move the worker clock forward"
        );
        self.loads[p.worker] = end;
    }

    /// Phase wall time: the slowest worker's clock.
    pub fn makespan(&self) -> Cycles {
        Cycles(self.loads.iter().copied().max().unwrap_or(0))
    }

    /// Sum of all work (for utilization statistics).
    pub fn total_work(&self) -> Cycles {
        Cycles(self.loads.iter().sum())
    }

    /// Charge `cost` to *every* worker (a barrier-side operation like a
    /// per-worker local flush).
    pub fn charge_all(&mut self, cost: Cycles) {
        for l in &mut self.loads {
            charge(l, cost);
        }
    }

    /// Synchronize all workers to the makespan (phase barrier), returning
    /// the barrier time. Does *not* touch the static-dispatch cursor —
    /// use [`WorkerPool::reset`] when starting an unrelated phase.
    pub fn barrier(&mut self) -> Cycles {
        let m = self.makespan().get();
        for l in &mut self.loads {
            *l = m;
        }
        Cycles(m)
    }

    /// Reset all clocks to zero and rewind the static-dispatch cursor
    /// (new phase): after `reset()` a phase's schedule is a pure function
    /// of its own dispatch sequence.
    pub fn reset(&mut self) {
        self.loads.fill(0);
        self.rr = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_dispatch_balances() {
        let mut p = WorkerPool::new(4);
        // 8 equal items over 4 workers: perfect balance.
        for _ in 0..8 {
            p.dispatch(Cycles(10));
        }
        assert_eq!(p.makespan(), Cycles(20));
        assert_eq!(p.total_work(), Cycles(80));
    }

    #[test]
    fn greedy_handles_skew_like_stealing() {
        let mut p = WorkerPool::new(2);
        // One huge item then many small: the other worker absorbs the rest.
        p.dispatch(Cycles(100));
        for _ in 0..10 {
            p.dispatch(Cycles(10));
        }
        assert_eq!(p.makespan(), Cycles(100));
    }

    #[test]
    fn static_dispatch_suffers_skew() {
        let mut greedy = WorkerPool::new(2);
        let mut fixed = WorkerPool::new(2);
        // Alternating big/small items: round-robin puts all bigs on one
        // worker half the time... here all bigs land on worker 0.
        for i in 0..10 {
            let c = if i % 2 == 0 { Cycles(100) } else { Cycles(1) };
            greedy.dispatch(c);
            fixed.dispatch_static(c);
        }
        assert!(fixed.makespan().get() > greedy.makespan().get());
        assert_eq!(fixed.makespan(), Cycles(500));
    }

    #[test]
    fn single_worker_serializes() {
        let mut p = WorkerPool::new(1);
        for _ in 0..5 {
            p.dispatch(Cycles(7));
        }
        assert_eq!(p.makespan(), Cycles(35));
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut p = WorkerPool::new(3);
        p.dispatch_to(0, Cycles(5));
        p.dispatch_to(1, Cycles(50));
        let b = p.barrier();
        assert_eq!(b, Cycles(50));
        // After the barrier everyone continues from 50.
        p.dispatch(Cycles(1));
        assert_eq!(p.makespan(), Cycles(51));
    }

    #[test]
    fn charge_all_models_per_worker_overhead() {
        let mut p = WorkerPool::new(4);
        p.charge_all(Cycles(10));
        assert_eq!(p.makespan(), Cycles(10));
        assert_eq!(p.total_work(), Cycles(40));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut a = WorkerPool::new(3);
        let mut b = WorkerPool::new(3);
        for i in 0..100 {
            let c = Cycles(1 + (i * 7919) % 13);
            assert_eq!(a.dispatch(c), b.dispatch(c));
        }
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn core_mapping_wraps() {
        let p = WorkerPool::new(8);
        assert_eq!(p.core_of(0, 4), CoreId(0));
        assert_eq!(p.core_of(5, 4), CoreId(1));
        // With a base, pinning shifts and still wraps.
        let q = WorkerPool::with_core_base(8, 3);
        assert_eq!(q.core_of(0, 4), CoreId(3));
        assert_eq!(q.core_of(1, 4), CoreId(0));
    }

    #[test]
    fn concurrent_collectors_pin_disjoint_cores() {
        // Regression: `core_of` used to ignore `&self`, pinning worker i of
        // *every* collector to core `i % cores` — multi-JVM tenants'
        // worker 0 all collided on core 0. With per-collector bases and
        // cores >= 2 * threads the two tenants' pinned sets are disjoint.
        let threads = 4;
        let cores = 2 * threads;
        let a = WorkerPool::with_core_base(threads, 0);
        let b = WorkerPool::with_core_base(threads, threads);
        let pins_a: Vec<_> = (0..threads).map(|w| a.core_of(w, cores)).collect();
        let pins_b: Vec<_> = (0..threads).map(|w| b.core_of(w, cores)).collect();
        for ca in &pins_a {
            assert!(
                !pins_b.contains(ca),
                "tenants share pinned core {ca:?}: {pins_a:?} vs {pins_b:?}"
            );
        }
    }

    #[test]
    fn clock_charges_saturate_instead_of_wrapping() {
        // Regression: unchecked `+=` let an adversarial cost wrap a worker
        // clock back to ~0 and report a tiny makespan. All four charge
        // paths must clamp at u64::MAX instead.
        let near_max = Cycles(u64::MAX - 50);
        let mut p = WorkerPool::new(2);
        p.dispatch_to(0, near_max);
        p.dispatch_to(1, near_max);
        // One more saturating charge per path; none may wrap.
        p.dispatch_to(0, Cycles(100));
        assert_eq!(p.load(0), Cycles(u64::MAX));
        p.reset();
        p.charge_all(near_max);
        p.charge_all(Cycles(100));
        assert_eq!(p.makespan(), Cycles(u64::MAX), "charge_all clamps");
        p.reset();
        p.dispatch(near_max);
        p.dispatch(near_max);
        assert_eq!(p.dispatch(Cycles(100)), 0, "ties still break low");
        assert_eq!(p.load(0), Cycles(u64::MAX));
        p.reset();
        p.dispatch_static(near_max);
        p.dispatch_static(near_max);
        p.dispatch_static(Cycles(100));
        assert_eq!(p.makespan(), Cycles(u64::MAX), "static dispatch clamps");
    }

    #[test]
    fn place_packet_prefers_owner_on_ties() {
        let p = WorkerPool::new(3);
        // All clocks zero: owner 1 starts at 0; stealing would cost 5.
        let pl = p.place_packet(1, Cycles::ZERO, Cycles(5));
        assert_eq!(pl.worker, 1);
        assert_eq!(pl.start, Cycles::ZERO);
        assert!(!pl.stolen);
    }

    #[test]
    fn place_packet_steals_when_profitable() {
        let mut p = WorkerPool::new(2);
        p.dispatch_to(0, Cycles(100)); // owner 0 is busy until 100
        let pl = p.place_packet(0, Cycles::ZERO, Cycles(5));
        assert_eq!(pl.worker, 1, "idle worker 1 steals");
        assert_eq!(pl.start, Cycles(5), "steal charge delays the start");
        assert!(pl.stolen);
        // A steal cost above the owner's backlog keeps the packet home.
        let pl = p.place_packet(0, Cycles::ZERO, Cycles(200));
        assert_eq!(pl.worker, 0);
        assert!(!pl.stolen);
    }

    #[test]
    fn commit_packet_advances_clock_past_idle_gaps() {
        let mut p = WorkerPool::new(2);
        // A packet only ready at t=40 on an idle worker: the worker waits.
        let pl = p.place_packet(0, Cycles(40), Cycles(5));
        assert_eq!(pl.worker, 0);
        assert_eq!(pl.start, Cycles(40));
        p.commit_packet(pl, Cycles(10));
        assert_eq!(p.load(0), Cycles(50), "idle gap counts toward the clock");
        assert_eq!(p.load(1), Cycles::ZERO);
    }

    #[test]
    fn is_empty_agrees_with_len() {
        // Regression: `is_empty` used to hardcode `false` with a doc
        // comment claiming it meant "exactly one worker".
        for n in 1..5 {
            let p = WorkerPool::new(n);
            assert_eq!(p.len(), n);
            assert!(!p.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one GC worker")]
    fn zero_worker_pool_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn load_exposes_per_worker_clock() {
        let mut p = WorkerPool::new(3);
        p.dispatch_to(1, Cycles(42));
        assert_eq!(p.load(0), Cycles::ZERO);
        assert_eq!(p.load(1), Cycles(42));
    }

    #[test]
    fn reset_makes_static_dispatch_phase_deterministic() {
        // Two pools run a first "phase" with *different* item counts, then
        // reset. The next phase's static schedule must be identical — the
        // round-robin cursor may not leak across reset().
        let mut a = WorkerPool::new(3);
        let mut b = WorkerPool::new(3);
        for _ in 0..4 {
            a.dispatch_static(Cycles(5));
        }
        for _ in 0..7 {
            b.dispatch_static(Cycles(5));
        }
        a.reset();
        b.reset();
        for i in 0..10 {
            let c = Cycles(1 + i);
            assert_eq!(a.dispatch_static(c), b.dispatch_static(c), "item {i}");
        }
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn barrier_preserves_static_cursor() {
        // Documented behavior: a barrier is mid-phase synchronization, so
        // round-robin placement continues where it left off.
        let mut p = WorkerPool::new(2);
        assert_eq!(p.dispatch_static(Cycles(1)), 0);
        p.barrier();
        assert_eq!(p.dispatch_static(Cycles(1)), 1, "cursor survives barrier");
        p.reset();
        assert_eq!(p.dispatch_static(Cycles(1)), 0, "reset rewinds cursor");
    }
}
