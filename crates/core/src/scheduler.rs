//! Deterministic virtual-time simulation of parallel GC workers.
//!
//! GC phases are executed host-sequentially (the functional side effects on
//! simulated memory happen in heap order, which is what makes sliding
//! compaction safe), while *time* is attributed to N simulated workers:
//!
//! * [`WorkerPool::dispatch`] — greedy least-loaded assignment, the
//!   classic makespan model of a work-stealing pool (SVAGC, ParallelGC).
//! * [`WorkerPool::dispatch_static`] — round-robin-by-chunk assignment
//!   modeling a statically partitioned phase with *no* stealing
//!   (Shenandoah's copy phase, per §V-A), which suffers under skew.
//!
//! The phase cost is the [`WorkerPool::makespan`]: the pause ends when the
//! slowest worker finishes. Determinism is total — same inputs, same
//! simulated times, bit for bit.

use svagc_kernel::CoreId;
use svagc_metrics::Cycles;

/// A pool of simulated GC workers with per-worker virtual clocks.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    loads: Vec<u64>,
    /// Next chunk index for static dispatch.
    rr: usize,
}

impl WorkerPool {
    /// A pool of `n` workers (n ≥ 1).
    ///
    /// ```
    /// use svagc_core::WorkerPool;
    /// use svagc_metrics::Cycles;
    ///
    /// let mut pool = WorkerPool::new(4);
    /// for cost in [100, 100, 100, 100, 50, 50] {
    ///     pool.dispatch(Cycles(cost)); // least-loaded worker takes it
    /// }
    /// assert_eq!(pool.makespan(), Cycles(150)); // the slowest worker
    /// ```
    pub fn new(n: usize) -> WorkerPool {
        assert!(n >= 1, "at least one GC worker");
        WorkerPool {
            loads: vec![0; n],
            rr: 0,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// True when the pool has no workers. The constructor rejects `n == 0`,
    /// so every constructed pool returns `false` — the method exists for
    /// the `len`/`is_empty` convention and must stay consistent with
    /// [`WorkerPool::len`] rather than hardcoding that invariant.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Worker `w`'s current virtual clock (its position within the phase).
    pub fn load(&self, w: usize) -> Cycles {
        Cycles(self.loads[w])
    }

    /// The least-loaded worker — where a work-stealing pool's next item
    /// lands. Ties break to the lowest index (determinism).
    pub fn least_loaded(&self) -> usize {
        self.loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .expect("WorkerPool invariant: constructed with at least one worker")
    }

    /// Charge `cost` to the least-loaded worker; returns who got it.
    pub fn dispatch(&mut self, cost: Cycles) -> usize {
        let w = self.least_loaded();
        self.loads[w] += cost.get();
        w
    }

    /// Charge `cost` to worker `w` explicitly.
    pub fn dispatch_to(&mut self, w: usize, cost: Cycles) {
        self.loads[w] += cost.get();
    }

    /// Static (non-stealing) dispatch: items are assigned to workers in
    /// fixed round-robin order regardless of load.
    ///
    /// Lifecycle: the round-robin cursor persists across
    /// [`WorkerPool::barrier`] (a barrier synchronizes *clocks*, not work
    /// assignment) and is cleared only by [`WorkerPool::reset`]. A phase
    /// that reuses a pool without `reset()` therefore starts its first
    /// assignment wherever the previous phase's item count left the
    /// cursor — callers running distinct phases (see
    /// `Lisp2Collector::collect`) must `reset()` between them so a phase's
    /// schedule depends only on its own inputs.
    pub fn dispatch_static(&mut self, cost: Cycles) -> usize {
        let w = self.rr % self.loads.len();
        self.rr += 1;
        self.loads[w] += cost.get();
        w
    }

    /// The core a worker runs on (worker i pinned to core i mod cores).
    pub fn core_of(&self, worker: usize, total_cores: usize) -> CoreId {
        CoreId(worker % total_cores)
    }

    /// Phase wall time: the slowest worker's clock.
    pub fn makespan(&self) -> Cycles {
        Cycles(self.loads.iter().copied().max().unwrap_or(0))
    }

    /// Sum of all work (for utilization statistics).
    pub fn total_work(&self) -> Cycles {
        Cycles(self.loads.iter().sum())
    }

    /// Charge `cost` to *every* worker (a barrier-side operation like a
    /// per-worker local flush).
    pub fn charge_all(&mut self, cost: Cycles) {
        for l in &mut self.loads {
            *l += cost.get();
        }
    }

    /// Synchronize all workers to the makespan (phase barrier), returning
    /// the barrier time. Does *not* touch the static-dispatch cursor —
    /// use [`WorkerPool::reset`] when starting an unrelated phase.
    pub fn barrier(&mut self) -> Cycles {
        let m = self.makespan().get();
        for l in &mut self.loads {
            *l = m;
        }
        Cycles(m)
    }

    /// Reset all clocks to zero and rewind the static-dispatch cursor
    /// (new phase): after `reset()` a phase's schedule is a pure function
    /// of its own dispatch sequence.
    pub fn reset(&mut self) {
        self.loads.fill(0);
        self.rr = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_dispatch_balances() {
        let mut p = WorkerPool::new(4);
        // 8 equal items over 4 workers: perfect balance.
        for _ in 0..8 {
            p.dispatch(Cycles(10));
        }
        assert_eq!(p.makespan(), Cycles(20));
        assert_eq!(p.total_work(), Cycles(80));
    }

    #[test]
    fn greedy_handles_skew_like_stealing() {
        let mut p = WorkerPool::new(2);
        // One huge item then many small: the other worker absorbs the rest.
        p.dispatch(Cycles(100));
        for _ in 0..10 {
            p.dispatch(Cycles(10));
        }
        assert_eq!(p.makespan(), Cycles(100));
    }

    #[test]
    fn static_dispatch_suffers_skew() {
        let mut greedy = WorkerPool::new(2);
        let mut fixed = WorkerPool::new(2);
        // Alternating big/small items: round-robin puts all bigs on one
        // worker half the time... here all bigs land on worker 0.
        for i in 0..10 {
            let c = if i % 2 == 0 { Cycles(100) } else { Cycles(1) };
            greedy.dispatch(c);
            fixed.dispatch_static(c);
        }
        assert!(fixed.makespan().get() > greedy.makespan().get());
        assert_eq!(fixed.makespan(), Cycles(500));
    }

    #[test]
    fn single_worker_serializes() {
        let mut p = WorkerPool::new(1);
        for _ in 0..5 {
            p.dispatch(Cycles(7));
        }
        assert_eq!(p.makespan(), Cycles(35));
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut p = WorkerPool::new(3);
        p.dispatch_to(0, Cycles(5));
        p.dispatch_to(1, Cycles(50));
        let b = p.barrier();
        assert_eq!(b, Cycles(50));
        // After the barrier everyone continues from 50.
        p.dispatch(Cycles(1));
        assert_eq!(p.makespan(), Cycles(51));
    }

    #[test]
    fn charge_all_models_per_worker_overhead() {
        let mut p = WorkerPool::new(4);
        p.charge_all(Cycles(10));
        assert_eq!(p.makespan(), Cycles(10));
        assert_eq!(p.total_work(), Cycles(40));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut a = WorkerPool::new(3);
        let mut b = WorkerPool::new(3);
        for i in 0..100 {
            let c = Cycles(1 + (i * 7919) % 13);
            assert_eq!(a.dispatch(c), b.dispatch(c));
        }
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn core_mapping_wraps() {
        let p = WorkerPool::new(8);
        assert_eq!(p.core_of(0, 4), CoreId(0));
        assert_eq!(p.core_of(5, 4), CoreId(1));
    }

    #[test]
    fn is_empty_agrees_with_len() {
        // Regression: `is_empty` used to hardcode `false` with a doc
        // comment claiming it meant "exactly one worker".
        for n in 1..5 {
            let p = WorkerPool::new(n);
            assert_eq!(p.len(), n);
            assert!(!p.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one GC worker")]
    fn zero_worker_pool_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn load_exposes_per_worker_clock() {
        let mut p = WorkerPool::new(3);
        p.dispatch_to(1, Cycles(42));
        assert_eq!(p.load(0), Cycles::ZERO);
        assert_eq!(p.load(1), Cycles(42));
    }

    #[test]
    fn reset_makes_static_dispatch_phase_deterministic() {
        // Two pools run a first "phase" with *different* item counts, then
        // reset. The next phase's static schedule must be identical — the
        // round-robin cursor may not leak across reset().
        let mut a = WorkerPool::new(3);
        let mut b = WorkerPool::new(3);
        for _ in 0..4 {
            a.dispatch_static(Cycles(5));
        }
        for _ in 0..7 {
            b.dispatch_static(Cycles(5));
        }
        a.reset();
        b.reset();
        for i in 0..10 {
            let c = Cycles(1 + i);
            assert_eq!(a.dispatch_static(c), b.dispatch_static(c), "item {i}");
        }
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn barrier_preserves_static_cursor() {
        // Documented behavior: a barrier is mid-phase synchronization, so
        // round-robin placement continues where it left off.
        let mut p = WorkerPool::new(2);
        assert_eq!(p.dispatch_static(Cycles(1)), 0);
        p.barrier();
        assert_eq!(p.dispatch_static(Cycles(1)), 1, "cursor survives barrier");
        p.reset();
        assert_eq!(p.dispatch_static(Cycles(1)), 0, "reset rewinds cursor");
    }
}
