//! GC timing statistics: per-phase breakdowns and per-cycle logs.
//!
//! Every figure in the paper's evaluation is a function of these numbers:
//! Fig. 1 plots the phase breakdown, Figs. 11-13 plot total/average/max
//! pause split into compaction vs other phases, Figs. 15/16 add mutator
//! time.

use svagc_metrics::{Cycles, SimTime};

/// Cycle cost of each LISP2 phase (makespan across GC workers).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Phase I: marking.
    pub mark: Cycles,
    /// Phase II: forwarding-address calculation.
    pub forward: Cycles,
    /// Phase III: pointer adjustment.
    pub adjust: Cycles,
    /// Phase IV: compaction (moving), including move-time flushes.
    pub compact: Cycles,
    /// Pin/broadcast overhead around the compaction phase (Algorithm 4).
    pub shootdown: Cycles,
}

impl PhaseBreakdown {
    /// Total STW pause.
    pub fn total(&self) -> Cycles {
        self.mark + self.forward + self.adjust + self.compact + self.shootdown
    }

    /// Everything except the moving/compaction phase (the red bars of
    /// Figs. 11/12).
    pub fn non_compact(&self) -> Cycles {
        self.mark + self.forward + self.adjust
    }

    /// Compaction (incl. its shootdown overhead — the blue bars).
    pub fn compact_total(&self) -> Cycles {
        self.compact + self.shootdown
    }

    /// Compaction share of the pause, in percent (Fig. 1).
    pub fn compact_pct(&self) -> f64 {
        let total = self.total().get();
        if total == 0 {
            0.0
        } else {
            100.0 * self.compact_total().get() as f64 / total as f64
        }
    }
}

/// Statistics of one full GC cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcCycleStats {
    /// Phase costs.
    pub phases: PhaseBreakdown,
    /// Objects found live.
    pub live_objects: u64,
    /// Live bytes (requested sizes).
    pub live_bytes: u64,
    /// Objects reclaimed.
    pub dead_objects: u64,
    /// Objects relocated (src != dst).
    pub moved_objects: u64,
    /// Of those, moved via SwapVA.
    pub swapped_objects: u64,
    /// Bytes relocated by memmove.
    pub memmove_bytes: u64,
    /// Bytes relocated by PTE swapping (no data traffic).
    pub swapped_bytes: u64,
    /// Cycles stolen from other cores by IPIs (mutator interference).
    pub interference: Cycles,
    /// SwapVA faults injected during this cycle.
    pub faults_injected: u64,
    /// Transient-fault retries the resilient executor issued.
    pub swap_retries: u64,
    /// Objects demoted from SwapVA to memmove by permanent faults (or an
    /// exhausted retry budget).
    pub swap_fallback_objects: u64,
    /// Bytes those demoted objects copied instead of swapped.
    pub swap_fallback_bytes: u64,
    /// Aggregated batches split by a mid-batch fault.
    pub batch_splits: u64,
    /// Invariant violations the post-phase verifier found (always zero on
    /// a cycle that returned `Ok`; violations abort the cycle).
    pub verify_violations: u64,
    /// Attempts of this cycle that aborted and rolled back before the
    /// committed attempt (0 on a clean cycle).
    pub aborts: u64,
    /// Of those aborts, how many were watchdog deadline expiries.
    pub watchdog_expiries: u64,
    /// Pages rewritten by the aborted attempts' rollbacks.
    pub rollback_pages: u64,
    /// Cycles burned by aborted attempts and their rollbacks — part of
    /// the STW pause, on top of the committed attempt's phases.
    pub abort_overhead: Cycles,
    /// Degradation level the committed attempt ran at (0 = normal,
    /// 1 = memmove-only, 2 = single-threaded).
    pub mode: u8,
    /// Work packets executed (0 under the barrier scheduler).
    pub sched_packets: u64,
    /// Packets executed off their owner's deque (work stealing).
    pub sched_steals: u64,
    /// Total steal charges paid, in cycles.
    pub sched_steal_cycles: u64,
    /// Marking cycles spent outside the pause, interleaved with the
    /// mutator (`--concurrent` SATB mode; zero for STW cycles). These
    /// are charged as mutator interference, not pause time.
    pub concurrent_mark: Cycles,
    /// SATB deletion-barrier entries drained at final mark (zero for
    /// STW cycles and when the barrier logged nothing).
    pub satb_logged: u64,
}

impl GcCycleStats {
    /// Total STW pause of this cycle, including time lost to aborted
    /// attempts and their rollbacks.
    pub fn pause(&self) -> Cycles {
        self.phases.total() + self.abort_overhead
    }
}

/// The log of all GC cycles in a run.
#[derive(Debug, Clone, Default)]
pub struct GcLog {
    /// Per-cycle records, in order.
    pub cycles: Vec<GcCycleStats>,
}

impl GcLog {
    /// Empty log.
    pub fn new() -> GcLog {
        GcLog::default()
    }

    /// Record a cycle.
    pub fn push(&mut self, s: GcCycleStats) {
        self.cycles.push(s);
    }

    /// Number of GC cycles.
    pub fn count(&self) -> usize {
        self.cycles.len()
    }

    /// Sum of all pauses.
    pub fn total_pause(&self) -> Cycles {
        self.cycles.iter().map(|c| c.pause()).sum()
    }

    /// Longest single pause.
    pub fn max_pause(&self) -> Cycles {
        self.cycles
            .iter()
            .map(|c| c.pause())
            .fold(Cycles::ZERO, Cycles::max)
    }

    /// Mean pause (zero if no cycles).
    pub fn avg_pause(&self) -> Cycles {
        if self.cycles.is_empty() {
            Cycles::ZERO
        } else {
            self.total_pause() / self.cycles.len() as u64
        }
    }

    /// Sum of compaction-phase time across cycles.
    pub fn total_compact(&self) -> Cycles {
        self.cycles
            .iter()
            .map(|c| c.phases.compact_total())
            .sum()
    }

    /// Sum of non-compaction phase time across cycles.
    pub fn total_other(&self) -> Cycles {
        self.cycles.iter().map(|c| c.phases.non_compact()).sum()
    }

    /// Total interference pushed onto other cores.
    pub fn total_interference(&self) -> Cycles {
        self.cycles.iter().map(|c| c.interference).sum()
    }

    /// Total SwapVA faults injected across cycles.
    pub fn total_faults_injected(&self) -> u64 {
        self.cycles.iter().map(|c| c.faults_injected).sum()
    }

    /// Total transient-fault retries across cycles.
    pub fn total_swap_retries(&self) -> u64 {
        self.cycles.iter().map(|c| c.swap_retries).sum()
    }

    /// Total objects demoted to the memmove fallback across cycles.
    pub fn total_swap_fallbacks(&self) -> u64 {
        self.cycles.iter().map(|c| c.swap_fallback_objects).sum()
    }

    /// Total batch splits across cycles.
    pub fn total_batch_splits(&self) -> u64 {
        self.cycles.iter().map(|c| c.batch_splits).sum()
    }

    /// Total aborted (rolled-back) attempts across cycles.
    pub fn total_aborts(&self) -> u64 {
        self.cycles.iter().map(|c| c.aborts).sum()
    }

    /// Total pages rewritten by rollbacks across cycles.
    pub fn total_rollback_pages(&self) -> u64 {
        self.cycles.iter().map(|c| c.rollback_pages).sum()
    }

    /// Total watchdog expiries across cycles.
    pub fn total_watchdog_expiries(&self) -> u64 {
        self.cycles.iter().map(|c| c.watchdog_expiries).sum()
    }

    /// Worst degradation level any committed cycle ran at.
    pub fn max_mode(&self) -> u8 {
        self.cycles.iter().map(|c| c.mode).max().unwrap_or(0)
    }

    /// Total work packets executed across cycles (packet scheduler only).
    pub fn total_sched_packets(&self) -> u64 {
        self.cycles.iter().map(|c| c.sched_packets).sum()
    }

    /// Total packet steals across cycles.
    pub fn total_sched_steals(&self) -> u64 {
        self.cycles.iter().map(|c| c.sched_steals).sum()
    }

    /// Total steal charges across cycles, in cycles.
    pub fn total_sched_steal_cycles(&self) -> u64 {
        self.cycles.iter().map(|c| c.sched_steal_cycles).sum()
    }

    /// Total off-pause (concurrent) marking cycles across cycles.
    pub fn total_concurrent_mark(&self) -> Cycles {
        self.cycles.iter().map(|c| c.concurrent_mark).sum()
    }

    /// Total SATB barrier entries drained across cycles.
    pub fn total_satb_logged(&self) -> u64 {
        self.cycles.iter().map(|c| c.satb_logged).sum()
    }

    /// Aggregate phase breakdown over all cycles.
    pub fn phase_totals(&self) -> PhaseBreakdown {
        let mut total = PhaseBreakdown::default();
        for c in &self.cycles {
            total.mark += c.phases.mark;
            total.forward += c.phases.forward;
            total.adjust += c.phases.adjust;
            total.compact += c.phases.compact;
            total.shootdown += c.phases.shootdown;
        }
        total
    }

    /// Convert a cycle count to time at `freq_ghz`.
    pub fn time(&self, c: Cycles, freq_ghz: f64) -> SimTime {
        c.at_ghz(freq_ghz)
    }

    /// Fold the log's aggregates into `reg` under `gc.*`, mirroring the
    /// `perf.*` and `trace.*` namespaces of the unified counter registry.
    pub fn register_into(&self, reg: &mut svagc_metrics::Registry) {
        let phases = self.phase_totals();
        for (name, v) in [
            ("gc.cycles", self.count() as u64),
            ("gc.pause.total", self.total_pause().get()),
            ("gc.pause.max", self.max_pause().get()),
            ("gc.phase.mark", phases.mark.get()),
            ("gc.phase.forward", phases.forward.get()),
            ("gc.phase.adjust", phases.adjust.get()),
            ("gc.phase.compact", phases.compact.get()),
            ("gc.phase.shootdown", phases.shootdown.get()),
            ("gc.interference", self.total_interference().get()),
            ("gc.live_objects", self.cycles.iter().map(|c| c.live_objects).sum()),
            ("gc.moved_objects", self.cycles.iter().map(|c| c.moved_objects).sum()),
            ("gc.swapped_objects", self.cycles.iter().map(|c| c.swapped_objects).sum()),
            ("gc.swapped_bytes", self.cycles.iter().map(|c| c.swapped_bytes).sum()),
            ("gc.memmove_bytes", self.cycles.iter().map(|c| c.memmove_bytes).sum()),
            ("gc.faults_injected", self.total_faults_injected()),
            ("gc.swap_retries", self.total_swap_retries()),
            ("gc.swap_fallbacks", self.total_swap_fallbacks()),
            ("gc.batch_splits", self.total_batch_splits()),
            ("gc.aborts", self.total_aborts()),
            ("gc.rollback_pages", self.total_rollback_pages()),
            ("gc.watchdog_expiries", self.total_watchdog_expiries()),
            ("gc.mode", self.max_mode() as u64),
            ("gc.sched.packets", self.total_sched_packets()),
            ("gc.sched.steals", self.total_sched_steals()),
            ("gc.sched.steal_cycles", self.total_sched_steal_cycles()),
        ] {
            reg.add(name, v);
        }
        // Concurrent-mode keys appear only when SATB marking actually ran,
        // so STW runs keep their registry (and sim digest) byte-identical.
        let cm = self.total_concurrent_mark().get();
        if cm > 0 {
            reg.add("gc.concurrent.mark", cm);
        }
        let satb = self.total_satb_logged();
        if satb > 0 {
            reg.add("gc.concurrent.satb_logged", satb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyc(mark: u64, fw: u64, adj: u64, comp: u64) -> GcCycleStats {
        GcCycleStats {
            phases: PhaseBreakdown {
                mark: Cycles(mark),
                forward: Cycles(fw),
                adjust: Cycles(adj),
                compact: Cycles(comp),
                shootdown: Cycles::ZERO,
            },
            ..Default::default()
        }
    }

    #[test]
    fn breakdown_totals() {
        let b = PhaseBreakdown {
            mark: Cycles(10),
            forward: Cycles(20),
            adjust: Cycles(30),
            compact: Cycles(140),
            shootdown: Cycles(10),
        };
        assert_eq!(b.total(), Cycles(210));
        assert_eq!(b.non_compact(), Cycles(60));
        assert_eq!(b.compact_total(), Cycles(150));
        assert!((b.compact_pct() - 100.0 * 150.0 / 210.0).abs() < 1e-9);
    }

    #[test]
    fn log_aggregates() {
        let mut log = GcLog::new();
        log.push(cyc(1, 2, 3, 4));
        log.push(cyc(10, 20, 30, 140));
        assert_eq!(log.count(), 2);
        assert_eq!(log.total_pause(), Cycles(210));
        assert_eq!(log.max_pause(), Cycles(200));
        assert_eq!(log.avg_pause(), Cycles(105));
        assert_eq!(log.total_compact(), Cycles(144));
        assert_eq!(log.total_other(), Cycles(66));
    }

    #[test]
    fn abort_overhead_counts_toward_pause() {
        let mut s = cyc(1, 2, 3, 4);
        s.abort_overhead = Cycles(90);
        s.aborts = 1;
        s.rollback_pages = 7;
        s.mode = 1;
        assert_eq!(s.pause(), Cycles(100), "pause includes rollback time");
        let mut log = GcLog::new();
        log.push(s);
        log.push(cyc(1, 1, 1, 1));
        assert_eq!(log.total_pause(), Cycles(104));
        assert_eq!(log.total_aborts(), 1);
        assert_eq!(log.total_rollback_pages(), 7);
        assert_eq!(log.max_mode(), 1);
    }

    #[test]
    fn empty_log_is_safe() {
        let log = GcLog::new();
        assert_eq!(log.avg_pause(), Cycles::ZERO);
        assert_eq!(log.max_pause(), Cycles::ZERO);
    }
}
