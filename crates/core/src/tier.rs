//! Cold-object tiering policy: which pages live in DRAM and which are
//! demoted to the fallible far-memory tier.
//!
//! The kernel's [`svagc_kernel::FarTier`] provides the *mechanism*
//! (device I/O, residency, WAL records, fetch-on-access); this module is
//! the *policy* that drives it, piggybacked on the end of every GC
//! cycle:
//!
//! 1. **Hotness.** Every translation through the kernel records the
//!    touched frame; the controller drains that set each pass into a
//!    decayed per-frame score. Pages the mutator keeps touching never
//!    become demotion candidates.
//! 2. **Demotion.** When the resident page count exceeds
//!    `ceil(heap pages × dram_fraction)`, the coldest resident pages are
//!    demoted (device writeback + verify + WAL record each) until the
//!    target holds, capped per pass by [`TierPolicy::max_batch`]. The
//!    pass is traced as one [`PacketKind::DemoteBatch`] packet.
//! 3. **Degradation.** A *permanent* writeback failure means the device
//!    can no longer be trusted with data: the controller promotes every
//!    far page back (their bytes are still fetchable until the device
//!    actually dies), switches to [`TierMode::DramOnly`], and stops
//!    demoting. After [`TierPolicy::probation`] clean passes it re-probes
//!    with a single demotion; success returns to [`TierMode::Tiered`].
//!    Only a *fetch* failure — the device lost bytes the heap needs — is
//!    terminal, and even that surfaces as a typed, tenant-local
//!    [`GcError::Tier`], never a panic.
//!
//! The ladder, end to end: transient device fault → retry with backoff
//! (kernel layer) → permanent writeback failure → DRAM-only degraded
//! mode (this layer) → permanent fetch failure → typed device-failed
//! error (driver exit code). Each rung strictly contains the blast
//! radius of the one below it.

use crate::error::GcError;
use crate::packets::PacketKind;
use std::collections::BTreeMap;
use svagc_kernel::{Kernel, TierError};
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::{AddressSpace, FrameId, VirtAddr, PAGE_SIZE};

/// Hotness added to a frame each pass it was touched in (decay halves
/// scores every pass, so a frame stays "hot" for a few quiet passes
/// after its last touch).
const TOUCH_BOOST: u32 = 4;

/// Knobs of the demotion policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierPolicy {
    /// Fraction of the heap's committed pages kept resident in DRAM
    /// (clamped to `(0, 1]`); the rest are demotion candidates.
    pub dram_fraction: f64,
    /// Most pages demoted in one pass (bounds the pause added to the
    /// cycle that triggered the pass).
    pub max_batch: usize,
    /// Clean DRAM-only passes before re-probing a device that failed a
    /// writeback permanently.
    pub probation: u32,
}

impl TierPolicy {
    /// A policy keeping `dram_fraction` of heap pages resident.
    pub fn new(dram_fraction: f64) -> TierPolicy {
        TierPolicy {
            dram_fraction: dram_fraction.clamp(0.05, 1.0),
            max_batch: 64,
            probation: 2,
        }
    }
}

/// Whether the controller is currently willing to demote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierMode {
    /// Normal operation: cold pages go to the far tier.
    Tiered,
    /// The device failed a writeback permanently; everything stays in
    /// DRAM until a probation re-probe succeeds.
    DramOnly,
}

impl TierMode {
    /// Human-readable name (CLI output, trace args).
    pub fn name(self) -> &'static str {
        match self {
            TierMode::Tiered => "tiered",
            TierMode::DramOnly => "dram-only",
        }
    }
}

/// Controller activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCtlStats {
    /// Demote passes run (one per GC cycle while enabled).
    pub passes: u64,
    /// Pages demoted across all passes.
    pub demoted_pages: u64,
    /// Passes cut short because the device was full.
    pub device_full: u64,
    /// Escalations to [`TierMode::DramOnly`].
    pub degraded: u64,
    /// Probation re-probes attempted from DRAM-only mode.
    pub reprobes: u64,
    /// Successful returns to [`TierMode::Tiered`].
    pub recovered: u64,
}

/// The per-tenant tiering policy state carried across GC cycles.
#[derive(Debug, Clone)]
pub struct TierController {
    policy: Option<TierPolicy>,
    mode: TierMode,
    hotness: BTreeMap<FrameId, u32>,
    clean_passes: u32,
    /// Activity counters.
    pub stats: TierCtlStats,
}

impl TierController {
    /// An inert controller: [`TierController::after_cycle`] is a free
    /// no-op, so tiering-off runs are byte-identical to pre-tier ones.
    pub fn off() -> TierController {
        TierController {
            policy: None,
            mode: TierMode::Tiered,
            hotness: BTreeMap::new(),
            clean_passes: 0,
            stats: TierCtlStats::default(),
        }
    }

    /// A controller demoting per `policy`.
    pub fn new(policy: TierPolicy) -> TierController {
        TierController {
            policy: Some(policy),
            ..TierController::off()
        }
    }

    /// Is demotion configured at all?
    pub fn enabled(&self) -> bool {
        self.policy.is_some()
    }

    /// The current rung of the degrade ladder.
    pub fn mode(&self) -> TierMode {
        self.mode
    }

    /// Decay hotness and fold in the frames touched since the last pass.
    fn refresh_hotness(&mut self, kernel: &mut Kernel) {
        let touched = match kernel.far_tier_mut() {
            Some(t) => t.take_touched(),
            None => return,
        };
        self.hotness.retain(|_, score| {
            *score /= 2;
            *score > 0
        });
        for f in touched {
            *self.hotness.entry(f).or_insert(0) += TOUCH_BOOST;
        }
    }

    /// Resident heap pages as `(hotness, frame, va)`, coldest first.
    /// Committed-but-far pages count toward the total but are not
    /// candidates (they are already demoted).
    fn candidates(
        &self,
        kernel: &Kernel,
        space: &AddressSpace,
        base: VirtAddr,
        top: VirtAddr,
    ) -> (u64, Vec<(u32, FrameId, VirtAddr)>) {
        let tier = kernel.far_tier().expect("checked by caller");
        let mut total = 0u64;
        let mut cand = Vec::new();
        let mut va = VirtAddr(base.get() & !(PAGE_SIZE - 1));
        while va.get() < top.get() {
            if let Ok(pa) = space.translate(va) {
                total += 1;
                let frame = pa.frame();
                if !tier.is_far(frame) {
                    cand.push((self.hotness.get(&frame).copied().unwrap_or(0), frame, va));
                }
            }
            va = VirtAddr(va.get() + PAGE_SIZE);
        }
        cand.sort_by_key(|&(score, frame, _)| (score, frame));
        (total, cand)
    }

    /// Permanent writeback failure: pull everything back to DRAM and
    /// stop demoting. Promote-all is safe here — a writeback failure
    /// loses nothing (the bytes never left DRAM) — but if the *fetches*
    /// it issues fail too, the device has genuinely lost data and that
    /// error propagates.
    fn degrade(&mut self, kernel: &mut Kernel) -> Result<Cycles, GcError> {
        self.mode = TierMode::DramOnly;
        self.clean_passes = 0;
        self.stats.degraded += 1;
        self.hotness.clear();
        let t = kernel.tier_promote_all().map_err(GcError::from)?;
        kernel.trace.instant(
            TraceKind::ModeChange,
            Cycles::ZERO,
            0,
            &[("tier_mode", 1), ("tier_degraded", self.stats.degraded)],
        );
        Ok(t)
    }

    /// Run the post-cycle tier pass over the heap range `[base, top)` of
    /// `space`. Returns the simulated cycles the pass consumed (GC
    /// overhead, not mutator time).
    pub fn after_cycle(
        &mut self,
        kernel: &mut Kernel,
        space: &AddressSpace,
        base: VirtAddr,
        top: VirtAddr,
    ) -> Result<Cycles, GcError> {
        let Some(policy) = self.policy else {
            return Ok(Cycles::ZERO);
        };
        if kernel.far_tier().is_none() {
            return Ok(Cycles::ZERO);
        }
        self.stats.passes += 1;
        self.refresh_hotness(kernel);
        let (total, cand) = self.candidates(kernel, space, base, top);
        let target = (total as f64 * policy.dram_fraction).ceil() as u64;
        let want = (cand.len() as u64).saturating_sub(target.max(1)) as usize;

        let mut budget = match self.mode {
            TierMode::Tiered => want.min(policy.max_batch),
            TierMode::DramOnly => {
                // Probation: after enough clean passes, risk exactly one
                // page to see whether the device recovered.
                self.clean_passes += 1;
                if self.clean_passes < policy.probation.max(1) || want == 0 {
                    return Ok(Cycles::ZERO);
                }
                self.stats.reprobes += 1;
                1
            }
        };

        let mut t = Cycles::ZERO;
        let mut demoted = 0u64;
        for &(_, _, va) in &cand {
            if budget == 0 {
                break;
            }
            match kernel.tier_demote_page(space, va) {
                Ok(c) => {
                    t += c;
                    demoted += 1;
                    budget -= 1;
                    if self.mode == TierMode::DramOnly {
                        // The probe landed: the device is taking writes
                        // again. Full demotion resumes next pass.
                        self.mode = TierMode::Tiered;
                        self.clean_passes = 0;
                        self.stats.recovered += 1;
                        kernel.trace.instant(
                            TraceKind::ModeChange,
                            Cycles::ZERO,
                            0,
                            &[("tier_mode", 0), ("tier_recovered", self.stats.recovered)],
                        );
                        break;
                    }
                }
                Err(TierError::DeviceFull) => {
                    self.stats.device_full += 1;
                    break;
                }
                Err(TierError::WritebackFailed { .. }) => {
                    t += self.degrade(kernel)?;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.stats.demoted_pages += demoted;
        if demoted > 0 {
            kernel.trace.instant(
                TraceKind::Packet,
                t,
                0,
                &[
                    ("kind", PacketKind::DemoteBatch.id()),
                    ("pages", demoted),
                    ("far", u64::from(kernel.far_tier().expect("enabled").far_count())),
                ],
            );
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_kernel::{
        CoreId, DeviceFaultConfig, DeviceFaultPlan, FarDevice, FarTier, RetryPolicy,
    };
    use svagc_metrics::MachineConfig;
    use svagc_vmem::Asid;

    fn setup(pages: u64, slots: u32) -> (Kernel, AddressSpace, VirtAddr) {
        let mut k = Kernel::new(MachineConfig::i5_7600(), 256);
        let mut s = AddressSpace::new(Asid(1));
        let va = k.vmem.alloc_region(&mut s, pages).unwrap();
        k.set_far_tier(Some(FarTier::new(
            FarDevice::new(slots),
            RetryPolicy::default(),
        )));
        for i in 0..pages {
            k.write_word(&s, CoreId(0), va.add_pages(i), 0x1000 + i).unwrap();
        }
        (k, s, va)
    }

    fn top(va: VirtAddr, pages: u64) -> VirtAddr {
        VirtAddr(va.get() + pages * PAGE_SIZE)
    }

    #[test]
    fn inert_controller_does_nothing() {
        let (mut k, s, va) = setup(4, 8);
        let mut c = TierController::off();
        assert_eq!(
            c.after_cycle(&mut k, &s, va, top(va, 4)).unwrap(),
            Cycles::ZERO
        );
        assert_eq!(k.far_tier().unwrap().far_count(), 0);
        assert_eq!(c.stats.passes, 0);
    }

    #[test]
    fn demotes_down_to_the_dram_fraction() {
        let (mut k, s, va) = setup(8, 16);
        let mut c = TierController::new(TierPolicy::new(0.5));
        let t = c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap();
        assert!(t > Cycles::ZERO);
        assert_eq!(k.far_tier().unwrap().far_count(), 4, "8 pages, 50% resident");
        assert_eq!(c.stats.demoted_pages, 4);
        // Already at target: the next pass demotes nothing.
        c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap();
        assert_eq!(c.stats.demoted_pages, 4);
    }

    #[test]
    fn hot_pages_are_demoted_last() {
        let (mut k, s, va) = setup(8, 16);
        let mut c = TierController::new(TierPolicy::new(0.5));
        // The setup writes touched every page; drain that noise so only
        // the reads below count as the hotness signal.
        k.far_tier_mut().unwrap().take_touched();
        // Touch pages 0..4 so they are hot; the cold half (4..8) goes far.
        for i in 0..4 {
            k.read_word(&s, CoreId(0), va.add_pages(i)).unwrap();
        }
        c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap();
        let tier = k.far_tier().unwrap();
        for i in 0..4u64 {
            let f = s.translate(va.add_pages(i)).unwrap().frame();
            assert!(!tier.is_far(f), "hot page {i} stayed resident");
        }
        assert_eq!(tier.far_count(), 4);
    }

    #[test]
    fn writeback_failure_degrades_to_dram_only_and_reprobes() {
        let (mut k, s, va) = setup(8, 16);
        let mut c = TierController::new(TierPolicy::new(0.5));
        c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap();
        assert_eq!(k.far_tier().unwrap().far_count(), 4);
        // Device turns permanently EIO: the next pass degrades, and
        // promote-all drains the far pages (reads still work — EIO here
        // is injected per-request and retried; make it truly permanent
        // for writes by exhausting retries deterministically).
        let plan = DeviceFaultPlan::new(DeviceFaultConfig::uniform(0.0, 3).with_offline_after(0));
        k.far_tier_mut().unwrap().set_device_fault_plan(Some(plan));
        // Offline fetches would lose data, so clear the plan before the
        // promote-all inside degrade can run... instead: demote target
        // is already met, so force pressure by touching nothing and
        // shrinking the fraction.
        c.policy = Some(TierPolicy { dram_fraction: 0.25, ..c.policy.unwrap() });
        let e = c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap_err();
        assert!(
            matches!(e, GcError::Tier(TierError::FetchLost { .. })),
            "offline device loses the already-far pages: {e}"
        );
    }

    #[test]
    fn degrade_is_graceful_when_nothing_is_far_yet() {
        let (mut k, s, va) = setup(8, 16);
        let mut c = TierController::new(TierPolicy::new(0.5));
        let plan = DeviceFaultPlan::new(DeviceFaultConfig::uniform(0.0, 3).with_offline_after(0));
        k.far_tier_mut().unwrap().set_device_fault_plan(Some(plan));
        // First-ever demotion hits the dead device: WritebackFailed,
        // nothing was far, so degrade succeeds with all data in DRAM.
        c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap();
        assert_eq!(c.mode(), TierMode::DramOnly);
        assert_eq!(c.stats.degraded, 1);
        assert_eq!(k.far_tier().unwrap().far_count(), 0);
        // Probation passes do nothing until the re-probe fires; the
        // device is still dead, so the probe fails and we stay degraded.
        assert_eq!(c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap(), Cycles::ZERO);
        c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap();
        assert_eq!(c.stats.reprobes, 1);
        assert_eq!(c.mode(), TierMode::DramOnly);
        // Device comes back: the next probe succeeds and mode recovers.
        k.far_tier_mut().unwrap().set_device_fault_plan(None);
        c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap();
        c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap();
        assert_eq!(c.mode(), TierMode::Tiered);
        assert_eq!(c.stats.recovered, 1);
        assert!(k.far_tier().unwrap().far_count() >= 1, "the probe page is far");
    }

    #[test]
    fn device_full_stops_the_pass_without_failing() {
        let (mut k, s, va) = setup(8, 2);
        let mut c = TierController::new(TierPolicy::new(0.25));
        c.after_cycle(&mut k, &s, va, top(va, 8)).unwrap();
        assert_eq!(k.far_tier().unwrap().far_count(), 2, "capped by device capacity");
        assert_eq!(c.stats.device_full, 1);
        assert_eq!(c.mode(), TierMode::Tiered, "full is not a fault");
    }
}
