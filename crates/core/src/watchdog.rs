//! GC watchdog: per-phase virtual-cycle deadlines.
//!
//! A cycle that will not finish is as bad as one that faults: a stuck
//! shootdown, a pathological retry storm, or a degenerate heap shape can
//! inflate one phase far beyond its budget. The watchdog compares each
//! phase's accumulated makespan against a single per-phase budget
//! ([`GcConfig::deadline_cycles`](crate::GcConfig)); exceeding it raises
//! [`GcError::Deadline`], which the transactional collector treats exactly
//! like an unrecoverable fault — abort, roll back, escalate the degraded
//! mode, retry.
//!
//! All time here is *virtual* (simulated cycles charged to workers), so
//! expiry is fully deterministic: the same seed and configuration expire
//! at the same check, every run.

use crate::error::GcError;
use svagc_metrics::Cycles;

/// Deadline checker for one GC cycle attempt.
#[derive(Debug, Clone)]
pub struct GcWatchdog {
    budget: Option<u64>,
    /// Deadline expiries this watchdog has raised.
    pub expiries: u64,
}

impl GcWatchdog {
    /// A watchdog with a per-phase budget in cycles; `None` never expires.
    pub fn new(budget: Option<u64>) -> GcWatchdog {
        GcWatchdog {
            budget,
            expiries: 0,
        }
    }

    /// Is a deadline configured at all?
    pub fn armed(&self) -> bool {
        self.budget.is_some()
    }

    /// The configured budget.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Check `phase`'s accumulated makespan against the budget. Cheap
    /// enough to call at every batch flush inside the compaction phase.
    pub fn check(&mut self, phase: &'static str, elapsed: Cycles) -> Result<(), GcError> {
        match self.budget {
            Some(b) if elapsed.get() > b => {
                self.expiries += 1;
                Err(GcError::Deadline {
                    phase,
                    elapsed,
                    budget: Cycles(b),
                })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_watchdog_never_expires() {
        let mut w = GcWatchdog::new(None);
        assert!(!w.armed());
        assert!(w.check("mark", Cycles(u64::MAX)).is_ok());
        assert_eq!(w.expiries, 0);
    }

    #[test]
    fn expiry_is_strictly_over_budget() {
        let mut w = GcWatchdog::new(Some(1000));
        assert!(w.check("mark", Cycles(1000)).is_ok(), "at budget is fine");
        let e = w.check("compact", Cycles(1001)).unwrap_err();
        match e {
            GcError::Deadline {
                phase,
                elapsed,
                budget,
            } => {
                assert_eq!(phase, "compact");
                assert_eq!(elapsed, Cycles(1001));
                assert_eq!(budget, Cycles(1000));
            }
            other => panic!("expected Deadline, got {other}"),
        }
        assert_eq!(w.expiries, 1);
    }
}
