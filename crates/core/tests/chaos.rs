//! Chaos tests: the collector driven through injected kernel faults must
//! finish every cycle and leave a heap bit-identical to a fault-free run.
//!
//! The oracle is two-fold: `verify_phases` makes the collector run the
//! [`HeapVerifier`] after every STW phase (a violation turns the cycle into
//! `GcError::Corruption`), and `HeapVerifier::content_hash` compares the
//! final live heap of a faulty run against the fault-free reference.

use svagc_core::{GcConfig, GcCycleStats, Lisp2Collector, RetryPolicy};
use svagc_heap::{Heap, HeapConfig, HeapVerifier, ObjRef, ObjShape, RootSet};
use svagc_kernel::{CoreId, FaultConfig, FaultPlan, Kernel};
use svagc_metrics::{MachineConfig, SimRng};
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);

fn setup(heap_bytes: u64) -> (Kernel, Heap, RootSet) {
    let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), heap_bytes + (4 << 20));
    let h = Heap::new(&mut k, Asid(1), HeapConfig::new(heap_bytes)).unwrap();
    (k, h, RootSet::new())
}

fn alloc_stamped(k: &mut Kernel, h: &mut Heap, shape: ObjShape, seed: u64) -> ObjRef {
    let (obj, _) = h.alloc(k, CORE, shape).unwrap();
    for i in 0..shape.data_words as u64 {
        h.write_data(k, CORE, obj, shape.num_refs as u64, i, seed + i)
            .unwrap();
    }
    obj
}

/// Build a seed-dependent mix of large (multi-page) and small objects with
/// interleaved garbage, returning the populated world.
fn build_world(seed: u64) -> (Kernel, Heap, RootSet) {
    let (mut k, mut h, mut roots) = setup(96 << 20);
    let mut rng = SimRng::seed_from_u64(seed);
    for i in 0..24u64 {
        let shape = match rng.gen_range(0..3u32) {
            0 => ObjShape::data_bytes(rng.gen_range(8..20u64) * PAGE_SIZE),
            1 => ObjShape::data(rng.gen_range(16..600u32)),
            _ => ObjShape::with_refs(2, 32),
        };
        let obj = alloc_stamped(&mut k, &mut h, shape, seed * 1_000 + i * 37);
        if rng.gen_bool(0.5) {
            roots.push(obj);
        }
    }
    // Wire some references among the rooted objects so adjust has real work.
    let live: Vec<ObjRef> = roots.iter_live().collect();
    for (i, obj) in live.iter().enumerate() {
        let raw_hdr = k.vmem.read_u64(h.space(), obj.0).unwrap();
        let nrefs = svagc_heap::ObjHeader::decode(raw_hdr).num_refs;
        for r in 0..nrefs as u64 {
            let target = live[(i + 1 + r as usize) % live.len()];
            h.write_ref(&mut k, CORE, *obj, r, target).unwrap();
        }
    }
    (k, h, roots)
}

/// Run one GC over `build_world(seed)` with an optional fault plan; returns
/// the cycle stats plus the post-GC content hash and heap top.
fn run_gc(cfg: GcConfig, seed: u64, faults: Option<FaultConfig>) -> (GcCycleStats, u64, u64) {
    let (mut k, mut h, mut roots) = build_world(seed);
    if let Some(fc) = faults {
        k.set_fault_plan(Some(FaultPlan::new(fc)));
    }
    let mut gc = Lisp2Collector::new(cfg.with_verify_phases(true));
    let stats = gc
        .collect(&mut k, &mut h, &mut roots)
        .unwrap_or_else(|e| panic!("seed {seed}: GC failed under faults: {e}"));
    let report = HeapVerifier::new().verify_post_compact(&k, &mut h, &roots);
    assert!(
        report.is_clean(),
        "seed {seed}: post-GC verifier violations: {:?}",
        report.violations
    );
    let hash = HeapVerifier::new().content_hash(&k, &mut h);
    (stats, hash, h.top().get())
}

/// Transient-only faults at a high rate: every cycle must complete through
/// retries alone (no fallbacks needed below the retry budget) and match the
/// fault-free heap bit for bit.
#[test]
fn transient_faults_retry_to_bit_identical_heap() {
    let mut total_retries = 0;
    let mut total_injected = 0;
    for seed in 0..12u64 {
        let (clean, clean_hash, clean_top) = run_gc(GcConfig::svagc(4), seed, None);
        let (faulty, faulty_hash, faulty_top) = run_gc(
            GcConfig::svagc(4),
            seed,
            Some(FaultConfig::transient_only(0.25, 0xC0FFEE + seed)),
        );
        assert_eq!(clean_hash, faulty_hash, "seed {seed}: heap diverged");
        assert_eq!(clean_top, faulty_top, "seed {seed}: top diverged");
        assert_eq!(clean.live_objects, faulty.live_objects);
        assert_eq!(clean.faults_injected, 0);
        total_retries += faulty.swap_retries;
        total_injected += faulty.faults_injected;
    }
    assert!(total_injected > 0, "chaos plan never fired");
    assert!(total_retries > 0, "transient faults must surface as retries");
}

/// The full fault mix (transient + permanent + ENOMEM + shootdown timeout):
/// permanent faults demote individual objects to memmove, and the heap still
/// matches the fault-free run exactly.
#[test]
fn mixed_faults_fall_back_and_stay_bit_identical() {
    let mut fallbacks = 0;
    for seed in 0..12u64 {
        let (_, clean_hash, clean_top) = run_gc(GcConfig::svagc(4), seed, None);
        let (faulty, faulty_hash, faulty_top) = run_gc(
            GcConfig::svagc(4),
            seed,
            Some(FaultConfig::uniform(0.3, 0xBAD_5EED + seed)),
        );
        assert_eq!(clean_hash, faulty_hash, "seed {seed}: heap diverged");
        assert_eq!(clean_top, faulty_top, "seed {seed}: top diverged");
        fallbacks += faulty.swap_fallback_objects;
        // Fallbacks re-attribute their stats: fallback bytes are counted as
        // memmove traffic, never double-counted as swapped.
        if faulty.swap_fallback_objects > 0 {
            assert!(faulty.memmove_bytes >= faulty.swap_fallback_bytes);
        }
    }
    assert!(fallbacks > 0, "permanent faults must surface as fallbacks");
}

/// Aggregated (batched) SwapVA under faults: a batch failing at index i must
/// split, keep the already-applied prefix, and resume — never replaying a
/// swap (which would corrupt the heap) and never losing one.
#[test]
fn aggregated_batches_split_and_resume_exactly_once() {
    let mut splits = 0;
    for seed in 0..8u64 {
        // A dense world of large survivors compacted by ONE worker, so the
        // per-worker batch actually fills up to the aggregation limit.
        let run = |faults: Option<FaultConfig>| {
            let (mut k, mut h, mut roots) = setup(96 << 20);
            let big = ObjShape::data_bytes(10 * PAGE_SIZE);
            for i in 0..20u64 {
                let obj = alloc_stamped(&mut k, &mut h, big, seed * 500 + i * 11);
                if i % 2 == 1 {
                    roots.push(obj);
                }
            }
            if let Some(fc) = faults {
                k.set_fault_plan(Some(FaultPlan::new(fc)));
            }
            let cfg = GcConfig::svagc(1)
                .with_aggregation(Some(8))
                .with_verify_phases(true);
            let mut gc = Lisp2Collector::new(cfg);
            let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
            let hash = HeapVerifier::new().content_hash(&k, &mut h);
            (stats, hash)
        };
        let (_, clean_hash) = run(None);
        let (faulty, faulty_hash) = run(Some(FaultConfig::uniform(0.3, 0x51ED + seed)));
        assert_eq!(clean_hash, faulty_hash, "seed {seed}: heap diverged");
        splits += faulty.batch_splits;
    }
    assert!(splits > 0, "faults inside batches must surface as splits");
}

/// Overlap rotation (Algorithm 2) under transient faults: a survivor sliding
/// down by less than its own size swaps page-by-page in rotation order, and
/// a fault mid-rotation must resume without disturbing the rotation.
#[test]
fn overlap_rotation_survives_mid_rotation_faults() {
    for seed in 0..10u64 {
        let run = |faults: Option<FaultConfig>| {
            let (mut k, mut h, mut roots) = setup(64 << 20);
            // Seed-dependent doomed prefix smaller than the survivor, so the
            // survivor's slide distance overlaps its own extent.
            let hole = (seed % 6 + 1) * PAGE_SIZE + 64 * (seed % 3);
            alloc_stamped(&mut k, &mut h, ObjShape::data_bytes(hole), 1);
            let big = ObjShape::data_bytes(40 * PAGE_SIZE);
            let obj = alloc_stamped(&mut k, &mut h, big, 42_000 + seed);
            let rid = roots.push(obj);
            if let Some(fc) = faults {
                k.set_fault_plan(Some(FaultPlan::new(fc)));
            }
            let mut gc = Lisp2Collector::new(GcConfig::svagc(1).with_verify_phases(true));
            let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
            let moved = roots.get(rid);
            assert!(moved.0 < obj.0, "seed {seed}: object must slide down");
            let hash = HeapVerifier::new().content_hash(&k, &mut h);
            (stats, hash)
        };
        let (_, clean_hash) = run(None);
        let (faulty, faulty_hash) = run(Some(FaultConfig::transient_only(0.4, 0xA11CE + seed)));
        assert_eq!(clean_hash, faulty_hash, "seed {seed}: rotation corrupted");
        assert!(
            faulty.swap_retries > 0 || faulty.faults_injected == 0,
            "seed {seed}: injected transient faults must be retried"
        );
    }
}

/// Fault probability 1.0 with a tiny retry budget: every SwapVA attempt
/// fails, every object demotes to the memmove path, and the result is still
/// bit-identical — the strongest statement of graceful degradation.
#[test]
fn total_swap_outage_degrades_to_memmove() {
    for seed in 0..6u64 {
        let (clean, clean_hash, _) = run_gc(GcConfig::svagc(2), seed, None);
        let cfg = GcConfig::svagc(2).with_retry_policy(RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        });
        let (faulty, faulty_hash, _) =
            run_gc(cfg, seed, Some(FaultConfig::uniform(1.0, 0xDEAD + seed)));
        assert_eq!(clean_hash, faulty_hash, "seed {seed}: heap diverged");
        assert_eq!(
            faulty.swapped_objects, 0,
            "seed {seed}: no swap can succeed at p=1"
        );
        assert_eq!(faulty.swap_fallback_objects, clean.swapped_objects);
        if clean.swapped_objects > 0 {
            assert!(faulty.memmove_bytes > clean.memmove_bytes);
        }
    }
}

/// Fault-free runs must not pay for the resilience machinery: zero injected
/// faults, zero retries, zero fallbacks, zero splits, and identical stats to
/// a collector with a different retry policy (the policy is dormant).
#[test]
fn fault_free_runs_are_unperturbed() {
    for seed in 0..6u64 {
        let (a, hash_a, _) = run_gc(GcConfig::svagc(4), seed, None);
        let cfg = GcConfig::svagc(4).with_retry_policy(RetryPolicy {
            max_retries: 99,
            backoff_base: 1,
            backoff_cap: 2,
            fallback_budget: None,
        });
        let (b, hash_b, _) = run_gc(cfg, seed, None);
        assert_eq!(hash_a, hash_b);
        for s in [&a, &b] {
            assert_eq!(s.faults_injected, 0);
            assert_eq!(s.swap_retries, 0);
            assert_eq!(s.swap_fallback_objects, 0);
            assert_eq!(s.batch_splits, 0);
            assert_eq!(s.verify_violations, 0);
        }
        assert_eq!(
            a.phases.total(),
            b.phases.total(),
            "dormant policy must not change cost"
        );
    }
}

/// Satellite matrix for the packet scheduler: under 1% and 10% uniform
/// fault rates, `--scheduler packets` must land on exactly the same heap
/// as (a) its own fault-free run and (b) the barrier scheduler — packets
/// only reorder *time attribution*, never the functional effect order, so
/// chaos recovery (retries, fallbacks, batch splits) composes with it
/// unchanged.
#[test]
fn packet_scheduler_chaos_matrix_stays_bit_identical() {
    use svagc_core::SchedulerKind;
    let packets = GcConfig::svagc(4).with_scheduler(SchedulerKind::Packets);
    for rate in [0.01, 0.10] {
        let mut injected = 0;
        for seed in 0..6u64 {
            let (clean, clean_hash, clean_top) = run_gc(packets, seed, None);
            assert!(clean.sched_packets > 0, "packet scheduler never engaged");
            let (_, barrier_hash, barrier_top) = run_gc(GcConfig::svagc(4), seed, None);
            assert_eq!(clean_hash, barrier_hash, "seed {seed}: schedulers disagree");
            assert_eq!(clean_top, barrier_top);

            let (faulty, faulty_hash, faulty_top) = run_gc(
                packets,
                seed,
                Some(FaultConfig::uniform(rate, 0x9AC4E7 + seed)),
            );
            assert_eq!(
                clean_hash, faulty_hash,
                "seed {seed} rate {rate}: heap diverged under packets+faults"
            );
            assert_eq!(clean_top, faulty_top);
            assert_eq!(clean.live_objects, faulty.live_objects);
            injected += faulty.faults_injected;
        }
        // Fault rolls are per swap request; at 1% over this world the plan
        // may legitimately stay silent, but 10% must fire.
        if rate >= 0.10 {
            assert!(injected > 0, "rate {rate}: chaos plan never fired");
        }
    }
}
