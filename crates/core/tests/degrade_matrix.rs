//! Property tests for the degraded-mode circuit breaker and the undo
//! journal, driven by seeded [`SimRng`] event streams.
//!
//! The degrade tests pit [`DegradeController`] against an independent
//! reference model (a hand-rolled table interpreter) over the full
//! transition matrix and over thousands of random abort/clean traces.
//! The journal tests establish the two properties recovery leans on:
//! rollback of a random op soup restores the exact byte image, and a
//! replayed rollback is rejected before it can corrupt anything.

use svagc_core::{DegradeController, DegradePolicy, DegradedMode};
use svagc_kernel::{CoreId, Kernel, RollbackError, SwapRequest, SwapVaOptions, WalOp};
use svagc_metrics::{MachineConfig, SimRng};
use svagc_vmem::{AddressSpace, Asid, VirtAddr, PAGE_SIZE};

// ---------------------------------------------------------------------
// Part 1: DegradedMode transition matrix vs a reference model
// ---------------------------------------------------------------------

/// What happened to a cycle, as the controller sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Abort,
    Clean,
}

/// Independent reference model of the circuit breaker: mode is a plain
/// level 0..=2, probation a counter. Deliberately written as a lookup
/// over the spec's transition table, not as a port of the production
/// code, so a shared bug has to be made twice to go unnoticed.
#[derive(Debug, Clone)]
struct RefModel {
    enabled: bool,
    probation: u32,
    level: u8,
    cleans: u32,
    escalations: u64,
    recoveries: u64,
}

impl RefModel {
    fn new(policy: DegradePolicy) -> RefModel {
        RefModel {
            enabled: policy.enabled,
            probation: policy.probation.max(1),
            level: 0,
            cleans: 0,
            escalations: 0,
            recoveries: 0,
        }
    }

    /// Returns `(level_before, level_after)` exactly when the mode moved.
    fn step(&mut self, ev: Event) -> Option<(u8, u8)> {
        match ev {
            Event::Abort => {
                self.cleans = 0;
                if !self.enabled || self.level == 2 {
                    return None;
                }
                let from = self.level;
                self.level += 1;
                self.escalations += 1;
                Some((from, self.level))
            }
            Event::Clean => {
                if self.level == 0 {
                    self.cleans = 0;
                    return None;
                }
                self.cleans += 1;
                if self.cleans < self.probation {
                    return None;
                }
                let from = self.level;
                self.level -= 1;
                self.cleans = 0;
                self.recoveries += 1;
                Some((from, self.level))
            }
        }
    }
}

fn drive(c: &mut DegradeController, ev: Event) -> Option<(u8, u8)> {
    let t = match ev {
        Event::Abort => c.on_abort(),
        Event::Clean => c.on_clean(),
    };
    t.map(|t| (t.from.level(), t.to.level()))
}

/// Walk a controller into a given mode via aborts (mode levels are only
/// reachable through the ladder, never settable directly).
fn controller_at(policy: DegradePolicy, level: u8) -> DegradeController {
    let mut c = DegradeController::new(policy);
    for _ in 0..level {
        c.on_abort();
    }
    assert_eq!(c.mode().level(), level, "ladder walk failed");
    c
}

#[test]
fn transition_matrix_is_exact() {
    // (start level, event, probation) -> expected level afterwards. The
    // clean rows use probation 1 so a single event exercises recovery.
    let matrix: &[(u8, Event, u32, u8)] = &[
        (0, Event::Abort, 1, 1),
        (1, Event::Abort, 1, 2),
        (2, Event::Abort, 1, 2), // saturates, abort propagates
        (0, Event::Clean, 1, 0),
        (1, Event::Clean, 1, 0),
        (2, Event::Clean, 1, 1), // one level at a time, never straight home
    ];
    for &(from, ev, probation, want) in matrix {
        let policy = DegradePolicy { enabled: true, probation };
        let mut c = controller_at(policy, from);
        drive(&mut c, ev);
        assert_eq!(
            c.mode().level(),
            want,
            "level {from} on {ev:?} (probation {probation})"
        );
    }
}

#[test]
fn controller_matches_reference_model_on_random_traces() {
    let policies = [
        DegradePolicy::off(),
        DegradePolicy::standard(),
        DegradePolicy { enabled: true, probation: 1 },
        DegradePolicy { enabled: true, probation: 5 },
    ];
    for (pi, policy) in policies.iter().enumerate() {
        for seed in 0..24u64 {
            let mut rng = SimRng::seed_from_u64(0xD15C0 + seed * 31 + pi as u64);
            let mut c = DegradeController::new(*policy);
            let mut m = RefModel::new(*policy);
            // Aborts are the rare event, as in production.
            let p_abort = 0.1 + 0.3 * rng.gen_f64();
            for step in 0..400 {
                let ev = if rng.gen_bool(p_abort) { Event::Abort } else { Event::Clean };
                let got = drive(&mut c, ev);
                let want = m.step(ev);
                assert_eq!(
                    got, want,
                    "policy {policy:?} seed {seed} step {step}: transition diverged"
                );
                assert_eq!(c.mode().level(), m.level, "mode diverged at step {step}");
            }
            assert_eq!(c.escalations, m.escalations, "policy {policy:?} seed {seed}");
            assert_eq!(c.recoveries, m.recoveries, "policy {policy:?} seed {seed}");
        }
    }
}

#[test]
fn random_traces_preserve_ladder_invariants() {
    for seed in 0..16u64 {
        let mut rng = SimRng::seed_from_u64(0xBADD + seed);
        let policy = DegradePolicy {
            enabled: true,
            probation: rng.gen_range(1..6u32),
        };
        let mut c = DegradeController::new(policy);
        let mut cleans_since_change = 0u32;
        for _ in 0..600 {
            let before = c.mode().level();
            let ev = if rng.gen_bool(0.25) { Event::Abort } else { Event::Clean };
            let t = drive(&mut c, ev);
            let after = c.mode().level();
            // Single-step ladder: a transition moves exactly one level,
            // in the direction the event dictates.
            match ev {
                Event::Abort => {
                    assert!(after >= before, "abort lowered severity");
                    assert!(after - before <= 1, "abort jumped levels");
                    cleans_since_change = 0;
                }
                Event::Clean => {
                    assert!(after <= before, "clean raised severity");
                    assert!(before - after <= 1, "clean jumped levels");
                    if before > 0 {
                        cleans_since_change += 1;
                    }
                    if t.is_some() {
                        // A recovery only fires after a full probation of
                        // consecutive cleans at a degraded level.
                        assert!(
                            cleans_since_change >= policy.probation,
                            "recovered after only {cleans_since_change} cleans \
                             (probation {})",
                            policy.probation
                        );
                        cleans_since_change = 0;
                    }
                }
            }
            // A reported transition is never the identity.
            if let Some((f, to)) = t {
                assert_ne!(f, to);
            }
        }
    }
}

#[test]
fn disabled_policy_is_inert_on_random_traces() {
    let mut rng = SimRng::seed_from_u64(0x0FF);
    let mut c = DegradeController::new(DegradePolicy::off());
    for _ in 0..300 {
        let ev = if rng.gen_bool(0.5) { Event::Abort } else { Event::Clean };
        assert!(drive(&mut c, ev).is_none());
        assert_eq!(c.mode(), DegradedMode::Normal);
    }
    assert_eq!((c.escalations, c.recoveries), (0, 0));
}

// ---------------------------------------------------------------------
// Part 2: undo-journal idempotence properties
// ---------------------------------------------------------------------

fn setup(frames: u32) -> (Kernel, AddressSpace) {
    (Kernel::new(MachineConfig::i5_7600(), frames), AddressSpace::new(Asid(1)))
}

fn snapshot(k: &Kernel, s: &AddressSpace, base: VirtAddr, bytes: u64) -> Vec<u8> {
    let mut buf = vec![0u8; bytes as usize];
    k.vmem.read_bytes(s, base, &mut buf).unwrap();
    buf
}

/// Apply a random soup of journaled mutations (disjoint swaps, memmoves,
/// word scribbles) to an arena and return how many ops were recorded.
fn random_ops(
    k: &mut Kernel,
    s: &mut AddressSpace,
    rng: &mut SimRng,
    arena: VirtAddr,
    pages: u64,
) -> usize {
    let mut applied = 0;
    for _ in 0..rng.gen_range(4..12u32) {
        match rng.gen_range(0..3u32) {
            0 => {
                // Disjoint swap: two non-overlapping page runs.
                let len = rng.gen_range(1..4u64);
                let a = rng.gen_range(0..pages - 2 * len);
                let b = rng.gen_range(a + len..pages - len + 1);
                let req = SwapRequest {
                    a: arena.add_pages(a),
                    b: arena.add_pages(b),
                    pages: len,
                };
                k.swap_va(s, CoreId(0), req, SwapVaOptions::naive()).unwrap();
            }
            1 => {
                let len = rng.gen_range(64..2 * PAGE_SIZE);
                let src = rng.gen_range(0..pages * PAGE_SIZE - len);
                let dst = rng.gen_range(0..pages * PAGE_SIZE - len);
                k.memmove(s, CoreId(0), arena + src, arena + dst, len).unwrap();
            }
            _ => {
                let at = arena + rng.gen_range(0..pages * PAGE_SIZE / 8) * 8;
                k.write_word(s, CoreId(0), at, rng.next_u64()).unwrap();
            }
        }
        applied += 1;
    }
    applied
}

#[test]
fn random_op_soups_roll_back_exactly_and_replays_are_rejected() {
    for seed in 0..12u64 {
        let mut rng = SimRng::seed_from_u64(0x10DE + seed * 97);
        let (mut k, mut s) = setup(256);
        let pages = 24u64;
        let arena = k.vmem.alloc_region(&mut s, pages).unwrap();
        for i in 0..pages * PAGE_SIZE / 8 {
            k.vmem.write_u64(&s, arena + i * 8, rng.next_u64()).unwrap();
        }
        let before = snapshot(&k, &s, arena, pages * PAGE_SIZE);

        k.journal_begin();
        let applied = random_ops(&mut k, &mut s, &mut rng, arena, pages);
        let j = k.journal_take().unwrap();
        assert!(j.len() >= applied, "each op journals at least one entry");
        let id = j.id();
        let replay = j.clone();

        k.rollback(&mut s, j, CoreId(0)).unwrap();
        let restored = snapshot(&k, &s, arena, pages * PAGE_SIZE);
        assert_eq!(restored, before, "seed {seed}: rollback must be exact");

        // Property: the journal's undo ops are NOT idempotent (a second
        // swap re-swaps), so the kernel must fence the replay *before*
        // mutating — afterwards the heap is byte-identical.
        assert_eq!(
            k.rollback(&mut s, replay, CoreId(0)),
            Err(RollbackError::Replayed { id }),
            "seed {seed}"
        );
        assert_eq!(snapshot(&k, &s, arena, pages * PAGE_SIZE), before, "seed {seed}");
    }
}

/// Harvest the open epoch's intents from the durable log.
fn harvest_intents(k: &Kernel) -> Vec<WalOp> {
    k.wal_scan()
        .records
        .iter()
        .filter_map(|r| match &r.payload {
            svagc_kernel::WalPayload::Intent(op) => Some(op.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn wal_undo_survives_stuttered_application_on_arbitrary_soups() {
    // A crash inside recovery can die on an op and re-run that same op
    // on the next attempt. WAL undo records carry absolute pre-images,
    // so the stuttered pass (every undo applied twice back-to-back,
    // under an unchanged mapping) must land on the exact pre-cycle
    // bytes — including for PTE swaps, whose raw-PTE installs are
    // no-ops the second time.
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from_u64(0x1DE0 + seed * 131);
        let (mut k, mut s) = setup(256);
        let pages = 16u64;
        let arena = k.vmem.alloc_region(&mut s, pages).unwrap();
        for i in 0..pages * PAGE_SIZE / 8 {
            k.vmem.write_u64(&s, arena + i * 8, rng.next_u64()).unwrap();
        }
        let before = snapshot(&k, &s, arena, pages * PAGE_SIZE);

        k.set_wal_enabled(true);
        k.wal_cycle_begin(vec![]);
        random_ops(&mut k, &mut s, &mut rng, arena, pages);
        // Crash before commit: the epoch stays open; harvest its intents.
        let intents = harvest_intents(&k);
        assert!(!intents.is_empty(), "seed {seed}: op soup logged no intents");

        for op in intents.iter().rev() {
            k.wal_undo_op(&mut s, op).unwrap();
            k.wal_undo_op(&mut s, op).unwrap();
        }
        assert_eq!(snapshot(&k, &s, arena, pages * PAGE_SIZE), before, "seed {seed}");
    }
}

#[test]
fn wal_undo_reruns_wholesale_on_translation_stable_soups() {
    // The double-crash path re-runs the entire undo pass from scratch.
    // For byte and word intents the pre-image addresses translate the
    // same way on every pass, so any number of partial prefixes
    // followed by one full pass converges on the pre-cycle bytes.
    // (Swap-heavy soups interleaved with byte writes to the *same*
    // pages are covered end-to-end by tests/recovery.rs, where the
    // recovery hash check fails closed rather than guessing.)
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from_u64(0xF00D + seed * 77);
        let (mut k, mut s) = setup(256);
        let pages = 16u64;
        let arena = k.vmem.alloc_region(&mut s, pages).unwrap();
        for i in 0..pages * PAGE_SIZE / 8 {
            k.vmem.write_u64(&s, arena + i * 8, rng.next_u64()).unwrap();
        }
        let before = snapshot(&k, &s, arena, pages * PAGE_SIZE);

        k.set_wal_enabled(true);
        k.wal_cycle_begin(vec![]);
        for _ in 0..rng.gen_range(6..14u32) {
            if rng.gen_bool(0.5) {
                let len = rng.gen_range(64..2 * PAGE_SIZE);
                let src = rng.gen_range(0..pages * PAGE_SIZE - len);
                let dst = rng.gen_range(0..pages * PAGE_SIZE - len);
                k.memmove(&s, CoreId(0), arena + src, arena + dst, len).unwrap();
            } else {
                let at = arena + rng.gen_range(0..pages * PAGE_SIZE / 8) * 8;
                k.write_word(&s, CoreId(0), at, rng.next_u64()).unwrap();
            }
        }
        let intents = harvest_intents(&k);
        assert!(!intents.is_empty(), "seed {seed}: op soup logged no intents");

        // Two crashed partial passes of random depth, then a full pass.
        for _ in 0..2 {
            let depth = rng.gen_range(0..intents.len() as u64 + 1) as usize;
            for op in intents.iter().rev().take(depth) {
                k.wal_undo_op(&mut s, op).unwrap();
            }
        }
        for op in intents.iter().rev() {
            k.wal_undo_op(&mut s, op).unwrap();
        }
        assert_eq!(snapshot(&k, &s, arena, pages * PAGE_SIZE), before, "seed {seed}");
    }
}
