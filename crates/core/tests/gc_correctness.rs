//! End-to-end correctness of the SVAGC collector: object graphs survive
//! compaction bit-for-bit, whether objects move by memmove or by PTE swap.

use svagc_core::{GcConfig, Lisp2Collector};
use svagc_heap::{Heap, HeapConfig, ObjRef, ObjShape, RootSet};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::MachineConfig;
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);

fn setup(heap_bytes: u64) -> (Kernel, Heap, RootSet) {
    let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), heap_bytes + (4 << 20));
    let h = Heap::new(&mut k, Asid(1), HeapConfig::new(heap_bytes)).unwrap();
    (k, h, RootSet::new())
}

/// Allocate an object whose data words are `seed, seed+1, ...` so content
/// can be verified after moves.
fn alloc_stamped(
    k: &mut Kernel,
    h: &mut Heap,
    shape: ObjShape,
    seed: u64,
) -> ObjRef {
    let (obj, _) = h.alloc(k, CORE, shape).unwrap();
    for i in 0..shape.data_words as u64 {
        h.write_data(k, CORE, obj, shape.num_refs as u64, i, seed + i)
            .unwrap();
    }
    obj
}

fn check_stamped(k: &mut Kernel, h: &Heap, obj: ObjRef, shape: ObjShape, seed: u64) {
    for i in 0..shape.data_words as u64 {
        let (v, _) = h
            .read_data(k, CORE, obj, shape.num_refs as u64, i)
            .unwrap();
        assert_eq!(v, seed + i, "data word {i} of object at {}", obj.0);
    }
}

#[test]
fn dead_objects_reclaimed_live_data_survives() {
    for cfg in [GcConfig::svagc(4), GcConfig::lisp2_memmove(4)] {
        let (mut k, mut h, mut roots) = setup(8 << 20);
        let shape = ObjShape::data(64);
        let mut kept = Vec::new();
        for i in 0..100u64 {
            let obj = alloc_stamped(&mut k, &mut h, shape, i * 1000);
            if i % 3 == 0 {
                kept.push((roots.push(obj), i * 1000));
            }
        }
        let used_before = h.used_bytes();
        let mut gc = Lisp2Collector::new(cfg);
        let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
        assert_eq!(stats.live_objects, 34);
        assert_eq!(stats.dead_objects, 66);
        assert!(h.used_bytes() < used_before);
        for (rid, seed) in kept {
            let obj = roots.get(rid);
            check_stamped(&mut k, &h, obj, shape, seed);
        }
    }
}

#[test]
fn linked_graph_with_cycles_survives() {
    for cfg in [GcConfig::svagc(2), GcConfig::lisp2_memmove(2)] {
        let (mut k, mut h, mut roots) = setup(8 << 20);
        let shape = ObjShape::with_refs(2, 8);
        // Ring of 10 nodes, each also pointing at a payload leaf.
        let nodes: Vec<ObjRef> = (0..10u64)
            .map(|i| alloc_stamped(&mut k, &mut h, shape, i * 100))
            .collect();
        let leaves: Vec<ObjRef> = (0..10u64)
            .map(|i| alloc_stamped(&mut k, &mut h, ObjShape::data(4), 7000 + i))
            .collect();
        for i in 0..10 {
            h.write_ref(&mut k, CORE, nodes[i], 0, nodes[(i + 1) % 10])
                .unwrap();
            h.write_ref(&mut k, CORE, nodes[i], 1, leaves[i]).unwrap();
        }
        // Garbage between the nodes.
        for i in 0..50u64 {
            alloc_stamped(&mut k, &mut h, ObjShape::data(32), 999_000 + i);
        }
        let rid = roots.push(nodes[0]);
        let mut gc = Lisp2Collector::new(cfg);
        let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
        assert_eq!(stats.live_objects, 20, "ring + leaves");

        // Walk the ring through the *moved* references.
        let mut cur = roots.get(rid);
        for step in 0..10u64 {
            check_stamped(&mut k, &h, cur, shape, step * 100);
            let (leaf, _) = h.read_ref(&mut k, CORE, cur, 1).unwrap();
            check_stamped(&mut k, &h, leaf, ObjShape::data(4), 7000 + step);
            let (next, _) = h.read_ref(&mut k, CORE, cur, 0).unwrap();
            cur = next;
        }
        assert_eq!(cur, roots.get(rid), "ring closes after 10 hops");
    }
}

#[test]
fn large_objects_move_by_pte_swap() {
    let (mut k, mut h, mut roots) = setup(96 << 20);
    let big = ObjShape::data_bytes(12 * PAGE_SIZE);
    // Interleave doomed and surviving large objects so survivors slide.
    let mut kept = Vec::new();
    for i in 0..16u64 {
        let obj = alloc_stamped(&mut k, &mut h, big, i * 1_000_000);
        if i % 2 == 1 {
            kept.push((roots.push(obj), i * 1_000_000));
        }
    }
    let mut gc = Lisp2Collector::new(GcConfig::svagc(4));
    let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
    assert_eq!(stats.live_objects, 8);
    assert!(
        stats.swapped_objects >= 7,
        "large survivors should move via SwapVA (got {})",
        stats.swapped_objects
    );
    assert_eq!(stats.memmove_bytes, 0, "nothing should be byte-copied");
    for (rid, seed) in kept {
        let obj = roots.get(rid);
        assert!(obj.0.is_page_aligned(), "large stays page-aligned");
        check_stamped(&mut k, &h, obj, big, seed);
    }
}

#[test]
fn overlapping_slide_uses_rotation_and_preserves_data() {
    let (mut k, mut h, mut roots) = setup(64 << 20);
    // A doomed small object, then a big survivor: the survivor slides down
    // by less than its own size -> overlap path.
    alloc_stamped(&mut k, &mut h, ObjShape::data_bytes(2 * PAGE_SIZE - 64), 1);
    let big = ObjShape::data_bytes(40 * PAGE_SIZE);
    let obj = alloc_stamped(&mut k, &mut h, big, 42_000);
    let rid = roots.push(obj);
    let src = obj.0;
    let mut gc = Lisp2Collector::new(GcConfig::svagc(1));
    let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
    let moved = roots.get(rid);
    assert!(moved.0 < src, "object slid down");
    assert!(src - moved.0 < 41 * PAGE_SIZE, "slide smaller than object");
    assert_eq!(stats.swapped_objects, 1);
    check_stamped(&mut k, &h, moved, big, 42_000);
}

#[test]
fn overlap_opt_disabled_falls_back_to_memmove() {
    let (mut k, mut h, mut roots) = setup(64 << 20);
    alloc_stamped(&mut k, &mut h, ObjShape::data_bytes(PAGE_SIZE), 1);
    let big = ObjShape::data_bytes(40 * PAGE_SIZE);
    let obj = alloc_stamped(&mut k, &mut h, big, 5_000);
    let rid = roots.push(obj);
    let mut gc = Lisp2Collector::new(GcConfig::svagc(1).with_overlap(false));
    let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
    assert_eq!(stats.swapped_objects, 0);
    assert!(stats.memmove_bytes > 0);
    check_stamped(&mut k, &h, roots.get(rid), big, 5_000);
}

#[test]
fn second_gc_moves_nothing() {
    let (mut k, mut h, mut roots) = setup(16 << 20);
    for i in 0..50u64 {
        let obj = alloc_stamped(&mut k, &mut h, ObjShape::data(16), i);
        if i % 2 == 0 {
            roots.push(obj);
        }
    }
    let mut gc = Lisp2Collector::new(GcConfig::svagc(2));
    gc.collect(&mut k, &mut h, &mut roots).unwrap();
    let stats2 = gc.collect(&mut k, &mut h, &mut roots).unwrap();
    assert_eq!(stats2.moved_objects, 0, "already compacted");
    assert_eq!(stats2.dead_objects, 0);
}

#[test]
fn allocation_succeeds_after_reclaim() {
    let (mut k, mut h, mut roots) = setup(1 << 20);
    let shape = ObjShape::data(1024);
    // Fill the heap with garbage.
    while h.alloc(&mut k, CORE, shape).is_ok() {}
    let mut gc = Lisp2Collector::new(GcConfig::svagc(2));
    gc.collect(&mut k, &mut h, &mut roots).unwrap();
    assert_eq!(h.used_bytes(), 0, "everything was garbage");
    let obj = alloc_stamped(&mut k, &mut h, shape, 77);
    check_stamped(&mut k, &h, obj, shape, 77);
}

#[test]
fn svagc_and_memmove_produce_identical_layouts() {
    // The two variants must compact to byte-identical heaps — SwapVA is a
    // pure mechanism change.
    let run = |cfg: GcConfig| {
        let (mut k, mut h, mut roots) = setup(64 << 20);
        let mut layout = Vec::new();
        for i in 0..30u64 {
            let shape = if i % 4 == 0 {
                ObjShape::data_bytes(11 * PAGE_SIZE)
            } else {
                ObjShape::data(100)
            };
            let obj = alloc_stamped(&mut k, &mut h, shape, i * 10);
            if i % 2 == 0 {
                roots.push(obj);
            }
        }
        let mut gc = Lisp2Collector::new(cfg);
        gc.collect(&mut k, &mut h, &mut roots).unwrap();
        for r in roots.iter_live() {
            layout.push(r.0.get());
        }
        (layout, h.top().get())
    };
    let (layout_swap, top_swap) = run(GcConfig::svagc(4));
    let (layout_move, top_move) = run(GcConfig::lisp2_memmove(4));
    assert_eq!(layout_swap, layout_move);
    assert_eq!(top_swap, top_move);
}

#[test]
fn mixed_sizes_many_cycles_remain_consistent() {
    let (mut k, mut h, mut roots) = setup(2 << 20);
    let mut gc = Lisp2Collector::new(GcConfig::svagc(4));
    let mut live: Vec<(svagc_heap::RootId, ObjShape, u64)> = Vec::new();
    let mut seed = 0u64;
    for round in 0..5 {
        // Drop half the live set.
        for (i, (rid, _, _)) in live.iter().enumerate() {
            if i % 2 == 0 {
                roots.set(*rid, ObjRef::NULL);
            }
        }
        live = live
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, x)| *x)
            .collect();
        // Allocate a new mixed generation, GC on demand.
        for i in 0..40u64 {
            let shape = match i % 5 {
                0 => ObjShape::data_bytes(10 * PAGE_SIZE + 512),
                1 => ObjShape::data(700),
                _ => ObjShape::data(48),
            };
            seed += 10_000;
            let obj = loop {
                match h.alloc(&mut k, CORE, shape) {
                    Ok((o, _)) => break o,
                    Err(svagc_heap::HeapError::NeedGc { .. }) => {
                        gc.collect(&mut k, &mut h, &mut roots).unwrap();
                    }
                    Err(e) => panic!("round {round}: {e}"),
                }
            };
            for w in 0..shape.data_words as u64 {
                h.write_data(&mut k, CORE, obj, 0, w, seed + w).unwrap();
            }
            live.push((roots.push(obj), shape, seed));
        }
        // Verify everything still live.
        for (rid, shape, s) in &live {
            check_stamped(&mut k, &h, roots.get(*rid), *shape, *s);
        }
    }
    assert!(gc.log.count() >= 1, "GC must have run at least once");
}
