//! End-to-end tests of the generational subsystem: scavenges preserve
//! exactly the live young graph, SwapVA promotion is functionally
//! identical to memmove promotion, and minor + full collections compose.

use svagc_core::{GcConfig, Lisp2Collector, MinorConfig, MinorGc};
use svagc_core::GcError;
use svagc_heap::{GenHeap, HeapError, ObjRef, ObjShape, RootSet};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::MachineConfig;
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);

fn setup(old_mb: u64, eden_mb: u64) -> (Kernel, GenHeap, RootSet) {
    let mut k = Kernel::with_bytes(
        MachineConfig::xeon_gold_6130(),
        (old_mb + eden_mb + 8) << 20,
    );
    let gh = GenHeap::new(&mut k, Asid(1), old_mb << 20, eden_mb << 20, 10).unwrap();
    (k, gh, RootSet::new())
}

fn alloc_young_stamped(
    k: &mut Kernel,
    gh: &mut GenHeap,
    shape: ObjShape,
    seed: u64,
) -> ObjRef {
    let (obj, _) = gh.alloc_young(k, CORE, shape).unwrap();
    gh.old
        .write_data(k, CORE, obj, shape.num_refs as u64, 0, seed)
        .unwrap();
    if shape.data_words > 1 {
        gh.old
            .write_data(
                k,
                CORE,
                obj,
                shape.num_refs as u64,
                shape.data_words as u64 - 1,
                seed + 1,
            )
            .unwrap();
    }
    obj
}

fn check_stamped(k: &mut Kernel, gh: &GenHeap, obj: ObjRef, shape: ObjShape, seed: u64) {
    let (v, _) = gh
        .old
        .read_data(k, CORE, obj, shape.num_refs as u64, 0)
        .unwrap();
    assert_eq!(v, seed);
    if shape.data_words > 1 {
        let (w, _) = gh
            .old
            .read_data(k, CORE, obj, shape.num_refs as u64, shape.data_words as u64 - 1)
            .unwrap();
        assert_eq!(w, seed + 1);
    }
}

#[test]
fn scavenge_promotes_live_and_drops_dead() {
    for cfg in [MinorConfig::svagc(4), MinorConfig::memmove(4)] {
        let (mut k, mut gh, mut roots) = setup(32, 4);
        let shape = ObjShape::data(64);
        let mut kept = Vec::new();
        for i in 0..100u64 {
            let obj = alloc_young_stamped(&mut k, &mut gh, shape, i * 10);
            if i % 4 == 0 {
                kept.push((roots.push(obj), i * 10));
            }
        }
        let mut gc = MinorGc::new(cfg);
        let stats = gc.collect(&mut k, &mut gh, &mut roots).unwrap();
        assert_eq!(stats.promoted_objects, 25);
        assert_eq!(stats.dead_young, 75);
        assert_eq!(gh.eden_used(), 0, "eden wiped");
        assert_eq!(gh.old.object_count(), 25);
        for (rid, seed) in kept {
            let obj = roots.get(rid);
            assert!(gh.in_old(obj.0), "survivor promoted to old gen");
            check_stamped(&mut k, &gh, obj, shape, seed);
        }
    }
}

#[test]
fn large_survivors_promote_by_pte_swap() {
    let (mut k, mut gh, mut roots) = setup(64, 16);
    let big = ObjShape::data_bytes(12 * PAGE_SIZE);
    let mut kept = Vec::new();
    for i in 0..16u64 {
        let obj = alloc_young_stamped(&mut k, &mut gh, big, i * 1000);
        if i % 2 == 0 {
            kept.push((roots.push(obj), i * 1000));
        }
    }
    let copied_before = k.perf.bytes_copied;
    let mut gc = MinorGc::new(MinorConfig::svagc(4));
    let stats = gc.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(stats.promoted_objects, 8);
    assert_eq!(stats.swapped_objects, 8, "all large: all swapped");
    assert_eq!(k.perf.bytes_copied, copied_before, "zero-copy promotion");
    for (rid, seed) in kept {
        let obj = roots.get(rid);
        assert!(obj.0.is_page_aligned());
        check_stamped(&mut k, &gh, obj, big, seed);
    }
}

#[test]
fn remembered_set_finds_old_to_young_edges() {
    let (mut k, mut gh, mut roots) = setup(32, 4);
    // An old holder points at a young object; nothing else keeps it alive.
    let (holder, _) = gh.old.alloc(&mut k, CORE, ObjShape::with_refs(1, 4)).unwrap();
    roots.push(holder);
    let young = alloc_young_stamped(&mut k, &mut gh, ObjShape::data(16), 4242);
    gh.write_ref_barrier(&mut k, CORE, holder, 0, young).unwrap();
    // Plus a genuinely dead young object.
    alloc_young_stamped(&mut k, &mut gh, ObjShape::data(16), 9999);

    let mut gc = MinorGc::new(MinorConfig::svagc(2));
    let stats = gc.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(stats.promoted_objects, 1, "card scan kept the young target");
    assert_eq!(stats.dead_young, 1);
    assert!(stats.scanned_cards >= 1);
    // The holder's field now points at the promoted copy.
    let (tgt, _) = gh.old.read_ref(&mut k, CORE, holder, 0).unwrap();
    assert!(gh.in_old(tgt.0));
    check_stamped(&mut k, &gh, tgt, ObjShape::data(16), 4242);
    // Remembered set is clean afterwards.
    assert_eq!(gh.cards.dirty_count(), 0);
}

#[test]
fn young_graph_with_internal_refs_survives() {
    let (mut k, mut gh, mut roots) = setup(32, 4);
    // Chain: root -> a -> b -> c, all young.
    let shape = ObjShape::with_refs(1, 4);
    let c = alloc_young_stamped(&mut k, &mut gh, shape, 30);
    let b = alloc_young_stamped(&mut k, &mut gh, shape, 20);
    let a = alloc_young_stamped(&mut k, &mut gh, shape, 10);
    gh.write_ref_barrier(&mut k, CORE, a, 0, b).unwrap();
    gh.write_ref_barrier(&mut k, CORE, b, 0, c).unwrap();
    let rid = roots.push(a);
    let mut gc = MinorGc::new(MinorConfig::svagc(2));
    let stats = gc.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(stats.promoted_objects, 3);
    // Walk the promoted chain.
    let mut cur = roots.get(rid);
    for seed in [10u64, 20, 30] {
        assert!(gh.in_old(cur.0));
        check_stamped(&mut k, &gh, cur, shape, seed);
        let (next, _) = gh.old.read_ref(&mut k, CORE, cur, 0).unwrap();
        cur = next;
    }
    assert!(cur.is_null());
}

#[test]
fn swapva_and_memmove_promotion_identical_layouts() {
    let run = |cfg: MinorConfig| {
        let (mut k, mut gh, mut roots) = setup(64, 16);
        for i in 0..40u64 {
            let shape = if i % 3 == 0 {
                ObjShape::data_bytes(11 * PAGE_SIZE)
            } else {
                ObjShape::data(100)
            };
            let obj = alloc_young_stamped(&mut k, &mut gh, shape, i);
            if i % 2 == 0 {
                roots.push(obj);
            }
        }
        let mut gc = MinorGc::new(cfg);
        gc.collect(&mut k, &mut gh, &mut roots).unwrap();
        roots.iter_live().map(|r| r.0.get()).collect::<Vec<_>>()
    };
    assert_eq!(run(MinorConfig::svagc(4)), run(MinorConfig::memmove(4)));
}

#[test]
fn promotion_failure_aborts_cleanly_before_mutating() {
    let (mut k, mut gh, mut roots) = setup(1, 4);
    // More live young data than the old generation can hold.
    let shape = ObjShape::data_bytes(256 << 10);
    for i in 0..8u64 {
        let obj = alloc_young_stamped(&mut k, &mut gh, shape, i);
        roots.push(obj);
    }
    let old_count = gh.old.object_count();
    let mut gc = MinorGc::new(MinorConfig::svagc(2));
    match gc.collect(&mut k, &mut gh, &mut roots) {
        Err(GcError::Heap(HeapError::NeedGc { .. })) => {}
        other => panic!("expected promotion failure, got {other:?}"),
    }
    // Nothing was promoted, eden untouched, roots still young + intact.
    assert_eq!(gh.old.object_count(), old_count);
    assert!(gh.eden_used() > 0);
    for (i, r) in roots.iter_live().enumerate() {
        assert!(gh.in_young(r.0));
        check_stamped(&mut k, &gh, r, shape, i as u64);
    }
}

#[test]
fn minor_then_full_gc_compose() {
    let (mut k, mut gh, mut roots) = setup(48, 8);
    let shape = ObjShape::data_bytes(64 << 10);
    let mut gen0 = Vec::new();
    // Two scavenge generations of survivors...
    let mut minor = MinorGc::new(MinorConfig::svagc(4));
    for round in 0..2u64 {
        for i in 0..40u64 {
            let obj = alloc_young_stamped(&mut k, &mut gh, shape, round * 1000 + i);
            if i % 2 == 0 {
                gen0.push((roots.push(obj), round * 1000 + i));
            }
        }
        minor.collect(&mut k, &mut gh, &mut roots).unwrap();
    }
    assert_eq!(gh.old.object_count(), 40);
    // ...then kill half the promoted objects and run a FULL collection on
    // the old generation with the regular SVAGC collector.
    for (i, (rid, _)) in gen0.iter().enumerate() {
        if i % 2 == 1 {
            roots.set(*rid, ObjRef::NULL);
        }
    }
    let mut full = Lisp2Collector::new(GcConfig::svagc(4));
    let stats = full
        .collect(&mut k, &mut gh.old, &mut roots)
        .unwrap();
    assert_eq!(stats.live_objects, 20);
    for (i, (rid, seed)) in gen0.iter().enumerate() {
        if i % 2 == 0 {
            check_stamped(&mut k, &gh, roots.get(*rid), shape, *seed);
        }
    }
    // And the nursery still works after the full GC.
    let obj = alloc_young_stamped(&mut k, &mut gh, shape, 777_777);
    roots.push(obj);
    minor.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(minor.log.last().unwrap().promoted_objects, 1);
}

#[test]
fn swapva_scavenge_beats_memmove_on_large_young_objects() {
    // The Table I row-2 claim, quantified: a nursery full of large
    // objects scavenges much faster with SwapVA+aggregation.
    let run = |cfg: MinorConfig| {
        let (mut k, mut gh, mut roots) = setup(128, 32);
        let big = ObjShape::data_bytes(16 * PAGE_SIZE);
        for i in 0..200u64 {
            let obj = alloc_young_stamped(&mut k, &mut gh, big, i);
            if i % 2 == 0 {
                roots.push(obj);
            }
        }
        let mut gc = MinorGc::new(cfg);
        gc.collect(&mut k, &mut gh, &mut roots).unwrap();
        gc.total_pause()
    };
    let swap = run(MinorConfig::svagc(4));
    let mm = run(MinorConfig::memmove(4));
    assert!(
        swap.get() * 2 < mm.get(),
        "SwapVA scavenge {swap} should be <50% of memmove {mm}"
    );
}

#[test]
fn full_collect_with_live_nursery_preserves_cross_space_refs() {
    use svagc_core::full_collect_generational;
    let (mut k, mut gh, mut roots) = setup(32, 4);
    // Old objects: some garbage, some live, one referenced ONLY from a
    // young holder.
    let shape = ObjShape::with_refs(1, 8);
    let (old_live, _) = gh.old.alloc(&mut k, CORE, shape).unwrap();
    gh.old.write_data(&mut k, CORE, old_live, 1, 0, 111).unwrap();
    roots.push(old_live);
    let (old_garbage, _) = gh.old.alloc(&mut k, CORE, shape).unwrap();
    let _ = old_garbage;
    let (old_young_held, _) = gh.old.alloc(&mut k, CORE, shape).unwrap();
    gh.old.write_data(&mut k, CORE, old_young_held, 1, 0, 222).unwrap();
    // Young holder points at it; young holder itself is rooted.
    let young = alloc_young_stamped(&mut k, &mut gh, shape, 333);
    gh.write_ref_barrier(&mut k, CORE, young, 0, old_young_held).unwrap();
    roots.push(young);
    // And an old object pointing at a young one (remembered set entry that
    // must survive the rebuild).
    let young2 = alloc_young_stamped(&mut k, &mut gh, shape, 444);
    gh.write_ref_barrier(&mut k, CORE, old_live, 0, young2).unwrap();

    let mut full = Lisp2Collector::new(GcConfig::svagc(4));
    let stats = full_collect_generational(&mut k, &mut gh, &mut roots, &mut full).unwrap();
    // old_live + old_young_held survive; old_garbage reclaimed.
    assert_eq!(stats.live_objects, 2);
    // The young holder's ref was updated to the moved old object.
    let (tgt, _) = gh.old.read_ref(&mut k, CORE, young, 0).unwrap();
    assert!(gh.in_old(tgt.0));
    let (v, _) = gh.old.read_data(&mut k, CORE, tgt, 1, 0).unwrap();
    assert_eq!(v, 222);
    // The old->young edge survived and the remembered set was rebuilt.
    let moved_old_live = roots.get(svagc_heap::RootId(0));
    let (y2, _) = gh.old.read_ref(&mut k, CORE, moved_old_live, 0).unwrap();
    assert!(gh.in_young(y2.0));
    check_stamped(&mut k, &gh, y2, shape, 444);
    assert!(gh.cards.is_dirty(moved_old_live.ref_field_va(0)));
    // A subsequent scavenge still finds young2 through the rebuilt cards.
    let mut minor = MinorGc::new(MinorConfig::svagc(2));
    let ms = minor.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(ms.promoted_objects, 2, "young holder + young2");
    let (y2_after, _) = gh.old.read_ref(&mut k, CORE, moved_old_live, 0).unwrap();
    assert!(gh.in_old(y2_after.0));
    check_stamped(&mut k, &gh, y2_after, shape, 444);
}

#[test]
fn promotion_failure_then_full_gc_then_retry_succeeds() {
    use svagc_core::full_collect_generational;
    let (mut k, mut gh, mut roots) = setup(4, 2);
    let shape = ObjShape::data_bytes(128 << 10);
    // Fill the old generation with garbage.
    while gh.old.alloc(&mut k, CORE, shape).is_ok() {}
    // Live young data that cannot be promoted into the full old gen.
    let mut kept = Vec::new();
    for i in 0..8u64 {
        let obj = alloc_young_stamped(&mut k, &mut gh, shape, i * 7);
        kept.push((roots.push(obj), i * 7));
    }
    let mut minor = MinorGc::new(MinorConfig::svagc(2));
    assert!(matches!(
        minor.collect(&mut k, &mut gh, &mut roots),
        Err(GcError::Heap(HeapError::NeedGc { .. }))
    ));
    // Full GC reclaims the old garbage; the scavenge then succeeds.
    let mut full = Lisp2Collector::new(GcConfig::svagc(2));
    full_collect_generational(&mut k, &mut gh, &mut roots, &mut full).unwrap();
    let stats = minor.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(stats.promoted_objects, 8);
    for (rid, seed) in kept {
        let obj = roots.get(rid);
        assert!(gh.in_old(obj.0));
        check_stamped(&mut k, &gh, obj, shape, seed);
    }
}
