//! Regression tests pinning two minor-GC accounting fixes:
//!
//! 1. **Card-scan dedupe** — an old object overlapping several dirty cards
//!    used to be scanned once per card, double-pushing its young-pointing
//!    slots into the adjust list and double-charging scan cycles.
//! 2. **Promotion rebooking** — the two `swapped_objects` rebooking sites
//!    (mid-loop batch flush and the final partial batch) operate on
//!    disjoint batches, so `swapped + fallbacks` must always equal the
//!    number of swap-attempted survivors, even when both sites see
//!    fallbacks within one scavenge.

use svagc_core::{MinorConfig, MinorGc};
use svagc_heap::{GenHeap, ObjShape, RootSet, CARD_BYTES};
use svagc_kernel::{CoreId, FaultConfig, FaultPlan, Kernel};
use svagc_metrics::MachineConfig;
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);

fn setup(old_mb: u64, eden_mb: u64) -> (Kernel, GenHeap, RootSet) {
    let mut k = Kernel::with_bytes(
        MachineConfig::xeon_gold_6130(),
        (old_mb + eden_mb + 8) << 20,
    );
    let gh = GenHeap::new(&mut k, Asid(1), old_mb << 20, eden_mb << 20, 10).unwrap();
    (k, gh, RootSet::new())
}

#[test]
fn object_spanning_two_dirty_cards_is_scanned_once() {
    let (mut k, mut gh, mut roots) = setup(32, 8);
    // One old holder whose reference fields span well over two cards
    // (160 refs x 8 B = 1280 B > 2 x 512 B cards).
    let (holder, _) = gh
        .old
        .alloc(&mut k, CORE, ObjShape::with_refs(160, 2))
        .unwrap();
    let (young_a, _) = gh.alloc_young(&mut k, CORE, ObjShape::data(4)).unwrap();
    let (young_b, _) = gh.alloc_young(&mut k, CORE, ObjShape::data(4)).unwrap();
    // Dirty the first and the last field's cards: both overlap `holder`.
    gh.write_ref_barrier(&mut k, CORE, holder, 0, young_a).unwrap();
    gh.write_ref_barrier(&mut k, CORE, holder, 159, young_b).unwrap();
    assert!(
        holder.ref_field_va(159) - holder.ref_field_va(0) >= 2 * CARD_BYTES,
        "the two dirtied fields must land on distinct cards"
    );
    assert_eq!(gh.cards.dirty_count(), 2);

    let mut gc = MinorGc::new(MinorConfig::svagc(2));
    let stats = gc.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(stats.scanned_cards, 2);
    assert_eq!(
        stats.scanned_objects, 1,
        "a holder overlapping both dirty cards must be scanned exactly once"
    );
    // Both young targets survived via the remembered set and the holder's
    // fields were forwarded into the old generation (adjusted once each).
    assert_eq!(stats.promoted_objects, 2);
    let (a, _) = gh.old.read_ref(&mut k, CORE, holder, 0).unwrap();
    let (b, _) = gh.old.read_ref(&mut k, CORE, holder, 159).unwrap();
    assert!(gh.in_old(a.0) && gh.in_old(b.0));
    assert_ne!(a, b);
    assert_ne!(a, young_a, "field 0 must point at the promoted copy");
}

#[test]
fn dedup_only_skips_already_scanned_prefixes() {
    // Two separate holders on two separate dirty cards must both still be
    // scanned — the dedupe only suppresses re-visits, not later objects.
    let (mut k, mut gh, mut roots) = setup(32, 8);
    let mut holders = Vec::new();
    for _ in 0..2 {
        // Pad between holders so each sits on its own card.
        gh.old.alloc(&mut k, CORE, ObjShape::data(128)).unwrap();
        let (h, _) = gh.old.alloc(&mut k, CORE, ObjShape::with_refs(2, 2)).unwrap();
        holders.push(h);
    }
    for &h in &holders {
        let (y, _) = gh.alloc_young(&mut k, CORE, ObjShape::data(4)).unwrap();
        gh.write_ref_barrier(&mut k, CORE, h, 0, y).unwrap();
    }
    assert_eq!(gh.cards.dirty_count(), 2);
    let mut gc = MinorGc::new(MinorConfig::svagc(2));
    let stats = gc.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(stats.promoted_objects, 2);
    // Each dirty card's scan starts from the object at or before the card,
    // so the data padding ahead of a holder may be inspected too — but
    // every holder is inspected and none twice.
    assert!(stats.scanned_objects >= 2);
    assert!(stats.scanned_objects <= 4);
}

#[test]
fn promotion_rebooking_pins_swapped_plus_fallbacks() {
    // 16-page survivors with aggregation cap 4: several mid-loop batch
    // flushes plus a final partial batch in the same scavenge. Permanent
    // faults (EINVAL/ENOMEM) demote a deterministic subset to memmove at
    // both rebooking sites; the counter must rebook each attempt exactly
    // once: swapped + fallbacks == attempted.
    let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 512 << 20);
    k.set_fault_plan(Some(FaultPlan::new(FaultConfig::permanent_only(0.4, 77))));
    let mut gh = GenHeap::new(&mut k, Asid(1), 256 << 20, 96 << 20, 10).unwrap();
    let mut roots = RootSet::new();
    let shape = ObjShape::data_bytes(16 * PAGE_SIZE - 16);
    let mut live = 0u64;
    for i in 0..42u64 {
        let (obj, _) = gh.alloc_young(&mut k, CORE, shape).unwrap();
        if i % 2 == 0 {
            roots.push(obj);
            live += 1;
        }
    }
    let mut cfg = MinorConfig::svagc(4);
    cfg.aggregation = Some(4); // live = 21 -> 5 full flushes + a final batch of 1
    let mut gc = MinorGc::new(cfg);
    let stats = gc.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(stats.promoted_objects, live);
    assert!(
        stats.swap_fallback_objects > 0,
        "0.4 permanent-fault rate over {live} swaps must demote some promotions"
    );
    assert!(
        stats.swapped_objects < live,
        "a fallback must rebook away from swapped_objects"
    );
    assert_eq!(
        stats.swapped_objects + stats.swap_fallback_objects,
        live,
        "every large survivor is swap-attempted exactly once; the two \
         rebooking sites must not double-subtract"
    );
}

#[test]
fn fault_free_scavenge_books_every_large_survivor_as_swapped() {
    let (mut k, mut gh, mut roots) = setup(256, 96);
    let shape = ObjShape::data_bytes(16 * PAGE_SIZE - 16);
    for i in 0..20u64 {
        let (obj, _) = gh.alloc_young(&mut k, CORE, shape).unwrap();
        if i % 2 == 0 {
            roots.push(obj);
        }
    }
    let mut cfg = MinorConfig::svagc(4);
    cfg.aggregation = Some(4);
    let mut gc = MinorGc::new(cfg);
    let stats = gc.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert_eq!(stats.promoted_objects, 10);
    assert_eq!(stats.swapped_objects, 10);
    assert_eq!(stats.swap_fallback_objects, 0);
}
