//! End-to-end tests of the work-packet scheduler (`SchedulerKind::Packets`):
//! heap effects identical to the barrier pipeline, schedules deterministic,
//! and bucket overlap strictly beating the four-barrier pipeline on skewed
//! work.

use svagc_core::{GcConfig, Lisp2Collector, SchedulerKind};
use svagc_heap::{Heap, HeapConfig, HeapVerifier, ObjRef, ObjShape, RootSet};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::MachineConfig;
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);

fn setup(heap_bytes: u64) -> (Kernel, Heap, RootSet) {
    let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), heap_bytes + (4 << 20));
    let h = Heap::new(&mut k, Asid(1), HeapConfig::new(heap_bytes)).unwrap();
    (k, h, RootSet::new())
}

fn alloc_stamped(k: &mut Kernel, h: &mut Heap, shape: ObjShape, seed: u64) -> ObjRef {
    let (obj, _) = h.alloc(k, CORE, shape).unwrap();
    for i in 0..shape.data_words as u64 {
        h.write_data(k, CORE, obj, shape.num_refs as u64, i, seed + i)
            .unwrap();
    }
    obj
}

/// A mixed workload: linked ref-heavy smalls, rooted large data objects,
/// interleaved garbage so everything slides.
fn build_mixed(k: &mut Kernel, h: &mut Heap, roots: &mut RootSet) {
    let ref_shape = ObjShape::with_refs(8, 16);
    let mut smalls = Vec::new();
    for i in 0..60u64 {
        let obj = alloc_stamped(k, h, ref_shape, i * 100);
        smalls.push(obj);
        if i % 4 == 0 {
            roots.push(obj);
        }
        // Garbage in between forces real sliding.
        alloc_stamped(k, h, ObjShape::data(48), 900_000 + i);
    }
    for (i, &obj) in smalls.iter().enumerate() {
        for r in 0..8usize {
            h.write_ref(k, CORE, obj, r as u64, smalls[(i + r + 1) % smalls.len()])
                .unwrap();
        }
    }
    for i in 0..8u64 {
        let big = alloc_stamped(k, h, ObjShape::data_bytes(12 * PAGE_SIZE), i * 1_000_000);
        if i % 2 == 0 {
            roots.push(big);
        }
        alloc_stamped(k, h, ObjShape::data_bytes(4 * PAGE_SIZE), 700_000 + i);
    }
}

/// Run one GC under `cfg` on the mixed workload; return (content hash,
/// root layout, heap top, stats).
fn run_mixed(cfg: GcConfig) -> (u64, Vec<u64>, u64, svagc_core::GcCycleStats) {
    let (mut k, mut h, mut roots) = setup(32 << 20);
    build_mixed(&mut k, &mut h, &mut roots);
    let mut gc = Lisp2Collector::new(cfg);
    let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
    let hash = HeapVerifier::new().content_hash(&k, &mut h);
    let layout: Vec<u64> = roots.iter_live().map(|r| r.0.get()).collect();
    (hash, layout, h.top().get(), stats)
}

#[test]
fn packets_and_barrier_produce_identical_heaps() {
    for base in [GcConfig::svagc(4), GcConfig::lisp2_memmove(4)] {
        let (hb, lb, tb, _) = run_mixed(base.with_verify_phases(true));
        let (hp, lp, tp, sp) = run_mixed(
            base.with_verify_phases(true)
                .with_scheduler(SchedulerKind::Packets),
        );
        assert_eq!(hb, hp, "content hash must not depend on the scheduler");
        assert_eq!(lb, lp, "root layout must not depend on the scheduler");
        assert_eq!(tb, tp);
        assert!(sp.sched_packets > 0, "packet counters populated");
    }
}

#[test]
fn packet_schedule_is_deterministic_across_runs() {
    let cfg = GcConfig::svagc(4).with_scheduler(SchedulerKind::Packets);
    let (h1, l1, t1, s1) = run_mixed(cfg);
    let (h2, l2, t2, s2) = run_mixed(cfg);
    assert_eq!(h1, h2);
    assert_eq!(l1, l2);
    assert_eq!(t1, t2);
    assert_eq!(s1.phases.mark, s2.phases.mark);
    assert_eq!(s1.phases.forward, s2.phases.forward);
    assert_eq!(s1.phases.adjust, s2.phases.adjust);
    assert_eq!(s1.phases.compact, s2.phases.compact);
    assert_eq!(s1.phases.shootdown, s2.phases.shootdown);
    assert_eq!(s1.sched_packets, s2.sched_packets);
    assert_eq!(s1.sched_steals, s2.sched_steals);
    assert_eq!(s1.sched_steal_cycles, s2.sched_steal_cycles);
}

#[test]
fn static_dispatch_schedule_is_deterministic_across_runs() {
    // Pins the four `dispatch_static(Cycles::ZERO)` sites in the barrier
    // pipeline (`work_stealing: false`, the Shenandoah-style static
    // partition): each phase's round-robin cursor starts at zero — fresh
    // pool or explicit reset() — so the whole schedule is a pure function
    // of the cycle's input and repeated runs agree bit for bit.
    let cfg = GcConfig::svagc(4).with_stealing(false);
    let (h1, l1, t1, s1) = run_mixed(cfg);
    let (h2, l2, t2, s2) = run_mixed(cfg);
    assert_eq!(h1, h2);
    assert_eq!(l1, l2);
    assert_eq!(t1, t2);
    assert_eq!(s1.phases.mark, s2.phases.mark);
    assert_eq!(s1.phases.forward, s2.phases.forward);
    assert_eq!(s1.phases.adjust, s2.phases.adjust);
    assert_eq!(s1.phases.compact, s2.phases.compact);
    assert_eq!(s1.phases.shootdown, s2.phases.shootdown);
}

#[test]
fn packets_overlap_beats_barrier_on_skewed_work() {
    // Skew by construction: the low half of the heap is big rooted data
    // objects whose compaction is swap-heavy and adjust-free, the high
    // half is ref-dense smalls whose adjust dominates. The big compact
    // batches have no adjust dependencies (nothing reads forwarding words
    // in their destination region), so the packet scheduler starts them
    // right after forwarding while the ref-dense adjust packets are still
    // running; the barrier pipeline stalls them behind the slowest adjust
    // packet.
    let run = |kind: SchedulerKind| {
        let (mut k, mut h, mut roots) = setup(64 << 20);
        for i in 0..12u64 {
            let big = alloc_stamped(&mut k, &mut h, ObjShape::data_bytes(16 * PAGE_SIZE), i);
            roots.push(big);
            alloc_stamped(&mut k, &mut h, ObjShape::data_bytes(8 * PAGE_SIZE), 600_000 + i);
        }
        let ref_shape = ObjShape::with_refs(16, 8);
        let mut smalls = Vec::new();
        for i in 0..120u64 {
            let obj = alloc_stamped(&mut k, &mut h, ref_shape, i);
            roots.push(obj);
            smalls.push(obj);
            alloc_stamped(&mut k, &mut h, ObjShape::data(64), 500_000 + i);
        }
        for (i, &obj) in smalls.iter().enumerate() {
            for r in 0..16usize {
                h.write_ref(&mut k, CORE, obj, r as u64, smalls[(i + r + 1) % smalls.len()])
                    .unwrap();
            }
        }
        let mut gc = Lisp2Collector::new(GcConfig::svagc(4).with_scheduler(kind));
        let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
        (stats.phases.total(), HeapVerifier::new().content_hash(&k, &mut h))
    };
    let (barrier_pause, barrier_hash) = run(SchedulerKind::Barrier);
    let (packets_pause, packets_hash) = run(SchedulerKind::Packets);
    assert_eq!(barrier_hash, packets_hash, "same heap either way");
    assert!(
        packets_pause < barrier_pause,
        "packet overlap must strictly beat the barrier pipeline on skewed \
         work: packets {} >= barrier {}",
        packets_pause.get(),
        barrier_pause.get()
    );
}

#[test]
fn minor_packets_and_barrier_promote_identically() {
    use svagc_core::{MinorConfig, MinorGc};
    use svagc_heap::GenHeap;
    let run = |kind: SchedulerKind| {
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 64 << 20);
        let mut gh = GenHeap::new(&mut k, Asid(1), 32 << 20, 8 << 20, 10).unwrap();
        let mut roots = RootSet::new();
        let mut prev = ObjRef::NULL;
        for i in 0..40u64 {
            let (obj, _) = gh
                .alloc_young(&mut k, CORE, ObjShape::with_refs(2, 14))
                .unwrap();
            gh.old.write_data(&mut k, CORE, obj, 2, 0, 4_000 + i).unwrap();
            if !prev.is_null() {
                gh.old.write_ref(&mut k, CORE, obj, 0, prev).unwrap();
            }
            prev = obj;
            if i % 3 == 0 {
                roots.push(obj);
            }
            // Large survivors exercise the SwapVA promotion batches.
            if i % 8 == 0 {
                let (big, _) = gh
                    .alloc_young(&mut k, CORE, ObjShape::data_bytes(12 * PAGE_SIZE))
                    .unwrap();
                roots.push(big);
            }
        }
        let mut minor = MinorGc::new(MinorConfig::svagc(4).with_scheduler(kind));
        let stats = minor.collect(&mut k, &mut gh, &mut roots).unwrap();
        let layout: Vec<u64> = roots.iter_live().map(|r| r.0.get()).collect();
        (stats, layout, gh.old.top().get())
    };
    let (sb, lb, tb) = run(SchedulerKind::Barrier);
    let (sp, lp, tp) = run(SchedulerKind::Packets);
    assert_eq!(lb, lp, "promotion layout must not depend on the scheduler");
    assert_eq!(tb, tp);
    assert_eq!(sb.promoted_objects, sp.promoted_objects);
    assert_eq!(sb.promoted_bytes, sp.promoted_bytes);
    assert_eq!(sb.swapped_objects, sp.swapped_objects);
    assert_eq!(sb.dead_young, sp.dead_young);
    assert_eq!(sb.scanned_objects, sp.scanned_objects);
}

#[test]
fn packets_survive_repeated_cycles_with_verification() {
    let (mut k, mut h, mut roots) = setup(8 << 20);
    let mut gc = Lisp2Collector::new(
        GcConfig::svagc(4)
            .with_scheduler(SchedulerKind::Packets)
            .with_verify_phases(true),
    );
    let shape = ObjShape::with_refs(2, 32);
    for round in 0..4u64 {
        let mut prev = ObjRef::NULL;
        for i in 0..50u64 {
            let obj = alloc_stamped(&mut k, &mut h, shape, round * 10_000 + i);
            if !prev.is_null() {
                h.write_ref(&mut k, CORE, obj, 0, prev).unwrap();
            }
            prev = obj;
            if i % 5 == 0 {
                roots.push(obj);
            }
        }
        // Drop some roots, keep chains partially alive.
        let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
        assert!(stats.live_objects > 0);
        assert_eq!(stats.verify_violations, 0);
    }
}
