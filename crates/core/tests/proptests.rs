//! Property tests of the collector: for arbitrary object graphs and
//! liveness patterns, collection preserves exactly the reachable data —
//! under every collector configuration — and SVAGC compacts to the same
//! layout as the memmove variant.


#![cfg(feature = "proptest-tests")]
// Gated off by default: `proptest` is unavailable in the offline build.
// Restore the dev-dependency and run with `--features proptest-tests`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svagc_core::{GcConfig, Lisp2Collector};
use svagc_heap::{Heap, HeapConfig, ObjRef, ObjShape, RootSet};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::MachineConfig;
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);

/// A randomly generated heap population: object shapes, ref wiring, and
/// which objects are rooted.
#[derive(Debug, Clone)]
struct Population {
    shapes: Vec<(u32, u32)>, // (refs, data_words)
    /// For each object, targets of its ref fields (indices into shapes,
    /// possibly younger or older).
    targets: Vec<Vec<usize>>,
    rooted: Vec<bool>,
}

fn arb_population() -> impl Strategy<Value = Population> {
    (2usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shapes = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        let mut rooted = Vec::with_capacity(n);
        for _ in 0..n {
            let refs = rng.gen_range(0..4u32);
            let data = if rng.gen_bool(0.2) {
                // Large object (>= 10 pages).
                rng.gen_range((10 * PAGE_SIZE / 8) as u32..(14 * PAGE_SIZE / 8) as u32)
            } else {
                rng.gen_range(1..300u32)
            };
            shapes.push((refs, data));
            targets.push((0..refs).map(|_| rng.gen_range(0..n)).collect());
            rooted.push(rng.gen_bool(0.4));
        }
        // Keep at least one root so the heap isn't trivially empty.
        rooted[0] = true;
        let _ = seed;
        Population {
            shapes,
            targets,
            rooted,
        }
    })
}

/// Build the population in a fresh heap; returns reachable indices and the
/// stamps of each object.
fn build(
    pop: &Population,
    cfg: GcConfig,
) -> (Kernel, Heap, RootSet, Lisp2Collector, Vec<ObjRef>) {
    let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 48 << 20);
    let mut h = Heap::new(&mut k, Asid(1), HeapConfig::new(32 << 20)).unwrap();
    let mut roots = RootSet::new();
    let mut objs = Vec::new();
    for (i, &(refs, data)) in pop.shapes.iter().enumerate() {
        let shape = ObjShape::with_refs(refs, data);
        let (obj, _) = h.alloc(&mut k, CORE, shape).unwrap();
        // Stamp: first/last data words carry the object index (a
        // single-word object only gets the head stamp).
        h.write_data(&mut k, CORE, obj, refs as u64, 0, 0xA000 + i as u64)
            .unwrap();
        if data > 1 {
            h.write_data(&mut k, CORE, obj, refs as u64, data as u64 - 1, 0xB000 + i as u64)
                .unwrap();
        }
        objs.push(obj);
    }
    // Wire refs (all objects exist now).
    for (i, tgts) in pop.targets.iter().enumerate() {
        for (slot, &t) in tgts.iter().enumerate() {
            h.write_ref(&mut k, CORE, objs[i], slot as u64, objs[t]).unwrap();
        }
    }
    for (i, &r) in pop.rooted.iter().enumerate() {
        if r {
            roots.push(objs[i]);
        }
    }
    (k, h, roots, Lisp2Collector::new(cfg), objs)
}

/// Host-side reachability over the population description.
fn reachable(pop: &Population) -> Vec<bool> {
    let n = pop.shapes.len();
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|&i| pop.rooted[i]).collect();
    for &s in &stack {
        seen[s] = true;
    }
    while let Some(i) = stack.pop() {
        for &t in &pop.targets[i] {
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    seen
}

/// Walk the post-GC graph from the roots and check every stamp.
fn verify_graph(
    k: &mut Kernel,
    h: &Heap,
    roots: &RootSet,
    pop: &Population,
) -> Result<u64, TestCaseError> {
    let mut visited = std::collections::HashSet::new();
    let mut stack: Vec<ObjRef> = roots.iter_live().collect();
    while let Some(obj) = stack.pop() {
        if !visited.insert(obj) {
            continue;
        }
        let (hdr, _) = h.read_header(k, CORE, obj).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let refs = hdr.num_refs as u64;
        let data = hdr.size_words as u64 - 2 - refs;
        let (first, _) = h.read_data(k, CORE, obj, refs, 0).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(first >= 0xA000, "head stamp corrupted: {first:#x}");
        let idx = (first - 0xA000) as usize;
        prop_assert!(idx < pop.shapes.len(), "stamp index out of range");
        if data > 1 {
            let (last, _) = h
                .read_data(k, CORE, obj, refs, data - 1)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(last, 0xB000 + idx as u64, "tail stamp of object {}", idx);
        }
        prop_assert_eq!(hdr.num_refs, pop.shapes[idx].0);
        for r in 0..refs {
            let (tgt, _) = h.read_ref(k, CORE, obj, r).map_err(|e| TestCaseError::fail(e.to_string()))?;
            if !tgt.is_null() {
                stack.push(tgt);
            }
        }
    }
    Ok(visited.len() as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Collection keeps exactly the reachable objects, with intact data
    /// and references, under all four collector configurations.
    #[test]
    fn collection_preserves_reachable_graph(pop in arb_population()) {
        let expected: u64 = reachable(&pop).iter().map(|&b| b as u64).sum();
        for cfg in [
            GcConfig::svagc(4),
            GcConfig::lisp2_memmove(4),
            GcConfig::svagc(1).with_aggregation(None),
            GcConfig::svagc(4).with_overlap(false),
        ] {
            let (mut k, mut h, mut roots, mut gc, _) = build(&pop, cfg);
            let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
            prop_assert_eq!(stats.live_objects, expected, "live count");
            let walked = verify_graph(&mut k, &h, &roots, &pop)?;
            prop_assert_eq!(walked, expected, "reachable walk");
            // A second collection finds the same live set and moves nothing.
            let stats2 = gc.collect(&mut k, &mut h, &mut roots).unwrap();
            prop_assert_eq!(stats2.live_objects, expected);
            prop_assert_eq!(stats2.moved_objects, 0);
        }
    }

    /// SVAGC and the memmove variant compact any population to identical
    /// layouts (SwapVA is a pure mechanism change).
    #[test]
    fn layouts_identical_across_mechanisms(pop in arb_population()) {
        let run = |cfg: GcConfig| {
            let (mut k, mut h, mut roots, mut gc, _) = build(&pop, cfg);
            gc.collect(&mut k, &mut h, &mut roots).unwrap();
            let layout: Vec<u64> = roots.iter_live().map(|r| r.0.get()).collect();
            (layout, h.top().get())
        };
        let (l1, t1) = run(GcConfig::svagc(4));
        let (l2, t2) = run(GcConfig::lisp2_memmove(4));
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(t1, t2);
    }
}
