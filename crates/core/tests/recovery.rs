//! Crash-consistency acceptance suite: for every seeded crash point, the
//! post-recovery heap content hash equals **exactly** the pre-cycle or
//! post-cycle snapshot hash — never a hybrid — with the TLB
//! stale-translation oracle armed across recovery. Also proves the
//! double-crash path (a crash inside recovery itself) and the teeth of
//! the oracle (seeded log mutations must make recovery fail closed).

use svagc_core::{recover, CycleClass, GcConfig, GcError, Lisp2Collector, RecoveryError,
                RetryPolicy};
use svagc_heap::{Heap, HeapConfig, HeapVerifier, ObjRef, ObjShape, RootSet};
use svagc_kernel::{CoreId, CrashPlan, CrashPoint, FaultConfig, FaultPlan, Kernel, WalMutation};
use svagc_metrics::{MachineConfig, SimRng};
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);
const SEED: u64 = 0xC4A54;

/// A heap with enough page-aligned large objects (and refs between the
/// survivors) that a full cycle swaps several batches of PTEs.
fn build_world_with(seed: u64, wal: bool) -> (Kernel, Heap, RootSet) {
    let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 100 << 20);
    k.set_wal_enabled(wal);
    k.set_tlb_oracle(true);
    let mut h = Heap::new(&mut k, Asid(1), HeapConfig::new(96 << 20)).unwrap();
    let mut roots = RootSet::new();
    let mut rng = SimRng::seed_from_u64(seed);
    for i in 0..24u64 {
        let shape = match rng.gen_range(0..3u32) {
            0 => ObjShape::data_bytes(rng.gen_range(10..20u64) * PAGE_SIZE),
            1 => ObjShape::data(rng.gen_range(16..600u32)),
            _ => ObjShape::with_refs(2, 32),
        };
        let (obj, _) = h.alloc(&mut k, CORE, shape).unwrap();
        for w in 0..shape.data_words as u64 {
            h.write_data(&mut k, CORE, obj, shape.num_refs as u64, w, seed + i * 37 + w)
                .unwrap();
        }
        if rng.gen_bool(0.5) {
            roots.push(obj);
        }
    }
    let live: Vec<ObjRef> = roots.iter_live().collect();
    for (i, obj) in live.iter().enumerate() {
        let raw = k.vmem.read_u64(h.space(), obj.0).unwrap();
        let nrefs = svagc_heap::ObjHeader::decode(raw).num_refs;
        for r in 0..nrefs as u64 {
            h.write_ref(&mut k, CORE, *obj, r, live[(i + 1 + r as usize) % live.len()])
                .unwrap();
        }
    }
    (k, h, roots)
}

fn build_world(seed: u64) -> (Kernel, Heap, RootSet) {
    build_world_with(seed, true)
}

fn gc_config() -> GcConfig {
    GcConfig::svagc(4).with_verify_phases(true)
}

/// Crash the machine at `plans`, then reboot and recover; assert the
/// recovered heap hashes bit-identically to the pre-cycle snapshot.
fn crash_and_recover_to_pre(plans: Vec<CrashPlan>, seed: u64) -> CycleClass {
    let (mut k, mut h, mut roots) = build_world(seed);
    let pre_hash = HeapVerifier::new().content_hash(&k, &mut h);
    let pre_roots = roots.snapshot();
    k.set_crash_plans(plans.clone());
    let mut gc = Lisp2Collector::new(gc_config());
    let point = match gc.collect(&mut k, &mut h, &mut roots) {
        Err(GcError::Crashed { point }) => point,
        Err(other) => panic!("{plans:?}: expected Crashed, got {other}"),
        Ok(_) => panic!("{plans:?}: the cycle committed — the crash point never fired"),
    };
    assert_eq!(k.crashed(), Some(point), "the kernel latched the crash");

    // The machine is dead: only durable state survives the reboot.
    let space = h.into_space();
    k.reboot();
    let ok = recover(&mut k, space, CORE).unwrap_or_else(|f| {
        panic!("{plans:?}: recovery refused: {}", f.error);
    });
    let mut heap = ok.heap;
    assert_eq!(
        ok.report.content_hash, pre_hash,
        "{plans:?}: recovered heap must be bit-identical to the PRE-cycle snapshot"
    );
    assert_eq!(
        HeapVerifier::new().content_hash(&k, &mut heap),
        pre_hash,
        "{plans:?}: re-hash agrees"
    );
    assert_eq!(ok.roots.snapshot(), pre_roots, "{plans:?}: roots restored");
    assert_eq!(
        k.tlb_oracle_stats().stale_hits,
        0,
        "{plans:?}: no stale translation during recovery replay"
    );
    // The recovered heap is a working heap: the next full cycle commits.
    let mut roots2 = ok.roots;
    let mut gc2 = Lisp2Collector::new(gc_config());
    gc2.collect(&mut k, &mut heap, &mut roots2)
        .unwrap_or_else(|e| panic!("{plans:?}: post-recovery cycle failed: {e}"));
    ok.report.class
}

#[test]
fn every_mid_cycle_crash_point_recovers_to_the_pre_cycle_snapshot() {
    for point in [
        CrashPoint::BeforeBatchApply,
        CrashPoint::InsideBatchApply,
        CrashPoint::AfterBatchApply,
        CrashPoint::MidIpi,
        CrashPoint::MidLogAppend,
    ] {
        let class = crash_and_recover_to_pre(vec![CrashPlan::first(point)], SEED);
        assert!(
            matches!(class, CycleClass::Torn | CycleClass::Uncommitted),
            "{point}: classified {class:?}"
        );
    }
    // Later occurrences hit different cycle positions (deeper in the
    // batch stream, the epilogue broadcast, …). Seeds are paired with
    // worlds known to offer that many firing opportunities.
    for (plan, seed) in [
        (CrashPlan::nth(CrashPoint::InsideBatchApply, 2), SEED),
        (CrashPlan::nth(CrashPoint::MidIpi, 2), SEED + 7),
        (CrashPlan::nth(CrashPoint::MidLogAppend, 3), SEED + 7),
    ] {
        crash_and_recover_to_pre(vec![plan], seed);
    }
}

#[test]
fn mid_rollback_crash_leaves_a_torn_epoch_recovery_undoes() {
    // An unrecoverable fault forces an abort; the crash kills the machine
    // partway through the in-process rollback. The WAL epoch stays open,
    // and recovery's idempotent undo finishes what the rollback started.
    let (mut k, mut h, mut roots) = build_world(SEED + 1);
    let pre_hash = HeapVerifier::new().content_hash(&k, &mut h);
    k.set_fault_plan(Some(FaultPlan::new(
        FaultConfig {
            p_transient: 0.0,
            p_invalid: 1.0,
            p_nomem: 0.0,
            p_timeout: 0.0,
            seed: 3,
        },
    )));
    k.set_crash_plans(vec![CrashPlan::nth(CrashPoint::MidRollback, 2)]);
    let mut gc = Lisp2Collector::new(
        gc_config().with_retry_policy(
            RetryPolicy::default().with_fallback_budget(Some(0)),
        ),
    );
    let err = gc.collect(&mut k, &mut h, &mut roots).unwrap_err();
    assert!(
        matches!(err, GcError::Crashed { point: CrashPoint::MidRollback }),
        "got {err}"
    );

    let space = h.into_space();
    k.reboot();
    k.set_fault_plan(None);
    let ok = recover(&mut k, space, CORE).unwrap_or_else(|f| panic!("{}", f.error));
    assert_eq!(ok.report.class, CycleClass::Torn);
    assert!(ok.report.undone_ops > 0, "recovery re-ran the undo");
    assert_eq!(ok.report.content_hash, pre_hash, "pre-cycle snapshot, bit-for-bit");
}

#[test]
fn double_crash_inside_recovery_is_restartable() {
    let (mut k, mut h, mut roots) = build_world(SEED + 2);
    let pre_hash = HeapVerifier::new().content_hash(&k, &mut h);
    // First crash mid-cycle; the second plan stays armed (crash plans are
    // durable config of the harness) and kills recovery's undo pass.
    k.set_crash_plans(vec![
        CrashPlan::first(CrashPoint::AfterBatchApply),
        CrashPlan::nth(CrashPoint::InsideRecovery, 2),
    ]);
    let mut gc = Lisp2Collector::new(gc_config());
    let err = gc.collect(&mut k, &mut h, &mut roots).unwrap_err();
    assert!(matches!(err, GcError::Crashed { .. }), "got {err}");

    let space = h.into_space();
    k.reboot();
    let failure = recover(&mut k, space, CORE).unwrap_err();
    assert!(
        matches!(
            failure.error,
            RecoveryError::Crashed { point: CrashPoint::InsideRecovery }
        ),
        "got {}",
        failure.error
    );

    // Second reboot: the undo already half-applied is re-applied from
    // scratch — pre-images are absolute, so the replay is idempotent.
    k.reboot();
    let ok = recover(&mut k, failure.space, CORE).unwrap_or_else(|f| panic!("{}", f.error));
    assert_eq!(ok.report.class, CycleClass::Torn);
    assert_eq!(ok.report.content_hash, pre_hash, "no hybrid after the double crash");
}

#[test]
fn clean_committed_log_recovers_to_the_post_cycle_snapshot() {
    let (mut k, mut h, mut roots) = build_world(SEED + 3);
    let mut gc = Lisp2Collector::new(gc_config());
    gc.collect(&mut k, &mut h, &mut roots).unwrap();
    let post_hash = HeapVerifier::new().content_hash(&k, &mut h);
    let post_roots = roots.snapshot();

    // Crash between cycles (simulated by a bare reboot): the last epoch
    // is committed, so recovery adopts the post-cycle snapshot verbatim.
    let space = h.into_space();
    k.reboot();
    let ok = recover(&mut k, space, CORE).unwrap_or_else(|f| panic!("{}", f.error));
    assert_eq!(ok.report.class, CycleClass::Committed);
    assert_eq!(ok.report.undone_ops, 0, "nothing to undo");
    assert_eq!(ok.report.content_hash, post_hash, "post-cycle snapshot, bit-for-bit");
    assert_eq!(ok.roots.snapshot(), post_roots);
}

#[test]
fn in_process_abort_resolves_the_epoch_for_recovery() {
    // An aborted-and-rolled-back cycle writes an abort record; recovery
    // after a later bare reboot classifies it resolved and adopts the
    // pre-cycle state without undoing anything. (Seed 0x7AC72 is the
    // transactions-suite world whose compaction provably attempts swaps.)
    let (mut k, mut h, mut roots) = build_world(0x7AC72);
    let pre_hash = HeapVerifier::new().content_hash(&k, &mut h);
    k.set_fault_plan(Some(FaultPlan::new(
        FaultConfig {
            p_transient: 0.0,
            p_invalid: 1.0,
            p_nomem: 0.0,
            p_timeout: 0.0,
            seed: 11,
        },
    )));
    let mut gc = Lisp2Collector::new(gc_config().with_retry_policy(
        RetryPolicy::default().with_fallback_budget(Some(0)),
    ));
    gc.collect(&mut k, &mut h, &mut roots).unwrap_err();

    let space = h.into_space();
    k.reboot();
    let ok = recover(&mut k, space, CORE).unwrap_or_else(|f| panic!("{}", f.error));
    assert_eq!(ok.report.class, CycleClass::Aborted);
    assert_eq!(ok.report.undone_ops, 0);
    assert_eq!(ok.report.content_hash, pre_hash);
}

/// Teeth: suppressing commit records (so a committed epoch masquerades as
/// torn) must make recovery fail closed once a later epoch exists — the
/// unresolved-epoch rule refuses the log instead of undoing into later
/// cycles' state.
#[test]
fn skip_commit_mutation_fails_closed_on_multi_cycle_logs() {
    let (mut k, mut h, mut roots) = build_world(SEED + 5);
    k.set_wal_mutation(Some(WalMutation::SkipCommit));
    let mut gc = Lisp2Collector::new(gc_config());
    gc.collect(&mut k, &mut h, &mut roots).unwrap();
    gc.collect(&mut k, &mut h, &mut roots).unwrap();
    assert!(k.wal_stats().commits_skipped >= 2, "mutation active");

    let space = h.into_space();
    k.reboot();
    let failure = recover(&mut k, space, CORE).unwrap_err();
    assert!(
        matches!(failure.error, RecoveryError::BadLog(_)),
        "got {}",
        failure.error
    );
}

/// Teeth: dropping an intent record makes the undo incomplete — the
/// rebuilt heap is a hybrid, and the content-hash oracle must catch it.
#[test]
fn drop_intent_mutation_is_caught_as_a_hybrid_heap() {
    let (mut k, mut h, mut roots) = build_world(SEED + 6);
    k.set_wal_mutation(Some(WalMutation::DropIntent));
    k.set_crash_plans(vec![CrashPlan::nth(CrashPoint::AfterBatchApply, 1)]);
    let mut gc = Lisp2Collector::new(gc_config());
    let err = gc.collect(&mut k, &mut h, &mut roots).unwrap_err();
    assert!(matches!(err, GcError::Crashed { .. }), "got {err}");
    assert!(k.wal_stats().intents_dropped >= 1, "mutation active");

    let space = h.into_space();
    k.reboot();
    let failure = recover(&mut k, space, CORE).unwrap_err();
    assert!(
        matches!(failure.error, RecoveryError::HybridHeap { .. }),
        "a missing intent must surface as a hybrid heap, got {}",
        failure.error
    );
}

/// A WAL-armed fault-free run commits bit-identically to a WAL-less run:
/// the logging is observationally free at the heap level.
#[test]
fn wal_logging_does_not_perturb_committed_heaps() {
    let (mut k1, mut h1, mut r1) = build_world_with(SEED + 8, true);
    let mut g1 = Lisp2Collector::new(gc_config());
    g1.collect(&mut k1, &mut h1, &mut r1).unwrap();

    let (mut k2, mut h2, mut r2) = build_world_with(SEED + 8, false);
    let mut g2 = Lisp2Collector::new(gc_config());
    g2.collect(&mut k2, &mut h2, &mut r2).unwrap();
    assert_eq!(
        HeapVerifier::new().content_hash(&k1, &mut h1),
        HeapVerifier::new().content_hash(&k2, &mut h2),
        "WAL on vs off: committed heaps identical"
    );
    assert_eq!(r1.snapshot(), r2.snapshot());
}
