//! Property tests of the virtual-time scheduler: the greedy (work-
//! stealing) dispatcher obeys the classic list-scheduling bounds, and
//! static partitioning never beats it.


#![cfg(feature = "proptest-tests")]
// Gated off by default: `proptest` is unavailable in the offline build.
// Restore the dev-dependency and run with `--features proptest-tests`.

use proptest::prelude::*;
use svagc_core::WorkerPool;
use svagc_metrics::Cycles;

proptest! {
    /// Greedy list scheduling is within the Graham bound:
    /// `makespan <= total/n + max_item`, and at least
    /// `max(total/n, max_item)` (no scheduler can beat that).
    #[test]
    fn greedy_obeys_graham_bounds(
        n in 1usize..16,
        items in proptest::collection::vec(1u64..10_000, 1..200),
    ) {
        let mut pool = WorkerPool::new(n);
        for &c in &items {
            pool.dispatch(Cycles(c));
        }
        let total: u64 = items.iter().sum();
        let max_item = *items.iter().max().unwrap();
        let makespan = pool.makespan().get();
        let lower = (total / n as u64).max(max_item);
        let upper = total / n as u64 + max_item;
        prop_assert!(makespan >= lower, "makespan {makespan} < lower {lower}");
        prop_assert!(makespan <= upper, "makespan {makespan} > upper {upper}");
        prop_assert_eq!(pool.total_work(), Cycles(total));
    }

    /// On uniform items both dispatchers balance perfectly and agree
    /// exactly; greedy additionally respects the Graham bound on any
    /// input while static round-robin can exceed it (it is what makes the
    /// Shenandoah copy-phase model slower under skew) — checked here via
    /// an explicit skew pattern rather than a (false) pairwise dominance
    /// claim: list scheduling is only a 2-approximation and specific
    /// sequences exist where round-robin happens to win.
    #[test]
    fn uniform_items_balance_identically(
        n in 1usize..8,
        rounds in 1usize..40,
        cost in 1u64..1000,
    ) {
        let mut greedy = WorkerPool::new(n);
        let mut fixed = WorkerPool::new(n);
        for _ in 0..rounds * n {
            greedy.dispatch(Cycles(cost));
            fixed.dispatch_static(Cycles(cost));
        }
        prop_assert_eq!(greedy.makespan(), fixed.makespan());
        prop_assert_eq!(greedy.makespan(), Cycles(rounds as u64 * cost));
    }

    /// Under a big-items-first skew (one giant, many small), greedy stays
    /// at the giant item's cost while static round-robin stacks small
    /// items behind it.
    #[test]
    fn static_suffers_under_head_skew(
        n in 2usize..8,
        small in proptest::collection::vec(1u64..100, 8..100),
    ) {
        let giant: u64 = small.iter().sum::<u64>() + 1;
        let mut greedy = WorkerPool::new(n);
        let mut fixed = WorkerPool::new(n);
        greedy.dispatch(Cycles(giant));
        fixed.dispatch_static(Cycles(giant));
        for &c in &small {
            greedy.dispatch(Cycles(c));
            fixed.dispatch_static(Cycles(c));
        }
        prop_assert_eq!(greedy.makespan(), Cycles(giant));
        prop_assert!(fixed.makespan() >= greedy.makespan());
    }

    /// More workers never hurt (greedy makespan is monotone in n).
    #[test]
    fn more_workers_never_hurt(
        items in proptest::collection::vec(1u64..10_000, 1..150),
    ) {
        let mut prev = u64::MAX;
        for n in [1usize, 2, 4, 8, 16] {
            let mut pool = WorkerPool::new(n);
            for &c in &items {
                pool.dispatch(Cycles(c));
            }
            let m = pool.makespan().get();
            prop_assert!(m <= prev, "n={n}: {m} > previous {prev}");
            prev = m;
        }
    }

    /// Barriers preserve total-order consistency: after a barrier every
    /// worker restarts from the same clock, so the makespan decomposes as
    /// a sum of phase makespans.
    #[test]
    fn barriers_decompose_phases(
        phase_a in proptest::collection::vec(1u64..1000, 1..50),
        phase_b in proptest::collection::vec(1u64..1000, 1..50),
    ) {
        let n = 4;
        let mut pool = WorkerPool::new(n);
        for &c in &phase_a {
            pool.dispatch(Cycles(c));
        }
        let a = pool.makespan();
        pool.barrier();
        for &c in &phase_b {
            pool.dispatch(Cycles(c));
        }
        let combined = pool.makespan();

        let mut solo = WorkerPool::new(n);
        for &c in &phase_b {
            solo.dispatch(Cycles(c));
        }
        prop_assert_eq!(combined, a + solo.makespan());
    }
}
