//! Transactional GC cycles: abort, rollback, watchdog deadlines, and the
//! degraded-mode circuit breaker — the acceptance suite.
//!
//! The central claims under test:
//!
//! 1. An **unrecoverable** mid-compaction fault (the fallback budget runs
//!    dry) aborts the cycle, and the rollback restores the heap
//!    **bit-for-bit**: `HeapVerifier::content_hash` after the abort equals
//!    the pre-GC hash exactly.
//! 2. With the circuit breaker enabled, the aborted cycle **retries
//!    degraded** within the same `collect` call (MemmoveOnly never enters
//!    the faulty SwapVA path) and commits a heap identical to a fault-free
//!    run's.
//! 3. After the configured number of clean cycles, the controller
//!    **recovers** one level per probation back to Normal.
//! 4. Watchdog deadline expiry rides the exact same abort path.

use svagc_core::{DegradePolicy, DegradedMode, GcConfig, GcError, Lisp2Collector, MinorConfig,
                MinorGc, RetryPolicy};
use svagc_heap::{GenHeap, Heap, HeapConfig, HeapVerifier, ObjRef, ObjShape, RootSet};
use svagc_kernel::{CoreId, FaultConfig, FaultPlan, Kernel};
use svagc_metrics::{MachineConfig, SimRng};
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);
const SEED: u64 = 0x7AC71;

/// Permanent-only fault mix (EINVAL/ENOMEM): no retry can absorb these.
fn permanent_only(p: f64, seed: u64) -> FaultConfig {
    FaultConfig {
        p_transient: 0.0,
        p_invalid: p / 2.0,
        p_nomem: p / 2.0,
        p_timeout: 0.0,
        seed,
    }
}

/// A strict retry policy under which any permanent fault is unrecoverable:
/// zero memmove fallbacks are tolerated per executor call.
fn strict_retry() -> RetryPolicy {
    RetryPolicy::default().with_fallback_budget(Some(0))
}

fn build_world(seed: u64) -> (Kernel, Heap, RootSet) {
    let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 100 << 20);
    let mut h = Heap::new(&mut k, Asid(1), HeapConfig::new(96 << 20)).unwrap();
    let mut roots = RootSet::new();
    let mut rng = SimRng::seed_from_u64(seed);
    for i in 0..24u64 {
        let shape = match rng.gen_range(0..3u32) {
            0 => ObjShape::data_bytes(rng.gen_range(10..20u64) * PAGE_SIZE),
            1 => ObjShape::data(rng.gen_range(16..600u32)),
            _ => ObjShape::with_refs(2, 32),
        };
        let (obj, _) = h.alloc(&mut k, CORE, shape).unwrap();
        for w in 0..shape.data_words as u64 {
            h.write_data(&mut k, CORE, obj, shape.num_refs as u64, w, seed + i * 37 + w)
                .unwrap();
        }
        if rng.gen_bool(0.5) {
            roots.push(obj);
        }
    }
    let live: Vec<ObjRef> = roots.iter_live().collect();
    for (i, obj) in live.iter().enumerate() {
        let raw = k.vmem.read_u64(h.space(), obj.0).unwrap();
        let nrefs = svagc_heap::ObjHeader::decode(raw).num_refs;
        for r in 0..nrefs as u64 {
            h.write_ref(&mut k, CORE, *obj, r, live[(i + 1 + r as usize) % live.len()])
                .unwrap();
        }
    }
    (k, h, roots)
}

/// The headline acceptance scenario: a seeded run with an injected
/// unrecoverable mid-compaction fault aborts the cycle, rolls back to the
/// exact pre-GC content hash, re-runs degraded (MemmoveOnly) within the
/// same call, commits a heap bit-identical to a fault-free run, and
/// recovers to Normal after the configured clean cycles.
#[test]
fn unrecoverable_fault_aborts_degrades_and_recovers() {
    // Reference: the same world collected fault-free.
    let (mut rk, mut rh, mut rroots) = build_world(SEED);
    let mut rgc = Lisp2Collector::new(GcConfig::svagc(4).with_verify_phases(true));
    rgc.collect(&mut rk, &mut rh, &mut rroots).unwrap();
    let reference_hash = HeapVerifier::new().content_hash(&rk, &mut rh);

    // Faulty run: every SwapVA call faults permanently, and the strict
    // policy makes the very first demotion unrecoverable.
    let (mut k, mut h, mut roots) = build_world(SEED);
    k.set_fault_plan(Some(FaultPlan::new(permanent_only(1.0, 99))));
    let cfg = GcConfig::svagc(4)
        .with_verify_phases(true)
        .with_retry_policy(strict_retry())
        .with_degrade(DegradePolicy {
            enabled: true,
            probation: 2,
        });
    let mut gc = Lisp2Collector::new(cfg);
    let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();

    assert!(stats.aborts >= 1, "the Normal attempt must abort");
    assert!(stats.rollback_pages > 0, "rollback rewrote pages");
    assert!(stats.abort_overhead.get() > 0, "aborts cost pause time");
    assert_eq!(stats.mode, 1, "committed attempt ran MemmoveOnly");
    assert_eq!(stats.swapped_objects, 0, "degraded mode never swaps");
    assert_eq!(gc.degrade.mode(), DegradedMode::MemmoveOnly);
    assert_eq!(
        HeapVerifier::new().content_hash(&k, &mut h),
        reference_hash,
        "degraded commit is bit-identical to the fault-free run"
    );

    // Probation: two clean cycles step back to Normal.
    k.set_fault_plan(None);
    let s2 = gc.collect(&mut k, &mut h, &mut roots).unwrap();
    assert_eq!(s2.mode, 1, "still degraded during probation");
    assert_eq!(s2.aborts, 0);
    assert_eq!(gc.degrade.mode(), DegradedMode::Normal, "probation served");
    let s3 = gc.collect(&mut k, &mut h, &mut roots).unwrap();
    assert_eq!(s3.mode, 0, "back to Normal");
    assert!(s3.swapped_objects > 0 || s3.moved_objects == 0, "SwapVA re-enabled");
}

/// With the circuit breaker off, the abort propagates — but only after the
/// rollback has restored the exact pre-GC heap, roots included.
#[test]
fn exhausted_ladder_propagates_after_exact_rollback() {
    let (mut k, mut h, mut roots) = build_world(SEED + 1);
    let pre_hash = HeapVerifier::new().content_hash(&k, &mut h);
    let pre_roots = roots.snapshot();
    let pre_top = h.top();
    k.set_fault_plan(Some(FaultPlan::new(permanent_only(1.0, 5))));
    let mut gc = Lisp2Collector::new(
        GcConfig::svagc(4)
            .with_verify_phases(true)
            .with_retry_policy(strict_retry()), // degrade stays off
    );
    let err = gc.collect(&mut k, &mut h, &mut roots).unwrap_err();
    assert!(err.is_operational(), "surfaced as the original fault: {err}");
    assert_eq!(
        HeapVerifier::new().content_hash(&k, &mut h),
        pre_hash,
        "bit-for-bit pre-GC heap after the abort"
    );
    assert_eq!(roots.snapshot(), pre_roots, "roots restored");
    assert_eq!(h.top(), pre_top, "allocation cursor restored");
    assert!(gc.log.cycles.is_empty(), "no cycle was committed");
    let verifier = HeapVerifier::new();
    assert!(verifier.verify_layout(&k, &mut h).is_clean());
    assert!(verifier.verify_boundaries(&k, &mut h).is_clean());
    assert!(k.perf.rollback_pages > 0, "kernel accounted the rollback");
}

/// Watchdog expiry rides the same abort path: an impossible deadline
/// aborts every rung of the ladder, the error surfaces as `Deadline`, and
/// the heap is untouched. Disarming the watchdog lets the (still
/// degraded) collector commit.
#[test]
fn watchdog_expiry_aborts_rolls_back_and_reports() {
    let (mut k, mut h, mut roots) = build_world(SEED + 2);
    let pre_hash = HeapVerifier::new().content_hash(&k, &mut h);
    let cfg = GcConfig::svagc(4)
        .with_verify_phases(true)
        .with_deadline(Some(1)) // no phase fits in one cycle
        .with_degrade(DegradePolicy::standard());
    let mut gc = Lisp2Collector::new(cfg);
    let err = gc.collect(&mut k, &mut h, &mut roots).unwrap_err();
    // With the breaker enabled, running out of rungs is its own outcome:
    // the deadline that exhausted the ladder rides inside.
    let inner = match err {
        GcError::Exhausted(inner) => *inner,
        other => panic!("expected Exhausted, got {other}"),
    };
    match inner {
        GcError::Deadline { phase, elapsed, budget } => {
            assert_eq!(budget.get(), 1);
            assert!(elapsed.get() > 1, "{phase} exceeded the budget");
        }
        other => panic!("expected Deadline inside Exhausted, got {other}"),
    }
    assert_eq!(
        gc.degrade.mode(),
        DegradedMode::SingleThreaded,
        "the whole ladder was tried before giving up"
    );
    assert_eq!(HeapVerifier::new().content_hash(&k, &mut h), pre_hash);

    // Disarm the watchdog: the next cycle commits in the degraded mode the
    // breaker is still holding.
    gc.cfg.deadline_cycles = None;
    let stats = gc.collect(&mut k, &mut h, &mut roots).unwrap();
    assert_eq!(stats.mode, 2, "committed single-threaded");
    assert_eq!(stats.aborts, 0);
    assert_eq!(
        HeapVerifier::new().verify_post_compact(&k, &mut h, &roots).violations.len(),
        0
    );
}

/// A generous deadline never fires and perturbs nothing: stats and heap
/// hash match a watchdog-less run exactly.
#[test]
fn generous_deadline_is_invisible() {
    let (mut k1, mut h1, mut r1) = build_world(SEED + 3);
    let mut g1 = Lisp2Collector::new(GcConfig::svagc(4).with_verify_phases(true));
    let s1 = g1.collect(&mut k1, &mut h1, &mut r1).unwrap();
    let (mut k2, mut h2, mut r2) = build_world(SEED + 3);
    let mut g2 = Lisp2Collector::new(
        GcConfig::svagc(4)
            .with_verify_phases(true)
            .with_deadline(Some(u64::MAX / 2))
            .with_degrade(DegradePolicy::standard()),
    );
    let s2 = g2.collect(&mut k2, &mut h2, &mut r2).unwrap();
    assert_eq!(s1.pause(), s2.pause());
    assert_eq!(s2.aborts, 0);
    assert_eq!(s2.watchdog_expiries, 0);
    assert_eq!(
        HeapVerifier::new().content_hash(&k1, &mut h1),
        HeapVerifier::new().content_hash(&k2, &mut h2)
    );
}

/// Minor-GC transactions: an unrecoverable promotion fault rolls back the
/// old generation AND leaves eden intact, then the degraded retry promotes
/// everything by copy — ending bit-identical to a fault-free scavenge.
#[test]
fn minor_scavenge_aborts_and_retries_degraded() {
    let build = |k: &mut Kernel| -> (GenHeap, RootSet) {
        let mut gh = GenHeap::new(k, Asid(1), 64 << 20, 8 << 20, 10).unwrap();
        let mut roots = RootSet::new();
        for i in 0..10u64 {
            let shape = ObjShape::data_bytes(12 * PAGE_SIZE);
            let (obj, _) = gh.alloc_young(k, CORE, shape).unwrap();
            gh.old.write_data(k, CORE, obj, 0, 0, 0x500 + i).unwrap();
            if i % 2 == 0 {
                roots.push(obj);
            }
        }
        (gh, roots)
    };

    // Reference scavenge, fault-free.
    let mut rk = Kernel::with_bytes(MachineConfig::i5_7600(), 96 << 20);
    let (mut rgh, mut rroots) = build(&mut rk);
    MinorGc::new(MinorConfig::svagc(4))
        .collect(&mut rk, &mut rgh, &mut rroots)
        .unwrap();
    let reference_hash = HeapVerifier::new().content_hash(&rk, &mut rgh.old);

    // Faulty scavenge with the strict policy and the breaker on.
    let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 96 << 20);
    let (mut gh, mut roots) = build(&mut k);
    k.set_fault_plan(Some(FaultPlan::new(permanent_only(1.0, 21))));
    let mut minor = MinorGc::new(MinorConfig {
        retry: strict_retry(),
        degrade: DegradePolicy::standard(),
        ..MinorConfig::svagc(4)
    });
    let stats = minor.collect(&mut k, &mut gh, &mut roots).unwrap();
    assert!(stats.aborts >= 1);
    assert_eq!(stats.mode, 1, "committed MemmoveOnly");
    assert_eq!(stats.swapped_objects, 0);
    assert_eq!(gh.eden_used(), 0, "eden reset only after the commit");
    assert_eq!(
        HeapVerifier::new().content_hash(&k, &mut gh.old),
        reference_hash,
        "promoted old generation is bit-identical to the fault-free scavenge"
    );
}

/// Minor-GC structural errors still propagate: promotion overflow must
/// surface as `NeedGc` (so the driver runs a full collection), not be
/// retried by the breaker — and the rollback leaves eden populated so the
/// full GC + re-scavenge can actually happen.
#[test]
fn minor_need_gc_propagates_through_the_transaction() {
    let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 64 << 20);
    // Old generation too small for the young survivors.
    let mut gh = GenHeap::new(&mut k, Asid(1), 1 << 20, 8 << 20, 10).unwrap();
    let mut roots = RootSet::new();
    for i in 0..20u64 {
        let (obj, _) = gh
            .alloc_young(&mut k, CORE, ObjShape::data_bytes(60 << 10))
            .unwrap();
        gh.old.write_data(&mut k, CORE, obj, 0, 0, i).unwrap();
        roots.push(obj);
    }
    let young_before = gh.young_objects().len();
    let mut minor = MinorGc::new(MinorConfig {
        degrade: DegradePolicy::standard(),
        ..MinorConfig::svagc(2)
    });
    let err = minor.collect(&mut k, &mut gh, &mut roots).unwrap_err();
    assert!(
        matches!(err, GcError::Heap(svagc_heap::HeapError::NeedGc { .. })),
        "got {err}"
    );
    assert_eq!(gh.young_objects().len(), young_before, "eden untouched");
    assert_eq!(
        minor.degrade.mode(),
        DegradedMode::Normal,
        "structural errors do not trip the breaker"
    );
}
