//! Mark bitmap: one bit per 8-byte granule of heap.
//!
//! Phase I of LISP2 marks live objects here; later phases test bits while
//! walking. The bitmap is a host-side shadow structure (real collectors
//! keep it off-heap too), so it has no simulated cost of its own — the
//! *traversal* that sets bits is what gets charged.

use svagc_vmem::{VirtAddr, WORD_BYTES};

/// A bitmap over `[base, base + words * 8)` with one bit per word.
#[derive(Debug, Clone)]
pub struct MarkBitmap {
    base: VirtAddr,
    words: u64,
    bits: Vec<u64>,
    marked: u64,
}

impl MarkBitmap {
    /// Bitmap covering `words` words starting at `base`.
    pub fn new(base: VirtAddr, words: u64) -> MarkBitmap {
        MarkBitmap {
            base,
            words,
            bits: vec![0; words.div_ceil(64) as usize],
            marked: 0,
        }
    }

    #[inline]
    fn index(&self, va: VirtAddr) -> u64 {
        debug_assert!(va >= self.base, "address below bitmap base");
        debug_assert_eq!((va - self.base) % WORD_BYTES, 0, "unaligned mark");
        let idx = (va - self.base) / WORD_BYTES;
        debug_assert!(idx < self.words, "address beyond bitmap");
        idx
    }

    /// Mark the word at `va`. Returns `true` if it was newly marked
    /// (the marking-phase "did I win this object?" test).
    #[inline]
    pub fn mark(&mut self, va: VirtAddr) -> bool {
        let idx = self.index(va);
        let (w, b) = ((idx / 64) as usize, idx % 64);
        let mask = 1u64 << b;
        if self.bits[w] & mask != 0 {
            false
        } else {
            self.bits[w] |= mask;
            self.marked += 1;
            true
        }
    }

    /// Is the word at `va` marked?
    #[inline]
    pub fn is_marked(&self, va: VirtAddr) -> bool {
        let idx = self.index(va);
        self.bits[(idx / 64) as usize] & (1 << (idx % 64)) != 0
    }

    /// Clear all marks.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.marked = 0;
    }

    /// Number of marked words (== marked objects when one bit is set per
    /// object header).
    pub fn marked_count(&self) -> u64 {
        self.marked
    }

    /// Iterate the addresses of all set bits in ascending order.
    pub fn iter_marked(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        self.bits.iter().enumerate().flat_map(move |(w, &word)| {
            let base = self.base;
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                Some(base + (w as u64 * 64 + b) * WORD_BYTES)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm() -> MarkBitmap {
        MarkBitmap::new(VirtAddr(0x1000), 1024)
    }

    #[test]
    fn mark_and_test() {
        let mut m = bm();
        let va = VirtAddr(0x1000 + 8 * 100);
        assert!(!m.is_marked(va));
        assert!(m.mark(va));
        assert!(!m.mark(va), "second mark loses");
        assert!(m.is_marked(va));
        assert_eq!(m.marked_count(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut m = bm();
        m.mark(VirtAddr(0x1000));
        m.mark(VirtAddr(0x1008));
        m.clear();
        assert_eq!(m.marked_count(), 0);
        assert!(!m.is_marked(VirtAddr(0x1000)));
    }

    #[test]
    fn iter_marked_ascending() {
        let mut m = bm();
        for off in [800, 0, 72, 8 * 1023] {
            m.mark(VirtAddr(0x1000 + off));
        }
        let got: Vec<u64> = m.iter_marked().map(|v| v.get() - 0x1000).collect();
        assert_eq!(got, vec![0, 72, 800, 8 * 1023]);
    }

    #[test]
    fn boundary_words() {
        let mut m = MarkBitmap::new(VirtAddr(0), 65);
        assert!(m.mark(VirtAddr(63 * 8)));
        assert!(m.mark(VirtAddr(64 * 8))); // second u64 of bits
        assert_eq!(m.marked_count(), 2);
    }
}
