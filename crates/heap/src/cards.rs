//! Card-table remembered set for generational collection.
//!
//! Table I says SwapVA (+aggregation, +PMD caching) applies to the Minor
//! GC copying phase too. Supporting a minor collector needs the standard
//! generational machinery: old→young references must be findable without
//! scanning the old generation, so reference stores dirty a *card* (a
//! 512-byte granule of the old space) and the scavenger scans only dirty
//! cards.

use svagc_vmem::VirtAddr;

/// Bytes covered by one card (HotSpot uses 512).
pub const CARD_BYTES: u64 = 512;

/// Dirty-card bitmap over an address range.
#[derive(Debug, Clone)]
pub struct CardTable {
    base: VirtAddr,
    cards: u64,
    dirty: Vec<u64>,
    dirtied: u64,
    /// Cards dirtied while a defer window is open (a concurrent mark is
    /// in flight). [`CardTable::clear`] re-applies these instead of
    /// dropping them, so a minor GC racing the concurrent phase cannot
    /// lose an old→young edge recorded after its card scan began.
    deferred: Vec<u64>,
    defer_active: bool,
}

impl CardTable {
    /// Table covering `[base, base + bytes)`.
    pub fn new(base: VirtAddr, bytes: u64) -> CardTable {
        let cards = bytes.div_ceil(CARD_BYTES);
        let words = cards.div_ceil(64) as usize;
        CardTable {
            base,
            cards,
            dirty: vec![0; words],
            dirtied: 0,
            deferred: vec![0; words],
            defer_active: false,
        }
    }

    #[inline]
    fn index(&self, va: VirtAddr) -> Option<u64> {
        if va < self.base {
            return None;
        }
        let idx = (va - self.base) / CARD_BYTES;
        (idx < self.cards).then_some(idx)
    }

    /// Dirty the card containing `va` (the write-barrier slow path).
    /// Out-of-range addresses are ignored (stores to young objects need no
    /// barrier). Returns whether a card was newly dirtied.
    pub fn dirty(&mut self, va: VirtAddr) -> bool {
        let Some(idx) = self.index(va) else {
            return false;
        };
        let (w, b) = ((idx / 64) as usize, idx % 64);
        let mask = 1u64 << b;
        if self.defer_active {
            self.deferred[w] |= mask;
        }
        if self.dirty[w] & mask != 0 {
            false
        } else {
            self.dirty[w] |= mask;
            self.dirtied += 1;
            true
        }
    }

    /// Is the card containing `va` dirty?
    pub fn is_dirty(&self, va: VirtAddr) -> bool {
        match self.index(va) {
            Some(idx) => self.dirty[(idx / 64) as usize] & (1 << (idx % 64)) != 0,
            None => false,
        }
    }

    /// Iterate the base addresses of all dirty cards, ascending.
    pub fn iter_dirty(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        self.dirty.iter().enumerate().flat_map(move |(w, &word)| {
            let base = self.base;
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                Some(base + (w as u64 * 64 + b) * CARD_BYTES)
            })
        })
    }

    /// Number of dirty cards.
    pub fn dirty_count(&self) -> u64 {
        self.dirtied
    }

    /// Clear all cards (after a scavenge). While a defer window is open,
    /// cards dirtied inside the window are re-applied instead of dropped:
    /// the racing collector's scan may have started before those stores,
    /// so only the next scan (or the final-mark pause) may consume them.
    pub fn clear(&mut self) {
        self.dirty.fill(0);
        self.dirtied = 0;
        if self.defer_active {
            for (d, &src) in self.dirty.iter_mut().zip(self.deferred.iter()) {
                *d = src;
            }
            self.dirtied = self.deferred.iter().map(|w| w.count_ones() as u64).sum();
        }
    }

    /// Open a defer window: until [`CardTable::end_defer`], every card
    /// dirtied also survives [`CardTable::clear`]. Used while a concurrent
    /// mark is in flight.
    pub fn begin_defer(&mut self) {
        self.defer_active = true;
        self.deferred.fill(0);
    }

    /// Close the defer window and drop its re-dirty log. Cards already
    /// re-applied by an intervening `clear` stay dirty.
    pub fn end_defer(&mut self) {
        self.defer_active = false;
        self.deferred.fill(0);
    }

    /// Is a defer window currently open?
    pub fn defer_active(&self) -> bool {
        self.defer_active
    }

    /// Bytes each card covers.
    pub fn card_bytes(&self) -> u64 {
        CARD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CardTable {
        CardTable::new(VirtAddr(0x10000), 64 * CARD_BYTES)
    }

    #[test]
    fn dirty_and_query() {
        let mut t = table();
        let va = VirtAddr(0x10000 + 3 * CARD_BYTES + 17);
        assert!(!t.is_dirty(va));
        assert!(t.dirty(va));
        assert!(!t.dirty(va), "already dirty");
        assert!(t.is_dirty(va));
        // Same card, different offset.
        assert!(t.is_dirty(VirtAddr(0x10000 + 3 * CARD_BYTES)));
        // Neighbouring card untouched.
        assert!(!t.is_dirty(VirtAddr(0x10000 + 4 * CARD_BYTES)));
        assert_eq!(t.dirty_count(), 1);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let mut t = table();
        assert!(!t.dirty(VirtAddr(0x100))); // below base
        assert!(!t.dirty(VirtAddr(0x10000 + 1000 * CARD_BYTES))); // beyond
        assert_eq!(t.dirty_count(), 0);
    }

    #[test]
    fn iter_dirty_ascending() {
        let mut t = table();
        for c in [40u64, 2, 63, 2] {
            t.dirty(VirtAddr(0x10000 + c * CARD_BYTES + 5));
        }
        let got: Vec<u64> = t
            .iter_dirty()
            .map(|v| (v.get() - 0x10000) / CARD_BYTES)
            .collect();
        assert_eq!(got, vec![2, 40, 63]);
    }

    #[test]
    fn clear_resets() {
        let mut t = table();
        t.dirty(VirtAddr(0x10000));
        t.clear();
        assert_eq!(t.dirty_count(), 0);
        assert_eq!(t.iter_dirty().count(), 0);
    }

    #[test]
    fn deferred_cards_survive_clear() {
        let mut t = table();
        t.dirty(VirtAddr(0x10000)); // pre-window: dropped by clear
        t.begin_defer();
        t.dirty(VirtAddr(0x10000 + 5 * CARD_BYTES)); // in-window: survives
        t.clear();
        assert!(!t.is_dirty(VirtAddr(0x10000)), "pre-window card cleared");
        assert!(
            t.is_dirty(VirtAddr(0x10000 + 5 * CARD_BYTES)),
            "in-window card re-applied"
        );
        assert_eq!(t.dirty_count(), 1);
        // A second clear inside the same window re-applies again.
        t.clear();
        assert!(t.is_dirty(VirtAddr(0x10000 + 5 * CARD_BYTES)));
        t.end_defer();
        t.clear();
        assert_eq!(t.dirty_count(), 0, "window closed: clear is final");
    }

    #[test]
    fn defer_window_toggles() {
        let mut t = table();
        assert!(!t.defer_active());
        t.begin_defer();
        assert!(t.defer_active());
        t.end_defer();
        assert!(!t.defer_active());
        // Without a window, clear drops everything (legacy behavior).
        t.dirty(VirtAddr(0x10000));
        t.clear();
        assert_eq!(t.dirty_count(), 0);
    }
}
