//! Generational heap layout: an eden for young allocation in front of the
//! old-generation bump heap, with a card-table write barrier.
//!
//! This is the substrate for demonstrating Table I's second row: SwapVA
//! (with aggregation and PMD caching, but *no* overlap handling — eden and
//! old space are disjoint) applied to the Minor GC copying phase.

use crate::cards::CardTable;
use crate::heap::{Heap, HeapConfig, HeapError};
use crate::object::{ObjRef, ObjShape, FLAG_LARGE};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::Cycles;
use svagc_vmem::{Asid, VirtAddr, PAGE_SIZE};

/// A two-generation heap: bump eden + the old [`Heap`].
#[derive(Debug)]
pub struct GenHeap {
    /// The old generation (the existing Epsilon-style heap; full GCs run
    /// on it unchanged).
    pub old: Heap,
    eden_base: VirtAddr,
    eden_end: VirtAddr,
    eden_top: VirtAddr,
    eden_objects: Vec<ObjRef>,
    /// Remembered set over the old generation.
    pub cards: CardTable,
    /// Young allocations since construction.
    pub young_allocations: u64,
}

impl GenHeap {
    /// Build a generational heap: `old_bytes` of tenured space plus an
    /// `eden_bytes` nursery, in one address space.
    pub fn new(
        kernel: &mut Kernel,
        asid: Asid,
        old_bytes: u64,
        eden_bytes: u64,
        threshold_pages: u64,
    ) -> Result<GenHeap, HeapError> {
        let mut old = Heap::new(
            kernel,
            asid,
            HeapConfig::new(old_bytes).with_threshold(threshold_pages),
        )?;
        let eden_pages = eden_bytes.div_ceil(PAGE_SIZE);
        let eden_base = old.map_region(kernel, eden_pages)?;
        let cards = CardTable::new(old.base(), old.capacity());
        Ok(GenHeap {
            old,
            eden_base,
            eden_end: eden_base.add_pages(eden_pages),
            eden_top: eden_base,
            eden_objects: Vec::new(),
            cards,
            young_allocations: 0,
        })
    }

    /// Does `va` point into the nursery?
    #[inline]
    pub fn in_young(&self, va: VirtAddr) -> bool {
        va >= self.eden_base && va < self.eden_end
    }

    /// Does `va` point into the old generation?
    #[inline]
    pub fn in_old(&self, va: VirtAddr) -> bool {
        va >= self.old.base() && va < self.old.end()
    }

    /// Allocate a young object in eden (Algorithm 3 alignment applies so
    /// large young objects stay SwapVA-promotable). `NeedGc` means "run a
    /// minor collection".
    pub fn alloc_young(
        &mut self,
        kernel: &mut Kernel,
        core: CoreId,
        shape: ObjShape,
    ) -> Result<(ObjRef, Cycles), HeapError> {
        let size = shape.size_bytes();
        if size > self.eden_end - self.eden_base {
            // Humongous: straight into the old generation.
            return self.old.alloc(kernel, core, shape);
        }
        let aligned = self.old.align_for(shape, self.eden_top);
        let after = self.old.align_for(shape, aligned + size);
        if after.get() > self.eden_end.get() {
            return Err(HeapError::NeedGc { requested: size });
        }
        self.eden_top = after;
        let obj = ObjRef(aligned);
        let large = self.old.is_large(shape);
        let mut header = shape.header();
        if large {
            header.flags |= FLAG_LARGE;
        }
        let mut t = kernel.write_word(self.old.space(), core, obj.header_va(), header.encode())?;
        t += kernel.write_word(self.old.space(), core, obj.forwarding_va(), 0)?;
        self.eden_objects.push(obj);
        self.young_allocations += 1;
        Ok((obj, t))
    }

    /// Reference store with the generational write barrier: stores of a
    /// young target into an old holder dirty the holder's card. All
    /// mutator ref stores on a generational heap must go through here.
    ///
    /// ```
    /// use svagc_heap::{GenHeap, ObjShape};
    /// use svagc_kernel::{CoreId, Kernel};
    /// use svagc_metrics::MachineConfig;
    /// use svagc_vmem::Asid;
    ///
    /// let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 16 << 20);
    /// let mut gh = GenHeap::new(&mut k, Asid(1), 8 << 20, 2 << 20, 10).unwrap();
    /// let (old, _) = gh.old.alloc(&mut k, CoreId(0), ObjShape::with_refs(1, 2)).unwrap();
    /// let (young, _) = gh.alloc_young(&mut k, CoreId(0), ObjShape::data(4)).unwrap();
    ///
    /// gh.write_ref_barrier(&mut k, CoreId(0), old, 0, young).unwrap();
    /// assert_eq!(gh.cards.dirty_count(), 1); // remembered-set entry
    /// ```
    pub fn write_ref_barrier(
        &mut self,
        kernel: &mut Kernel,
        core: CoreId,
        obj: ObjRef,
        field: u64,
        target: ObjRef,
    ) -> Result<Cycles, HeapError> {
        let mut t = self.old.write_ref(kernel, core, obj, field, target)?;
        if !target.is_null() && self.in_old(obj.0) && self.in_young(target.0) {
            self.cards.dirty(obj.ref_field_va(field));
            t += Cycles(4); // card mark: one byte store
        }
        Ok(t)
    }

    /// Young objects in allocation (= address) order.
    pub fn young_objects(&self) -> &[ObjRef] {
        &self.eden_objects
    }

    /// Eden occupancy in bytes.
    pub fn eden_used(&self) -> u64 {
        self.eden_top - self.eden_base
    }

    /// Eden capacity in bytes.
    pub fn eden_capacity(&self) -> u64 {
        self.eden_end - self.eden_base
    }

    /// Eden bounds.
    pub fn eden_range(&self) -> (VirtAddr, VirtAddr) {
        (self.eden_base, self.eden_end)
    }

    /// Wipe the nursery after a scavenge: every survivor was promoted, so
    /// eden restarts empty and the remembered set is clean (no old→young
    /// references can exist). While a concurrent-mark defer window is
    /// open ([`GenHeap::begin_card_defer`]), cards dirtied inside the
    /// window are re-applied rather than dropped — the racing minor GC's
    /// scan may predate those stores.
    pub fn reset_eden(&mut self) {
        self.eden_top = self.eden_base;
        self.eden_objects.clear();
        self.cards.clear();
    }

    /// Open the remembered-set defer window for a concurrent mark: until
    /// [`GenHeap::end_card_defer`], cards dirtied by the write barrier
    /// survive any racing scavenge's card clear.
    pub fn begin_card_defer(&mut self) {
        self.cards.begin_defer();
    }

    /// Close the concurrent-mark defer window.
    pub fn end_card_defer(&mut self) {
        self.cards.end_defer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_metrics::MachineConfig;

    fn setup() -> (Kernel, GenHeap) {
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 32 << 20);
        let gh = GenHeap::new(&mut k, Asid(1), 16 << 20, 2 << 20, 10).unwrap();
        (k, gh)
    }

    #[test]
    fn spaces_are_disjoint() {
        let (_, gh) = setup();
        let (eb, ee) = gh.eden_range();
        assert!(eb >= gh.old.end() || ee <= gh.old.base());
        assert!(gh.in_young(eb));
        assert!(!gh.in_old(eb));
        assert!(gh.in_old(gh.old.base()));
    }

    #[test]
    fn young_allocation_bumps_eden() {
        let (mut k, mut gh) = setup();
        let (a, _) = gh.alloc_young(&mut k, CoreId(0), ObjShape::data(10)).unwrap();
        let (b, _) = gh.alloc_young(&mut k, CoreId(0), ObjShape::data(10)).unwrap();
        assert!(gh.in_young(a.0) && gh.in_young(b.0));
        assert!(b.0 > a.0);
        assert_eq!(gh.young_objects().len(), 2);
        assert_eq!(gh.old.object_count(), 0);
    }

    #[test]
    fn large_young_objects_page_align() {
        let (mut k, mut gh) = setup();
        gh.alloc_young(&mut k, CoreId(0), ObjShape::data(5)).unwrap();
        let big = ObjShape::data_bytes(12 * PAGE_SIZE);
        let (obj, _) = gh.alloc_young(&mut k, CoreId(0), big).unwrap();
        assert!(obj.0.is_page_aligned());
        let (hdr, _) = gh.old.read_header(&mut k, CoreId(0), obj).unwrap();
        assert!(hdr.is_large());
    }

    #[test]
    fn humongous_goes_straight_to_old() {
        let (mut k, mut gh) = setup();
        let huge = ObjShape::data_bytes(4 << 20); // bigger than eden
        let (obj, _) = gh.alloc_young(&mut k, CoreId(0), huge).unwrap();
        assert!(gh.in_old(obj.0));
    }

    #[test]
    fn eden_exhaustion_requests_minor_gc() {
        let (mut k, mut gh) = setup();
        let shape = ObjShape::data_bytes(64 << 10);
        let mut n = 0;
        loop {
            match gh.alloc_young(&mut k, CoreId(0), shape) {
                Ok(_) => n += 1,
                Err(HeapError::NeedGc { .. }) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(n >= 30, "2 MiB eden holds ~32 64 KiB objects, got {n}");
    }

    #[test]
    fn barrier_dirties_only_old_to_young() {
        let (mut k, mut gh) = setup();
        let (old_obj, _) = gh.old.alloc(&mut k, CoreId(0), ObjShape::with_refs(2, 2)).unwrap();
        let (young_obj, _) = gh.alloc_young(&mut k, CoreId(0), ObjShape::with_refs(1, 2)).unwrap();
        // old -> young: dirties.
        gh.write_ref_barrier(&mut k, CoreId(0), old_obj, 0, young_obj).unwrap();
        assert_eq!(gh.cards.dirty_count(), 1);
        assert!(gh.cards.is_dirty(old_obj.ref_field_va(0)));
        // young -> old: no card.
        gh.write_ref_barrier(&mut k, CoreId(0), young_obj, 0, old_obj).unwrap();
        assert_eq!(gh.cards.dirty_count(), 1);
        // old -> old: no card.
        gh.write_ref_barrier(&mut k, CoreId(0), old_obj, 1, old_obj).unwrap();
        assert_eq!(gh.cards.dirty_count(), 1);
        // The stores themselves happened.
        assert_eq!(gh.old.read_ref(&mut k, CoreId(0), old_obj, 0).unwrap().0, young_obj);
    }

    #[test]
    fn racing_clear_loses_edge_without_defer_window() {
        // The pre-fix bug this PR pins: a card recorded while a concurrent
        // mark is in flight, then wiped by a racing minor GC's clear,
        // silently loses the old→young edge.
        let (mut k, mut gh) = setup();
        let (old_obj, _) = gh.old.alloc(&mut k, CoreId(0), ObjShape::with_refs(1, 2)).unwrap();
        let (y, _) = gh.alloc_young(&mut k, CoreId(0), ObjShape::data(4)).unwrap();
        gh.write_ref_barrier(&mut k, CoreId(0), old_obj, 0, y).unwrap();
        gh.cards.clear(); // racing scavenge, no defer window
        assert!(
            !gh.cards.is_dirty(old_obj.ref_field_va(0)),
            "without the defer path the remembered-set entry is gone \
             while old_obj still points at a young object"
        );
        // The heap really does hold a now-invisible old→young reference.
        assert_eq!(gh.old.read_ref(&mut k, CoreId(0), old_obj, 0).unwrap().0, y);
        assert!(gh.in_young(y.0));
    }

    #[test]
    fn defer_window_preserves_edge_across_racing_clear() {
        let (mut k, mut gh) = setup();
        let (old_obj, _) = gh.old.alloc(&mut k, CoreId(0), ObjShape::with_refs(1, 2)).unwrap();
        gh.begin_card_defer(); // concurrent mark begins
        let (y, _) = gh.alloc_young(&mut k, CoreId(0), ObjShape::data(4)).unwrap();
        gh.write_ref_barrier(&mut k, CoreId(0), old_obj, 0, y).unwrap();
        gh.cards.clear(); // racing scavenge mid-window
        assert!(
            gh.cards.is_dirty(old_obj.ref_field_va(0)),
            "in-window card must survive the racing clear"
        );
        gh.end_card_defer();
        gh.cards.clear();
        assert_eq!(gh.cards.dirty_count(), 0, "after the window, clears are final");
    }

    #[test]
    fn reset_eden_clears_everything() {
        let (mut k, mut gh) = setup();
        let (old_obj, _) = gh.old.alloc(&mut k, CoreId(0), ObjShape::with_refs(1, 2)).unwrap();
        let (y, _) = gh.alloc_young(&mut k, CoreId(0), ObjShape::data(4)).unwrap();
        gh.write_ref_barrier(&mut k, CoreId(0), old_obj, 0, y).unwrap();
        gh.reset_eden();
        assert_eq!(gh.eden_used(), 0);
        assert_eq!(gh.young_objects().len(), 0);
        assert_eq!(gh.cards.dirty_count(), 0);
    }
}
