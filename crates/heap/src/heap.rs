//! The Epsilon-style bump heap with Algorithm 3's SwapVA-aware allocator.
//!
//! One contiguous virtual range, fully mapped at construction (the paper
//! extends OpenJDK's Epsilon allocator). Allocation is `ALLOCMEM`
//! (Algorithm 3): objects at or above the swapping threshold are placed on
//! page boundaries — and leave the cursor page-aligned afterwards — so that
//! the compaction phase may move them by swapping whole PTEs without
//! disturbing neighbours. The alignment gaps this creates are the internal
//! fragmentation the paper bounds at <5 % for a 10-page threshold.

use crate::object::{ObjHeader, ObjRef, ObjShape, FLAG_LARGE, HEADER_WORDS};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::Cycles;
use svagc_vmem::{AddressSpace, AllocContext, Asid, VirtAddr, VmError, PAGE_SIZE, WORD_BYTES};

/// Heap construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct HeapConfig {
    /// Heap capacity in bytes (rounded up to pages).
    pub heap_bytes: u64,
    /// `Threshold_Swapping`: objects of at least this many pages are
    /// page-aligned SwapVA candidates. The paper's break-even is 10.
    pub swap_threshold_pages: u64,
    /// Apply Algorithm 3's `IFSWAPALIGN` at allocation/forwarding time.
    /// Baseline collectors (ParallelGC, Shenandoah) do not align large
    /// objects — set this `false` for their heaps.
    pub align_large: bool,
    /// Commit frames lazily as the cursor advances instead of mapping the
    /// whole heap at construction. Off by default (the paper's Epsilon
    /// heap maps eagerly); fleet runs under a shared [`svagc_vmem::FramePool`]
    /// turn it on so a tenant's physical footprint — and therefore its
    /// pressure signal — tracks what it actually uses.
    pub commit_on_demand: bool,
}

impl HeapConfig {
    /// A heap of `heap_bytes` with the paper's default threshold (10).
    pub fn new(heap_bytes: u64) -> HeapConfig {
        HeapConfig {
            heap_bytes,
            swap_threshold_pages: 10,
            align_large: true,
            commit_on_demand: false,
        }
    }

    /// Toggle lazy frame commit (on for fleet runs under a frame pool).
    pub fn with_commit_on_demand(mut self, on: bool) -> HeapConfig {
        self.commit_on_demand = on;
        self
    }

    /// Override the swapping threshold.
    pub fn with_threshold(mut self, pages: u64) -> HeapConfig {
        self.swap_threshold_pages = pages;
        self
    }

    /// Toggle large-object page alignment (off for baseline collectors).
    pub fn with_alignment(mut self, on: bool) -> HeapConfig {
        self.align_large = on;
        self
    }

    /// Derive the threshold from the machine's cost constants instead of
    /// the paper's fixed 10 (Fig. 10: the break-even is a property of the
    /// CPU/memory configuration).
    pub fn with_auto_threshold(mut self, machine: &svagc_metrics::MachineConfig) -> HeapConfig {
        self.swap_threshold_pages = machine.derived_threshold_pages().min(1 << 20);
        self
    }

    /// Minimum byte size of a "large" (page-aligned) object.
    pub fn large_bytes(&self) -> u64 {
        self.swap_threshold_pages * PAGE_SIZE
    }
}

/// Allocation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// Not enough contiguous space left: run a GC and retry.
    NeedGc {
        /// Bytes the failed request needed.
        requested: u64,
    },
    /// Request larger than the whole heap.
    TooLarge {
        /// Bytes requested.
        requested: u64,
    },
    /// Underlying memory error.
    Vm(VmError),
}

impl From<VmError> for HeapError {
    fn from(e: VmError) -> HeapError {
        HeapError::Vm(e)
    }
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::NeedGc { requested } => write!(f, "heap full ({requested} B needed)"),
            HeapError::TooLarge { requested } => write!(f, "request exceeds heap ({requested} B)"),
            HeapError::Vm(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Allocation/fragmentation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapStats {
    /// Objects allocated since construction.
    pub allocations: u64,
    /// Large (page-aligned) objects among them.
    pub large_allocations: u64,
    /// Payload bytes requested.
    pub bytes_requested: u64,
    /// Bytes lost to page-alignment gaps (internal fragmentation).
    pub align_waste_bytes: u64,
}

impl HeapStats {
    /// Fragmentation as a fraction of bytes consumed.
    pub fn frag_ratio(&self) -> f64 {
        let total = self.bytes_requested + self.align_waste_bytes;
        if total == 0 {
            0.0
        } else {
            self.align_waste_bytes as f64 / total as f64
        }
    }
}

/// Snapshot of the heap's host-side allocation state (cursor, object
/// list, statistics) taken at transaction begin and restored on abort.
/// Simulated memory contents are restored separately by the kernel's undo
/// journal — this covers only the bookkeeping that lives outside simulated
/// memory.
#[derive(Debug, Clone)]
pub struct HeapSnapshot {
    top: VirtAddr,
    objects: Vec<ObjRef>,
    sorted: bool,
    stats: HeapStats,
}

/// The managed heap of one simulated JVM.
#[derive(Debug)]
pub struct Heap {
    space: AddressSpace,
    base: VirtAddr,
    end: VirtAddr,
    top: VirtAddr,
    /// One past the last *mapped* page. Equals `end` on eager heaps; on
    /// commit-on-demand heaps it trails the cursor page-rounded-up and
    /// retreats when [`Heap::trim_commit`] returns frames after a GC.
    committed: VirtAddr,
    cfg: HeapConfig,
    /// All allocated objects in allocation order (sorted on demand).
    objects: Vec<ObjRef>,
    sorted: bool,
    /// Statistics.
    pub stats: HeapStats,
}

impl Heap {
    /// Map and build a heap of `cfg.heap_bytes` in a fresh address space.
    ///
    /// Eager (default) heaps map the whole range here; commit-on-demand
    /// heaps only reserve the virtual range and commit frames as the
    /// allocation cursor advances.
    pub fn new(kernel: &mut Kernel, asid: Asid, cfg: HeapConfig) -> Result<Heap, HeapError> {
        let mut space = AddressSpace::new(asid);
        let pages = cfg.heap_bytes.div_ceil(PAGE_SIZE);
        let base = if cfg.commit_on_demand {
            space.reserve_pages(pages)
        } else {
            kernel.vmem.alloc_region(&mut space, pages)?
        };
        let committed = if cfg.commit_on_demand { base } else { base.add_pages(pages) };
        Ok(Heap {
            space,
            base,
            end: base.add_pages(pages),
            top: base,
            committed,
            cfg,
            objects: Vec::new(),
            sorted: true,
            stats: HeapStats::default(),
        })
    }

    /// Grow the committed prefix to cover `to` (page-rounded up), charging
    /// the frames under `ctx`. No-op on eager heaps (everything is
    /// committed at construction). A denial — pool quota, frame
    /// exhaustion — leaves the heap unchanged, so the caller can GC and
    /// retry.
    fn ensure_committed(
        &mut self,
        kernel: &mut Kernel,
        to: VirtAddr,
        ctx: AllocContext,
    ) -> Result<(), HeapError> {
        if to.get() <= self.committed.get() {
            return Ok(());
        }
        debug_assert!(self.cfg.commit_on_demand, "eager heaps are fully committed");
        let new_committed = to.align_up();
        debug_assert!(new_committed.get() <= self.end.get());
        let pages = (new_committed - self.committed) / PAGE_SIZE;
        let prev = kernel.vmem.frames.context();
        kernel.vmem.frames.set_context(ctx);
        let mapped = kernel.vmem.map_pages(&mut self.space, self.committed, pages);
        kernel.vmem.frames.set_context(prev);
        mapped?;
        self.committed = new_committed;
        Ok(())
    }

    /// Return the frames above the cursor to the allocator (and the fleet
    /// pool, if leased). Called after a GC has lowered `top`; a no-op on
    /// eager heaps. Returns the number of pages decommitted. Recommitted
    /// pages come back zeroed, so heap content stays a pure function of
    /// mutator writes and GC moves.
    pub fn trim_commit(&mut self, kernel: &mut Kernel) -> Result<u64, HeapError> {
        if !self.cfg.commit_on_demand {
            return Ok(0);
        }
        let keep = self.top.align_up();
        if keep.get() >= self.committed.get() {
            return Ok(0);
        }
        let pages = (self.committed - keep) / PAGE_SIZE;
        // Far-tier pages in the doomed range are dead: drop their device
        // bindings (bookkeeping only, no fetch) before the frames go back
        // to the pool, or a recycled frame would still read as "far".
        kernel.tier_discard_range(&self.space, keep, pages);
        kernel.vmem.unmap_pages(&mut self.space, keep, pages)?;
        // Decommit is a munmap: every core may hold translations for the
        // released range, and the frames go back to the pool for reuse.
        // Without the shootdown a stale TLB entry would route later
        // mutator accesses into a recycled frame.
        kernel.flush_asid_all_cores(CoreId(0), self.space.asid());
        self.committed = keep;
        Ok(pages)
    }

    /// One past the last mapped page (equals `end()` on eager heaps).
    pub fn committed(&self) -> VirtAddr {
        self.committed
    }

    /// Mapped pages (the tenant's physical heap footprint).
    pub fn committed_pages(&self) -> u64 {
        (self.committed - self.base) / PAGE_SIZE
    }

    /// `IFSWAPALIGN` (Algorithm 3, lines 7-11): page-align the cursor for
    /// SwapVA-candidate objects, identity otherwise.
    #[inline]
    fn if_swap_align(&self, shape: ObjShape, addr: VirtAddr) -> VirtAddr {
        if self.is_large(shape) {
            addr.align_up()
        } else {
            addr
        }
    }

    /// Does `shape` qualify as a large (SwapVA-candidate) object?
    /// Always `false` on unaligned (baseline) heaps.
    pub fn is_large(&self, shape: ObjShape) -> bool {
        self.cfg.align_large && shape.size_bytes() >= self.cfg.large_bytes()
    }

    /// `ALLOCMEM` (Algorithm 3, lines 12-20): bump-allocate `shape`,
    /// page-aligning large objects before *and after*. Returns the new
    /// object and the cycles charged to the allocating core.
    ///
    /// ```
    /// use svagc_heap::{Heap, HeapConfig, ObjShape};
    /// use svagc_kernel::{CoreId, Kernel};
    /// use svagc_metrics::MachineConfig;
    /// use svagc_vmem::{Asid, PAGE_SIZE};
    ///
    /// let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 8 << 20);
    /// let mut heap = Heap::new(&mut k, Asid(1), HeapConfig::new(4 << 20)).unwrap();
    ///
    /// let (small, _) = heap.alloc(&mut k, CoreId(0), ObjShape::data(16)).unwrap();
    /// let (large, _) = heap
    ///     .alloc(&mut k, CoreId(0), ObjShape::data_bytes(12 * PAGE_SIZE))
    ///     .unwrap();
    /// assert!(large.0.is_page_aligned(), "SwapVA candidates start on a page");
    /// assert!(!small.0.is_page_aligned() || small.0 == heap.base());
    /// ```
    pub fn alloc(
        &mut self,
        kernel: &mut Kernel,
        core: CoreId,
        shape: ObjShape,
    ) -> Result<(ObjRef, Cycles), HeapError> {
        let size = shape.size_bytes();
        if size > self.end - self.base {
            return Err(HeapError::TooLarge { requested: size });
        }
        let aligned = self.if_swap_align(shape, self.top);
        let after = self.if_swap_align(shape, aligned + size);
        if after.get() > self.end.get() {
            return Err(HeapError::NeedGc { requested: size });
        }
        // Commit before touching the cursor: a quota denial must leave the
        // heap retryable after a GC.
        self.ensure_committed(kernel, aligned + size, AllocContext::Heap)?;
        let pre_gap = aligned - self.top;
        let post_gap = after - (aligned + size);
        self.top = after;
        let obj = ObjRef(aligned);

        let large = self.is_large(shape);
        let mut header = shape.header();
        if large {
            header.flags |= FLAG_LARGE;
        }
        let mut t = self.zero_object(kernel, aligned, size)?;
        t += kernel.write_word(&self.space, core, obj.header_va(), header.encode())?;
        t += kernel.write_word(&self.space, core, obj.forwarding_va(), 0)?;

        self.objects.push(obj);
        self.sorted = if self
            .sorted { self.objects.len() < 2 || self.objects[self.objects.len() - 2] < obj } else { false };
        self.stats.allocations += 1;
        self.stats.bytes_requested += size;
        self.stats.align_waste_bytes += pre_gap + post_gap;
        if large {
            self.stats.large_allocations += 1;
        }
        Ok((obj, t))
    }

    /// Register an object placed externally (TLAB path) and write its
    /// header.
    pub(crate) fn register_at(
        &mut self,
        kernel: &mut Kernel,
        core: CoreId,
        at: VirtAddr,
        shape: ObjShape,
        large: bool,
        waste: u64,
    ) -> Result<(ObjRef, Cycles), HeapError> {
        let obj = ObjRef(at);
        let mut header = shape.header();
        if large {
            header.flags |= FLAG_LARGE;
        }
        let mut t = self.zero_object(kernel, at, shape.size_bytes())?;
        t += kernel.write_word(&self.space, core, obj.header_va(), header.encode())?;
        t += kernel.write_word(&self.space, core, obj.forwarding_va(), 0)?;
        self.objects.push(obj);
        self.sorted = false;
        self.stats.allocations += 1;
        self.stats.bytes_requested += shape.size_bytes();
        self.stats.align_waste_bytes += waste;
        if large {
            self.stats.large_allocations += 1;
        }
        Ok((obj, t))
    }

    // ---- geometry -------------------------------------------------------

    /// Heap base address.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Is `va` inside this heap's range? (Generational setups have object
    /// references that cross spaces; collectors guard on this.)
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.base && va < self.end
    }

    /// One past the last usable byte.
    pub fn end(&self) -> VirtAddr {
        self.end
    }

    /// Current allocation cursor.
    pub fn top(&self) -> VirtAddr {
        self.top
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.end - self.base
    }

    /// Bytes consumed (cursor minus base).
    pub fn used_bytes(&self) -> u64 {
        self.top - self.base
    }

    /// Bytes remaining.
    pub fn free_bytes(&self) -> u64 {
        self.end - self.top
    }

    /// Heap extent in words (mark bitmap sizing).
    pub fn extent_words(&self) -> u64 {
        (self.end - self.base) / WORD_BYTES
    }

    /// Swap threshold in pages.
    pub fn threshold_pages(&self) -> u64 {
        self.cfg.swap_threshold_pages
    }

    /// The heap's address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// The heap's address space, mutable (SwapVA needs the page table).
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Borrow space and object list together (GC phases iterate objects
    /// while reading memory).
    pub fn space_and_objects(&self) -> (&AddressSpace, &[ObjRef]) {
        (&self.space, &self.objects)
    }

    // ---- object access --------------------------------------------------

    /// Read and decode an object header (costed).
    pub fn read_header(
        &self,
        kernel: &mut Kernel,
        core: CoreId,
        obj: ObjRef,
    ) -> Result<(ObjHeader, Cycles), HeapError> {
        let (raw, t) = kernel.read_word(&self.space, core, obj.header_va())?;
        Ok((ObjHeader::decode(raw), t))
    }

    /// Read reference field `i` (costed).
    pub fn read_ref(
        &self,
        kernel: &mut Kernel,
        core: CoreId,
        obj: ObjRef,
        i: u64,
    ) -> Result<(ObjRef, Cycles), HeapError> {
        let (raw, t) = kernel.read_word(&self.space, core, obj.ref_field_va(i))?;
        Ok((ObjRef(VirtAddr(raw)), t))
    }

    /// Write reference field `i` (costed).
    pub fn write_ref(
        &self,
        kernel: &mut Kernel,
        core: CoreId,
        obj: ObjRef,
        i: u64,
        target: ObjRef,
    ) -> Result<Cycles, HeapError> {
        Ok(kernel.write_word(&self.space, core, obj.ref_field_va(i), target.0.get())?)
    }

    /// Read data word `i` of an object with `num_refs` reference fields
    /// (costed).
    pub fn read_data(
        &self,
        kernel: &mut Kernel,
        core: CoreId,
        obj: ObjRef,
        num_refs: u64,
        i: u64,
    ) -> Result<(u64, Cycles), HeapError> {
        let (v, t) = kernel.read_word(&self.space, core, obj.data_va(num_refs, i))?;
        Ok((v, t))
    }

    /// Write data word `i` (costed).
    pub fn write_data(
        &self,
        kernel: &mut Kernel,
        core: CoreId,
        obj: ObjRef,
        num_refs: u64,
        i: u64,
        val: u64,
    ) -> Result<Cycles, HeapError> {
        Ok(kernel.write_word(&self.space, core, obj.data_va(num_refs, i), val)?)
    }

    /// Physically zero a freshly allocated object's memory, before its
    /// header is written. Production JVMs pre-zero TLAB memory; doing the
    /// same here makes heap content a pure function of mutator writes and
    /// GC moves — never of whatever garbage the region held before — which
    /// is exactly the property the chaos suite's content-hash oracle needs.
    /// Functional write only — allocation cost is modeled by the callers —
    /// except that any far page under the range must be promoted first
    /// (the raw write would otherwise be clobbered by the next
    /// fetch-on-access); those fetch cycles are real and returned.
    fn zero_object(
        &mut self,
        kernel: &mut Kernel,
        at: VirtAddr,
        size: u64,
    ) -> Result<Cycles, HeapError> {
        const ZERO_CHUNK: [u8; 4096] = [0u8; 4096];
        let t = kernel.tier_resolve_write_range(&self.space, at, size)?;
        let mut va = at;
        let mut left = size;
        while left > 0 {
            let n = left.min(ZERO_CHUNK.len() as u64) as usize;
            kernel.vmem.write_bytes(&self.space, va, &ZERO_CHUNK[..n])?;
            va = va + n as u64;
            left -= n as u64;
        }
        Ok(t)
    }

    /// Bulk-initialize an object's data region (uncosted functional write;
    /// returns the bandwidth-modeled cycle cost of producing it).
    pub fn init_data_bulk(
        &self,
        kernel: &mut Kernel,
        obj: ObjRef,
        num_refs: u64,
        bytes: &[u8],
    ) -> Result<Cycles, HeapError> {
        let at = obj.data_va(num_refs, 0);
        let t = kernel.tier_resolve_write_range(&self.space, at, bytes.len() as u64)?;
        kernel.vmem.write_bytes(&self.space, at, bytes)?;
        Ok(t + kernel
            .bandwidth
            .copy_cycles(&kernel.machine, bytes.len() as u64))
    }

    // ---- GC interface ---------------------------------------------------

    /// All objects, sorted by address (GC walks the heap in order).
    pub fn objects_sorted(&mut self) -> &[ObjRef] {
        if !self.sorted {
            self.objects.sort_unstable();
            self.sorted = true;
        }
        &self.objects
    }

    /// Object count.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Capture the host-side allocation state for a transactional GC
    /// cycle. Pair with [`Heap::restore`] on abort.
    pub fn snapshot(&self) -> HeapSnapshot {
        HeapSnapshot {
            top: self.top,
            objects: self.objects.clone(),
            sorted: self.sorted,
            stats: self.stats,
        }
    }

    /// Restore a snapshot taken by [`Heap::snapshot`] (transaction abort).
    pub fn restore(&mut self, snap: HeapSnapshot) {
        self.top = snap.top;
        self.objects = snap.objects;
        self.sorted = snap.sorted;
        self.stats = snap.stats;
    }

    /// The heap's construction parameters.
    pub fn config(&self) -> HeapConfig {
        self.cfg
    }

    /// Dismantle the heap, releasing its address space. Used by the crash
    /// harness: after a simulated crash only the address space (page
    /// tables and contents) is durable — the heap's host-side bookkeeping
    /// is volatile and dies with the process.
    pub fn into_space(self) -> AddressSpace {
        self.space
    }

    /// Rebuild a heap around a surviving address space from recovered
    /// metadata (the crash-recovery path; inverse of [`Heap::into_space`]).
    /// The object list is taken as allocation-ordered but unsorted —
    /// [`Heap::objects_sorted`] re-sorts on first use.
    pub fn rebuild(
        space: AddressSpace,
        base: VirtAddr,
        end: VirtAddr,
        top: VirtAddr,
        cfg: HeapConfig,
        objects: Vec<ObjRef>,
        stats: HeapStats,
    ) -> Heap {
        debug_assert!(base <= top && top <= end);
        // The recovery metadata predates the commit-on-demand flag, so the
        // mapped extent is probed from the surviving page table: committed
        // pages form a contiguous prefix, and a heap whose prefix stops
        // short of `end` was necessarily commit-on-demand.
        let mut committed = base;
        while committed.get() < end.get() && space.translate(committed).is_ok() {
            committed = committed.add_pages(1);
        }
        let mut cfg = cfg;
        if committed.get() < end.get() {
            cfg.commit_on_demand = true;
        }
        Heap {
            space,
            base,
            end,
            top,
            committed,
            cfg,
            objects,
            sorted: false,
            stats,
        }
    }

    /// Replace the object list and cursor after a collection.
    pub fn complete_gc(&mut self, survivors: Vec<ObjRef>, new_top: VirtAddr) {
        debug_assert!(new_top >= self.base && new_top.get() <= self.end.get());
        self.objects = survivors;
        self.sorted = true;
        self.top = new_top;
    }

    /// Number of payload words of an object (`size - header`).
    pub fn payload_words(header: ObjHeader) -> u64 {
        header.size_words as u64 - HEADER_WORDS
    }

    /// Advance the shared cursor to `to` (TLAB reservation), committing
    /// frames up to it first. Callers must have checked capacity.
    pub(crate) fn reserve_to(&mut self, kernel: &mut Kernel, to: VirtAddr) -> Result<(), HeapError> {
        debug_assert!(to >= self.top && to.get() <= self.end.get());
        self.ensure_committed(kernel, to, AllocContext::Tlab)?;
        self.top = to;
        Ok(())
    }

    /// Map a fresh region of `pages` pages in this heap's address space,
    /// outside the heap range (eden spaces, side buffers).
    pub fn map_region(
        &mut self,
        kernel: &mut Kernel,
        pages: u64,
    ) -> Result<VirtAddr, HeapError> {
        // Side regions (eden, buffers) serve the collector: charge them to
        // the GC context so they may dip into the pool's emergency
        // headroom rather than dying at the mutator ceiling.
        let prev = kernel.vmem.frames.context();
        kernel.vmem.frames.set_context(AllocContext::Gc);
        let mapped = kernel.vmem.alloc_region(&mut self.space, pages);
        kernel.vmem.frames.set_context(prev);
        Ok(mapped?)
    }

    /// `IFSWAPALIGN` for external allocators (eden, promotion): where an
    /// object of `shape` placed at `addr` must actually start.
    pub fn align_for(&self, shape: ObjShape, addr: VirtAddr) -> VirtAddr {
        self.if_swap_align(shape, addr)
    }

    /// Reserve space for and adopt an object that an external mover
    /// (promotion) will place at the current cursor. Returns the
    /// destination; the caller moves the object bytes there (header
    /// included) and the heap tracks it from now on.
    pub fn adopt_at_top(&mut self, kernel: &mut Kernel, shape: ObjShape) -> Result<ObjRef, HeapError> {
        let size = shape.size_bytes();
        let aligned = self.if_swap_align(shape, self.top);
        let after = self.if_swap_align(shape, aligned + size);
        if after.get() > self.end.get() {
            return Err(HeapError::NeedGc { requested: size });
        }
        // Promotion runs inside a GC: commit under the GC context.
        self.ensure_committed(kernel, aligned + size, AllocContext::Gc)?;
        let pre_gap = aligned - self.top;
        let post_gap = after - (aligned + size);
        self.top = after;
        let obj = ObjRef(aligned);
        self.objects.push(obj);
        self.sorted = false;
        self.stats.allocations += 1;
        self.stats.bytes_requested += size;
        self.stats.align_waste_bytes += pre_gap + post_gap;
        if self.is_large(shape) {
            self.stats.large_allocations += 1;
        }
        Ok(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_metrics::MachineConfig;

    fn setup(bytes: u64) -> (Kernel, Heap) {
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), bytes + (1 << 20));
        let h = Heap::new(&mut k, Asid(1), HeapConfig::new(bytes)).unwrap();
        (k, h)
    }

    #[test]
    fn small_objects_pack_contiguously() {
        let (mut k, mut h) = setup(1 << 20);
        let (a, _) = h.alloc(&mut k, CoreId(0), ObjShape::data(10)).unwrap();
        let (b, _) = h.alloc(&mut k, CoreId(0), ObjShape::data(10)).unwrap();
        assert_eq!(b.0 - a.0, 12 * 8, "header(2) + data(10) words apart");
        assert_eq!(h.stats.align_waste_bytes, 0);
    }

    #[test]
    fn large_objects_are_page_aligned_both_sides() {
        let (mut k, mut h) = setup(4 << 20);
        // One small object to misalign the cursor.
        h.alloc(&mut k, CoreId(0), ObjShape::data(10)).unwrap();
        let big = ObjShape::data_bytes(11 * PAGE_SIZE); // ≥10-page threshold
        let (obj, _) = h.alloc(&mut k, CoreId(0), big).unwrap();
        assert!(obj.0.is_page_aligned(), "large object must start a page");
        // The cursor after it is page-aligned too (protects the next one).
        assert!(h.top().is_page_aligned());
        let (hdr, _) = h.read_header(&mut k, CoreId(0), obj).unwrap();
        assert!(hdr.is_large());
        assert!(h.stats.align_waste_bytes > 0);
    }

    #[test]
    fn small_objects_are_not_flagged_large() {
        let (mut k, mut h) = setup(1 << 20);
        let (obj, _) = h.alloc(&mut k, CoreId(0), ObjShape::data(100)).unwrap();
        let (hdr, _) = h.read_header(&mut k, CoreId(0), obj).unwrap();
        assert!(!hdr.is_large());
    }

    #[test]
    fn exhaustion_asks_for_gc() {
        let (mut k, mut h) = setup(64 * 1024);
        let shape = ObjShape::data(1000);
        loop {
            match h.alloc(&mut k, CoreId(0), shape) {
                Ok(_) => continue,
                Err(HeapError::NeedGc { requested }) => {
                    assert_eq!(requested, shape.size_bytes());
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(h.free_bytes() < shape.size_bytes());
    }

    #[test]
    fn oversized_request_is_rejected_outright() {
        let (mut k, mut h) = setup(64 * 1024);
        let huge = ObjShape::data_bytes(1 << 20);
        assert!(matches!(
            h.alloc(&mut k, CoreId(0), huge),
            Err(HeapError::TooLarge { .. })
        ));
    }

    #[test]
    fn ref_fields_roundtrip() {
        let (mut k, mut h) = setup(1 << 20);
        let (a, _) = h.alloc(&mut k, CoreId(0), ObjShape::with_refs(2, 4)).unwrap();
        let (b, _) = h.alloc(&mut k, CoreId(0), ObjShape::data(1)).unwrap();
        h.write_ref(&mut k, CoreId(0), a, 0, b).unwrap();
        h.write_ref(&mut k, CoreId(0), a, 1, ObjRef::NULL).unwrap();
        assert_eq!(h.read_ref(&mut k, CoreId(0), a, 0).unwrap().0, b);
        assert!(h.read_ref(&mut k, CoreId(0), a, 1).unwrap().0.is_null());
    }

    #[test]
    fn data_words_roundtrip() {
        let (mut k, mut h) = setup(1 << 20);
        let (a, _) = h.alloc(&mut k, CoreId(0), ObjShape::with_refs(1, 8)).unwrap();
        h.write_data(&mut k, CoreId(0), a, 1, 3, 0xFEED).unwrap();
        assert_eq!(h.read_data(&mut k, CoreId(0), a, 1, 3).unwrap().0, 0xFEED);
        // Data does not clobber the ref field.
        assert!(h.read_ref(&mut k, CoreId(0), a, 0).unwrap().0.is_null());
    }

    #[test]
    fn bulk_init_visible_via_word_reads() {
        let (mut k, mut h) = setup(1 << 20);
        let (a, _) = h.alloc(&mut k, CoreId(0), ObjShape::data(4)).unwrap();
        let bytes: Vec<u8> = 1u64.to_le_bytes().iter().chain(2u64.to_le_bytes().iter()).copied().collect();
        h.init_data_bulk(&mut k, a, 0, &bytes).unwrap();
        assert_eq!(h.read_data(&mut k, CoreId(0), a, 0, 0).unwrap().0, 1);
        assert_eq!(h.read_data(&mut k, CoreId(0), a, 0, 1).unwrap().0, 2);
    }

    #[test]
    fn shared_space_fragmentation_is_bounded() {
        // Direct shared-space allocation interleaving small and large
        // objects is the worst case (every large pays a pre- and post-gap);
        // even so waste stays small relative to heap use. The paper's <5%
        // claim is for the bidirectional-TLAB scheme — asserted in
        // `tlab_fragmentation_meets_paper_claim` below.
        let (mut k, mut h) = setup(64 << 20);
        for i in 0..200u64 {
            h.alloc(&mut k, CoreId(0), ObjShape::data(50 + (i % 97) as u32))
                .unwrap();
            if i % 5 == 0 {
                let big = ObjShape::data_bytes(10 * PAGE_SIZE + (i % 7) * 1000);
                h.alloc(&mut k, CoreId(0), big).unwrap();
            }
        }
        assert!(
            h.stats.frag_ratio() < 0.15,
            "frag ratio {} exceeds worst-case bound",
            h.stats.frag_ratio()
        );
    }

    #[test]
    fn tlab_fragmentation_meets_paper_claim() {
        // With bidirectional TLABs and a 10-page threshold, the paper
        // bounds internal fragmentation at <5% ("statistically up to half a
        // memory page ... for every ten pages or more").
        use crate::tlab::TlabAllocator;
        let (mut k, mut h) = setup(128 << 20);
        let mut alloc = TlabAllocator::new(4 << 20);
        for i in 0..400u64 {
            alloc
                .alloc(&mut h, &mut k, CoreId(0), ObjShape::data(50 + (i % 97) as u32))
                .map(|_| ())
                .or_else(|e| if matches!(e, HeapError::NeedGc { .. }) { Ok(()) } else { Err(e) })
                .unwrap();
            if i % 5 == 0 {
                let big = ObjShape::data_bytes(10 * PAGE_SIZE + (i % 7) * 1000);
                alloc.alloc(&mut h, &mut k, CoreId(0), big).unwrap();
            }
        }
        assert!(
            h.stats.frag_ratio() < 0.05,
            "frag ratio {} exceeds 5%",
            h.stats.frag_ratio()
        );
    }

    #[test]
    fn on_demand_commit_tracks_cursor_and_trims() {
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 8 << 20);
        let cfg = HeapConfig::new(4 << 20).with_commit_on_demand(true);
        let mut h = Heap::new(&mut k, Asid(1), cfg).unwrap();
        assert_eq!(h.committed_pages(), 0, "nothing mapped at construction");
        let before = k.vmem.frames.in_use();
        h.alloc(&mut k, CoreId(0), ObjShape::data_bytes(3 * PAGE_SIZE)).unwrap();
        assert!(h.committed_pages() >= 3);
        assert!(k.vmem.frames.in_use() > before, "frames committed on demand");
        // An empty heap after "GC" gives everything back.
        let committed_before = h.committed_pages();
        h.complete_gc(Vec::new(), h.base());
        let trimmed = h.trim_commit(&mut k).unwrap();
        assert_eq!(trimmed, committed_before);
        assert_eq!(h.committed_pages(), 0);
        assert_eq!(k.vmem.frames.in_use(), before, "all frames returned");
        // Recommitted pages come back zeroed.
        let (obj, _) = h.alloc(&mut k, CoreId(0), ObjShape::data(8)).unwrap();
        assert_eq!(h.read_data(&mut k, CoreId(0), obj, 0, 0).unwrap().0, 0);
    }

    #[test]
    fn on_demand_commit_denial_is_retryable() {
        // Pool quota smaller than the heap: the commit path must surface a
        // typed error and leave the heap consistent for a GC + retry.
        use svagc_vmem::FramePool;
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 8 << 20);
        let pool = FramePool::new(64);
        let lease = pool.register(svagc_vmem::TenantId(1), 16, 4).unwrap();
        k.vmem.frames.attach_lease(lease);
        let cfg = HeapConfig::new(4 << 20).with_commit_on_demand(true);
        let mut h = Heap::new(&mut k, Asid(1), cfg).unwrap();
        // Mutator budget = 12 frames: the 13th page of commit is denied.
        let big = ObjShape::data_bytes(13 * PAGE_SIZE);
        let top_before = h.top();
        match h.alloc(&mut k, CoreId(0), big) {
            Err(HeapError::Vm(VmError::QuotaExceeded { tenant: 1, .. })) => {}
            other => panic!("expected quota denial, got {other:?}"),
        }
        assert_eq!(h.top(), top_before, "denied alloc must not move the cursor");
        assert_eq!(h.object_count(), 0);
        // Within budget still works.
        h.alloc(&mut k, CoreId(0), ObjShape::data_bytes(4 * PAGE_SIZE)).unwrap();
    }

    #[test]
    fn objects_sorted_is_address_ordered() {
        let (mut k, mut h) = setup(4 << 20);
        for _ in 0..50 {
            h.alloc(&mut k, CoreId(0), ObjShape::data(7)).unwrap();
        }
        let objs = h.objects_sorted();
        assert!(objs.windows(2).all(|w| w[0] < w[1]));
    }
}
