//! The managed heap of the SVAGC reproduction.
//!
//! Implements the JVM-side substrate the paper modifies: an Epsilon-style
//! bump heap ([`heap::Heap`]) with Algorithm 3's SwapVA-aware allocator
//! (page-aligned large objects, aligned-after protection of neighbours),
//! bidirectional TLABs ([`tlab`]) that keep small and large objects from
//! fragmenting each other, a self-describing object model ([`object`]) that
//! really lives in simulated memory, a mark bitmap ([`bitmap`]), and GC
//! roots ([`roots`]). The [`verify`] module adds a post-phase heap verifier
//! used as the oracle for fault-injection (chaos) testing.

#![warn(missing_docs)]

pub mod bitmap;
pub mod cards;
pub mod genheap;
pub mod heap;
pub mod object;
pub mod roots;
pub mod satb;
pub mod tlab;
pub mod verify;

pub use bitmap::MarkBitmap;
pub use cards::{CardTable, CARD_BYTES};
pub use genheap::GenHeap;
pub use heap::{Heap, HeapConfig, HeapError, HeapSnapshot, HeapStats};
pub use object::{ObjHeader, ObjRef, ObjShape, FLAG_LARGE, HEADER_WORDS};
pub use roots::{RootId, RootSet};
pub use satb::SatbBuffer;
pub use tlab::{Tlab, TlabAllocator};
pub use verify::{HeapVerifier, VerifyReport, Violation};
