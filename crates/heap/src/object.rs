//! The managed object model.
//!
//! Objects live *in simulated memory* and are self-describing, so GC phases
//! genuinely read/write them through the kernel's costed access path:
//!
//! ```text
//! word 0: header  [ size_words:32 | num_refs:24 | flags:8 ]
//! word 1: forwarding address (raw VirtAddr; 0 = none)
//! word 2..2+num_refs: reference fields (raw VirtAddr of target, 0 = null)
//! rest:   data words
//! ```
//!
//! `size_words` includes the 2-word header. A reference always points at a
//! target object's word 0.

use svagc_vmem::{VirtAddr, WORD_BYTES};

/// Words of header before the payload.
pub const HEADER_WORDS: u64 = 2;
/// Flag bit: object was allocated page-aligned as a SwapVA candidate.
pub const FLAG_LARGE: u8 = 1 << 0;

/// A reference to a managed object (the virtual address of its header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjRef(pub VirtAddr);

impl ObjRef {
    /// The null reference.
    pub const NULL: ObjRef = ObjRef(VirtAddr(0));

    /// Is this the null reference?
    #[inline]
    pub fn is_null(self) -> bool {
        self.0.get() == 0
    }

    /// Address of the header word.
    #[inline]
    pub fn header_va(self) -> VirtAddr {
        self.0
    }

    /// Address of the forwarding word.
    #[inline]
    pub fn forwarding_va(self) -> VirtAddr {
        self.0 + WORD_BYTES
    }

    /// Address of reference field `i`.
    #[inline]
    pub fn ref_field_va(self, i: u64) -> VirtAddr {
        self.0 + (HEADER_WORDS + i) * WORD_BYTES
    }

    /// Address of data word `i` (after `num_refs` reference fields).
    #[inline]
    pub fn data_va(self, num_refs: u64, i: u64) -> VirtAddr {
        self.0 + (HEADER_WORDS + num_refs + i) * WORD_BYTES
    }
}

/// Decoded header word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjHeader {
    /// Total size in words, header included.
    pub size_words: u32,
    /// Number of leading reference fields in the payload.
    pub num_refs: u32,
    /// Flag bits ([`FLAG_LARGE`], …).
    pub flags: u8,
}

impl ObjHeader {
    /// Pack into the raw header word.
    #[inline]
    pub fn encode(self) -> u64 {
        debug_assert!(self.num_refs < (1 << 24));
        (self.size_words as u64)
            | ((self.num_refs as u64) << 32)
            | ((self.flags as u64) << 56)
    }

    /// Decode from the raw header word.
    #[inline]
    pub fn decode(raw: u64) -> ObjHeader {
        ObjHeader {
            size_words: raw as u32,
            num_refs: ((raw >> 32) & 0xff_ffff) as u32,
            flags: (raw >> 56) as u8,
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn size_bytes(self) -> u64 {
        self.size_words as u64 * WORD_BYTES
    }

    /// Was the object allocated as a page-aligned SwapVA candidate?
    #[inline]
    pub fn is_large(self) -> bool {
        self.flags & FLAG_LARGE != 0
    }
}

/// The shape requested at allocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjShape {
    /// Number of reference fields.
    pub num_refs: u32,
    /// Number of (non-reference) data words.
    pub data_words: u32,
}

impl ObjShape {
    /// A leaf object with `data_words` words and no references.
    pub fn data(data_words: u32) -> ObjShape {
        ObjShape {
            num_refs: 0,
            data_words,
        }
    }

    /// A leaf object of roughly `bytes` bytes of data.
    pub fn data_bytes(bytes: u64) -> ObjShape {
        ObjShape::data((bytes.div_ceil(WORD_BYTES)) as u32)
    }

    /// An object with `num_refs` references and `data_words` data words.
    pub fn with_refs(num_refs: u32, data_words: u32) -> ObjShape {
        ObjShape {
            num_refs,
            data_words,
        }
    }

    /// Total size in words (header included).
    #[inline]
    pub fn size_words(self) -> u32 {
        HEADER_WORDS as u32 + self.num_refs + self.data_words
    }

    /// Total size in bytes.
    #[inline]
    pub fn size_bytes(self) -> u64 {
        self.size_words() as u64 * WORD_BYTES
    }

    /// The header this shape produces (before flags are applied).
    pub fn header(self) -> ObjHeader {
        ObjHeader {
            size_words: self.size_words(),
            num_refs: self.num_refs,
            flags: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = ObjHeader {
            size_words: 123_456,
            num_refs: 7_890,
            flags: FLAG_LARGE,
        };
        assert_eq!(ObjHeader::decode(h.encode()), h);
        assert!(ObjHeader::decode(h.encode()).is_large());
    }

    #[test]
    fn header_roundtrip_extremes() {
        let h = ObjHeader {
            size_words: u32::MAX,
            num_refs: (1 << 24) - 1,
            flags: 0xff,
        };
        assert_eq!(ObjHeader::decode(h.encode()), h);
    }

    #[test]
    fn shape_sizes() {
        let s = ObjShape::with_refs(3, 10);
        assert_eq!(s.size_words(), 15);
        assert_eq!(s.size_bytes(), 120);
        assert_eq!(ObjShape::data_bytes(100).data_words, 13);
    }

    #[test]
    fn field_addresses() {
        let o = ObjRef(VirtAddr(0x1000));
        assert_eq!(o.header_va(), VirtAddr(0x1000));
        assert_eq!(o.forwarding_va(), VirtAddr(0x1008));
        assert_eq!(o.ref_field_va(0), VirtAddr(0x1010));
        assert_eq!(o.ref_field_va(2), VirtAddr(0x1020));
        assert_eq!(o.data_va(2, 0), VirtAddr(0x1020));
        assert_eq!(o.data_va(0, 1), VirtAddr(0x1018));
    }

    #[test]
    fn null_ref() {
        assert!(ObjRef::NULL.is_null());
        assert!(!ObjRef(VirtAddr(8)).is_null());
    }
}
