//! GC roots.
//!
//! Workloads hold their live data through root slots (stand-ins for stacks,
//! statics, and JNI handles). The GC traces from these and rewrites them
//! after objects move.

use crate::object::ObjRef;

/// Index of a root slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootId(pub usize);

/// A mutable set of root slots.
#[derive(Debug, Default)]
pub struct RootSet {
    slots: Vec<ObjRef>,
}

impl RootSet {
    /// Empty root set.
    pub fn new() -> RootSet {
        RootSet::default()
    }

    /// Add a root; returns its stable slot id.
    pub fn push(&mut self, obj: ObjRef) -> RootId {
        self.slots.push(obj);
        RootId(self.slots.len() - 1)
    }

    /// Read a slot.
    pub fn get(&self, id: RootId) -> ObjRef {
        self.slots[id.0]
    }

    /// Overwrite a slot (workload dropping or retargeting a reference;
    /// `ObjRef::NULL` kills the root).
    pub fn set(&mut self, id: RootId, obj: ObjRef) {
        self.slots[id.0] = obj;
    }

    /// All non-null roots.
    pub fn iter_live(&self) -> impl Iterator<Item = ObjRef> + '_ {
        self.slots.iter().copied().filter(|r| !r.is_null())
    }

    /// Mutable access for the GC's adjust phase.
    pub fn slots_mut(&mut self) -> &mut [ObjRef] {
        &mut self.slots
    }

    /// Number of slots (live or null).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Any slots at all?
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of live (non-null) roots.
    pub fn live_count(&self) -> usize {
        self.iter_live().count()
    }

    /// Copy of all slots, for a transactional GC cycle's pre-state. Pair
    /// with [`RootSet::restore`] on abort.
    pub fn snapshot(&self) -> Vec<ObjRef> {
        self.slots.clone()
    }

    /// Restore slots captured by [`RootSet::snapshot`]. Slots pushed since
    /// the snapshot are dropped (GC cycles never push roots, so within a
    /// transaction the lengths always match).
    pub fn restore(&mut self, slots: Vec<ObjRef>) {
        self.slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_vmem::VirtAddr;

    #[test]
    fn push_get_set() {
        let mut r = RootSet::new();
        let a = ObjRef(VirtAddr(0x1000));
        let id = r.push(a);
        assert_eq!(r.get(id), a);
        r.set(id, ObjRef::NULL);
        assert!(r.get(id).is_null());
        assert_eq!(r.len(), 1);
        assert_eq!(r.live_count(), 0);
    }

    #[test]
    fn iter_live_skips_nulls() {
        let mut r = RootSet::new();
        r.push(ObjRef(VirtAddr(0x1000)));
        let dead = r.push(ObjRef(VirtAddr(0x2000)));
        r.push(ObjRef(VirtAddr(0x3000)));
        r.set(dead, ObjRef::NULL);
        let live: Vec<_> = r.iter_live().collect();
        assert_eq!(live.len(), 2);
        assert!(!live.contains(&ObjRef(VirtAddr(0x2000))));
    }
}
