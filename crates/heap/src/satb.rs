//! Snapshot-at-the-beginning (SATB) deletion-barrier buffers.
//!
//! Concurrent marking traces the heap as it was when the cycle's snapshot
//! was taken (the initial-mark pause). A mutator running during the trace
//! can hide a live object from the collector by overwriting the only
//! reference to it; the SATB discipline closes that hole with a *deletion
//! barrier*: before a reference field is overwritten, the old value is
//! logged into a per-tenant buffer. The final-mark pause drains the buffer
//! and treats every logged reference as a mark root — anything reachable
//! at the snapshot stays reachable by the collector, at the price of some
//! floating garbage (objects that died mid-cycle survive one extra GC).
//!
//! The buffer is plain host-side metadata (like the mark bitmap): logging
//! cost is modeled by the collector's write-barrier hook, not here.

use crate::object::ObjRef;

/// A per-tenant SATB log of overwritten references.
#[derive(Debug, Clone, Default)]
pub struct SatbBuffer {
    entries: Vec<ObjRef>,
    logged_total: u64,
}

impl SatbBuffer {
    /// An empty buffer.
    pub fn new() -> SatbBuffer {
        SatbBuffer::default()
    }

    /// Log one overwritten reference. Callers filter nulls and
    /// out-of-heap values; the buffer stores whatever it is given.
    pub fn log(&mut self, old: ObjRef) {
        self.entries.push(old);
        self.logged_total += 1;
    }

    /// Entries currently buffered (not yet drained).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every entry ever logged, including drained ones (stats).
    pub fn logged_total(&self) -> u64 {
        self.logged_total
    }

    /// Take all buffered entries, leaving the buffer empty (the
    /// final-mark drain). The lifetime total is unaffected.
    pub fn drain(&mut self) -> Vec<ObjRef> {
        std::mem::take(&mut self.entries)
    }

    /// Peek at the buffered entries without draining.
    pub fn entries(&self) -> &[ObjRef] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_vmem::VirtAddr;

    #[test]
    fn log_drain_and_totals() {
        let mut b = SatbBuffer::new();
        assert!(b.is_empty());
        b.log(ObjRef(VirtAddr(0x1000)));
        b.log(ObjRef(VirtAddr(0x2000)));
        assert_eq!(b.len(), 2);
        assert_eq!(b.logged_total(), 2);
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.logged_total(), 2, "lifetime total survives the drain");
        b.log(ObjRef(VirtAddr(0x3000)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.logged_total(), 3);
    }
}
