//! Bidirectional thread-local allocation buffers.
//!
//! §IV ("Memory Fragmentation Issue"): page-aligning large objects inside a
//! TLAB would sprinkle gaps between small and large neighbours. The paper's
//! fix is to allocate *small objects front-to-back and large page-aligned
//! objects back-to-front* within each TLAB, so each species stays packed
//! and external fragmentation between them disappears.

use crate::heap::{Heap, HeapError};
use crate::object::{ObjRef, ObjShape};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::Cycles;
use svagc_vmem::VirtAddr;

/// One thread's allocation buffer.
#[derive(Debug)]
pub struct Tlab {
    start: VirtAddr,
    end: VirtAddr,
    /// Small-object cursor, grows upward from `start`.
    small_top: VirtAddr,
    /// Large-object cursor, grows downward from `end` (page-aligned).
    large_bottom: VirtAddr,
    /// Alignment waste attributed to this TLAB.
    waste: u64,
}

impl Tlab {
    /// Carve a TLAB of `bytes` from the heap's shared space.
    pub fn new(heap: &mut Heap, kernel: &mut Kernel, core: CoreId, bytes: u64) -> Result<(Tlab, Cycles), HeapError> {
        // A TLAB is just a heap range reservation: allocate a filler region
        // by bumping the shared cursor via a raw data "object" would pollute
        // the object list, so reserve directly.
        let _ = core;
        let start = heap.top();
        let end = VirtAddr(start.get() + bytes);
        if end.get() > heap.end().get() {
            return Err(HeapError::NeedGc { requested: bytes });
        }
        heap.reserve_to(kernel, end)?;
        Ok((
            Tlab {
                start,
                end,
                small_top: start,
                large_bottom: end.align_down(),
                waste: 0,
            },
            Cycles(60), // TLAB refill bookkeeping
        ))
    }

    /// Remaining contiguous space for small objects.
    pub fn small_free(&self) -> u64 {
        self.large_bottom.get().saturating_sub(self.small_top.get())
    }

    /// Try to place `shape`; `None` means the TLAB is too full and the
    /// caller must refill or fall back to the shared space.
    pub fn try_place(&mut self, shape: ObjShape, large_threshold_bytes: u64) -> Option<(VirtAddr, bool, u64)> {
        let size = shape.size_bytes();
        if size >= large_threshold_bytes {
            // Back-to-front, page-aligned start, and the object must end at
            // or before the previous large object's start. Align the end
            // limit *before* carving the start: subtracting `size` first and
            // only then aligning the result would let `checked_sub` succeed
            // against an unaligned limit while `start + size` lands past it,
            // underlapping the prior reservation and mis-charging `waste`
            // against the unaligned end.
            let end_limit = self.large_bottom.align_down();
            let start = VirtAddr(end_limit.get().checked_sub(size)?).align_down();
            if start < self.small_top {
                return None;
            }
            debug_assert!(
                start + size <= end_limit,
                "aligned large placement [{start:?}, +{size}) crosses the previous reservation at {end_limit:?}"
            );
            let waste = self.large_bottom - (start + size);
            self.waste += waste;
            self.large_bottom = start;
            Some((start, true, waste))
        } else {
            let start = self.small_top;
            let end = start + size;
            if end.get() > self.large_bottom.get() {
                return None;
            }
            self.small_top = end;
            Some((start, false, 0))
        }
    }

    /// Bytes never used (dead remainder when the TLAB retires).
    pub fn remainder(&self) -> u64 {
        self.small_free()
    }

    /// Alignment waste accrued inside this TLAB.
    pub fn waste(&self) -> u64 {
        self.waste
    }

    /// TLAB bounds (tests).
    pub fn bounds(&self) -> (VirtAddr, VirtAddr) {
        (self.start, self.end)
    }
}

/// A mutator-thread allocator: small/large split inside a TLAB, refill on
/// exhaustion, shared-space fallback for objects bigger than a TLAB.
#[derive(Debug)]
pub struct TlabAllocator {
    tlab: Option<Tlab>,
    tlab_bytes: u64,
    /// Dead remainders of retired TLABs (external fragmentation).
    pub retired_waste: u64,
}

impl TlabAllocator {
    /// Allocator with `tlab_bytes` buffers.
    pub fn new(tlab_bytes: u64) -> TlabAllocator {
        TlabAllocator {
            tlab: None,
            tlab_bytes,
            retired_waste: 0,
        }
    }

    /// Allocate `shape`, refilling the TLAB as needed.
    pub fn alloc(
        &mut self,
        heap: &mut Heap,
        kernel: &mut Kernel,
        core: CoreId,
        shape: ObjShape,
    ) -> Result<(ObjRef, Cycles), HeapError> {
        let threshold = heap.threshold_pages() * svagc_vmem::PAGE_SIZE;
        // Objects above an eighth of a TLAB go to the shared space
        // directly (as HotSpot does) — they would waste big TLAB
        // remainders otherwise.
        if shape.size_bytes() >= self.tlab_bytes / 8 {
            return heap.alloc(kernel, core, shape);
        }
        let mut total = Cycles::ZERO;
        for _attempt in 0..2 {
            if let Some(tlab) = self.tlab.as_mut() {
                if let Some((at, large, waste)) = tlab.try_place(shape, threshold) {
                    let (obj, t) = heap.register_at(kernel, core, at, shape, large, waste)?;
                    return Ok((obj, total + t));
                }
                // Retire and refill.
                self.retired_waste += tlab.remainder();
                self.tlab = None;
            }
            let (tlab, t) = match Tlab::new(heap, kernel, core, self.tlab_bytes) {
                Ok(v) => v,
                Err(HeapError::Vm(svagc_vmem::VmError::QuotaExceeded { .. })) => {
                    // Near a frame-quota edge a whole-TLAB reservation can
                    // be denied while the object itself still fits. Fall
                    // back to a shared-space allocation; if even that is
                    // denied, its error carries the *minimal* unsatisfiable
                    // request, which is what a pressure ladder should see.
                    // (Plain heap exhaustion keeps propagating as `NeedGc`
                    // — that is the GC trigger, not a pressure condition.)
                    let (obj, t) = heap.alloc(kernel, core, shape)?;
                    return Ok((obj, total + t));
                }
                Err(e) => return Err(e),
            };
            total += t;
            self.tlab = Some(tlab);
        }
        unreachable!("a fresh TLAB always fits a sub-TLAB-sized object");
    }

    /// Drop the current TLAB (e.g. before a GC, which invalidates cursors).
    pub fn retire(&mut self) {
        if let Some(t) = self.tlab.take() {
            self.retired_waste += t.remainder();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::{Asid, PAGE_SIZE};

    fn setup(bytes: u64) -> (Kernel, Heap) {
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), bytes + (1 << 20));
        let h = Heap::new(&mut k, Asid(1), HeapConfig::new(bytes)).unwrap();
        (k, h)
    }

    #[test]
    fn small_and_large_grow_toward_each_other() {
        let (mut k, mut h) = setup(8 << 20);
        let (mut tlab, _) = Tlab::new(&mut h, &mut k, CoreId(0), 2 << 20).unwrap();
        let threshold = 10 * PAGE_SIZE;
        let (s1, large1, _) = tlab.try_place(ObjShape::data(10), threshold).unwrap();
        let (s2, _, _) = tlab.try_place(ObjShape::data(10), threshold).unwrap();
        assert!(!large1);
        assert!(s2 > s1, "small objects grow upward");
        let big = ObjShape::data_bytes(10 * PAGE_SIZE);
        let (l1, large2, _) = tlab.try_place(big, threshold).unwrap();
        let (l2, _, _) = tlab.try_place(big, threshold).unwrap();
        assert!(large2);
        assert!(l1.is_page_aligned() && l2.is_page_aligned());
        assert!(l2 < l1, "large objects grow downward");
        assert!(l2 > s2, "species must not collide");
    }

    #[test]
    fn collision_returns_none() {
        let (mut k, mut h) = setup(8 << 20);
        let (mut tlab, _) = Tlab::new(&mut h, &mut k, CoreId(0), 64 * 1024).unwrap();
        let threshold = 4 * PAGE_SIZE;
        // Fill with exactly-4-page objects (header included) until refusal.
        let big = ObjShape::data(4 * 512 - 2);
        assert_eq!(big.size_bytes(), 4 * PAGE_SIZE);
        let mut n = 0;
        while tlab.try_place(big, threshold).is_some() {
            n += 1;
        }
        assert_eq!(n, 4, "64 KiB TLAB holds four 16 KiB aligned objects");
        // Small allocations can still use the front until it collides.
        assert!(tlab.try_place(ObjShape::data(10), threshold).is_none() || tlab.small_free() > 0);
    }

    #[test]
    fn allocator_refills_and_separates_species() {
        let (mut k, mut h) = setup(32 << 20);
        let mut alloc = TlabAllocator::new(1 << 20);
        let mut smalls = Vec::new();
        let mut larges = Vec::new();
        for i in 0..300u64 {
            if i % 10 == 0 {
                let big = ObjShape::data_bytes(10 * PAGE_SIZE);
                larges.push(alloc.alloc(&mut h, &mut k, CoreId(0), big).unwrap().0);
            } else {
                smalls.push(
                    alloc
                        .alloc(&mut h, &mut k, CoreId(0), ObjShape::data(64))
                        .unwrap()
                        .0,
                );
            }
        }
        assert_eq!(h.object_count(), 300);
        for l in &larges {
            assert!(l.0.is_page_aligned());
        }
    }

    #[test]
    fn unaligned_large_sizes_never_cross_the_previous_reservation() {
        // Regression: carving the start by subtracting `size` first and
        // aligning afterwards must still keep `start + size` at or below
        // the previous large object's (aligned) start, with the waste
        // charged to the gap left behind.
        let (mut k, mut h) = setup(16 << 20);
        let (mut tlab, _) = Tlab::new(&mut h, &mut k, CoreId(0), 2 << 20).unwrap();
        let threshold = 4 * PAGE_SIZE;
        let mut prev_bottom = tlab.bounds().1.align_down();
        let mut waste_sum = 0u64;
        for extra in [8u64, 24, 4000, 16, 4088] {
            let shape = ObjShape::data_bytes(4 * PAGE_SIZE + extra - 16);
            let size = shape.size_bytes();
            let (start, large, waste) = tlab.try_place(shape, threshold).unwrap();
            assert!(large && start.is_page_aligned());
            assert!(
                start + size <= prev_bottom,
                "placement [{start:?}, +{size}) crosses the previous reservation at {prev_bottom:?}"
            );
            assert_eq!(waste, prev_bottom - (start + size));
            waste_sum += waste;
            prev_bottom = start;
        }
        assert_eq!(tlab.waste(), waste_sum);
    }

    #[test]
    fn oversized_objects_bypass_tlab() {
        let (mut k, mut h) = setup(32 << 20);
        let mut alloc = TlabAllocator::new(256 * 1024);
        let huge = ObjShape::data_bytes(1 << 20);
        let (obj, _) = alloc.alloc(&mut h, &mut k, CoreId(0), huge).unwrap();
        assert!(obj.0.is_page_aligned(), "shared-space large path aligns");
    }

    #[test]
    fn tlab_exhaustion_propagates_need_gc() {
        let (mut k, mut h) = setup(1 << 20);
        let mut alloc = TlabAllocator::new(512 * 1024);
        let shape = ObjShape::data(1024);
        let mut got_need_gc = false;
        for _ in 0..1000 {
            match alloc.alloc(&mut h, &mut k, CoreId(0), shape) {
                Ok(_) => {}
                Err(HeapError::NeedGc { .. }) => {
                    got_need_gc = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(got_need_gc);
    }
}
