//! Post-phase heap verification: the oracle for chaos testing.
//!
//! [`HeapVerifier`] walks the heap *functionally* — through uncosted
//! `vmem` reads, never the charged `Kernel::read_word` path — so invoking
//! it perturbs no cycle, perf, TLB, or cache accounting: a verified run
//! reports the same numbers as an unverified one.
//!
//! Four check groups, one per LISP2 phase:
//!
//! * **layout** — objects sorted, non-overlapping, in-bounds, headers
//!   decodable, large objects page-aligned (Algorithm 3's invariant).
//! * **marks** — reachability recomputed from the roots agrees exactly
//!   with the mark bitmap (no lost objects, no resurrected garbage).
//! * **forwarding** — destinations ascend, never overlap, never move an
//!   object upward, and preserve SwapVA alignment for large objects.
//! * **post-compact** — layout holds for survivors, forwarding words are
//!   cleared, every root and reference field targets a survivor header,
//!   and the allocation cursor (TLAB boundary) sits past the last object.
//!
//! [`HeapVerifier::content_hash`] folds every live object's address,
//! header, and payload into one FNV-1a hash: two heaps hash equal iff the
//! live data is bit-identical at identical addresses — the property the
//! chaos suite asserts between faulty and fault-free runs.

use crate::bitmap::MarkBitmap;
use crate::heap::Heap;
use crate::object::{ObjHeader, ObjRef, HEADER_WORDS};
use crate::roots::RootSet;
use std::collections::HashSet;
use svagc_kernel::Kernel;
use svagc_vmem::VirtAddr;

/// One broken invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the invariant that failed.
    pub invariant: &'static str,
    /// Address the violation was detected at.
    pub at: VirtAddr,
    /// Human-readable specifics.
    pub detail: String,
}

/// Outcome of one verification pass.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Which check group ran.
    pub phase: &'static str,
    /// Objects examined.
    pub checked: usize,
    /// Broken invariants found (capped at the verifier's limit).
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// No violations found?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The verifier. Stateless between calls; `max_violations` caps how many
/// violations a single pass records (the first is what matters).
#[derive(Debug, Clone)]
pub struct HeapVerifier {
    /// Stop recording after this many violations.
    pub max_violations: usize,
}

impl Default for HeapVerifier {
    fn default() -> HeapVerifier {
        HeapVerifier { max_violations: 16 }
    }
}

/// Context shared by the check groups: functional reads + violation sink.
struct Checker<'a> {
    kernel: &'a Kernel,
    report: VerifyReport,
    cap: usize,
}

impl<'a> Checker<'a> {
    fn new(kernel: &'a Kernel, phase: &'static str, cap: usize) -> Checker<'a> {
        Checker {
            kernel,
            report: VerifyReport {
                phase,
                checked: 0,
                violations: Vec::new(),
            },
            cap,
        }
    }

    fn violate(&mut self, invariant: &'static str, at: VirtAddr, detail: String) {
        if self.report.violations.len() < self.cap {
            self.report.violations.push(Violation {
                invariant,
                at,
                detail,
            });
        }
    }

    /// Uncosted functional read (tier-aware: a demoted page's word is
    /// served from its far-device slot without promoting it or rolling
    /// the device fault plan); an unmapped address is itself a violation.
    fn read(&mut self, heap: &Heap, va: VirtAddr) -> Option<u64> {
        match self.kernel.read_u64_tiered(heap.space(), va) {
            Ok(v) => Some(v),
            Err(e) => {
                self.violate("heap-word-mapped", va, format!("read failed: {e}"));
                None
            }
        }
    }

    fn read_header(&mut self, heap: &Heap, obj: ObjRef) -> Option<ObjHeader> {
        let raw = self.read(heap, obj.header_va())?;
        let hdr = ObjHeader::decode(raw);
        if (hdr.size_words as u64) < HEADER_WORDS {
            self.violate(
                "header-decodable",
                obj.header_va(),
                format!("size_words {} < header size {HEADER_WORDS}", hdr.size_words),
            );
            return None;
        }
        Some(hdr)
    }
}

impl HeapVerifier {
    /// A verifier with the default violation cap.
    pub fn new() -> HeapVerifier {
        HeapVerifier::default()
    }

    /// Layout invariants over the heap's current object list: ascending,
    /// non-overlapping, in `[base, top]`, decodable headers, large objects
    /// page-aligned.
    pub fn verify_layout(&self, kernel: &Kernel, heap: &mut Heap) -> VerifyReport {
        let mut c = Checker::new(kernel, "layout", self.max_violations);
        let (base, top) = (heap.base(), heap.top());
        let objects: Vec<ObjRef> = heap.objects_sorted().to_vec();
        let mut prev_end = base;
        for obj in objects {
            c.report.checked += 1;
            if obj.0 < base || obj.0 >= top {
                c.violate(
                    "object-in-heap-bounds",
                    obj.0,
                    format!("object outside [{base}, {top})"),
                );
                continue;
            }
            let Some(hdr) = c.read_header(heap, obj) else {
                continue;
            };
            let end = obj.0 + hdr.size_bytes();
            if end > top {
                c.violate(
                    "object-in-heap-bounds",
                    obj.0,
                    format!("object end {end} past allocation cursor {top}"),
                );
            }
            if obj.0 < prev_end {
                c.violate(
                    "objects-non-overlapping",
                    obj.0,
                    format!("object starts before previous object's end {prev_end}"),
                );
            }
            if hdr.is_large() && !obj.0.is_page_aligned() {
                c.violate(
                    "large-object-page-aligned",
                    obj.0,
                    "large (SwapVA-eligible) object not page-aligned".to_string(),
                );
            }
            prev_end = end;
        }
        c.report
    }

    /// Mark-phase oracle: recompute reachability from the roots with
    /// functional reads and require exact agreement with the bitmap —
    /// every reachable object marked, every mark on a reachable object's
    /// header.
    pub fn verify_marks(
        &self,
        kernel: &Kernel,
        heap: &mut Heap,
        bitmap: &MarkBitmap,
        roots: &RootSet,
    ) -> VerifyReport {
        let mut c = Checker::new(kernel, "mark", self.max_violations);
        let headers: HashSet<VirtAddr> =
            heap.objects_sorted().iter().map(|o| o.header_va()).collect();

        // Recompute the live set.
        let mut reachable: HashSet<VirtAddr> = HashSet::new();
        let mut stack: Vec<ObjRef> = Vec::new();
        for r in roots.iter_live() {
            if heap.contains(r.0) && reachable.insert(r.header_va()) {
                stack.push(r);
            }
        }
        while let Some(obj) = stack.pop() {
            c.report.checked += 1;
            let Some(hdr) = c.read_header(heap, obj) else {
                continue;
            };
            for i in 0..hdr.num_refs as u64 {
                let Some(raw) = c.read(heap, obj.ref_field_va(i)) else {
                    continue;
                };
                let tgt = ObjRef(VirtAddr(raw));
                if !tgt.is_null() && heap.contains(tgt.0) && reachable.insert(tgt.header_va()) {
                    stack.push(tgt);
                }
            }
        }

        for &hv in &reachable {
            if !bitmap.is_marked(hv) {
                c.violate(
                    "reachable-implies-marked",
                    hv,
                    "live object missing from mark bitmap (would be lost)".to_string(),
                );
            }
        }
        for hv in bitmap.iter_marked() {
            if !headers.contains(&hv) {
                c.violate(
                    "mark-on-object-header",
                    hv,
                    "mark bit set on an address that is no object header".to_string(),
                );
            } else if !reachable.contains(&hv) {
                c.violate(
                    "marked-implies-reachable",
                    hv,
                    "unreachable object marked (garbage resurrected)".to_string(),
                );
            }
        }
        c.report
    }

    /// Forward-phase oracle: walk marked objects in address order and
    /// check their forwarding words describe a valid slide — destinations
    /// ascend from heap base, never overlap, never exceed the source, and
    /// keep large objects page-aligned.
    pub fn verify_forwarding(
        &self,
        kernel: &Kernel,
        heap: &mut Heap,
        bitmap: &MarkBitmap,
    ) -> VerifyReport {
        let mut c = Checker::new(kernel, "forward", self.max_violations);
        let objects: Vec<ObjRef> = heap.objects_sorted().to_vec();
        let base = heap.base();
        let mut next_free = base;
        for obj in objects {
            if !bitmap.is_marked(obj.header_va()) {
                continue;
            }
            c.report.checked += 1;
            let Some(hdr) = c.read_header(heap, obj) else {
                continue;
            };
            let Some(raw) = c.read(heap, obj.forwarding_va()) else {
                continue;
            };
            let dst = VirtAddr(raw);
            if dst < base || dst > obj.0 {
                c.violate(
                    "forwarding-slides-down",
                    obj.0,
                    format!("destination {dst} outside [{base}, src {}]", obj.0),
                );
                continue;
            }
            if dst < next_free {
                c.violate(
                    "forwarding-non-overlapping",
                    obj.0,
                    format!("destination {dst} overlaps previous destination end {next_free}"),
                );
            }
            if hdr.is_large() && !dst.is_page_aligned() {
                c.violate(
                    "forwarding-preserves-alignment",
                    obj.0,
                    format!("large object forwarded to unaligned {dst}"),
                );
            }
            next_free = dst + hdr.size_bytes();
        }
        c.report
    }

    /// Post-compact oracle: survivors form a valid layout, forwarding
    /// words are cleared, roots and reference fields all target survivor
    /// headers, and the allocation cursor covers the last survivor (the
    /// TLAB boundary invariant — the next TLAB must start past live data).
    pub fn verify_post_compact(
        &self,
        kernel: &Kernel,
        heap: &mut Heap,
        roots: &RootSet,
    ) -> VerifyReport {
        let mut report = self.verify_layout(kernel, heap);
        report.phase = "compact";
        let mut c = Checker::new(kernel, "compact", self.max_violations);
        c.report = report;

        let survivors: Vec<ObjRef> = heap.objects_sorted().to_vec();
        let headers: HashSet<VirtAddr> = survivors.iter().map(|o| o.header_va()).collect();
        let (base, top, end) = (heap.base(), heap.top(), heap.end());

        if top > end {
            c.violate(
                "tlab-boundary",
                top,
                format!("allocation cursor {top} past heap end {end}"),
            );
        }
        if let Some(last) = survivors.last() {
            if let Some(hdr) = c.read_header(heap, *last) {
                let live_end = last.0 + hdr.size_bytes();
                if live_end > top {
                    c.violate(
                        "tlab-boundary",
                        last.0,
                        format!(
                            "last survivor ends at {live_end}, past allocation cursor {top} — \
                             the next TLAB would overwrite live data"
                        ),
                    );
                }
            }
        }

        for (i, slot) in roots.iter_live().enumerate() {
            if heap.contains(slot.0) && !headers.contains(&slot.header_va()) {
                c.violate(
                    "root-targets-survivor",
                    slot.0,
                    format!("root {i} points at {}, which is no survivor header", slot.0),
                );
            }
        }

        for obj in survivors {
            let Some(hdr) = c.read_header(heap, obj) else {
                continue;
            };
            if let Some(fwd) = c.read(heap, obj.forwarding_va()) {
                if fwd != 0 {
                    c.violate(
                        "forwarding-cleared",
                        obj.0,
                        format!("forwarding word still holds {fwd:#x} after compaction"),
                    );
                }
            }
            for i in 0..hdr.num_refs as u64 {
                let Some(raw) = c.read(heap, obj.ref_field_va(i)) else {
                    continue;
                };
                let tgt = ObjRef(VirtAddr(raw));
                if tgt.is_null() {
                    continue;
                }
                if heap.contains(tgt.0) && !headers.contains(&tgt.header_va()) {
                    c.violate(
                        "ref-targets-survivor",
                        obj.ref_field_va(i),
                        format!("field {i} points at {}, which is no survivor header", tgt.0),
                    );
                }
            }
        }
        let _ = base;
        c.report
    }

    /// TLAB/large-object boundary pass: the bidirectional allocation
    /// invariant. Small objects fill pages front-to-back; large
    /// (SwapVA-candidate) objects claim *whole* page spans — they start on
    /// a page boundary and the allocator re-aligns the cursor after them,
    /// so the page span `[start, align_up(end))` of a large object is
    /// exclusively its own. A small object sharing any page with a large
    /// object would make that large object unswappable (a PTE swap would
    /// carry the interloper along), so interleaving is checked directly
    /// here rather than inferred from byte-level non-overlap.
    ///
    /// Run after rollback: an abort that restored bytes but mis-restored
    /// allocator state would surface here.
    pub fn verify_boundaries(&self, kernel: &Kernel, heap: &mut Heap) -> VerifyReport {
        use svagc_vmem::PAGE_SIZE;
        let mut c = Checker::new(kernel, "boundary", self.max_violations);
        let objects: Vec<ObjRef> = heap.objects_sorted().to_vec();
        // Page spans `[start_page, end_page)` in address order.
        let mut large_spans: Vec<(u64, u64)> = Vec::new();
        let mut small_spans: Vec<(ObjRef, u64, u64)> = Vec::new();
        for obj in objects {
            c.report.checked += 1;
            let Some(hdr) = c.read_header(heap, obj) else {
                continue;
            };
            let start = obj.0.get();
            let end = start + hdr.size_bytes();
            if hdr.is_large() {
                if !obj.0.is_page_aligned() {
                    c.violate(
                        "large-object-page-aligned",
                        obj.0,
                        "large object does not start on a page boundary".to_string(),
                    );
                    continue;
                }
                large_spans.push((start / PAGE_SIZE, end.div_ceil(PAGE_SIZE)));
            } else {
                small_spans.push((obj, start / PAGE_SIZE, end.div_ceil(PAGE_SIZE)));
            }
        }
        // Merge walk (both lists ascend): any page shared between a small
        // object and a large object's exclusive span is a violation.
        let mut li = 0;
        for (obj, sp, ep) in small_spans {
            while li < large_spans.len() && large_spans[li].1 <= sp {
                li += 1;
            }
            if li < large_spans.len() && large_spans[li].0 < ep {
                c.violate(
                    "small-large-pages-disjoint",
                    obj.0,
                    format!(
                        "small object touches pages [{sp}, {ep}) inside large object's \
                         exclusive span [{}, {})",
                        large_spans[li].0, large_spans[li].1
                    ),
                );
            }
        }
        c.report
    }

    /// FNV-1a hash of every live object's address, header, and payload.
    /// The forwarding word is excluded (transient GC state); everything
    /// else that defines the heap's observable content folds in, so equal
    /// hashes mean bit-identical live data at identical addresses.
    pub fn content_hash(&self, kernel: &Kernel, heap: &mut Heap) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        // FNV-1a folded a whole 64-bit word at a time: a per-byte fold is
        // a serial chain of 8 dependent multiplies per word, and hashing
        // every live payload word made it a measurable share of whole-run
        // host time. Hash values are only ever compared against other
        // hashes computed by this same function in-process, so the word
        // granularity is free to choose.
        let mut fold = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(FNV_PRIME);
        };
        // Word reads translate once per page, not once per word (a
        // software page-table walk per word is the other per-word cost).
        // Words are 8-aligned so they never straddle a page.
        let objects: Vec<ObjRef> = heap.objects_sorted().to_vec();
        let space = heap.space();
        let mut cached: Option<(u64, svagc_vmem::PhysAddr)> = None;
        let mut read_word = |va: VirtAddr| -> Result<u64, svagc_vmem::VmError> {
            let vpn = va.vpn();
            let page = match cached {
                Some((v, pa)) if v == vpn => pa,
                _ => {
                    let pa = space.translate(VirtAddr(vpn << svagc_vmem::PAGE_SHIFT))?;
                    cached = Some((vpn, pa));
                    pa
                }
            };
            kernel.vmem.phys.read_u64(page + va.page_offset())
        };
        for obj in objects {
            fold(obj.0.get());
            let Ok(raw) = read_word(obj.header_va()) else {
                fold(u64::MAX);
                continue;
            };
            fold(raw);
            let hdr = ObjHeader::decode(raw);
            // All payload words (reference fields + data), skipping the
            // forwarding word at index 1.
            for w in HEADER_WORDS..hdr.size_words as u64 {
                match read_word(obj.0 + w * 8) {
                    Ok(v) => fold(v),
                    Err(_) => fold(u64::MAX),
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use crate::object::ObjShape;
    use svagc_kernel::CoreId;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::Asid;

    const CORE: CoreId = CoreId(0);

    fn setup() -> (Kernel, Heap, RootSet) {
        let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), 16 << 20);
        let h = Heap::new(&mut k, Asid(1), HeapConfig::new(8 << 20)).unwrap();
        (k, h, RootSet::new())
    }

    #[test]
    fn fresh_heap_layout_is_clean() {
        let (mut k, mut h, _) = setup();
        for _ in 0..20 {
            h.alloc(&mut k, CORE, ObjShape::with_refs(2, 30)).unwrap();
        }
        let rep = HeapVerifier::new().verify_layout(&k, &mut h);
        assert!(rep.is_clean(), "{:?}", rep.violations);
        assert_eq!(rep.checked, 20);
    }

    #[test]
    fn marks_agree_with_recomputed_reachability() {
        let (mut k, mut h, mut roots) = setup();
        let (a, _) = h.alloc(&mut k, CORE, ObjShape::with_refs(1, 8)).unwrap();
        let (b, _) = h.alloc(&mut k, CORE, ObjShape::data(8)).unwrap();
        let (_c, _) = h.alloc(&mut k, CORE, ObjShape::data(8)).unwrap(); // garbage
        h.write_ref(&mut k, CORE, a, 0, b).unwrap();
        roots.push(a);

        let mut bitmap = MarkBitmap::new(h.base(), h.extent_words());
        bitmap.mark(a.header_va());
        bitmap.mark(b.header_va());
        let rep = HeapVerifier::new().verify_marks(&k, &mut h, &bitmap, &roots);
        assert!(rep.is_clean(), "{:?}", rep.violations);
    }

    #[test]
    fn lost_object_and_resurrected_garbage_are_caught() {
        let (mut k, mut h, mut roots) = setup();
        let (a, _) = h.alloc(&mut k, CORE, ObjShape::data(8)).unwrap();
        let (b, _) = h.alloc(&mut k, CORE, ObjShape::data(8)).unwrap();
        roots.push(a);
        let v = HeapVerifier::new();

        // a reachable but unmarked: lost object.
        let empty = MarkBitmap::new(h.base(), h.extent_words());
        let rep = v.verify_marks(&k, &mut h, &empty, &roots);
        assert!(rep
            .violations
            .iter()
            .any(|x| x.invariant == "reachable-implies-marked"));

        // b marked but unreachable: resurrected garbage.
        let mut over = MarkBitmap::new(h.base(), h.extent_words());
        over.mark(a.header_va());
        over.mark(b.header_va());
        let rep = v.verify_marks(&k, &mut h, &over, &roots);
        assert!(rep
            .violations
            .iter()
            .any(|x| x.invariant == "marked-implies-reachable"));
    }

    #[test]
    fn bad_forwarding_is_caught() {
        let (mut k, mut h, _) = setup();
        let (a, _) = h.alloc(&mut k, CORE, ObjShape::data(64)).unwrap();
        let (b, _) = h.alloc(&mut k, CORE, ObjShape::data(64)).unwrap();
        let mut bitmap = MarkBitmap::new(h.base(), h.extent_words());
        bitmap.mark(a.header_va());
        bitmap.mark(b.header_va());
        let v = HeapVerifier::new();

        // Both forwarded to heap base: overlapping destinations.
        let base = h.base();
        k.vmem
            .write_u64(h.space(), a.forwarding_va(), base.get())
            .unwrap();
        k.vmem
            .write_u64(h.space(), b.forwarding_va(), base.get())
            .unwrap();
        let rep = v.verify_forwarding(&k, &mut h, &bitmap);
        assert!(rep
            .violations
            .iter()
            .any(|x| x.invariant == "forwarding-non-overlapping"));

        // Forwarding upward is a broken slide.
        k.vmem
            .write_u64(h.space(), a.forwarding_va(), b.0.get())
            .unwrap();
        let rep = v.verify_forwarding(&k, &mut h, &bitmap);
        assert!(rep
            .violations
            .iter()
            .any(|x| x.invariant == "forwarding-slides-down"));
    }

    #[test]
    fn boundary_pass_accepts_allocator_output() {
        use svagc_vmem::PAGE_SIZE;
        let (mut k, mut h, _) = setup();
        for i in 0..30u64 {
            h.alloc(&mut k, CORE, ObjShape::data(20 + (i % 13) as u32)).unwrap();
            if i % 4 == 0 {
                h.alloc(&mut k, CORE, ObjShape::data_bytes(10 * PAGE_SIZE + i * 8))
                    .unwrap();
            }
        }
        let rep = HeapVerifier::new().verify_boundaries(&k, &mut h);
        assert!(rep.is_clean(), "{:?}", rep.violations);
        assert!(rep.checked > 30);
    }

    #[test]
    fn boundary_pass_catches_interleaved_small_object() {
        use svagc_vmem::PAGE_SIZE;
        let (mut k, mut h, _) = setup();
        let (big, _) = h
            .alloc(&mut k, CORE, ObjShape::data_bytes(12 * PAGE_SIZE))
            .unwrap();
        // Plant a small object inside the large object's exclusive page
        // span — exactly what a botched rollback of allocator state could
        // produce.
        h.register_at(&mut k, CORE, big.0 + 2 * PAGE_SIZE + 64, ObjShape::data(4), false, 0)
            .unwrap();
        let rep = HeapVerifier::new().verify_boundaries(&k, &mut h);
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "small-large-pages-disjoint"),
            "{:?}", rep.violations);
    }

    #[test]
    fn heap_snapshot_restore_roundtrips() {
        let (mut k, mut h, _) = setup();
        h.alloc(&mut k, CORE, ObjShape::data(16)).unwrap();
        let snap = h.snapshot();
        let (top0, count0, stats0) = (h.top(), h.object_count(), h.stats);
        h.alloc(&mut k, CORE, ObjShape::data(64)).unwrap();
        assert_ne!(h.top(), top0);
        h.restore(snap);
        assert_eq!(h.top(), top0);
        assert_eq!(h.object_count(), count0);
        assert_eq!(h.stats.allocations, stats0.allocations);
    }

    #[test]
    fn content_hash_tracks_live_data() {
        let (mut k, mut h, _) = setup();
        let (a, _) = h.alloc(&mut k, CORE, ObjShape::data(16)).unwrap();
        h.write_data(&mut k, CORE, a, 0, 3, 0xDEAD).unwrap();
        let v = HeapVerifier::new();
        let h1 = v.content_hash(&k, &mut h);
        // Same state hashes the same.
        assert_eq!(h1, v.content_hash(&k, &mut h));
        // A single flipped payload word changes the hash.
        h.write_data(&mut k, CORE, a, 0, 3, 0xBEEF).unwrap();
        assert_ne!(h1, v.content_hash(&k, &mut h));
        // The forwarding word does NOT (transient GC state).
        let h2 = v.content_hash(&k, &mut h);
        k.vmem.write_u64(h.space(), a.forwarding_va(), 0x77).unwrap();
        assert_eq!(h2, v.content_hash(&k, &mut h));
    }
}
