//! Property tests of the allocator: objects never overlap, Algorithm 3's
//! alignment invariants hold for arbitrary allocation sequences, and the
//! bidirectional TLAB keeps species separated.


#![cfg(feature = "proptest-tests")]
// Gated off by default: `proptest` is unavailable in the offline build.
// Restore the dev-dependency and run with `--features proptest-tests`.

use proptest::prelude::*;
use svagc_heap::{Heap, HeapConfig, HeapError, ObjShape, TlabAllocator};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::MachineConfig;
use svagc_vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);

fn setup(bytes: u64) -> (Kernel, Heap) {
    let mut k = Kernel::with_bytes(MachineConfig::i5_7600(), bytes + (1 << 20));
    let h = Heap::new(&mut k, Asid(1), HeapConfig::new(bytes)).unwrap();
    (k, h)
}

fn arb_shape() -> impl Strategy<Value = ObjShape> {
    prop_oneof![
        // small
        (0u32..4, 1u32..200).prop_map(|(r, d)| ObjShape::with_refs(r, d)),
        // large: at/above the 10-page threshold
        (10u64 * PAGE_SIZE..20 * PAGE_SIZE).prop_map(ObjShape::data_bytes),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shared-space allocation: objects are disjoint, in order, and every
    /// large object is page-aligned on both sides.
    #[test]
    fn shared_alloc_invariants(shapes in proptest::collection::vec(arb_shape(), 1..60)) {
        let (mut k, mut h) = setup(64 << 20);
        let mut placed: Vec<(u64, u64, bool)> = Vec::new();
        for shape in shapes {
            match h.alloc(&mut k, CORE, shape) {
                Ok((obj, _)) => {
                    let start = obj.0.get();
                    let large = h.is_large(shape);
                    if large {
                        prop_assert_eq!(start % PAGE_SIZE, 0, "large start aligned");
                    }
                    placed.push((start, shape.size_bytes(), large));
                }
                Err(HeapError::NeedGc { .. }) => break,
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
        }
        // Disjoint and monotonically increasing.
        for w in placed.windows(2) {
            let (s0, len0, large0) = w[0];
            let (s1, _, _) = w[1];
            prop_assert!(s0 + len0 <= s1, "objects must not overlap");
            if large0 {
                // The next object starts at or after the aligned end.
                prop_assert!(s1 % PAGE_SIZE == 0 || s1 >= (s0 + len0).next_multiple_of(PAGE_SIZE));
            }
        }
        // Heap accounting is consistent.
        prop_assert!(h.used_bytes() <= h.capacity());
        prop_assert_eq!(h.object_count(), placed.len());
    }

    /// TLAB allocation: same invariants, plus small/large species never
    /// interleave *within* a TLAB (larges grow down, smalls grow up).
    #[test]
    fn tlab_alloc_invariants(shapes in proptest::collection::vec(arb_shape(), 1..80)) {
        let (mut k, mut h) = setup(64 << 20);
        let mut alloc = TlabAllocator::new(1 << 20);
        let mut placed: Vec<(u64, u64)> = Vec::new();
        for shape in shapes {
            match alloc.alloc(&mut h, &mut k, CORE, shape) {
                Ok((obj, _)) => {
                    if h.is_large(shape) {
                        prop_assert_eq!(obj.0.get() % PAGE_SIZE, 0);
                    }
                    placed.push((obj.0.get(), shape.size_bytes()));
                }
                Err(HeapError::NeedGc { .. }) => break,
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
        }
        // Objects never overlap, regardless of allocation order.
        let mut sorted = placed.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0, "objects must not overlap");
        }
    }

    /// Object headers survive arbitrary data writes within bounds: writing
    /// every data word never clobbers the header or a neighbour.
    #[test]
    fn data_writes_stay_in_bounds(
        num_refs in 0u32..5,
        data_words in 1u32..300,
        probe in 0u32..300,
    ) {
        let (mut k, mut h) = setup(4 << 20);
        let shape = ObjShape::with_refs(num_refs, data_words);
        let (a, _) = h.alloc(&mut k, CORE, shape).unwrap();
        let (b, _) = h.alloc(&mut k, CORE, ObjShape::data(4)).unwrap();
        h.write_data(&mut k, CORE, b, 0, 0, 0xB00).unwrap();
        let probe = probe % data_words;
        h.write_data(&mut k, CORE, a, num_refs as u64, probe as u64, 0xDADA).unwrap();
        // Header of `a` intact.
        let (hdr, _) = h.read_header(&mut k, CORE, a).unwrap();
        prop_assert_eq!(hdr.size_words, shape.size_words());
        prop_assert_eq!(hdr.num_refs, num_refs);
        // Neighbour `b` intact (last word of `a` is adjacent to `b`'s header).
        let (hdr_b, _) = h.read_header(&mut k, CORE, b).unwrap();
        prop_assert_eq!(hdr_b.size_words, ObjShape::data(4).size_words());
        prop_assert_eq!(h.read_data(&mut k, CORE, b, 0, 0).unwrap().0, 0xB00);
    }
}
