//! Aggregated-swap batch handles.
//!
//! SwapVA aggregation (paper Fig. 5b) queues a run of consecutive
//! swap-eligible moves and flushes them as one syscall. The collector used
//! to keep this bookkeeping inline in its compaction loop; with the
//! work-packet scheduler every compact packet carries its *own* batch
//! handle, so the policy — the request cap that amortizes syscall entry
//! and the page budget that keeps big-object runs from serializing onto
//! one flush — lives here, next to the syscall it feeds.

use crate::swapva::SwapRequest;

/// A pending aggregation buffer: swap requests queued for one flush, each
/// carrying the originating object's true byte size so a memmove fallback
/// can be re-attributed in the collector's statistics.
#[derive(Debug, Clone)]
pub struct SwapBatch {
    entries: Vec<(SwapRequest, u64)>,
    pages: u64,
    cap: usize,
    page_budget: u64,
}

impl SwapBatch {
    /// A batch flushing after `cap` requests or `page_budget` total pages,
    /// whichever comes first. Both are clamped to at least 1.
    pub fn new(cap: usize, page_budget: u64) -> SwapBatch {
        SwapBatch {
            entries: Vec::new(),
            pages: 0,
            cap: cap.max(1),
            page_budget: page_budget.max(1),
        }
    }

    /// Queue a request; returns `true` when the batch is due for a flush
    /// (cap reached or page budget exhausted).
    pub fn push(&mut self, req: SwapRequest, bytes: u64) -> bool {
        self.pages += req.pages;
        self.entries.push((req, bytes));
        self.entries.len() >= self.cap || self.pages >= self.page_budget
    }

    /// No queued requests?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queued request count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total queued pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// The queued `(request, byte size)` pairs, in push order.
    pub fn entries(&self) -> &[(SwapRequest, u64)] {
        &self.entries
    }

    /// Drain the batch for execution, resetting it for reuse.
    pub fn take(&mut self) -> Vec<(SwapRequest, u64)> {
        self.pages = 0;
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_vmem::VirtAddr;

    fn req(pages: u64) -> SwapRequest {
        SwapRequest {
            a: VirtAddr(0x1000),
            b: VirtAddr(0x9000),
            pages,
        }
    }

    #[test]
    fn flush_on_request_cap() {
        let mut b = SwapBatch::new(2, 1_000_000);
        assert!(!b.push(req(1), 4096));
        assert!(b.push(req(1), 4096), "second push hits the cap");
        assert_eq!(b.len(), 2);
        let taken = b.take();
        assert_eq!(taken.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.pages(), 0, "take resets the page count");
    }

    #[test]
    fn flush_on_page_budget() {
        let mut b = SwapBatch::new(1000, 80);
        assert!(!b.push(req(40), 40 * 4096));
        assert!(b.push(req(40), 40 * 4096), "page budget reached");
    }

    #[test]
    fn degenerate_caps_clamp_to_one() {
        let mut b = SwapBatch::new(0, 0);
        assert!(b.push(req(1), 4096), "cap 0 behaves as separated calls");
    }
}
