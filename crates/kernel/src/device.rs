//! Modeled far-memory / NVMe backing device for the cold-object tier.
//!
//! The paper's ROADMAP extension is cold-object tiering via user-space
//! swapping: GC cycles double as tiering passes, demoting cold pages to a
//! slower, cheaper tier and fetching them back on access. Real far-memory
//! backends fail in ways DRAM does not, so the device model ships with a
//! seeded [`DeviceFaultPlan`] in the style of [`crate::fault::FaultPlan`]:
//!
//! * **Transient EIO** — a request fails outright and succeeds on retry
//!   (media retries, fabric hiccups).
//! * **Latency spike** — the request completes but only after blowing past
//!   the host's timeout; the host treats it as failed and retries, paying
//!   the full spike.
//! * **Torn writeback** — power loss or firmware bug mid-program leaves
//!   the slot's data corrupted while the out-of-band checksum still holds
//!   the intended value; the mandatory read-back verify catches it.
//! * **Device offline** — the whole device disappears (latched: every
//!   subsequent request fails permanently). Also schedulable
//!   deterministically after N requests via
//!   [`DeviceFaultConfig::offline_after`].
//!
//! Every slot carries a per-page FNV checksum computed by the host before
//! writeback and verified on every read, so silent corruption can never
//! reach the heap. Determinism: exactly one PRNG draw per device request,
//! so the fault sequence is a pure function of the seed and request count.
//!
//! The device is *durable*: it survives [`crate::Kernel::reboot`], which
//! is what makes crash recovery of a half-demoted heap possible.

use std::fmt;
use svagc_metrics::{Cycles, SimRng};
use svagc_vmem::PAGE_SIZE;

/// Bytes per device slot (one page).
pub const SLOT_BYTES: usize = PAGE_SIZE as usize;

/// FNV-1a over a byte slice (the per-page content checksum).
pub(crate) fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identifier of one page-sized slot on the far device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// Modeled far-device failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceFaultKind {
    /// The request failed with an I/O error; clears on retry.
    TransientEio,
    /// The request completed past the host timeout; the host abandons it
    /// and retries, paying the full spike latency.
    LatencySpike,
    /// A writeback was torn mid-program: the slot's data is corrupted but
    /// the out-of-band checksum holds the intended value, so the read-back
    /// verify detects the tear. Clears on a rewrite.
    TornWriteback,
    /// The device went offline. Latched: permanent for every subsequent
    /// request.
    Offline,
}

impl DeviceFaultKind {
    /// Transient faults clear on retry; `Offline` never does.
    pub fn is_transient(&self) -> bool {
        !matches!(self, DeviceFaultKind::Offline)
    }

    /// Stable label (stats, trace args, CI greps).
    pub fn name(&self) -> &'static str {
        match self {
            DeviceFaultKind::TransientEio => "eio",
            DeviceFaultKind::LatencySpike => "latency-spike",
            DeviceFaultKind::TornWriteback => "torn-writeback",
            DeviceFaultKind::Offline => "offline",
        }
    }
}

impl fmt::Display for DeviceFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-request injection probabilities plus the seed that makes them
/// reproducible (the device-side analogue of [`crate::fault::FaultConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFaultConfig {
    /// P(transient EIO) per device request.
    pub p_eio: f64,
    /// P(latency spike past the host timeout) per device request.
    pub p_spike: f64,
    /// P(torn writeback) per *writeback* request.
    pub p_torn: f64,
    /// P(the device goes offline) per device request. Latched once fired.
    pub p_offline: f64,
    /// Take the device offline deterministically after this many requests
    /// (`Some(0)` = offline from the first request). Composes with the
    /// probabilistic modes; `None` disables.
    pub offline_after: Option<u64>,
    /// PRNG seed: same seed ⇒ same fault sequence.
    pub seed: u64,
}

impl DeviceFaultConfig {
    /// Total injection probability `p` split across the *recoverable*
    /// modes the way NVMe error logs skew: 60% transient EIO, 25% latency
    /// spike, 15% torn writeback. Offline stays 0 — whole-device loss is
    /// scheduled deterministically (see
    /// [`DeviceFaultConfig::offline_after`]), so fault-rate sweeps measure
    /// retry/degrade behavior, not coin-flip device death.
    pub fn uniform(p: f64, seed: u64) -> DeviceFaultConfig {
        DeviceFaultConfig {
            p_eio: p * 0.60,
            p_spike: p * 0.25,
            p_torn: p * 0.15,
            p_offline: 0.0,
            offline_after: None,
            seed,
        }
    }

    /// Only transient EIO at probability `p` (every fault retryable).
    pub fn transient_only(p: f64, seed: u64) -> DeviceFaultConfig {
        DeviceFaultConfig {
            p_eio: p,
            p_spike: 0.0,
            p_torn: 0.0,
            p_offline: 0.0,
            offline_after: None,
            seed,
        }
    }

    /// Schedule deterministic whole-device loss after `n` requests.
    pub fn with_offline_after(mut self, n: u64) -> DeviceFaultConfig {
        self.offline_after = Some(n);
        self
    }

    /// Sum of the per-request probabilities.
    pub fn total_p(&self) -> f64 {
        self.p_eio + self.p_spike + self.p_torn + self.p_offline
    }
}

/// A seeded device-fault schedule: one PRNG draw per request decides
/// whether (and which) fault fires. Once `Offline` fires — probabilistic
/// or scheduled — it is latched and every later request fails with it.
#[derive(Debug, Clone)]
pub struct DeviceFaultPlan {
    cfg: DeviceFaultConfig,
    rng: SimRng,
    /// Requests rolled so far.
    pub requests: u64,
    /// Faults injected so far.
    pub injected: u64,
    offline: bool,
}

impl DeviceFaultPlan {
    /// Build a plan from a config (seeds the PRNG from `cfg.seed`).
    pub fn new(cfg: DeviceFaultConfig) -> DeviceFaultPlan {
        DeviceFaultPlan {
            cfg,
            rng: SimRng::seed_from_u64(cfg.seed),
            requests: 0,
            injected: 0,
            offline: false,
        }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &DeviceFaultConfig {
        &self.cfg
    }

    /// Has whole-device loss latched?
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Decide whether the next device request faults. Exactly one PRNG
    /// draw per call (none once offline — the stream's tail is dead
    /// anyway), so the sequence is a pure function of seed and call count.
    /// `writeback` gates the torn-write mode to writeback requests.
    pub fn roll(&mut self, writeback: bool) -> Option<DeviceFaultKind> {
        if self.offline {
            return Some(DeviceFaultKind::Offline);
        }
        self.requests += 1;
        if let Some(n) = self.cfg.offline_after {
            if self.requests > n {
                self.offline = true;
                self.injected += 1;
                return Some(DeviceFaultKind::Offline);
            }
        }
        let x = self.rng.gen_f64();
        let mut limit = self.cfg.p_eio;
        let kind = if x < limit {
            DeviceFaultKind::TransientEio
        } else if x < {
            limit += self.cfg.p_spike;
            limit
        } {
            DeviceFaultKind::LatencySpike
        } else if x < {
            limit += self.cfg.p_torn;
            limit
        } {
            if writeback {
                DeviceFaultKind::TornWriteback
            } else {
                // Reads have no program phase to tear; the same draw
                // manifests as a plain I/O error.
                DeviceFaultKind::TransientEio
            }
        } else if x < {
            limit += self.cfg.p_offline;
            limit
        } {
            self.offline = true;
            DeviceFaultKind::Offline
        } else {
            return None;
        };
        self.injected += 1;
        Some(kind)
    }
}

/// Failure of one device request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// Transient I/O error; worth retrying. Carries the cycles the failed
    /// attempt burned.
    Io {
        /// Which modeled mode fired.
        kind: DeviceFaultKind,
        /// Cycles the failed attempt cost the caller.
        spent: Cycles,
    },
    /// Checksum mismatch on read-back: the slot's data does not match its
    /// out-of-band checksum (a torn writeback landed here). Retryable for
    /// writebacks (rewrite the slot), fatal for fetches only if rewrites
    /// are impossible.
    Corrupt {
        /// The mismatching slot.
        slot: SlotId,
        /// Cycles the detecting read burned.
        spent: Cycles,
    },
    /// The device is offline. Permanent: retries are pointless.
    Offline,
    /// No free slot (the far tier is full).
    Full,
    /// The slot is not allocated (tier bookkeeping bug — not injectable).
    BadSlot(SlotId),
}

impl DeviceError {
    /// Is this failure worth retrying?
    pub fn is_transient(&self) -> bool {
        match self {
            DeviceError::Io { kind, .. } => kind.is_transient(),
            DeviceError::Corrupt { .. } => true,
            DeviceError::Offline | DeviceError::Full | DeviceError::BadSlot(_) => false,
        }
    }

    /// Cycles the failed attempt burned.
    pub fn spent(&self) -> Cycles {
        match self {
            DeviceError::Io { spent, .. } | DeviceError::Corrupt { spent, .. } => *spent,
            _ => Cycles::ZERO,
        }
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Io { kind, spent } => {
                write!(f, "device I/O fault: {kind} ({} cycles burned)", spent.0)
            }
            DeviceError::Corrupt { slot, spent } => {
                write!(f, "device checksum mismatch at {slot} ({} cycles burned)", spent.0)
            }
            DeviceError::Offline => write!(f, "far device offline"),
            DeviceError::Full => write!(f, "far device full"),
            DeviceError::BadSlot(s) => write!(f, "far device {s} not allocated"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Device activity counters (volatile, for reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Successful page writebacks.
    pub writebacks: u64,
    /// Successful page fetches.
    pub fetches: u64,
    /// Successful read-back verifies.
    pub verifies: u64,
    /// Requests that failed with an injected fault.
    pub faults: u64,
    /// Torn writebacks that landed corrupted data (later caught by verify).
    pub torn_writebacks: u64,
    /// High-water mark of simultaneously allocated slots.
    pub slots_peak: u32,
}

struct FarSlot {
    data: Vec<u8>,
    /// Out-of-band FNV checksum of the *intended* contents, written by the
    /// host alongside the data (a torn program corrupts `data` but not
    /// this, which is how the tear is caught).
    sum: u64,
}

/// The modeled far-memory device: page-sized slots with out-of-band
/// checksums, distinct fetch/writeback costs, and seeded fault injection.
pub struct FarDevice {
    slots: Vec<Option<FarSlot>>,
    /// Returned slots, reused LIFO (deterministic).
    free: Vec<SlotId>,
    /// Next never-allocated slot.
    next: u32,
    plan: Option<DeviceFaultPlan>,
    stats: DeviceStats,
    /// Cycles a page writeback costs the host.
    pub writeback_cycles: u64,
    /// Cycles a page fetch costs the host.
    pub fetch_cycles: u64,
    /// Cycles a checksum-only read-back verify costs the host.
    pub verify_cycles: u64,
    /// Multiplier a latency spike applies to the request's base cost.
    pub spike_factor: u64,
}

impl fmt::Debug for FarDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FarDevice")
            .field("capacity", &self.slots.len())
            .field("in_use", &self.slots_in_use())
            .field("offline", &self.is_offline())
            .finish()
    }
}

impl FarDevice {
    /// Default writeback cost (~4 µs of NVMe program time at 3 GHz).
    pub const WRITEBACK_CYCLES: u64 = 12_000;
    /// Default fetch cost (~7 µs of NVMe read latency at 3 GHz).
    pub const FETCH_CYCLES: u64 = 20_000;
    /// Default read-back verify cost (metadata-only round trip).
    pub const VERIFY_CYCLES: u64 = 3_000;
    /// Default latency-spike multiplier.
    pub const SPIKE_FACTOR: u64 = 8;

    /// A fault-free device with `capacity` page slots.
    pub fn new(capacity: u32) -> FarDevice {
        FarDevice {
            slots: (0..capacity).map(|_| None).collect(),
            free: Vec::new(),
            next: 0,
            plan: None,
            stats: DeviceStats::default(),
            writeback_cycles: FarDevice::WRITEBACK_CYCLES,
            fetch_cycles: FarDevice::FETCH_CYCLES,
            verify_cycles: FarDevice::VERIFY_CYCLES,
            spike_factor: FarDevice::SPIKE_FACTOR,
        }
    }

    /// Install (or clear) the seeded fault plan.
    pub fn set_fault_plan(&mut self, plan: Option<DeviceFaultPlan>) {
        self.plan = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&DeviceFaultPlan> {
        self.plan.as_ref()
    }

    /// Has the device latched offline?
    pub fn is_offline(&self) -> bool {
        self.plan.as_ref().is_some_and(|p| p.is_offline())
    }

    /// Slots currently holding data.
    pub fn slots_in_use(&self) -> u32 {
        self.slots.iter().filter(|s| s.is_some()).count() as u32
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Activity counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Roll the fault plan for one request; `None` = fault-free.
    fn roll(&mut self, writeback: bool) -> Option<DeviceFaultKind> {
        let kind = self.plan.as_mut()?.roll(writeback)?;
        self.stats.faults += 1;
        Some(kind)
    }

    /// Cycles a failed request burns before the host sees the error.
    fn fault_cost(&self, kind: DeviceFaultKind, base: u64) -> Cycles {
        match kind {
            // The error comes back quickly (the controller gave up early).
            DeviceFaultKind::TransientEio => Cycles(base / 4),
            // The host waits out the full spike before abandoning.
            DeviceFaultKind::LatencySpike => Cycles(base * self.spike_factor),
            // The program completed (corrupted); full cost was paid.
            DeviceFaultKind::TornWriteback => Cycles(base),
            // Immediate failure from a dead device.
            DeviceFaultKind::Offline => Cycles(base / 8),
        }
    }

    /// Allocate one slot (no I/O; pure bookkeeping on the host side).
    pub fn alloc_slot(&mut self) -> Result<SlotId, DeviceError> {
        let s = if let Some(s) = self.free.pop() {
            s
        } else if self.next < self.slots.len() as u32 {
            let s = SlotId(self.next);
            self.next += 1;
            s
        } else {
            return Err(DeviceError::Full);
        };
        Ok(s)
    }

    /// Write one page to `slot` with its out-of-band checksum. A torn
    /// writeback lands *corrupted data under the intended checksum* and
    /// still returns `Ok` — only the mandatory [`FarDevice::verify`]
    /// read-back exposes it, which is why demotion always verifies.
    pub fn write(&mut self, slot: SlotId, data: &[u8]) -> Result<Cycles, DeviceError> {
        assert_eq!(data.len(), SLOT_BYTES, "device slots are page-sized");
        if slot.0 as usize >= self.slots.len() {
            return Err(DeviceError::BadSlot(slot));
        }
        let base = self.writeback_cycles;
        match self.roll(true) {
            Some(DeviceFaultKind::Offline) => return Err(DeviceError::Offline),
            Some(DeviceFaultKind::TornWriteback) => {
                let mut torn = data.to_vec();
                // Deterministic tear: the first byte of the page flips.
                torn[0] ^= 0xFF;
                self.stats.torn_writebacks += 1;
                self.slots[slot.0 as usize] = Some(FarSlot {
                    sum: fnv_bytes(data),
                    data: torn,
                });
                self.stats.writebacks += 1;
                return Ok(Cycles(base));
            }
            Some(kind) => {
                return Err(DeviceError::Io {
                    kind,
                    spent: self.fault_cost(kind, base),
                })
            }
            None => {}
        }
        self.slots[slot.0 as usize] = Some(FarSlot {
            sum: fnv_bytes(data),
            data: data.to_vec(),
        });
        self.stats.writebacks += 1;
        self.stats.slots_peak = self.stats.slots_peak.max(self.slots_in_use());
        Ok(Cycles(base))
    }

    /// Checksum-only read-back verify of `slot` (the writeback protocol's
    /// mandatory second half — this is what catches torn writebacks).
    pub fn verify(&mut self, slot: SlotId) -> Result<Cycles, DeviceError> {
        let base = self.verify_cycles;
        match self.roll(false) {
            Some(DeviceFaultKind::Offline) => return Err(DeviceError::Offline),
            Some(kind) => {
                return Err(DeviceError::Io {
                    kind,
                    spent: self.fault_cost(kind, base),
                })
            }
            None => {}
        }
        let s = self.slots[slot.0 as usize]
            .as_ref()
            .ok_or(DeviceError::BadSlot(slot))?;
        if fnv_bytes(&s.data) != s.sum {
            return Err(DeviceError::Corrupt {
                slot,
                spent: Cycles(base),
            });
        }
        self.stats.verifies += 1;
        Ok(Cycles(base))
    }

    /// Fetch one page from `slot` into `buf`, verifying its checksum.
    pub fn read(&mut self, slot: SlotId, buf: &mut [u8]) -> Result<Cycles, DeviceError> {
        assert_eq!(buf.len(), SLOT_BYTES, "device slots are page-sized");
        if slot.0 as usize >= self.slots.len() {
            return Err(DeviceError::BadSlot(slot));
        }
        let base = self.fetch_cycles;
        match self.roll(false) {
            Some(DeviceFaultKind::Offline) => return Err(DeviceError::Offline),
            Some(kind) => {
                return Err(DeviceError::Io {
                    kind,
                    spent: self.fault_cost(kind, base),
                })
            }
            None => {}
        }
        let s = self.slots[slot.0 as usize]
            .as_ref()
            .ok_or(DeviceError::BadSlot(slot))?;
        if fnv_bytes(&s.data) != s.sum {
            return Err(DeviceError::Corrupt {
                slot,
                spent: Cycles(base),
            });
        }
        buf.copy_from_slice(&s.data);
        self.stats.fetches += 1;
        Ok(Cycles(base))
    }

    /// Fault-free, cost-free functional read of a slot's stored bytes —
    /// the verifier/oracle surface. Never rolls the fault plan and never
    /// touches counters, so observing a slot cannot perturb the
    /// simulation. `None` for an empty or out-of-range slot.
    pub fn peek(&self, slot: SlotId) -> Option<&[u8]> {
        self.slots
            .get(slot.0 as usize)?
            .as_ref()
            .map(|s| s.data.as_slice())
    }

    /// Return a slot to the free list whether or not a write ever landed
    /// in it — the failed-demotion unwind path (the strict
    /// [`FarDevice::free_slot`] requires data to be present).
    pub fn release_slot(&mut self, slot: SlotId) {
        if (slot.0 as usize) < self.slots.len() {
            self.slots[slot.0 as usize] = None;
            self.free.push(slot);
        }
    }

    /// Release `slot` back to the free list.
    pub fn free_slot(&mut self, slot: SlotId) -> Result<(), DeviceError> {
        if slot.0 as usize >= self.slots.len() {
            return Err(DeviceError::BadSlot(slot));
        }
        if self.slots[slot.0 as usize].take().is_none() {
            return Err(DeviceError::BadSlot(slot));
        }
        self.free.push(slot);
        Ok(())
    }

    /// Recovery-time free-list rebuild: keep exactly the slots in `live`
    /// (the residency map replayed from the WAL) and release everything
    /// else — orphaned slots from demotions that crashed between the
    /// device program and the WAL record become free again, so a crash
    /// can never leak device capacity.
    pub fn retain_slots(&mut self, live: &std::collections::BTreeSet<SlotId>) {
        self.free.clear();
        for i in 0..self.slots.len() as u32 {
            let id = SlotId(i);
            if !live.contains(&id)
                && (self.slots[i as usize].take().is_some() || i < self.next)
            {
                self.free.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; SLOT_BYTES]
    }

    #[test]
    fn writeback_fetch_roundtrip() {
        let mut d = FarDevice::new(4);
        let s = d.alloc_slot().unwrap();
        d.write(s, &page(0xAB)).unwrap();
        d.verify(s).unwrap();
        let mut buf = page(0);
        let t = d.read(s, &mut buf).unwrap();
        assert_eq!(buf, page(0xAB));
        assert_eq!(t, Cycles(FarDevice::FETCH_CYCLES));
        assert_eq!(d.slots_in_use(), 1);
        d.free_slot(s).unwrap();
        assert_eq!(d.slots_in_use(), 0);
        // LIFO reuse.
        assert_eq!(d.alloc_slot().unwrap(), s);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let cfg = DeviceFaultConfig::uniform(0.3, 42);
        let mut a = DeviceFaultPlan::new(cfg);
        let mut b = DeviceFaultPlan::new(cfg);
        let sa: Vec<_> = (0..500).map(|i| a.roll(i % 2 == 0)).collect();
        let sb: Vec<_> = (0..500).map(|i| b.roll(i % 2 == 0)).collect();
        assert_eq!(sa, sb);
        assert!(a.injected > 0);
    }

    #[test]
    fn torn_writeback_is_caught_by_verify_and_cleared_by_rewrite() {
        // p_torn = 1.0: every writeback tears.
        let cfg = DeviceFaultConfig {
            p_eio: 0.0,
            p_spike: 0.0,
            p_torn: 1.0,
            p_offline: 0.0,
            offline_after: None,
            seed: 7,
        };
        let mut d = FarDevice::new(2);
        d.set_fault_plan(Some(DeviceFaultPlan::new(cfg)));
        let s = d.alloc_slot().unwrap();
        d.write(s, &page(0x55)).unwrap();
        // Drop the plan so the verify itself is fault-free: the corruption
        // is durable in the slot and must be caught by the checksum alone.
        d.set_fault_plan(None);
        assert!(matches!(d.verify(s), Err(DeviceError::Corrupt { .. })));
        let mut buf = page(0);
        assert!(matches!(d.read(s, &mut buf), Err(DeviceError::Corrupt { .. })));
        // A clean rewrite replaces the torn data.
        d.set_fault_plan(None);
        d.write(s, &page(0x55)).unwrap();
        d.verify(s).unwrap();
        d.read(s, &mut buf).unwrap();
        assert_eq!(buf, page(0x55));
    }

    #[test]
    fn offline_latches_permanently() {
        let cfg = DeviceFaultConfig::uniform(0.0, 1).with_offline_after(2);
        let mut d = FarDevice::new(4);
        d.set_fault_plan(Some(DeviceFaultPlan::new(cfg)));
        let s = d.alloc_slot().unwrap();
        d.write(s, &page(1)).unwrap();
        d.verify(s).unwrap();
        // Third request trips the scheduled offline; all later ones fail.
        let mut buf = page(0);
        assert_eq!(d.read(s, &mut buf), Err(DeviceError::Offline));
        assert_eq!(d.write(s, &page(2)), Err(DeviceError::Offline));
        assert!(d.is_offline());
        assert!(!DeviceError::Offline.is_transient());
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        let cfg = DeviceFaultConfig::transient_only(0.5, 3);
        let mut d = FarDevice::new(2);
        d.set_fault_plan(Some(DeviceFaultPlan::new(cfg)));
        let s = d.alloc_slot().unwrap();
        // With p=0.5 the first success arrives within a few attempts.
        let mut ok = false;
        for _ in 0..64 {
            match d.write(s, &page(9)) {
                Ok(_) => {
                    ok = true;
                    break;
                }
                Err(e) => assert!(e.is_transient()),
            }
        }
        assert!(ok, "transient-only profile must eventually succeed");
    }

    #[test]
    fn retain_slots_reclaims_orphans() {
        let mut d = FarDevice::new(4);
        let a = d.alloc_slot().unwrap();
        let b = d.alloc_slot().unwrap();
        d.write(a, &page(1)).unwrap();
        d.write(b, &page(2)).unwrap();
        let live: std::collections::BTreeSet<SlotId> = [a].into_iter().collect();
        d.retain_slots(&live);
        assert_eq!(d.slots_in_use(), 1);
        // The orphan is allocatable again; the live slot still reads back.
        let c = d.alloc_slot().unwrap();
        assert_eq!(c, b);
        let mut buf = page(0);
        d.read(a, &mut buf).unwrap();
        assert_eq!(buf, page(1));
    }

    #[test]
    fn full_device_rejects_allocation() {
        let mut d = FarDevice::new(1);
        d.alloc_slot().unwrap();
        assert_eq!(d.alloc_slot(), Err(DeviceError::Full));
    }
}
