//! Typed errors for the SwapVA syscall layer.
//!
//! A real SwapVA implementation can fail for reasons beyond bad operands:
//! PTE-lock contention, allocation failure inside the walk, a shootdown
//! that never acks. [`SwapVaError`] separates those *operational* failures
//! (which carry the cycles the failed attempt burned, so callers can charge
//! them to the right simulated core) from the *structural* [`VmError`]s of
//! the underlying memory model.

use crate::fault::{CrashPoint, FaultKind};
use std::fmt;
use svagc_metrics::Cycles;
use svagc_vmem::VmError;

/// Failure of a `swap_va` / `swap_va_batch` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapVaError {
    /// Structural error from the memory model (bad range, unmapped page).
    Vm(VmError),
    /// An injected operational fault (see [`crate::fault`]).
    Fault {
        /// Modeled failure mode.
        kind: FaultKind,
        /// Index of the failing request within the batch (`0` for single
        /// calls). Requests `0..index` were fully applied; the failing
        /// request itself was not (per-request atomicity).
        index: usize,
        /// Cycles the failed attempt burned before reporting the error
        /// (syscall entry, partial walks, lock spins, timed-out IPIs, plus
        /// any requests already applied earlier in the batch). Callers must
        /// charge these to the calling core.
        spent: Cycles,
    },
    /// A seeded crash point fired: the simulated machine is dead. Not an
    /// errno — nothing observed this error on the machine; it exists so
    /// the simulation can unwind to the crash/recovery harness. Never
    /// retried, never demoted to a fallback path.
    Crashed {
        /// Where the machine died.
        point: CrashPoint,
    },
}

impl SwapVaError {
    /// Is this fault worth retrying (resource contention that clears), as
    /// opposed to a permanent error that will recur on every attempt?
    pub fn is_transient(&self) -> bool {
        match self {
            SwapVaError::Vm(_) | SwapVaError::Crashed { .. } => false,
            SwapVaError::Fault { kind, .. } => kind.is_transient(),
        }
    }

    /// Cycles the failed attempt burned (zero for structural errors, which
    /// are detected in validation before any modeled work).
    pub fn spent(&self) -> Cycles {
        match self {
            SwapVaError::Vm(_) | SwapVaError::Crashed { .. } => Cycles::ZERO,
            SwapVaError::Fault { spent, .. } => *spent,
        }
    }
}

impl SwapVaError {
    /// Add already-burned caller cycles (syscall entry, applied batch
    /// prefix) to a fault's `spent`. No-op for structural errors, which
    /// abort before meaningful modeled work.
    pub(crate) fn add_spent(self, extra: Cycles) -> SwapVaError {
        match self {
            SwapVaError::Fault { kind, index, spent } => SwapVaError::Fault {
                kind,
                index,
                spent: spent + extra,
            },
            e => e,
        }
    }

    /// Stamp the batch index the error occurred at.
    pub(crate) fn at_index(self, i: usize) -> SwapVaError {
        match self {
            SwapVaError::Fault { kind, spent, .. } => SwapVaError::Fault {
                kind,
                index: i,
                spent,
            },
            e => e,
        }
    }
}

impl From<VmError> for SwapVaError {
    fn from(e: VmError) -> SwapVaError {
        SwapVaError::Vm(e)
    }
}

impl fmt::Display for SwapVaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapVaError::Vm(e) => write!(f, "{e}"),
            SwapVaError::Fault { kind, index, spent } => write!(
                f,
                "injected SwapVA fault {kind} at batch index {index} ({spent} cycles burned)"
            ),
            SwapVaError::Crashed { point } => {
                write!(f, "machine crashed at seeded crash point {point}")
            }
        }
    }
}

impl std::error::Error for SwapVaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwapVaError::Vm(e) => Some(e),
            SwapVaError::Fault { .. } | SwapVaError::Crashed { .. } => None,
        }
    }
}

/// Failure of an undo-journal [`crate::Kernel::rollback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackError {
    /// Structural error from the memory model while restoring.
    Vm(VmError),
    /// A seeded [`CrashPoint::MidRollback`] fired mid-restore: the machine
    /// died again while undoing. The journal's epoch stays unresolved in
    /// the write-ahead log; recovery finishes the undo after restart.
    Crashed,
    /// This journal was already replayed once. Rollback is intentionally
    /// not idempotent at the API level — the undo ops themselves would
    /// re-corrupt restored state (a second `PteSwap` replay re-swaps) — so
    /// the kernel retires journal ids and rejects replays outright.
    Replayed {
        /// The retired journal's id.
        id: u64,
    },
}

impl From<VmError> for RollbackError {
    fn from(e: VmError) -> RollbackError {
        RollbackError::Vm(e)
    }
}

impl fmt::Display for RollbackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RollbackError::Vm(e) => write!(f, "{e}"),
            RollbackError::Crashed => {
                write!(f, "machine crashed at seeded crash point mid-rollback")
            }
            RollbackError::Replayed { id } => {
                write!(f, "undo journal {id} was already replayed; refusing to reapply")
            }
        }
    }
}

impl std::error::Error for RollbackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RollbackError::Vm(e) => Some(e),
            _ => None,
        }
    }
}
