//! Deterministic SwapVA fault injection.
//!
//! The paper's SwapVA is a real syscall, and real syscalls fail: the PTE
//! spinlock can be contended (`EAGAIN`), the walk can need a page-table
//! page the allocator cannot produce (`ENOMEM`), a request can be rejected
//! by validation the caller didn't anticipate (`EINVAL`), and the shootdown
//! IPI can time out on an unresponsive core. This module injects those
//! modes into [`Kernel::swap_va`]/[`Kernel::swap_va_batch`] from a seeded
//! [`FaultPlan`], charging realistic cycle costs for each failed attempt.
//!
//! Two properties the chaos tests rely on:
//!
//! * **Determinism** — same seed, same probabilities ⇒ the same faults fire
//!   at the same call sites, independent of host state.
//! * **Per-request atomicity** — a fault fires *before* the failing request
//!   mutates any PTE, so a faulted call leaves memory exactly as it was
//!   (earlier requests of an aggregated batch remain applied; the error
//!   reports the failing index).

use crate::state::{CoreId, Kernel};
use std::fmt;
use svagc_metrics::{Cycles, SimRng};
use svagc_vmem::Asid;

/// Modeled SwapVA failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `EAGAIN`: the PTE spinlock of one operand is contended (another
    /// thread is faulting/mapping in the same PTE table). Clears on retry.
    TransientContention,
    /// `EINVAL`: the kernel rejected the request (e.g. a mapping attribute
    /// the simplified model doesn't capture — mlock, VMA split mid-range).
    /// Permanent for this request; the caller must fall back to copying.
    InvalidRequest,
    /// `ENOMEM`: allocating a page-table page during the walk failed.
    /// Permanent until memory pressure clears; treated as permanent here.
    WalkAllocFailure,
    /// The shootdown IPI timed out waiting for a remote ack (core in a
    /// long-running non-preemptible section). The kernel rolls the swap
    /// back; clears on retry.
    ShootdownTimeout,
}

impl FaultKind {
    /// Transient faults clear on retry; permanent ones recur and require a
    /// fallback path.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FaultKind::TransientContention | FaultKind::ShootdownTimeout
        )
    }

    /// The errno a real kernel would return.
    pub fn errno(&self) -> &'static str {
        match self {
            FaultKind::TransientContention => "EAGAIN",
            FaultKind::InvalidRequest => "EINVAL",
            FaultKind::WalkAllocFailure => "ENOMEM",
            FaultKind::ShootdownTimeout => "ETIMEDOUT",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::TransientContention => write!(f, "EAGAIN (PTE-lock contention)"),
            FaultKind::InvalidRequest => write!(f, "EINVAL (request rejected)"),
            FaultKind::WalkAllocFailure => write!(f, "ENOMEM (walk allocation)"),
            FaultKind::ShootdownTimeout => write!(f, "ETIMEDOUT (shootdown IPI)"),
        }
    }
}

/// Per-call injection probabilities plus the seed that makes them
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// P(transient `EAGAIN` contention) per swap request.
    pub p_transient: f64,
    /// P(permanent `EINVAL` rejection) per swap request.
    pub p_invalid: f64,
    /// P(`ENOMEM` during the walk) per swap request.
    pub p_nomem: f64,
    /// P(shootdown IPI timeout) per swap request.
    pub p_timeout: f64,
    /// PRNG seed: same seed ⇒ same fault sequence.
    pub seed: u64,
}

impl FaultConfig {
    /// Total injection probability `p`, split across the modes the way
    /// production traces skew (contention dominates): 70% `EAGAIN`,
    /// 10% `EINVAL`, 10% `ENOMEM`, 10% IPI timeout.
    pub fn uniform(p: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            p_transient: p * 0.7,
            p_invalid: p * 0.1,
            p_nomem: p * 0.1,
            p_timeout: p * 0.1,
            seed,
        }
    }

    /// Only transient contention faults at probability `p` (the acceptance
    /// scenario: every fault is retryable, so no request ever falls back).
    pub fn transient_only(p: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            p_transient: p,
            p_invalid: 0.0,
            p_nomem: 0.0,
            p_timeout: 0.0,
            seed,
        }
    }

    /// Only permanent, non-retryable faults at probability `p`, split
    /// evenly between `EINVAL` and `ENOMEM`. Every injected fault defeats
    /// the retry ladder and forces a fallback (or, under a fallback
    /// budget, a transactional abort) — the chaos profile that exercises
    /// rollback.
    pub fn permanent_only(p: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            p_transient: 0.0,
            p_invalid: p * 0.5,
            p_nomem: p * 0.5,
            p_timeout: 0.0,
            seed,
        }
    }

    /// Sum of all per-call probabilities.
    pub fn total_p(&self) -> f64 {
        self.p_transient + self.p_invalid + self.p_nomem + self.p_timeout
    }
}

/// A seeded fault schedule: one PRNG draw per swap request decides whether
/// (and which) fault fires.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
    /// Faults injected so far.
    pub injected: u64,
}

impl FaultPlan {
    /// Build a plan from a config (seeds the PRNG from `cfg.seed`).
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            rng: SimRng::seed_from_u64(cfg.seed),
            injected: 0,
        }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decide whether the next swap request faults. Exactly one PRNG draw
    /// per call, so the fault sequence is a pure function of the seed and
    /// the call count.
    pub fn roll(&mut self) -> Option<FaultKind> {
        let x = self.rng.gen_f64();
        let mut limit = self.cfg.p_transient;
        let kind = if x < limit {
            FaultKind::TransientContention
        } else if x < {
            limit += self.cfg.p_invalid;
            limit
        } {
            FaultKind::InvalidRequest
        } else if x < {
            limit += self.cfg.p_nomem;
            limit
        } {
            FaultKind::WalkAllocFailure
        } else if x < {
            limit += self.cfg.p_timeout;
            limit
        } {
            FaultKind::ShootdownTimeout
        } else {
            return None;
        };
        self.injected += 1;
        Some(kind)
    }
}

/// Places in a GC cycle where a seeded crash can kill the simulated
/// machine. A crash is not a fault: it doesn't return an errno — it ends
/// the simulation at that instant, preserving only durable state (physical
/// memory, page tables, the write-ahead log). Recovery then restarts from
/// what survived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// At SwapVA syscall entry, before any intent is logged or applied.
    BeforeBatchApply,
    /// Between requests of an aggregated batch: earlier requests applied
    /// (and logged), later ones never happened.
    InsideBatchApply,
    /// After the batch fully applied but before its trailing TLB flush.
    AfterBatchApply,
    /// Mid-shootdown: the IPI fan-out died partway through the victim
    /// loop, leaving some cores' TLBs stale.
    MidIpi,
    /// During an in-process undo-journal rollback (an aborting cycle dies
    /// again while restoring).
    MidRollback,
    /// During a write-ahead-log append: the record is torn mid-write and
    /// its operation never applies.
    MidLogAppend,
    /// During recovery's own undo replay — the double-crash case; recovery
    /// must be restartable.
    InsideRecovery,
    /// During a far-tier demotion, after the page's writeback to the
    /// device began but before the demotion's WAL record became durable.
    /// The DRAM copy is still intact, so recovery must treat the page as
    /// resident (and reclaim any orphaned device slot).
    MidDemoteWriteback,
    /// During a far-tier promotion, after the device fetch returned but
    /// before the fetched bytes landed in the frame. The device copy is
    /// still authoritative, so recovery must re-fetch.
    MidPromoteFetch,
}

impl CrashPoint {
    /// Every crash point, in a fixed order (for matrices and parsers).
    pub const ALL: [CrashPoint; 9] = [
        CrashPoint::BeforeBatchApply,
        CrashPoint::InsideBatchApply,
        CrashPoint::AfterBatchApply,
        CrashPoint::MidIpi,
        CrashPoint::MidRollback,
        CrashPoint::MidLogAppend,
        CrashPoint::InsideRecovery,
        CrashPoint::MidDemoteWriteback,
        CrashPoint::MidPromoteFetch,
    ];

    /// Stable name (CLI flag values, trace args).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::BeforeBatchApply => "before-batch",
            CrashPoint::InsideBatchApply => "inside-batch",
            CrashPoint::AfterBatchApply => "after-batch",
            CrashPoint::MidIpi => "mid-ipi",
            CrashPoint::MidRollback => "mid-rollback",
            CrashPoint::MidLogAppend => "mid-log-append",
            CrashPoint::InsideRecovery => "inside-recovery",
            CrashPoint::MidDemoteWriteback => "mid-demote-writeback",
            CrashPoint::MidPromoteFetch => "mid-promote-fetch",
        }
    }

    /// Numeric code for trace arguments and exit summaries.
    pub fn code(self) -> u64 {
        match self {
            CrashPoint::BeforeBatchApply => 1,
            CrashPoint::InsideBatchApply => 2,
            CrashPoint::AfterBatchApply => 3,
            CrashPoint::MidIpi => 4,
            CrashPoint::MidRollback => 5,
            CrashPoint::MidLogAppend => 6,
            CrashPoint::InsideRecovery => 7,
            CrashPoint::MidDemoteWriteback => 8,
            CrashPoint::MidPromoteFetch => 9,
        }
    }

    /// Parse a [`CrashPoint::name`] back.
    pub fn parse(s: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled crash: kill the machine the `after`-th time execution
/// reaches `point` (1 = the first occurrence). Deterministic by
/// construction — no probability involved, so a crash plan composes with
/// any seeded [`FaultPlan`] without perturbing its PRNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Where to die.
    pub point: CrashPoint,
    /// Occurrences of `point` to let pass before firing (1 = first).
    pub after: u64,
}

impl CrashPlan {
    /// Crash at the first occurrence of `point`.
    pub fn first(point: CrashPoint) -> CrashPlan {
        CrashPlan { point, after: 1 }
    }

    /// Crash at the `n`-th occurrence of `point` (clamped to ≥ 1).
    pub fn nth(point: CrashPoint, n: u64) -> CrashPlan {
        CrashPlan {
            point,
            after: n.max(1),
        }
    }

    /// Parse `"<point>"` or `"<point>:<n>"` (e.g. `"inside-batch:3"`).
    pub fn parse(s: &str) -> Option<CrashPlan> {
        match s.split_once(':') {
            Some((p, n)) => Some(CrashPlan::nth(CrashPoint::parse(p)?, n.parse().ok()?)),
            None => Some(CrashPlan::first(CrashPoint::parse(s)?)),
        }
    }
}

impl Kernel {
    /// Install (or clear) the fault plan consulted by every subsequent
    /// SwapVA request.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The active fault plan, if any (for inspecting `injected`).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Roll the fault plan for one swap request; counts injections in
    /// `perf.swap_faults_injected`.
    pub(crate) fn roll_fault(&mut self) -> Option<FaultKind> {
        let kind = self.fault.as_mut()?.roll()?;
        self.perf.swap_faults_injected += 1;
        Some(kind)
    }

    /// Cycles a failed SwapVA attempt burns before returning its errno.
    /// Failed work costs real time — that is the whole reason retry needs
    /// a *bounded* budget — but none of it mutates simulated memory, TLBs,
    /// or caches (the request never got far enough to apply).
    pub(crate) fn fault_attempt_cost(
        &mut self,
        kind: FaultKind,
        pages: u64,
        _core: CoreId,
        _asid: Asid,
    ) -> Cycles {
        let costs = self.machine.costs;
        match kind {
            // Walked both first operands (full 4-level walks), then spun on
            // the PTE lock until the backoff limit.
            FaultKind::TransientContention => {
                Cycles(8 * costs.pt_level_access + 16 * costs.lock_unlock)
            }
            // Rejected while re-validating the VMA before touching PTEs.
            FaultKind::InvalidRequest => Cycles(4 * costs.pt_level_access),
            // Walked to the missing table, attempted (and failed) to
            // allocate it.
            FaultKind::WalkAllocFailure => {
                Cycles(4 * costs.pt_level_access + 4 * costs.mem_access)
            }
            // Exchanged the PTEs, broadcast the shootdown, waited out the
            // timeout, then rolled every PTE back.
            FaultKind::ShootdownTimeout => {
                let cores = self.machine.cores as u64;
                Cycles(
                    2 * 2 * pages * costs.pte_swap
                        + cores.saturating_sub(1) * costs.ipi_send
                        + 4 * costs.ipi_receive_flush,
                )
            }
        }
    }

    /// Install the crash schedule (one entry per planned crash — several
    /// entries model a double crash, e.g. `[inside-batch, inside-recovery]`).
    /// Clears any previously latched crash.
    pub fn set_crash_plans(&mut self, plans: Vec<CrashPlan>) {
        self.crash = plans;
        self.crashed = None;
    }

    /// The crash plans not yet fired.
    pub fn crash_plans(&self) -> &[CrashPlan] {
        &self.crash
    }

    /// The latched crash, if the machine has died. Once set, every
    /// crash-gated kernel entry point refuses to run until
    /// [`Kernel::reboot`].
    pub fn crashed(&self) -> Option<CrashPoint> {
        self.crashed
    }

    /// Execution just reached `point`: consume one occurrence from the
    /// matching plan (if any) and, when it hits zero, latch the crash and
    /// return `true`. Callers must then abandon all volatile work — only
    /// durable state (vmem, page tables, WAL) is preserved.
    pub fn crash_fire(&mut self, point: CrashPoint) -> bool {
        let Some(i) = self.crash.iter().position(|p| p.point == point) else {
            return false;
        };
        self.crash[i].after -= 1;
        if self.crash[i].after > 0 {
            return false;
        }
        self.crash.remove(i);
        self.crashed = Some(point);
        self.trace.instant(
            svagc_metrics::TraceKind::CrashFired,
            Cycles::ZERO,
            0,
            &[("point", point.code())],
        );
        true
    }

    /// Gate a kernel entry point on the crash schedule: error out if the
    /// machine is already dead, then check whether it dies right here.
    pub(crate) fn crash_gate(&mut self, point: CrashPoint) -> Result<(), crate::SwapVaError> {
        if let Some(p) = self.crashed {
            return Err(crate::SwapVaError::Crashed { point: p });
        }
        if self.crash_fire(point) {
            return Err(crate::SwapVaError::Crashed { point });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fault_sequence() {
        let cfg = FaultConfig::uniform(0.3, 99);
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        let seq_a: Vec<_> = (0..500).map(|_| a.roll()).collect();
        let seq_b: Vec<_> = (0..500).map(|_| b.roll()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(a.injected > 0);
    }

    #[test]
    fn zero_probability_never_fires() {
        let mut p = FaultPlan::new(FaultConfig::uniform(0.0, 1));
        assert!((0..1000).all(|_| p.roll().is_none()));
        assert_eq!(p.injected, 0);
    }

    #[test]
    fn injection_rate_tracks_probability() {
        let mut p = FaultPlan::new(FaultConfig::uniform(0.1, 7));
        let n: usize = (0..20_000).filter(|_| p.roll().is_some()).count();
        assert!((1500..2500).contains(&n), "fired {n}/20000 at p=0.1");
    }

    #[test]
    fn uniform_split_produces_every_kind() {
        let mut p = FaultPlan::new(FaultConfig::uniform(0.5, 3));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            if let Some(k) = p.roll() {
                seen.insert(k);
            }
        }
        assert_eq!(seen.len(), 4, "all four modes fire: {seen:?}");
    }

    #[test]
    fn transient_only_is_all_eagain() {
        let mut p = FaultPlan::new(FaultConfig::transient_only(0.4, 11));
        for _ in 0..2000 {
            if let Some(k) = p.roll() {
                assert_eq!(k, FaultKind::TransientContention);
                assert!(k.is_transient());
            }
        }
    }

    #[test]
    fn kind_taxonomy() {
        assert!(FaultKind::TransientContention.is_transient());
        assert!(FaultKind::ShootdownTimeout.is_transient());
        assert!(!FaultKind::InvalidRequest.is_transient());
        assert!(!FaultKind::WalkAllocFailure.is_transient());
        assert_eq!(FaultKind::InvalidRequest.errno(), "EINVAL");
    }
}
