//! Undo journal for transactional GC cycles.
//!
//! Every mutation the kernel applies on behalf of a GC cycle — PTE swaps,
//! memmove byte copies, and single metadata-word writes — can be recorded
//! into an [`OpJournal`] with enough information to invert it. Replaying
//! the journal *backward* ([`Kernel::rollback`]) restores the virtual
//! content view of the address space bit-for-bit, because each undo step
//! exactly inverts its forward operation:
//!
//! * **Disjoint PTE swap** — involutive: re-swapping the same page pairs
//!   restores the original mapping (and therefore the original contents as
//!   seen through virtual addresses).
//! * **Overlap rotation** (Algorithm 2) — *not* involutive (the window is
//!   rotated, not exchanged pairwise), so the forward path snapshots the
//!   byte contents of the whole window union and the undo restores them.
//! * **memmove** — destructive on the destination; the forward path
//!   snapshots the destination bytes and the undo restores them.
//! * **Metadata word write** (forwarding pointers, adjusted reference
//!   fields) — the forward path records the old word value.
//!
//! Because operations are journaled in application order and undone in
//! reverse, interleaved mapping changes compose correctly: a byte restore
//! always runs after every later mapping change has been undone, so it
//! writes through the same translation the forward operation used.
//!
//! Rollback uses the *functional* vmem primitives directly — it bypasses
//! the fault-injection plan (a rollback must not itself fault) and does
//! not re-journal (undo is not a recordable mutation). Cycle costs are
//! still charged: PTE writes at `pte_swap`, byte restores through the
//! bandwidth model, word restores at `mem_access`.

use crate::error::RollbackError;
use crate::fault::CrashPoint;
use crate::state::{CoreId, Kernel};
use crate::swapva::SwapRequest;
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::{AddressSpace, VirtAddr, PAGE_SIZE};

/// One invertible operation applied by the kernel while a journal was
/// active, with the data needed to undo it.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// A disjoint PTE swap: undone by re-applying the same swap
    /// (pairwise PTE exchange is an involution).
    PteSwap {
        /// The request as applied.
        req: SwapRequest,
    },
    /// A byte-range overwrite (memmove destination, or the window union
    /// of a non-involutive overlap rotation): undone by restoring the
    /// saved bytes. The pre-image itself lives in the owning journal's
    /// shared byte arena ([`OpJournal::bytes`]) — one growable buffer per
    /// cycle instead of one heap allocation per journaled move, which is
    /// the difference between the journal being free and it dominating
    /// host time on copy-heavy workloads.
    Bytes {
        /// Start of the overwritten virtual range.
        at: VirtAddr,
        /// The pre-image's slice of the journal's byte arena.
        saved: core::ops::Range<usize>,
    },
    /// A single word write (forwarding pointer, adjusted reference field):
    /// undone by restoring the old value.
    Word {
        /// The written word's virtual address.
        at: VirtAddr,
        /// The word's value immediately before the write.
        old: u64,
    },
}

impl UndoOp {
    /// Pages this op's undo rewrites (words count as zero — they are
    /// sub-page metadata restores).
    fn pages(&self) -> u64 {
        match self {
            UndoOp::PteSwap { req } => 2 * req.pages,
            UndoOp::Bytes { saved, .. } => (saved.len() as u64).div_ceil(PAGE_SIZE),
            UndoOp::Word { .. } => 0,
        }
    }
}

/// An append-only log of invertible kernel operations, in application
/// order. Undone back-to-front by [`Kernel::rollback`].
#[derive(Debug, Clone, Default)]
pub struct OpJournal {
    ops: Vec<UndoOp>,
    /// Shared arena holding every [`UndoOp::Bytes`] pre-image, indexed by
    /// the ops' `saved` ranges. Appended by [`Kernel::journal_stash_bytes`].
    bytes: Vec<u8>,
    /// Kernel-assigned identity (0 for hand-built journals). Rollback
    /// retires the id so a journal can only ever replay once — a second
    /// replay would re-corrupt restored state (PTE re-swap is an
    /// involution, byte/word restores may clobber newer writes).
    id: u64,
}

impl OpJournal {
    /// An empty journal.
    pub fn new() -> OpJournal {
        OpJournal::default()
    }

    /// The kernel-assigned journal identity (0 = unidentified; such
    /// journals bypass replay protection).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded (rollback is a no-op).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append an operation.
    pub(crate) fn record(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    /// Total pages a rollback of this journal would rewrite.
    pub fn pages(&self) -> u64 {
        self.ops.iter().map(UndoOp::pages).sum()
    }
}

impl Kernel {
    /// Start journaling: every subsequent PTE swap, memmove, and
    /// `write_word` records an undo entry until [`Kernel::journal_take`].
    /// Any previously active journal is discarded.
    pub fn journal_begin(&mut self) {
        self.next_journal_id += 1;
        if let Some(old) = self.journal.take() {
            self.journal_stash_spare(old.bytes);
        }
        // Reuse the arena of the last retired journal: cycle after cycle
        // the pre-image buffer stays warm instead of being re-grown (and
        // its pages re-faulted) from nothing.
        let mut bytes = std::mem::take(&mut self.journal_spare);
        bytes.clear();
        self.journal = Some(OpJournal {
            ops: Vec::new(),
            bytes,
            id: self.next_journal_id,
        });
    }

    /// Stop journaling and return the recorded journal (None if journaling
    /// was never started). Call this both to commit (drop the result) and
    /// to abort (pass the result to [`Kernel::rollback`]).
    pub fn journal_take(&mut self) -> Option<OpJournal> {
        self.journal.take()
    }

    /// Commit fast path: stop journaling and discard the record, keeping
    /// the byte arena for the next cycle. Equivalent to dropping the
    /// result of [`Kernel::journal_take`], minus the reallocation.
    pub fn journal_retire(&mut self) {
        if let Some(j) = self.journal.take() {
            self.journal_stash_spare(j.bytes);
        }
    }

    /// Keep `bytes` as the next journal's arena if it beats the current
    /// spare. Capped so a one-off giant cycle cannot pin its peak arena
    /// in memory forever.
    fn journal_stash_spare(&mut self, mut bytes: Vec<u8>) {
        const SPARE_CAP: usize = 8 << 20;
        bytes.clear();
        if bytes.capacity() <= SPARE_CAP && bytes.capacity() > self.journal_spare.capacity() {
            self.journal_spare = bytes;
        }
    }

    /// Is a journal currently recording?
    pub fn journal_active(&self) -> bool {
        self.journal.is_some()
    }

    /// Record `op` into the active journal, if any.
    pub(crate) fn journal_record(&mut self, op: UndoOp) {
        if let Some(j) = self.journal.as_mut() {
            j.record(op);
        }
    }

    /// Read `len` bytes at `at` into the active journal's byte arena and
    /// return their arena range for a later [`UndoOp::Bytes`] record
    /// (None when no journal is recording). Split from the record itself
    /// because callers snapshot *before* the destructive operation but
    /// journal it *after* (application order); on a read error the arena
    /// may keep a dangling prefix, which is harmless — no op points at it.
    pub(crate) fn journal_stash_bytes(
        &mut self,
        space: &AddressSpace,
        at: VirtAddr,
        len: u64,
    ) -> Result<Option<core::ops::Range<usize>>, svagc_vmem::VmError> {
        match self.journal.as_mut() {
            Some(j) => {
                let start = j.bytes.len();
                self.vmem.read_bytes_into(space, at, len, &mut j.bytes)?;
                Ok(Some(start..start + len as usize))
            }
            None => Ok(None),
        }
    }

    /// Replay `journal` backward, restoring the virtual content view of
    /// `space` to its state when the journal was begun. Returns the cycles
    /// charged to `core` and the number of pages rewritten.
    ///
    /// Uses functional vmem operations: no fault injection, no TLB
    /// consults, no re-journaling. The caller is responsible for the
    /// trailing TLB shootdown (stale translations survive on every core
    /// until flushed).
    ///
    /// A kernel-identified journal (id ≠ 0) can replay at most once:
    /// replays are rejected with [`RollbackError::Replayed`] *before* any
    /// op is undone, because the undo ops are not idempotent against an
    /// already-restored heap. A seeded [`CrashPoint::MidRollback`] fires
    /// between ops and aborts the restore with [`RollbackError::Crashed`].
    pub fn rollback(
        &mut self,
        space: &mut AddressSpace,
        journal: OpJournal,
        core: CoreId,
    ) -> Result<(Cycles, u64), RollbackError> {
        if journal.id != 0 && !self.retired_journals.insert(journal.id) {
            return Err(RollbackError::Replayed { id: journal.id });
        }
        let costs = self.machine.costs;
        let mut t = Cycles::ZERO;
        let mut pages = 0u64;
        for op in journal.ops.iter().rev() {
            if self.crash_fire(CrashPoint::MidRollback) {
                return Err(RollbackError::Crashed);
            }
            pages += op.pages();
            match op {
                UndoOp::PteSwap { req } => {
                    for i in 0..req.pages {
                        space
                            .page_table_mut()
                            .swap_ptes(req.a.add_pages(i), req.b.add_pages(i))?;
                        self.perf.pte_swaps += 1;
                        t += Cycles(costs.pte_swap);
                    }
                }
                UndoOp::Bytes { at, saved } => {
                    // A pre-image restored into a demoted page would be
                    // clobbered by the next fetch-on-access; pull any far
                    // page home before the raw write.
                    t += self.tier_resolve_write_range(space, *at, saved.len() as u64)?;
                    self.vmem.write_bytes(space, *at, &journal.bytes[saved.clone()])?;
                    t += self.bandwidth.copy_cycles(&self.machine, saved.len() as u64);
                }
                UndoOp::Word { at, old } => {
                    t += self.tier_resolve_write_range(space, *at, 8)?;
                    self.vmem.write_u64(space, *at, *old)?;
                    t += Cycles(costs.mem_access);
                }
            }
        }
        self.perf.rollback_pages += pages;
        self.trace.instant(
            TraceKind::Rollback,
            Cycles::ZERO,
            core.0 as u32,
            &[("ops", journal.len() as u64), ("pages", pages)],
        );
        self.journal_stash_spare(journal.bytes);
        Ok((t, pages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swapva::SwapVaOptions;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::Asid;

    fn setup(frames: u32) -> (Kernel, AddressSpace) {
        (
            Kernel::new(MachineConfig::i5_7600(), frames),
            AddressSpace::new(Asid(1)),
        )
    }

    fn fill(k: &mut Kernel, s: &AddressSpace, base: VirtAddr, pages: u64, tag: u64) {
        for i in 0..pages * 512 {
            k.vmem.write_u64(s, base + i * 8, tag * 1_000_000 + i).unwrap();
        }
    }

    fn snapshot(k: &Kernel, s: &AddressSpace, base: VirtAddr, bytes: u64) -> Vec<u8> {
        let mut buf = vec![0u8; bytes as usize];
        k.vmem.read_bytes(s, base, &mut buf).unwrap();
        buf
    }

    #[test]
    fn rollback_undoes_disjoint_swaps() {
        let (mut k, mut s) = setup(128);
        let a = k.vmem.alloc_region(&mut s, 4).unwrap();
        let b = k.vmem.alloc_region(&mut s, 4).unwrap();
        fill(&mut k, &s, a, 4, 1);
        fill(&mut k, &s, b, 4, 2);
        let before_a = snapshot(&k, &s, a, 4 * PAGE_SIZE);
        let before_b = snapshot(&k, &s, b, 4 * PAGE_SIZE);
        k.journal_begin();
        k.swap_va(&mut s, CoreId(0), SwapRequest { a, b, pages: 4 }, SwapVaOptions::naive())
            .unwrap();
        assert_ne!(snapshot(&k, &s, a, 4 * PAGE_SIZE), before_a);
        let j = k.journal_take().unwrap();
        assert_eq!(j.len(), 1);
        let (_, pages) = k.rollback(&mut s, j, CoreId(0)).unwrap();
        assert_eq!(pages, 8);
        assert_eq!(snapshot(&k, &s, a, 4 * PAGE_SIZE), before_a);
        assert_eq!(snapshot(&k, &s, b, 4 * PAGE_SIZE), before_b);
        assert_eq!(k.perf.rollback_pages, 8);
    }

    #[test]
    fn rollback_undoes_overlap_rotation() {
        // The rotation is NOT involutive — this is exactly the case the
        // byte snapshot exists for.
        let (mut k, mut s) = setup(128);
        let base = k.vmem.alloc_region(&mut s, 10).unwrap();
        fill(&mut k, &s, base, 10, 3);
        let before = snapshot(&k, &s, base, 10 * PAGE_SIZE);
        // Slide 7 pages down by 3: ranges [3..10) -> [0..7) overlap.
        let req = SwapRequest {
            a: base,
            b: base.add_pages(3),
            pages: 7,
        };
        assert!(req.overlaps());
        k.journal_begin();
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive()).unwrap();
        assert_ne!(snapshot(&k, &s, base, 10 * PAGE_SIZE), before);
        let j = k.journal_take().unwrap();
        k.rollback(&mut s, j, CoreId(0)).unwrap();
        assert_eq!(snapshot(&k, &s, base, 10 * PAGE_SIZE), before);
    }

    #[test]
    fn rollback_undoes_memmove() {
        let (mut k, mut s) = setup(64);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let b = k.vmem.alloc_region(&mut s, 2).unwrap();
        fill(&mut k, &s, a, 2, 5);
        fill(&mut k, &s, b, 2, 6);
        let before_b = snapshot(&k, &s, b, 2 * PAGE_SIZE);
        k.journal_begin();
        k.memmove(&s, CoreId(0), a, b, 2 * PAGE_SIZE).unwrap();
        assert_ne!(snapshot(&k, &s, b, 2 * PAGE_SIZE), before_b);
        let j = k.journal_take().unwrap();
        let (_, pages) = k.rollback(&mut s, j, CoreId(0)).unwrap();
        assert_eq!(pages, 2);
        assert_eq!(snapshot(&k, &s, b, 2 * PAGE_SIZE), before_b);
    }

    #[test]
    fn rollback_undoes_word_writes() {
        let (mut k, mut s) = setup(16);
        let a = k.vmem.alloc_region(&mut s, 1).unwrap();
        k.vmem.write_u64(&s, a, 111).unwrap();
        k.journal_begin();
        k.write_word(&s, CoreId(0), a, 222).unwrap();
        k.write_word(&s, CoreId(0), a, 333).unwrap();
        let j = k.journal_take().unwrap();
        assert_eq!(j.len(), 2);
        k.rollback(&mut s, j, CoreId(0)).unwrap();
        assert_eq!(k.vmem.read_u64(&s, a).unwrap(), 111, "oldest value wins");
    }

    #[test]
    fn rollback_composes_interleaved_ops_in_reverse() {
        // memmove into b, then swap a<->b, then scribble a word: the undo
        // order (word, swap, bytes) must restore the exact initial state.
        let (mut k, mut s) = setup(128);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let b = k.vmem.alloc_region(&mut s, 2).unwrap();
        fill(&mut k, &s, a, 2, 7);
        fill(&mut k, &s, b, 2, 8);
        let before_a = snapshot(&k, &s, a, 2 * PAGE_SIZE);
        let before_b = snapshot(&k, &s, b, 2 * PAGE_SIZE);
        k.journal_begin();
        k.memmove(&s, CoreId(0), a, b, PAGE_SIZE).unwrap();
        k.swap_va(&mut s, CoreId(0), SwapRequest { a, b, pages: 2 }, SwapVaOptions::naive())
            .unwrap();
        k.write_word(&s, CoreId(0), a + 64, 0xDEAD).unwrap();
        let j = k.journal_take().unwrap();
        assert_eq!(j.len(), 3);
        k.rollback(&mut s, j, CoreId(0)).unwrap();
        assert_eq!(snapshot(&k, &s, a, 2 * PAGE_SIZE), before_a);
        assert_eq!(snapshot(&k, &s, b, 2 * PAGE_SIZE), before_b);
    }

    #[test]
    fn faulted_swap_records_nothing() {
        use crate::fault::{FaultConfig, FaultPlan};
        let (mut k, mut s) = setup(64);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let b = k.vmem.alloc_region(&mut s, 2).unwrap();
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig::transient_only(1.0, 1))));
        k.journal_begin();
        assert!(k
            .swap_va(&mut s, CoreId(0), SwapRequest { a, b, pages: 2 }, SwapVaOptions::naive())
            .is_err());
        let j = k.journal_take().unwrap();
        assert!(j.is_empty(), "a faulted request mutates nothing, journals nothing");
    }

    #[test]
    fn empty_rollback_is_free() {
        let (mut k, mut s) = setup(16);
        k.journal_begin();
        let j = k.journal_take().unwrap();
        let (t, pages) = k.rollback(&mut s, j, CoreId(0)).unwrap();
        assert_eq!(t, Cycles::ZERO);
        assert_eq!(pages, 0);
    }

    #[test]
    fn journal_lifecycle() {
        let (mut k, _) = setup(16);
        assert!(!k.journal_active());
        assert!(k.journal_take().is_none());
        k.journal_begin();
        assert!(k.journal_active());
        assert!(k.journal_take().is_some());
        assert!(!k.journal_active());
    }

    #[test]
    fn journal_ids_are_unique_and_monotonic() {
        let (mut k, _) = setup(16);
        k.journal_begin();
        let a = k.journal_take().unwrap().id();
        k.journal_begin();
        let b = k.journal_take().unwrap().id();
        assert!(a != 0 && b != 0 && b > a);
    }

    #[test]
    fn replaying_a_rollback_is_rejected_before_corrupting() {
        use crate::error::RollbackError;
        let (mut k, mut s) = setup(128);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let b = k.vmem.alloc_region(&mut s, 2).unwrap();
        fill(&mut k, &s, a, 2, 1);
        fill(&mut k, &s, b, 2, 2);
        let before_a = snapshot(&k, &s, a, 2 * PAGE_SIZE);
        k.journal_begin();
        k.swap_va(&mut s, CoreId(0), SwapRequest { a, b, pages: 2 }, SwapVaOptions::naive())
            .unwrap();
        let j = k.journal_take().unwrap();
        let id = j.id();
        let replay = j.clone();
        k.rollback(&mut s, j, CoreId(0)).unwrap();
        assert_eq!(snapshot(&k, &s, a, 2 * PAGE_SIZE), before_a);
        // Second replay: rejected up front, heap untouched (a blind
        // re-apply would re-swap the pages and corrupt).
        assert_eq!(
            k.rollback(&mut s, replay, CoreId(0)),
            Err(RollbackError::Replayed { id })
        );
        assert_eq!(snapshot(&k, &s, a, 2 * PAGE_SIZE), before_a);
    }

    #[test]
    fn mid_rollback_crash_aborts_the_restore() {
        use crate::error::RollbackError;
        use crate::fault::{CrashPlan, CrashPoint};
        let (mut k, mut s) = setup(64);
        let a = k.vmem.alloc_region(&mut s, 1).unwrap();
        k.vmem.write_u64(&s, a, 1).unwrap();
        k.journal_begin();
        k.write_word(&s, CoreId(0), a, 2).unwrap();
        k.write_word(&s, CoreId(0), a + 8, 3).unwrap();
        let j = k.journal_take().unwrap();
        k.set_crash_plans(vec![CrashPlan::nth(CrashPoint::MidRollback, 2)]);
        assert_eq!(
            k.rollback(&mut s, j, CoreId(0)),
            Err(RollbackError::Crashed)
        );
        assert_eq!(k.crashed(), Some(CrashPoint::MidRollback));
    }
}
