//! The simulated kernel: the SwapVA system call and everything it needs.
//!
//! This crate is the reproduction of the paper's §III (SwapVA design) and
//! the OS half of §IV (multi-core scalability):
//!
//! * [`state`] — the [`Kernel`]: machine config + physical memory +
//!   per-core TLBs + perf counters; TLB-mediated translation with refill
//!   charging; optional cache instrumentation for Table III.
//! * [`swapva`] — Algorithm 1 ([`Kernel::swap_va`]), request aggregation
//!   ([`Kernel::swap_va_batch`], Fig. 5/6), and PMD-cached walks
//!   (Fig. 7/8).
//! * [`overlap`] — Algorithm 2: gcd-cycle rotation of overlapping ranges in
//!   `n + δ` PTE writes.
//! * [`shootdown`] — flush policies: naive per-call global IPI broadcast
//!   vs the pinned local-only protocol of Algorithm 4 (Fig. 9, Eq. 2).
//! * [`batch`] — aggregation buffers ([`SwapBatch`]): the cap/page-budget
//!   policy each compact work packet carries for its own flushes.
//! * [`memmove`] — the cost-modeled byte-copy baseline SwapVA replaces.
//! * [`fault`] — deterministic, seeded injection of modeled SwapVA failure
//!   modes (EAGAIN/EINVAL/ENOMEM/IPI timeout) for chaos testing; failures
//!   surface as typed [`SwapVaError`]s that carry the cycles burned. Also
//!   home of seeded [`fault::CrashPoint`]s, which kill the simulated
//!   machine outright instead of returning an errno.
//! * [`wal`] — the durable write-ahead journal for PTE-mutating ops:
//!   intent records become durable *before* their mutations apply, so a
//!   crash at any point leaves a log from which recovery can restore a
//!   bit-exact pre- or post-cycle heap (never a hybrid).
//!
//! All operations return the [`svagc_metrics::Cycles`] consumed so callers
//! attribute time to the right simulated core.

#![warn(missing_docs)]

pub mod batch;
pub mod device;
pub mod error;
pub mod fault;
pub mod journal;
pub mod memmove;
pub mod overlap;
pub mod retry;
pub mod shootdown;
pub mod state;
pub mod swapva;
pub mod tier;
pub mod wal;

pub use batch::SwapBatch;
pub use device::{
    DeviceError, DeviceFaultConfig, DeviceFaultKind, DeviceFaultPlan, DeviceStats, FarDevice,
    SlotId,
};
pub use error::{RollbackError, SwapVaError};
pub use fault::{CrashPlan, CrashPoint, FaultConfig, FaultKind, FaultPlan};
pub use journal::{OpJournal, UndoOp};
pub use overlap::gcd;
pub use retry::RetryPolicy;
pub use shootdown::{FlushMode, Interference};
pub use state::{CoreId, Kernel};
pub use swapva::{SwapRequest, SwapVaOptions};
pub use tier::{FarTier, TierError, TierStats};
pub use wal::{WalMutation, WalOp, WalPayload, WalRecord, WalScan, WalStats, WriteAheadLog, TIER_EPOCH};
