//! Cost-modeled `memmove` over virtual ranges — the baseline GC copy path.
//!
//! Functionally a byte-exact overlap-safe move through the address space;
//! its cost is bandwidth-driven: bulk copies stream src+dst through DRAM,
//! so under multi-JVM contention each copier's effective bandwidth drops
//! (Fig. 2/14). In instrumented mode every 64-byte line of src and dst also
//! passes through the cache simulator — the pollution Table III measures —
//! but the *timing* stays bandwidth-modeled to avoid double counting.

use crate::state::{CoreId, Kernel};
use svagc_metrics::{AccessKind, Cycles, TraceKind};
use svagc_vmem::{AddressSpace, VirtAddr, VmError};

impl Kernel {
    /// Move `len` bytes from `src` to `dst` in `space` (memmove semantics:
    /// overlap-safe). Returns cycles charged to `core`.
    pub fn memmove(
        &mut self,
        space: &AddressSpace,
        core: CoreId,
        src: VirtAddr,
        dst: VirtAddr,
        len: u64,
    ) -> Result<Cycles, VmError> {
        if len == 0 {
            return Ok(Cycles::ZERO);
        }
        let mut t = Cycles::ZERO;

        // Translation cost: one TLB consult per page actually touched on
        // each side (hardware walks per page, not per byte).
        for base in [src, dst] {
            let pages = (base + (len - 1)).vpn() - base.vpn() + 1;
            for i in 0..pages {
                let page = VirtAddr((base.vpn() + i) << svagc_vmem::PAGE_SHIFT);
                let (_, c) = self.translate(space, core, page)?;
                t += c;
            }
        }

        // The copy destroys the destination; journal its bytes first so an
        // aborting GC cycle can restore them (see `crate::journal`), and
        // write the same pre-image ahead to the durable log so a crashed
        // cycle can restore them after a restart (see `crate::wal`).
        if self.wal_cycle_open() {
            let mut pre = vec![0u8; len as usize];
            self.vmem.read_bytes(space, dst, &mut pre)?;
            if let Ok(c) = self.wal_log_op(crate::wal::WalOp::Bytes { at: dst, pre }, false) {
                t += c;
            }
        }
        if let Some(saved) = self.journal_stash_bytes(space, dst, len)? {
            self.journal_record(crate::journal::UndoOp::Bytes { at: dst, saved });
        }
        // Functional move, overlap-safe, without materialising a bounce
        // buffer (the GC copy loop calls this once per moved object; a
        // per-call allocation plus double traffic dominated host time).
        self.vmem.move_bytes(space, src, dst, len)?;

        // Cache + DTLB pollution: stream src (reads) then dst (writes),
        // one TLB lookup and one cache access per line — exactly the
        // event stream `perf` would see from the copy loop.
        if self.instrumented() {
            for (base, kind) in [(src, AccessKind::Read), (dst, AccessKind::Write)] {
                for off in (0..len).step_by(64) {
                    let (pa, _) = self.translate(space, core, base + off)?;
                    self.touch_data_line(pa, kind);
                }
            }
        }

        // Bandwidth/CPU copy cost under current contention.
        t += self.bandwidth.copy_cycles(&self.machine, len);
        self.perf.bytes_copied += len;
        self.trace.span(
            TraceKind::Memmove,
            Cycles::ZERO,
            t,
            core.0 as u32,
            &[("bytes", len)],
        );
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::{AddressSpace, Asid, PAGE_SIZE};

    fn setup(frames: u32) -> (Kernel, AddressSpace) {
        (
            Kernel::new(MachineConfig::i5_7600(), frames),
            AddressSpace::new(Asid(1)),
        )
    }

    #[test]
    fn moves_bytes_exactly() {
        let (mut k, mut s) = setup(64);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let b = k.vmem.alloc_region(&mut s, 2).unwrap();
        let data: Vec<u8> = (0..200u32).map(|x| (x * 7) as u8).collect();
        k.vmem.write_bytes(&s, a + 100, &data).unwrap();
        k.memmove(&s, CoreId(0), a + 100, b + 51, 200).unwrap();
        let mut out = vec![0u8; 200];
        k.vmem.read_bytes(&s, b + 51, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn overlapping_move_is_safe() {
        let (mut k, mut s) = setup(64);
        let a = k.vmem.alloc_region(&mut s, 4).unwrap();
        let data: Vec<u8> = (0..8192u32).map(|x| (x % 251) as u8).collect();
        k.vmem.write_bytes(&s, a, &data).unwrap();
        // Slide down by 1000 bytes with heavy overlap (the LISP2 pattern).
        k.memmove(&s, CoreId(0), a + 1000, a, 8192 - 1000).unwrap();
        let mut out = vec![0u8; 8192 - 1000];
        k.vmem.read_bytes(&s, a, &mut out).unwrap();
        assert_eq!(&out[..], &data[1000..]);
    }

    #[test]
    fn cost_scales_with_length() {
        let (mut k, mut s) = setup(1024);
        let a = k.vmem.alloc_region(&mut s, 256).unwrap();
        let b = k.vmem.alloc_region(&mut s, 256).unwrap();
        let c_small = k.memmove(&s, CoreId(0), a, b, 4096).unwrap();
        let c_big = k.memmove(&s, CoreId(0), a, b, 256 * 4096).unwrap();
        assert!(c_big.get() > c_small.get() * 50);
        assert_eq!(k.perf.bytes_copied, 4096 + 256 * 4096);
    }

    #[test]
    fn zero_length_is_free() {
        let (mut k, mut s) = setup(16);
        let a = k.vmem.alloc_region(&mut s, 1).unwrap();
        assert_eq!(k.memmove(&s, CoreId(0), a, a, 0).unwrap(), Cycles::ZERO);
    }

    #[test]
    fn unmapped_range_errors() {
        let (mut k, mut s) = setup(16);
        let a = k.vmem.alloc_region(&mut s, 1).unwrap();
        let hole = VirtAddr(a.get() + 64 * PAGE_SIZE);
        assert!(k.memmove(&s, CoreId(0), a, hole, 64).is_err());
    }

    #[test]
    fn instrumented_memmove_pollutes_cache() {
        let (mut k, mut s) = setup(4096);
        k.set_instrumented(true);
        let a = k.vmem.alloc_region(&mut s, 512).unwrap();
        let b = k.vmem.alloc_region(&mut s, 512).unwrap();
        k.memmove(&s, CoreId(0), a, b, 512 * 4096).unwrap();
        // 2 MiB src + 2 MiB dst = 65536 line touches.
        assert_eq!(k.perf.cache_accesses, 2 * 512 * 4096 / 64);
        assert!(k.perf.cache_misses > 0);
    }
}
