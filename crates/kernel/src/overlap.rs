//! Algorithm 2: swapping overlapping areas by cycle rotation.
//!
//! When the destination range overlaps the source (the common case in
//! sliding compaction, where objects move down-heap by less than their own
//! size), a pairwise swap would need `2n` PTE writes and would not even be
//! well defined on the intersection. Algorithm 2 instead treats the union
//! of the two ranges (`n + δ` pages, `δ` = page distance between bases) as
//! one window and rotates it: the permutation
//!
//! ```text
//! σ(i) = i + n   if i < δ      (displaced low pages park at the top)
//!      = i - δ   otherwise     (everything else slides down by δ)
//! ```
//!
//! decomposes into `gcd(δ, n)` cycles, each rotated with a single temporary
//! (`pteTemp`), for a total of `n + δ` PTE writes — `O(n + δ)` instead of
//! `O(2n)`.
//!
//! Semantics: afterwards the *lower* range holds exactly the old contents
//! of the *upper* range (what a GC move needs); the remainder of the window
//! holds the displaced old low pages. The paper uses SwapVA "as a move
//! operation" when source values are dead — this is that case.

use crate::state::{CoreId, Kernel};
use crate::swapva::SwapRequest;
use svagc_metrics::Cycles;
use svagc_vmem::{AddressSpace, PmdCache, VirtAddr, VmError, PAGE_SIZE};

/// Greatest common divisor (Algorithm 2 line 7 controls cycle count).
pub fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// `FINDSWAPPLACE` from Algorithm 2: where the PTE at window index `i`
/// moves, for window of `pages` pages and base distance `delta`.
#[inline]
fn find_swap_place(i: u64, delta: u64, pages: u64) -> u64 {
    if i < delta {
        i + pages
    } else {
        i - delta
    }
}

/// Rotate the PTEs of an overlapping request (no syscall entry / trailing
/// ASID flush — the caller handles those). Flushes each touched page
/// locally as Algorithm 2 does (lines 17/21).
pub(crate) fn swap_overlap_body(
    k: &mut Kernel,
    space: &mut AddressSpace,
    core: CoreId,
    req: SwapRequest,
    pmd_cache: bool,
) -> Result<Cycles, VmError> {
    let lo = if req.a <= req.b { req.a } else { req.b };
    let n = req.pages;
    let delta = (req.a.get().abs_diff(req.b.get())) / PAGE_SIZE;
    debug_assert!(delta < n, "caller routes only truly-overlapping requests");
    if delta == 0 {
        return Ok(Cycles::ZERO); // identical ranges: nothing to do
    }
    let window = n + delta;
    let asid = space.asid();
    let at = |i: u64| lo.add_pages(i);

    // Validate the whole window up front: no partial rotation on error.
    for i in 0..window {
        space.page_table().read_pte_raw(at(i))?;
    }

    let mut t = Cycles::ZERO;
    let mut cache = PmdCache::new();
    let get_pte = |k: &mut Kernel, va: VirtAddr, c: &mut PmdCache| -> Cycles {
        k.get_pte_cost(va, c, pmd_cache) + Cycles(k.machine.costs.lock_unlock)
    };

    let cycles_to_rotate = gcd(delta, n);
    for start in 0..cycles_to_rotate {
        // pteCur <- GETPTE(base + start); pteTemp <- pteCur
        t += get_pte(k, at(start), &mut cache);
        let mut temp = space.page_table().read_pte_raw(at(start))?;
        let mut idx = find_swap_place(start, delta, n);
        while idx != start {
            let va = at(idx);
            t += get_pte(k, va, &mut cache);
            let here = space.page_table().read_pte_raw(va)?;
            space.page_table_mut().write_pte_raw(va, temp)?;
            k.perf.pte_swaps += 1;
            t += Cycles(k.machine.costs.pte_swap);
            t += k.flush_tlb_page(core, asid, va);
            temp = here;
            idx = find_swap_place(idx, delta, n);
        }
        space.page_table_mut().write_pte_raw(at(start), temp)?;
        k.perf.pte_swaps += 1;
        t += Cycles(k.machine.costs.pte_swap);
        t += k.flush_tlb_page(core, asid, at(start));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SwapVaError;
    use crate::swapva::SwapVaOptions;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::{AddressSpace, Asid};

    fn setup(frames: u32) -> (Kernel, AddressSpace) {
        (
            Kernel::new(MachineConfig::i5_7600(), frames),
            AddressSpace::new(Asid(1)),
        )
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(6, 6), 6);
    }

    /// Write page-stamps, overlap-move, and verify: the low range must end
    /// up holding the old contents of the high range.
    fn overlap_case(n: u64, delta: u64) {
        let (mut k, mut s) = setup((n + delta + 8) as u32 * 2);
        let window = n + delta;
        let base = k.vmem.alloc_region(&mut s, window).unwrap();
        for i in 0..window {
            k.vmem.write_u64(&s, base.add_pages(i), 100 + i).unwrap();
        }
        let hi = base.add_pages(delta);
        // Move the upper range [delta, delta+n) down to [0, n).
        let req = SwapRequest {
            a: base,
            b: hi,
            pages: n,
        };
        assert!(req.overlaps());
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap();
        for i in 0..n {
            assert_eq!(
                k.vmem.read_u64(&s, base.add_pages(i)).unwrap(),
                100 + delta + i,
                "dest page {i} (n={n}, delta={delta})"
            );
        }
        // The window is a permutation: every original stamp appears once.
        let mut seen: Vec<u64> = (0..window)
            .map(|i| k.vmem.read_u64(&s, base.add_pages(i)).unwrap())
            .collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..window).map(|i| 100 + i).collect();
        assert_eq!(seen, expect, "rotation must not lose/duplicate frames");
    }

    #[test]
    fn move_semantics_various_shapes() {
        overlap_case(4, 1);
        overlap_case(4, 2); // gcd(2,4)=2 cycles
        overlap_case(6, 4); // gcd(4,6)=2
        overlap_case(9, 6); // gcd(6,9)=3
        overlap_case(8, 7); // coprime
        overlap_case(2, 1); // minimal
    }

    #[test]
    fn pte_writes_are_n_plus_delta() {
        let (mut k, mut s) = setup(128);
        let n = 16;
        let delta = 5;
        let base = k.vmem.alloc_region(&mut s, n + delta).unwrap();
        let req = SwapRequest {
            a: base,
            b: base.add_pages(delta),
            pages: n,
        };
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap();
        // O(n + δ): exactly one PTE write per window slot.
        assert_eq!(k.perf.pte_swaps, n + delta);
        // vs 2n for the disjoint path.
        assert!(k.perf.pte_swaps < 2 * n);
    }

    #[test]
    fn operand_order_does_not_matter() {
        // swap(a, b) with b > a overlapping is routed to the same rotation
        // as swap(b, a).
        let (mut k, mut s) = setup(64);
        let base = k.vmem.alloc_region(&mut s, 6).unwrap();
        for i in 0..6 {
            k.vmem.write_u64(&s, base.add_pages(i), i).unwrap();
        }
        let req = SwapRequest {
            a: base.add_pages(2),
            b: base,
            pages: 4,
        };
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap();
        for i in 0..4 {
            assert_eq!(k.vmem.read_u64(&s, base.add_pages(i)).unwrap(), 2 + i);
        }
    }

    #[test]
    fn overlap_without_opt_is_rejected() {
        let (mut k, mut s) = setup(64);
        let base = k.vmem.alloc_region(&mut s, 6).unwrap();
        let req = SwapRequest {
            a: base,
            b: base.add_pages(2),
            pages: 4,
        };
        let mut opts = SwapVaOptions::naive();
        opts.overlap_opt = false;
        assert!(k.swap_va(&mut s, CoreId(0), req, opts).is_err());
    }

    #[test]
    fn identical_ranges_are_rejected() {
        // A self-swap used to be a silent no-op; validation now rejects it
        // explicitly (it is always a caller bug).
        let (mut k, mut s) = setup(64);
        let base = k.vmem.alloc_region(&mut s, 4).unwrap();
        k.vmem.write_u64(&s, base, 77).unwrap();
        let req = SwapRequest {
            a: base,
            b: base,
            pages: 4,
        };
        let err = k
            .swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap_err();
        assert!(matches!(
            err,
            SwapVaError::Vm(VmError::AliasedSwapRange { a, pages: 4 }) if a == base
        ));
        assert_eq!(k.vmem.read_u64(&s, base).unwrap(), 77);
        assert_eq!(k.perf.pte_swaps, 0);
    }
}
