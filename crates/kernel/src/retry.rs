//! Bounded, cycle-charged retry/backoff policy shared by every fallible
//! kernel path.
//!
//! Two subsystems retry transient failures: the SwapVA executor in the
//! core crate (PTE-lock contention, shootdown timeouts) and the far-memory
//! device I/O path (transient EIO, latency spikes). Both used to carry
//! their own copy of the same exponential-backoff arithmetic; this module
//! is the single source of truth. The policy is *deterministic by
//! construction* — backoff is a pure function of the attempt number, so a
//! seeded fault schedule replays to the same cycle charges on every run.

use svagc_metrics::Cycles;

/// Bounded-retry policy for transient faults (SwapVA and device I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per request before it falls back (to `memmove` for
    /// SwapVA, to the degrade ladder for device I/O).
    pub max_retries: u32,
    /// Cycles charged before the first retry; doubles per attempt.
    pub backoff_base: u64,
    /// Backoff ceiling in cycles (keeps pathological runs bounded).
    pub backoff_cap: u64,
    /// Fallbacks allowed per executor call before the next demotion is
    /// treated as *unrecoverable*. `None` (the default) never gives up —
    /// the pre-transactional behavior. A bounded budget is what makes an
    /// unrecoverable mid-compaction fault reachable, which the
    /// transactional collector answers with rollback + degraded retry.
    pub fallback_budget: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            backoff_base: 64,
            backoff_cap: 4096,
            fallback_budget: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with a custom retry budget and default backoff shape.
    pub fn with_max_retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// Cap the number of fallbacks absorbed per call.
    pub fn with_fallback_budget(mut self, budget: Option<u64>) -> RetryPolicy {
        self.fallback_budget = budget;
        self
    }

    /// Cycles the caller spins before retry number `attempt` (1-based):
    /// exponential from `backoff_base`, capped at `backoff_cap`.
    pub fn backoff(&self, attempt: u32) -> Cycles {
        let shift = attempt.saturating_sub(1).min(63);
        Cycles(
            self.backoff_base
                .saturating_mul(1u64 << shift)
                .min(self.backoff_cap),
        )
    }

    /// The full backoff schedule up to `max_retries`, as cycle values.
    /// The determinism regression test pins this: the schedule is a pure
    /// function of the policy, never of host state or call history.
    pub fn schedule(&self) -> Vec<Cycles> {
        (1..=self.max_retries).map(|a| self.backoff(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), Cycles(64));
        assert_eq!(p.backoff(2), Cycles(128));
        assert_eq!(p.backoff(3), Cycles(256));
        assert_eq!(p.backoff(12), Cycles(4096), "capped");
        assert_eq!(p.backoff(63), Cycles(4096), "shift saturates, still capped");
    }

    #[test]
    fn schedule_is_deterministic() {
        // Same policy ⇒ same schedule, every time, with no hidden state:
        // the regression the SwapVA executor and the device I/O path both
        // rely on for replayable chaos runs.
        let p = RetryPolicy::with_max_retries(6);
        let a = p.schedule();
        let b = p.schedule();
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                Cycles(64),
                Cycles(128),
                Cycles(256),
                Cycles(512),
                Cycles(1024),
                Cycles(2048)
            ]
        );
    }

    #[test]
    fn builders_compose() {
        let p = RetryPolicy::with_max_retries(3).with_fallback_budget(Some(2));
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.fallback_budget, Some(2));
        assert_eq!(p.backoff_base, RetryPolicy::default().backoff_base);
    }
}
