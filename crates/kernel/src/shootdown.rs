//! TLB shootdown: flush policies, IPI broadcast, and remote interference.
//!
//! §IV of the paper: after a PTE changes, every core that may hold a stale
//! translation must flush. The naive implementation broadcasts IPIs to all
//! cores on *every* SwapVA call (`l̄ · c` IPIs per GC); the optimized
//! protocol (Algorithm 4) pins the compactor, broadcasts *once* per GC
//! cycle, then flushes only locally — `c` IPIs total, a gain of `l̄` (Eq. 2).

use crate::fault::CrashPoint;
use crate::state::{CoreId, Kernel};
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::Asid;

/// Bitmask of victim cores. Exact by construction: `Kernel::new` rejects
/// machines with more than 64 cores, so every core owns a distinct bit and
/// trace victim masks can never alias.
fn victim_bit(core: usize) -> u64 {
    assert!(core < 64, "victim_bit: core {core} does not fit an exact u64 mask");
    1u64 << core
}

/// When/where SwapVA flushes TLBs after updating PTEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// Correct-by-construction naive mode: every call ends with a global
    /// shootdown (local flush + IPI to every other core).
    GlobalBroadcast,
    /// Optimized mode (Algorithm 4): the caller has pinned itself and
    /// already broadcast once at phase start; each call flushes only the
    /// local core.
    LocalOnly,
    /// Access-tracking shootdown (the approach of Amit's page-access
    /// tracking, cited in §IV): IPIs go only to cores whose TLBs actually
    /// hold entries of this address space. More precise than a broadcast
    /// but needs per-core tracking state the paper's pinning protocol
    /// avoids — included for the §IV comparison.
    Tracked,
}

/// Cycles a shootdown stole from *other* cores (mutator interference).
#[derive(Debug, Clone, Copy, Default)]
pub struct Interference(pub Cycles);

impl Kernel {
    /// Broadcast a flush of `asid` to every core: flush locally, IPI all
    /// `cores-1` peers, wait for their acks (`flush_tlb_all_cores` in
    /// Algorithm 4 / `flush_tlb_others` in §IV).
    ///
    /// Returns `(initiator_cost, interference)`: the initiator pays the
    /// local flush, the IPI dispatches, and one receiver-latency wait (the
    /// remote handlers run in parallel); the remote handler work itself is
    /// reported as interference so multi-JVM drivers can charge it to the
    /// victims' application time.
    pub fn flush_asid_all_cores(
        &mut self,
        initiator: CoreId,
        asid: Asid,
    ) -> (Cycles, Interference) {
        let costs = self.machine.costs;
        let peers = (self.machine.cores - 1) as u64;
        let mut t = self.flush_tlb_local(initiator, asid);
        let mut victims = 0u64;
        for core in 0..self.machine.cores {
            if core == initiator.0 {
                continue;
            }
            // A seeded mid-IPI crash kills the machine partway through the
            // fan-out: some victims flushed, the rest keep stale entries.
            // The signature stays infallible — the latch is set and callers
            // poll [`Kernel::crashed`] after the broadcast.
            if self.crash_fire(CrashPoint::MidIpi) {
                break;
            }
            self.perf.ipis_sent += 1;
            self.tlb_mut(CoreId(core)).flush_asid(asid);
            victims |= victim_bit(core);
        }
        t += Cycles(costs.ipi_send * peers);
        if peers > 0 {
            // Wait for the slowest remote ack.
            t += Cycles(costs.ipi_receive_flush);
        }
        let intf = Interference(Cycles(costs.ipi_receive_flush * peers));
        self.trace.instant(
            TraceKind::Shootdown,
            Cycles::ZERO,
            initiator.0 as u32,
            &[
                ("ipis", peers),
                ("interference", intf.0.get()),
                ("victims", victims),
            ],
        );
        if self.tlb_oracle.is_enabled() && self.crashed.is_none() {
            // A crashed broadcast never completed: it must not count as
            // coverage (the whole point of the MidIpi crash is that some
            // victims still hold stale entries).
            self.tlb_oracle.note_broadcast(asid);
            self.audit_flush_coverage(initiator, asid);
        }
        (t, intf)
    }

    /// Targeted shootdown: flush `asid` only on cores that actually hold
    /// entries for it (plus the initiator).
    pub fn flush_asid_tracked(&mut self, initiator: CoreId, asid: Asid) -> (Cycles, Interference) {
        let costs = self.machine.costs;
        let mut t = self.flush_tlb_local(initiator, asid);
        // Consulting the tracking state costs a lookup per core.
        t += Cycles(self.machine.cores as u64 * 8);
        let mut targets = 0u64;
        let mut victims = 0u64;
        for core in 0..self.machine.cores {
            if core == initiator.0 {
                continue;
            }
            if self.tlb_mut(CoreId(core)).holds_asid(asid) {
                self.perf.ipis_sent += 1;
                self.tlb_mut(CoreId(core)).flush_asid(asid);
                targets += 1;
                victims |= victim_bit(core);
            }
        }
        t += Cycles(costs.ipi_send * targets);
        if targets > 0 {
            t += Cycles(costs.ipi_receive_flush);
        }
        let intf = Interference(Cycles(costs.ipi_receive_flush * targets));
        self.trace.instant(
            TraceKind::Shootdown,
            Cycles::ZERO,
            initiator.0 as u32,
            &[
                ("ipis", targets),
                ("interference", intf.0.get()),
                ("victims", victims),
            ],
        );
        if self.tlb_oracle.is_enabled() {
            self.audit_flush_coverage(initiator, asid);
        }
        (t, intf)
    }

    /// The per-call flush required by `mode` after a SwapVA body.
    pub fn flush_after_swap(
        &mut self,
        core: CoreId,
        asid: Asid,
        mode: FlushMode,
    ) -> (Cycles, Interference) {
        match mode {
            FlushMode::GlobalBroadcast => self.flush_asid_all_cores(core, asid),
            FlushMode::LocalOnly => {
                if self.tlb_oracle.is_enabled() {
                    self.audit_local_only_flush(core, asid);
                }
                (self.flush_tlb_local(core, asid), Interference::default())
            }
            FlushMode::Tracked => self.flush_asid_tracked(core, asid),
        }
    }

    /// Oracle audit: a shootdown claiming full coverage of `asid` must
    /// leave no core holding entries of it. Only reached with the oracle on.
    #[cold]
    fn audit_flush_coverage(&mut self, initiator: CoreId, asid: Asid) {
        for core in 0..self.machine.cores {
            if self.tlb_mut(CoreId(core)).holds_asid(asid) {
                self.tlb_oracle.record_unflushed_victim();
                self.trace.instant(
                    TraceKind::TlbOracle,
                    Cycles::ZERO,
                    initiator.0 as u32,
                    &[
                        ("audit_violation", 1),
                        ("unflushed_core", core as u64),
                        ("asid", u64::from(asid.0)),
                    ],
                );
            }
        }
    }

    /// Oracle audit of the Algorithm 4 preconditions for a `LocalOnly`
    /// post-swap flush: the compactor must be pinned, and an all-core
    /// broadcast of `asid` must have happened since the pin began. Only
    /// reached with the oracle on.
    #[cold]
    fn audit_local_only_flush(&mut self, core: CoreId, asid: Asid) {
        let pinned = self.pinned_core().is_some();
        if self.tlb_oracle.audit_local_only(asid, pinned) {
            self.trace.instant(
                TraceKind::TlbOracle,
                Cycles::ZERO,
                core.0 as u32,
                &[
                    ("audit_violation", 1),
                    ("pinned", u64::from(pinned)),
                    ("asid", u64::from(asid.0)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::AddressSpace;

    #[test]
    fn broadcast_sends_cores_minus_one_ipis() {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
        let (_, _) = k.flush_asid_all_cores(CoreId(0), Asid(1));
        assert_eq!(k.perf.ipis_sent, 31);
        assert_eq!(k.perf.tlb_flushes_local, 1);
    }

    #[test]
    fn broadcast_actually_clears_remote_tlbs() {
        let mut k = Kernel::new(MachineConfig::i5_7600(), 16);
        let mut s = AddressSpace::new(Asid(1));
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        // Warm core 3's TLB.
        k.translate(&s, CoreId(3), va).unwrap();
        k.flush_asid_all_cores(CoreId(0), s.asid());
        let before = k.perf.tlb_misses;
        k.translate(&s, CoreId(3), va).unwrap();
        assert_eq!(k.perf.tlb_misses, before + 1, "core 3 must re-walk");
    }

    #[test]
    fn local_only_is_cheaper_than_broadcast() {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
        let (local, _) = k.flush_after_swap(CoreId(0), Asid(1), FlushMode::LocalOnly);
        let (global, _) = k.flush_after_swap(CoreId(0), Asid(1), FlushMode::GlobalBroadcast);
        assert!(global.get() > local.get() * 10);
    }

    #[test]
    fn tracked_flush_targets_only_holders() {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
        let mut s = AddressSpace::new(Asid(1));
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        // Cores 3 and 7 have touched the space; everyone else hasn't.
        k.translate(&s, CoreId(3), va).unwrap();
        k.translate(&s, CoreId(7), va).unwrap();
        let (_, intf) = k.flush_asid_tracked(CoreId(0), s.asid());
        assert_eq!(k.perf.ipis_sent, 2, "only the two holders get IPIs");
        assert_eq!(
            intf.0.get(),
            2 * k.machine.costs.ipi_receive_flush,
            "interference limited to the holders"
        );
        // Their entries are gone now; a second tracked flush is IPI-free.
        k.flush_asid_tracked(CoreId(0), s.asid());
        assert_eq!(k.perf.ipis_sent, 2);
    }

    #[test]
    fn tracked_is_between_local_and_global() {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
        let mut s = AddressSpace::new(Asid(1));
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        for c in 1..8 {
            k.translate(&s, CoreId(c), va).unwrap();
        }
        let (local, _) = k.flush_after_swap(CoreId(0), s.asid(), FlushMode::LocalOnly);
        // Re-warm for fair comparison.
        for c in 1..8 {
            k.translate(&s, CoreId(c), va).unwrap();
        }
        let (tracked, _) = k.flush_after_swap(CoreId(0), s.asid(), FlushMode::Tracked);
        for c in 1..8 {
            k.translate(&s, CoreId(c), va).unwrap();
        }
        let (global, _) = k.flush_after_swap(CoreId(0), s.asid(), FlushMode::GlobalBroadcast);
        assert!(local < tracked && tracked < global, "{local} {tracked} {global}");
    }

    #[test]
    fn tracked_untouched_core_gets_no_ipi() {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
        let mut s = AddressSpace::new(Asid(1));
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        k.set_tracing(true);
        // Only core 5 ever touches the space.
        k.translate(&s, CoreId(5), va).unwrap();
        let (_, _) = k.flush_asid_tracked(CoreId(0), s.asid());
        assert_eq!(k.perf.ipis_sent, 1, "exactly the one holder is IPIed");
        #[cfg(feature = "trace")]
        {
            let ev = k
                .take_trace()
                .into_iter()
                .find(|e| e.kind == TraceKind::Shootdown)
                .expect("tracked flush emits a shootdown event");
            let victims = ev.arg("victims").unwrap();
            assert_eq!(victims, 1u64 << 5, "victim mask names core 5 and nobody else");
        }
    }

    #[test]
    fn tracked_touching_core_always_gets_ipi() {
        // Whichever single core touched the ASID, a tracked flush from
        // core 0 must IPI it — and its exact bit must appear in the mask.
        for holder in 1..MachineConfig::xeon_gold_6130().cores {
            let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
            let mut s = AddressSpace::new(Asid(1));
            let va = k.vmem.alloc_region(&mut s, 1).unwrap();
            k.set_tracing(true);
            k.translate(&s, CoreId(holder), va).unwrap();
            k.flush_asid_tracked(CoreId(0), s.asid());
            assert_eq!(k.perf.ipis_sent, 1, "holder {holder} must be IPIed");
            #[cfg(feature = "trace")]
            {
                let ev = k
                    .take_trace()
                    .into_iter()
                    .find(|e| e.kind == TraceKind::Shootdown)
                    .unwrap();
                let victims = ev.arg("victims").unwrap();
                assert_eq!(victims, 1u64 << holder, "exact bit for core {holder}");
            }
        }
    }

    #[test]
    fn tracked_interference_charged_only_to_true_victims() {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
        let mut s = AddressSpace::new(Asid(1));
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        // No holders at all: zero IPIs, zero interference.
        let (_, intf0) = k.flush_asid_tracked(CoreId(0), s.asid());
        assert_eq!(k.perf.ipis_sent, 0);
        assert_eq!(intf0.0.get(), 0, "nobody held the ASID, nobody pays");
        // Three holders: interference is exactly 3 remote flush handlers.
        for c in [2usize, 9, 17] {
            k.translate(&s, CoreId(c), va).unwrap();
        }
        let (_, intf3) = k.flush_asid_tracked(CoreId(0), s.asid());
        assert_eq!(k.perf.ipis_sent, 3);
        assert_eq!(intf3.0.get(), 3 * k.machine.costs.ipi_receive_flush);
    }

    #[test]
    #[should_panic(expected = "limited to 64 cores")]
    fn machines_beyond_64_cores_are_rejected() {
        let mut m = MachineConfig::xeon_gold_6130();
        m.cores = 65;
        let _ = Kernel::new(m, 16);
    }

    #[test]
    fn sixty_four_core_machine_masks_are_exact() {
        let mut m = MachineConfig::xeon_gold_6130();
        m.cores = 64;
        let mut k = Kernel::new(m, 16);
        k.set_tracing(true);
        k.flush_asid_all_cores(CoreId(0), Asid(1));
        assert_eq!(k.perf.ipis_sent, 63, "all 63 peers of core 0 are IPIed");
        #[cfg(feature = "trace")]
        {
            let ev = k
                .take_trace()
                .into_iter()
                .find(|e| e.kind == TraceKind::Shootdown)
                .unwrap();
            let victims = ev.arg("victims").unwrap();
            assert_eq!(victims, !1u64, "all 63 peers of core 0, each with its own bit");
        }
    }

    #[test]
    fn oracle_audits_unprotected_local_only_flush() {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
        k.set_tlb_oracle(true);
        // No pin, no broadcast: a LocalOnly flush violates Algorithm 4.
        k.flush_after_swap(CoreId(0), Asid(1), FlushMode::LocalOnly);
        assert_eq!(k.tlb_oracle_stats().audit_violations, 1);
        // Pin + broadcast first: the same flush is now legal.
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
        k.set_tlb_oracle(true);
        k.pin(CoreId(0));
        k.flush_asid_all_cores(CoreId(0), Asid(1));
        k.flush_after_swap(CoreId(0), Asid(1), FlushMode::LocalOnly);
        assert_eq!(k.tlb_oracle_stats().audit_violations, 0);
        // Unpinning closes the epoch: local-only flushes are illegal again.
        k.unpin();
        k.flush_after_swap(CoreId(0), Asid(1), FlushMode::LocalOnly);
        assert_eq!(k.tlb_oracle_stats().audit_violations, 1);
    }

    #[test]
    fn oracle_catches_stale_hit_after_unflushed_swap() {
        let mut k = Kernel::new(MachineConfig::i5_7600(), 16);
        k.set_tlb_oracle(true);
        let mut s = AddressSpace::new(Asid(1));
        let a = k.vmem.alloc_region(&mut s, 1).unwrap();
        let b = k.vmem.alloc_region(&mut s, 1).unwrap();
        // Warm core 1, then swap the PTEs behind its back with no flush.
        k.translate(&s, CoreId(1), a).unwrap();
        k.translate(&s, CoreId(1), b).unwrap();
        s.page_table_mut().swap_ptes(a, b).unwrap();
        assert_eq!(k.tlb_oracle_stats().stale_hits, 0);
        k.translate(&s, CoreId(1), a).unwrap();
        let st = k.tlb_oracle_stats();
        assert_eq!(st.stale_hits, 1, "the cached frame no longer matches the PT");
        assert!(st.checks >= 1);
        // A fresh walk on a flushed core is clean.
        k.flush_tlb_local(CoreId(1), s.asid());
        k.translate(&s, CoreId(1), a).unwrap();
        assert_eq!(k.tlb_oracle_stats().stale_hits, 1);
    }

    #[test]
    fn interference_scales_with_peer_count() {
        let mut big = Kernel::new(MachineConfig::xeon_gold_6130(), 16);
        let mut small = Kernel::new(MachineConfig::i5_7600(), 16);
        let (_, i_big) = big.flush_asid_all_cores(CoreId(0), Asid(1));
        let (_, i_small) = small.flush_asid_all_cores(CoreId(0), Asid(1));
        assert!(i_big.0.get() > i_small.0.get());
    }
}
