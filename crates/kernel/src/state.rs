//! The kernel/machine state: cores, TLBs, physical memory, counters.
//!
//! [`Kernel`] binds a [`MachineConfig`] cost model to the functional
//! `svagc-vmem` substrate. Every operation returns the [`Cycles`] it would
//! have consumed on the modeled machine so callers (GC workers, workload
//! drivers) can attribute time to the right simulated core; global event
//! counts land in [`Kernel::perf`].

use crate::fault::{CrashPlan, CrashPoint, FaultPlan};
use crate::journal::{OpJournal, UndoOp};
use crate::wal::{WalOp, WriteAheadLog};
use std::collections::HashSet;
use svagc_metrics::{
    AccessKind, BandwidthModel, CacheHierarchy, CacheLevel, Cycles, MachineConfig, PerfCounters,
    TraceEvent, TraceKind, Tracer,
};
use svagc_vmem::{
    AddressSpace, Asid, FrameId, OracleStats, PhysAddr, TlbOracle, VirtAddr, VmError, Tlb,
    TlbConfig, TlbHit, Vmem, PAGE_SIZE,
};

/// Identifier of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

/// Synthetic physical region where page-table lines "live" for cache
/// simulation. Page tables are host Rust structures, so we give each PTE a
/// deterministic line address: adjacent virtual pages map to adjacent PTE
/// words, matching real PTE-table locality.
const PT_SHADOW_BASE: u64 = 1 << 45;

/// The simulated kernel + machine.
#[derive(Debug)]
pub struct Kernel {
    /// The modeled machine (costs, cores, bandwidth).
    pub machine: MachineConfig,
    /// Physical memory + frame allocator.
    pub vmem: Vmem,
    /// Per-core TLBs.
    tlbs: Vec<Tlb>,
    /// Event counters (global).
    pub perf: PerfCounters,
    /// Cache hierarchy, present only in instrumented (Table III) mode.
    cache: Option<CacheHierarchy>,
    /// Shared bandwidth contention state (multi-JVM experiments share one).
    pub bandwidth: BandwidthModel,
    /// Core a process is pinned to, if any (Algorithm 4).
    pinned: Option<CoreId>,
    /// Seeded SwapVA fault schedule (None = fault-free).
    pub(crate) fault: Option<FaultPlan>,
    /// Active undo journal (None = not recording). See [`crate::journal`].
    pub(crate) journal: Option<OpJournal>,
    /// Virtual-time event sink (disabled by default; see
    /// [`svagc_metrics::trace`]). Kernel hot paths emit into it
    /// unconditionally — a disabled sink is a no-op.
    pub trace: Tracer,
    /// Stale-translation / flush-protocol oracle (disabled by default; a
    /// pure observer — enabling it never changes simulated behaviour).
    pub(crate) tlb_oracle: TlbOracle,
    /// Durable write-ahead log for PTE-mutating ops (disabled by default;
    /// see [`crate::wal`]). Survives [`Kernel::reboot`].
    pub(crate) wal: WriteAheadLog,
    /// Far-memory tier (None = DRAM-only; see [`crate::tier`]). The
    /// backing device is durable across [`Kernel::reboot`]; the host-side
    /// residency map is volatile and rebuilt by recovery from the WAL.
    pub(crate) tier: Option<crate::tier::FarTier>,
    /// Pending seeded crashes (see [`crate::fault::CrashPlan`]).
    pub(crate) crash: Vec<CrashPlan>,
    /// Latched crash: once a crash point fires the machine is dead until
    /// [`Kernel::reboot`].
    pub(crate) crashed: Option<CrashPoint>,
    /// Retired journals' byte arena, recycled into the next
    /// [`Kernel::journal_begin`] so pre-image buffers stay warm.
    pub(crate) journal_spare: Vec<u8>,
    /// Monotonic id source for undo journals (never reused).
    pub(crate) next_journal_id: u64,
    /// Journal ids whose rollback already ran — replays are rejected.
    pub(crate) retired_journals: HashSet<u64>,
}

impl Kernel {
    /// A machine with `phys_frames` frames of simulated DRAM.
    pub fn new(machine: MachineConfig, phys_frames: u32) -> Kernel {
        let cores = machine.cores;
        assert!(
            cores <= 64,
            "modeled machines are limited to 64 cores: shootdown victim \
             bitmasks are exact u64s (one bit per core) and must never alias"
        );
        Kernel {
            machine,
            vmem: Vmem::new(phys_frames),
            tlbs: (0..cores).map(|_| Tlb::new(TlbConfig::skylake())).collect(),
            perf: PerfCounters::new(),
            cache: None,
            bandwidth: BandwidthModel::new(),
            pinned: None,
            fault: None,
            journal: None,
            journal_spare: Vec::new(),
            trace: Tracer::disabled(),
            tlb_oracle: TlbOracle::disabled(),
            wal: WriteAheadLog::new(),
            tier: None,
            crash: Vec::new(),
            crashed: None,
            next_journal_id: 0,
            retired_journals: HashSet::new(),
        }
    }

    /// Simulate a machine restart after a crash. Volatile state dies: every
    /// TLB comes up cold, the pin is lost, the in-memory undo journal and
    /// the crash latch are gone. Durable state survives: physical memory,
    /// page tables (owned by the caller), the write-ahead log, and any
    /// *remaining* crash plans (so an `inside-recovery` plan can model a
    /// double crash). Perf counters and the trace are host-side
    /// measurement, not machine state, and keep accumulating.
    pub fn reboot(&mut self) {
        for tlb in self.tlbs.iter_mut() {
            *tlb = Tlb::new(TlbConfig::skylake());
        }
        self.pinned = None;
        self.journal = None;
        self.crashed = None;
        self.wal.drop_volatile();
        if let Some(t) = self.tier.as_mut() {
            // The device (and its data) is durable; the host-side
            // residency map is kernel memory and dies with the machine.
            // Recovery rebuilds it from the WAL's tier stream.
            t.residency.clear();
            t.touched.clear();
        }
        if self.tlb_oracle.is_enabled() {
            // The oracle audits flush coverage against mutation history;
            // a cold boot invalidates that history, so restart it clean.
            self.tlb_oracle.set_enabled(false);
            self.tlb_oracle.set_enabled(true);
        }
    }

    /// A machine with at least `bytes` of simulated DRAM.
    pub fn with_bytes(machine: MachineConfig, bytes: u64) -> Kernel {
        Kernel::new(machine.clone(), bytes.div_ceil(PAGE_SIZE) as u32)
    }

    /// Share another kernel's bandwidth model (multi-JVM contention).
    pub fn share_bandwidth(&mut self, bw: &BandwidthModel) {
        self.bandwidth = bw.clone();
    }

    /// Enable/disable cache+DTLB instrumentation (Table III mode). The
    /// hierarchy is rebuilt cold on enable.
    pub fn set_instrumented(&mut self, on: bool) {
        self.cache = on.then(|| CacheHierarchy::new(&self.machine.cache));
    }

    /// Is cache instrumentation on?
    pub fn instrumented(&self) -> bool {
        self.cache.is_some()
    }

    /// Enable/disable the virtual-time event trace. Enabling resets any
    /// previously recorded events.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Tracer::enabled() } else { Tracer::disabled() };
    }

    /// Drain the recorded trace events (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Enable/disable the stale-translation oracle. Enabling resets its
    /// counters and audit state. The oracle is a pure observer: simulated
    /// cycle charging and counters are identical with it on or off.
    pub fn set_tlb_oracle(&mut self, on: bool) {
        self.tlb_oracle.set_enabled(on);
    }

    /// Is the stale-translation oracle recording?
    pub fn tlb_oracle_enabled(&self) -> bool {
        self.tlb_oracle.is_enabled()
    }

    /// Snapshot of the oracle's counters.
    pub fn tlb_oracle_stats(&self) -> OracleStats {
        self.tlb_oracle.stats()
    }

    /// Number of modeled cores.
    pub fn cores(&self) -> usize {
        self.machine.cores
    }

    /// The core the process is currently pinned to.
    pub fn pinned_core(&self) -> Option<CoreId> {
        self.pinned
    }

    /// Pin the process to `core` (charged per `CostParams::pin_task`).
    pub fn pin(&mut self, core: CoreId) -> Cycles {
        self.pinned = Some(core);
        self.tlb_oracle.note_pin();
        Cycles(self.machine.costs.pin_task)
    }

    /// Unpin the process.
    pub fn unpin(&mut self) -> Cycles {
        self.pinned = None;
        self.tlb_oracle.note_unpin();
        Cycles(self.machine.costs.pin_task)
    }

    /// Simulated time of `c` cycles on this machine.
    pub fn time(&self, c: Cycles) -> svagc_metrics::SimTime {
        self.machine.time(c)
    }

    // ---- cache plumbing ------------------------------------------------

    /// Route a data access at physical address `pa` through the cache
    /// hierarchy (if instrumented) and return its latency.
    fn cache_access(&mut self, pa: PhysAddr, kind: AccessKind) -> Cycles {
        let costs = &self.machine.costs;
        match self.cache.as_mut() {
            // Uninstrumented fast path: assume heap-cold accesses (GC
            // phases stride over a heap far larger than any cache; at the
            // paper's 5-85 GiB heap sizes essentially every header/field
            // touch misses). Instrumented mode refines this with the real
            // cache simulation.
            None => Cycles(costs.mem_access),
            Some(cache) => {
                self.perf.cache_accesses += 1;
                let level = cache.access(pa.get(), kind);
                // perf semantics on Intel: `cache-references` counts LLC
                // references (accesses that missed L2), `cache-misses`
                // counts LLC misses.
                match level {
                    CacheLevel::L1 => Cycles(costs.l1_hit),
                    CacheLevel::L2 => Cycles(costs.l2_hit),
                    CacheLevel::Llc => {
                        self.perf.cache_references += 1;
                        Cycles(costs.llc_hit)
                    }
                    CacheLevel::Memory => {
                        self.perf.cache_references += 1;
                        self.perf.cache_misses += 1;
                        Cycles(costs.mem_access)
                    }
                }
            }
        }
    }

    /// Route a bulk-copy data line through the cache simulator for
    /// pollution accounting only (timing of bulk copies is
    /// bandwidth-modeled; see `memmove`). Public for workload drivers that
    /// replay mutator access streams in instrumented mode.
    pub fn touch_data_line(&mut self, pa: PhysAddr, kind: AccessKind) {
        self.cache_access(pa, kind);
    }

    /// Touch the shadow line of the PTE for `va` at walk `level`
    /// (0 = PGD … 3 = PTE table). Page-table walks pollute the cache too —
    /// that's part of why SwapVA still beats memmove only above a
    /// threshold.
    pub(crate) fn touch_pt_level(&mut self, va: VirtAddr, level: u8) -> Cycles {
        self.perf.pt_level_accesses += 1;
        let latency = if self.instrumented() {
            let shift = 12 + 9 * (3 - level as u64).min(3);
            let idx = va.get() >> shift;
            let pa = PhysAddr(PT_SHADOW_BASE + (level as u64) * (1 << 40) + idx * 8);
            self.cache_access(pa, AccessKind::Read)
        } else {
            // Page-table lines are hot by construction (walked over and
            // over; the very premise of PMD caching): L2-ish latency.
            Cycles(self.machine.costs.l2_hit)
        };
        Cycles(self.machine.costs.pt_level_access) + latency
    }

    // ---- TLB-mediated translation --------------------------------------

    /// Translate `va` in `space` on `core`, consulting that core's TLB and
    /// charging refills on miss.
    pub fn translate(
        &mut self,
        space: &AddressSpace,
        core: CoreId,
        va: VirtAddr,
    ) -> Result<(PhysAddr, Cycles), VmError> {
        let asid = space.asid();
        let vpn = va.vpn();
        self.perf.tlb_lookups += 1;
        let (hit, frame) = self.tlbs[core.0].lookup(asid, vpn);
        let (frame, mut t) = match hit {
            TlbHit::L1 => {
                let frame =
                    frame.expect("TLB invariant: an L1 hit always carries its cached frame");
                if self.tlb_oracle.is_enabled() {
                    self.oracle_check_hit(space, core, va, frame);
                }
                (frame, Cycles(1))
            }
            TlbHit::Stlb => {
                let frame =
                    frame.expect("TLB invariant: an STLB hit always carries its cached frame");
                if self.tlb_oracle.is_enabled() {
                    self.oracle_check_hit(space, core, va, frame);
                }
                (frame, Cycles(7))
            }
            TlbHit::Miss => {
                self.perf.tlb_misses += 1;
                let pa = space.translate(va)?;
                self.tlbs[core.0].insert(asid, vpn, pa.frame());
                (pa.frame(), Cycles(self.machine.costs.tlb_refill))
            }
        };
        // Far-tier hook: a TLB hit proves the mapping is cached, not that
        // the frame is resident — every arm consults the residency map so
        // a demoted page is fetched before the access proceeds.
        if self.tier.is_some() {
            t += self.tier_fetch_on_access(frame)?;
        }
        Ok((frame.base() + va.page_offset(), t))
    }

    /// Read one word through `space` on `core`, with full charging.
    pub fn read_word(
        &mut self,
        space: &AddressSpace,
        core: CoreId,
        va: VirtAddr,
    ) -> Result<(u64, Cycles), VmError> {
        let (pa, t) = self.translate(space, core, va)?;
        let lat = self.cache_access(pa, AccessKind::Read);
        let val = self.vmem.phys.read_u64(pa)?;
        Ok((val, t + lat))
    }

    /// Write one word through `space` on `core`, with full charging.
    /// While an undo journal is recording, the word's old value is
    /// journaled first — this is how GC metadata writes (forwarding
    /// pointers, adjusted reference fields) become invertible without any
    /// collector-side bookkeeping.
    pub fn write_word(
        &mut self,
        space: &AddressSpace,
        core: CoreId,
        va: VirtAddr,
        val: u64,
    ) -> Result<Cycles, VmError> {
        let (pa, t) = self.translate(space, core, va)?;
        let mut lat = self.cache_access(pa, AccessKind::Write);
        if self.journal.is_some() || self.wal.cycle_open() {
            let old = self.vmem.phys.read_u64(pa)?;
            if self.wal.cycle_open() {
                // Word intents are written-ahead too, but crash-atomically
                // (a single-word log write can't tear meaningfully).
                if let Ok(c) = self.wal_log_op(WalOp::Word { at: va, pre: old }, false) {
                    lat += c;
                }
            }
            if self.journal.is_some() {
                self.journal_record(UndoOp::Word { at: va, old });
            }
        }
        self.vmem.phys.write_u64(pa, val)?;
        Ok(t + lat)
    }

    // ---- TLB flush primitives ------------------------------------------

    /// Flush `asid` from `core`'s TLB (`flush_tlb_local`).
    pub fn flush_tlb_local(&mut self, core: CoreId, asid: Asid) -> Cycles {
        self.perf.tlb_flushes_local += 1;
        self.tlbs[core.0].flush_asid(asid);
        Cycles(self.machine.costs.tlb_flush_local)
    }

    /// Flush one page from `core`'s TLB (`flush_tlb_page` / `invlpg`).
    pub fn flush_tlb_page(&mut self, core: CoreId, asid: Asid, va: VirtAddr) -> Cycles {
        self.perf.tlb_flushes_page += 1;
        self.tlbs[core.0].flush_page(asid, va.vpn());
        Cycles(self.machine.costs.tlb_flush_page)
    }

    /// Oracle slow path: a TLB hit returned `cached` for `va`; cross-check
    /// it against the live page table and record/trace a stale translation.
    /// Only reached when the oracle is enabled.
    #[cold]
    fn oracle_check_hit(&mut self, space: &AddressSpace, core: CoreId, va: VirtAddr, cached: FrameId) {
        let live = space.translate(va).ok().map(|pa| pa.frame());
        if self.tlb_oracle.check_hit(cached, live) {
            self.trace.instant(
                TraceKind::TlbOracle,
                Cycles::ZERO,
                core.0 as u32,
                &[
                    ("stale_hit", 1),
                    ("vpn", va.vpn()),
                    ("cached_frame", u64::from(cached.0)),
                    ("live_frame", live.map_or(u64::MAX, |f| u64::from(f.0))),
                ],
            );
        }
    }

    /// Access a core's TLB stats: `(lookups, misses)`.
    pub fn tlb_stats(&self, core: CoreId) -> (u64, u64) {
        self.tlbs[core.0].stats()
    }

    /// Direct TLB access for the shootdown module.
    pub(crate) fn tlb_mut(&mut self, core: CoreId) -> &mut Tlb {
        &mut self.tlbs[core.0]
    }

    /// Charge one syscall entry/exit.
    pub(crate) fn charge_syscall(&mut self) -> Cycles {
        self.perf.syscalls += 1;
        Cycles(self.machine.costs.syscall_entry_exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svagc_vmem::Asid;

    fn setup() -> (Kernel, AddressSpace) {
        let k = Kernel::new(MachineConfig::i5_7600(), 256);
        let s = AddressSpace::new(Asid(1));
        (k, s)
    }

    #[test]
    fn translate_charges_refill_then_hits() {
        let (mut k, mut s) = setup();
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        let (_, t_miss) = k.translate(&s, CoreId(0), va).unwrap();
        assert_eq!(t_miss, Cycles(k.machine.costs.tlb_refill));
        let (_, t_hit) = k.translate(&s, CoreId(0), va).unwrap();
        assert!(t_hit.get() < 10);
        assert_eq!(k.perf.tlb_misses, 1);
        assert_eq!(k.perf.tlb_lookups, 2);
    }

    #[test]
    fn per_core_tlbs_are_independent() {
        let (mut k, mut s) = setup();
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        k.translate(&s, CoreId(0), va).unwrap();
        // Core 1 misses even though core 0 is warm.
        k.translate(&s, CoreId(1), va).unwrap();
        assert_eq!(k.perf.tlb_misses, 2);
    }

    #[test]
    fn word_rw_through_kernel() {
        let (mut k, mut s) = setup();
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        k.write_word(&s, CoreId(0), va, 99).unwrap();
        let (v, _) = k.read_word(&s, CoreId(0), va).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn local_flush_forces_refill() {
        let (mut k, mut s) = setup();
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        k.translate(&s, CoreId(0), va).unwrap();
        k.flush_tlb_local(CoreId(0), s.asid());
        let (_, t) = k.translate(&s, CoreId(0), va).unwrap();
        assert_eq!(t, Cycles(k.machine.costs.tlb_refill));
        assert_eq!(k.perf.tlb_flushes_local, 1);
    }

    #[test]
    fn instrumented_mode_counts_cache_events() {
        let (mut k, mut s) = setup();
        k.set_instrumented(true);
        let va = k.vmem.alloc_region(&mut s, 1).unwrap();
        k.write_word(&s, CoreId(0), va, 1).unwrap();
        k.read_word(&s, CoreId(0), va).unwrap();
        assert_eq!(k.perf.cache_accesses, 2);
        // First access missed everywhere, second hit L1.
        assert_eq!(k.perf.cache_misses, 1);
    }

    #[test]
    fn pinning_tracks_state() {
        let (mut k, _) = setup();
        assert!(k.pinned_core().is_none());
        let c = k.pin(CoreId(2));
        assert_eq!(c, Cycles(k.machine.costs.pin_task));
        assert_eq!(k.pinned_core(), Some(CoreId(2)));
        k.unpin();
        assert!(k.pinned_core().is_none());
    }
}
