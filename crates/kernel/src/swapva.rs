//! The SwapVA system call (Algorithm 1) with its internal optimizations.
//!
//! `SwapVA(vAdd1, vAdd2, pages)` exchanges the PTEs of two equal-length
//! page-aligned virtual ranges — a zero-copy move/swap. Per the paper:
//!
//! * **Base algorithm** (Algorithm 1): for each page pair, locate both PTEs
//!   by walking the tables (`GETPTE`), lock, exchange, unlock; flush the
//!   caller's TLB at the end.
//! * **Aggregation** (Fig. 5): [`Kernel::swap_va_batch`] executes many
//!   requests under one syscall entry and one trailing flush.
//! * **PMD caching** (Fig. 7): consecutive pages of each operand share a
//!   PTE table; a per-operand [`PmdCache`] shortens the 4-level walk to a
//!   single PTE-table access on hits.
//! * **Overlap** (Algorithm 2): overlapping ranges are rotated in
//!   `n + δ` PTE writes instead of `2n` — see [`crate::overlap`].
//! * **Flush policy** (§IV): naive global broadcast per call vs the pinned
//!   local-only protocol of Algorithm 4 — see [`crate::shootdown`].

use crate::error::SwapVaError;
use crate::fault::CrashPoint;
use crate::journal::UndoOp;
use crate::overlap;
use crate::shootdown::{FlushMode, Interference};
use crate::state::{CoreId, Kernel};
use crate::wal::WalOp;
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::{AddressSpace, PmdCache, VirtAddr, VmError, PAGE_SIZE, WALK_LEVELS_FULL};

/// One swap request: exchange `pages` pages at `a` with `pages` pages at `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapRequest {
    /// First range base (page-aligned).
    pub a: VirtAddr,
    /// Second range base (page-aligned).
    pub b: VirtAddr,
    /// Length in pages (> 0).
    pub pages: u64,
}

impl SwapRequest {
    /// Do the two ranges overlap?
    pub fn overlaps(&self) -> bool {
        let (lo, hi) = if self.a <= self.b {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        };
        (hi - lo) < self.pages * PAGE_SIZE
    }

    /// Structural validation: rejects zero-length, misaligned, and
    /// self-aliasing (`a == b`) requests. A self-swap would be a silent
    /// no-op that burns a syscall — always a caller bug, so it is an
    /// explicit error rather than an accidental success.
    pub fn validate(&self) -> Result<(), VmError> {
        if self.pages == 0 || !self.a.is_page_aligned() || !self.b.is_page_aligned() {
            return Err(VmError::BadSwapRange {
                a: self.a,
                b: self.b,
                pages: self.pages,
            });
        }
        if self.a == self.b {
            return Err(VmError::AliasedSwapRange {
                a: self.a,
                pages: self.pages,
            });
        }
        Ok(())
    }
}

/// Which SwapVA optimizations are active.
#[derive(Debug, Clone, Copy)]
pub struct SwapVaOptions {
    /// PMD walk caching (Fig. 7/8).
    pub pmd_cache: bool,
    /// Algorithm 2 for overlapping ranges. When off, overlapping requests
    /// are rejected and the caller must fall back to `memmove`.
    pub overlap_opt: bool,
    /// TLB flush policy after the call.
    pub flush: FlushMode,
}

impl SwapVaOptions {
    /// Everything on, naive per-call global flush (pre-Algorithm 4).
    pub fn naive() -> SwapVaOptions {
        SwapVaOptions {
            pmd_cache: true,
            overlap_opt: true,
            flush: FlushMode::GlobalBroadcast,
        }
    }

    /// Everything on, local-only flush (the pinned Algorithm 4 protocol;
    /// the caller is responsible for the once-per-phase broadcast).
    pub fn pinned() -> SwapVaOptions {
        SwapVaOptions {
            pmd_cache: true,
            overlap_opt: true,
            flush: FlushMode::LocalOnly,
        }
    }

    /// All internal optimizations off (for ablations).
    pub fn unoptimized() -> SwapVaOptions {
        SwapVaOptions {
            pmd_cache: false,
            overlap_opt: false,
            flush: FlushMode::GlobalBroadcast,
        }
    }
}

impl Kernel {
    /// The SwapVA system call: one request, one syscall entry, one flush.
    /// Returns caller cycles; remote interference accrues per the flush
    /// mode and is returned alongside.
    ///
    /// ```
    /// use svagc_kernel::{CoreId, Kernel, SwapRequest, SwapVaOptions};
    /// use svagc_metrics::MachineConfig;
    /// use svagc_vmem::{AddressSpace, Asid};
    ///
    /// let mut k = Kernel::new(MachineConfig::i5_7600(), 64);
    /// let mut s = AddressSpace::new(Asid(1));
    /// let a = k.vmem.alloc_region(&mut s, 4).unwrap();
    /// let b = k.vmem.alloc_region(&mut s, 4).unwrap();
    /// k.vmem.write_u64(&s, a, 0xAA).unwrap();
    /// k.vmem.write_u64(&s, b, 0xBB).unwrap();
    ///
    /// let req = SwapRequest { a, b, pages: 4 };
    /// k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive()).unwrap();
    ///
    /// // Contents exchanged without copying a single byte.
    /// assert_eq!(k.vmem.read_u64(&s, a).unwrap(), 0xBB);
    /// assert_eq!(k.vmem.read_u64(&s, b).unwrap(), 0xAA);
    /// assert_eq!(k.perf.bytes_copied, 0);
    /// ```
    pub fn swap_va(
        &mut self,
        space: &mut AddressSpace,
        core: CoreId,
        req: SwapRequest,
        opts: SwapVaOptions,
    ) -> Result<(Cycles, Interference), SwapVaError> {
        let perf0 = self.perf;
        self.crash_gate(CrashPoint::BeforeBatchApply)?;
        let mut t = self.charge_syscall();
        t += self
            .swap_va_body(space, core, req, opts)
            .map_err(|e| e.add_spent(t))?;
        self.crash_gate(CrashPoint::AfterBatchApply)?;
        let (ft, intf) = self.flush_after_swap(core, space.asid(), opts.flush);
        if let Some(point) = self.crashed() {
            // A MidIpi crash inside the flush: the machine is gone.
            return Err(SwapVaError::Crashed { point });
        }
        let total = t + ft;
        let d = self.perf - perf0;
        self.trace.span(
            TraceKind::SwapVa,
            Cycles::ZERO,
            total,
            core.0 as u32,
            &[
                ("requests", 1),
                ("pages", req.pages),
                ("pte_swaps", d.pte_swaps),
                ("pmd_hits", d.pmd_cache_hits),
                ("walk_levels", d.pt_level_accesses),
            ],
        );
        Ok((total, intf))
    }

    /// Aggregated SwapVA (Fig. 5b): many requests under a single syscall
    /// entry, with a single trailing flush.
    /// On error, requests before the reported `index` (see
    /// [`SwapVaError::Fault`]) are fully applied and the rest untouched —
    /// callers that retry must resume *from* the failing index, never
    /// replay the whole batch (replaying would re-swap the applied prefix
    /// and corrupt memory).
    pub fn swap_va_batch(
        &mut self,
        space: &mut AddressSpace,
        core: CoreId,
        reqs: &[SwapRequest],
        opts: SwapVaOptions,
    ) -> Result<(Cycles, Interference), SwapVaError> {
        let perf0 = self.perf;
        self.crash_gate(CrashPoint::BeforeBatchApply)?;
        let mut t = self.charge_syscall();
        for (i, req) in reqs.iter().enumerate() {
            if i > 0 {
                // Between requests: earlier requests are applied (and their
                // intents durable), later ones never happened.
                self.crash_gate(CrashPoint::InsideBatchApply)
                    .map_err(|e| e.at_index(i))?;
            }
            t += self
                .swap_va_body(space, core, *req, opts)
                .map_err(|e| e.add_spent(t).at_index(i))?;
        }
        self.crash_gate(CrashPoint::AfterBatchApply)?;
        let (ft, intf) = self.flush_after_swap(core, space.asid(), opts.flush);
        if let Some(point) = self.crashed() {
            return Err(SwapVaError::Crashed { point });
        }
        let total = t + ft;
        let d = self.perf - perf0;
        self.trace.span(
            TraceKind::SwapVa,
            Cycles::ZERO,
            total,
            core.0 as u32,
            &[
                ("requests", reqs.len() as u64),
                ("pages", reqs.iter().map(|r| r.pages).sum()),
                ("pte_swaps", d.pte_swaps),
                ("pmd_hits", d.pmd_cache_hits),
                ("walk_levels", d.pt_level_accesses),
            ],
        );
        Ok((total, intf))
    }

    /// Algorithm 1's loop body (no syscall entry, no trailing flush):
    /// locate, lock, exchange, and unlock each PTE pair.
    pub(crate) fn swap_va_body(
        &mut self,
        space: &mut AddressSpace,
        core: CoreId,
        req: SwapRequest,
        opts: SwapVaOptions,
    ) -> Result<Cycles, SwapVaError> {
        req.validate()?;
        // Fault injection point: after structural validation (bad operands
        // are deterministic EINVALs, not random), before any PTE mutation
        // (so a faulted request leaves memory untouched).
        if let Some(kind) = self.roll_fault() {
            let spent = self.fault_attempt_cost(kind, req.pages, core, space.asid());
            self.trace.instant(
                TraceKind::FaultInjected,
                Cycles::ZERO,
                core.0 as u32,
                &[
                    ("pages", req.pages),
                    ("spent", spent.get()),
                    ("transient", kind.is_transient() as u64),
                ],
            );
            return Err(SwapVaError::Fault {
                kind,
                index: 0,
                spent,
            });
        }
        if req.overlaps() {
            if !opts.overlap_opt {
                return Err(SwapVaError::Vm(VmError::BadSwapRange {
                    a: req.a,
                    b: req.b,
                    pages: req.pages,
                }));
            }
            // The rotation is not involutive, so journal the byte contents
            // of the whole window union. Recording only on success is
            // exact: the rotation validates its window up front and
            // mutates nothing on error. The WAL intent, by contrast, must
            // be durable *before* the rotation runs — write-ahead ordering
            // is what makes a crash between log and apply recoverable.
            let lo = if req.a <= req.b { req.a } else { req.b };
            let delta = req.a.get().abs_diff(req.b.get()) / PAGE_SIZE;
            let union_len = (req.pages + delta) * PAGE_SIZE;
            let mut t = Cycles::ZERO;
            if self.wal_cycle_open() {
                let mut pre = vec![0u8; union_len as usize];
                self.vmem.read_bytes(space, lo, &mut pre).map_err(SwapVaError::Vm)?;
                t += self
                    .wal_log_op(WalOp::Bytes { at: lo, pre }, true)
                    .map_err(|point| SwapVaError::Crashed { point })?;
            }
            let stashed = self
                .journal_stash_bytes(space, lo, union_len)
                .map_err(SwapVaError::Vm)?;
            t += overlap::swap_overlap_body(self, space, core, req, opts.pmd_cache)
                .map_err(SwapVaError::Vm)?;
            if let Some(saved) = stashed {
                self.journal_record(UndoOp::Bytes { at: lo, saved });
            }
            return Ok(t);
        }

        let costs = self.machine.costs;
        let mut t = Cycles::ZERO;
        // One PMD cache per operand: src and dst live in different PTE
        // tables, so a single-slot cache would thrash between them.
        let mut cache_a = PmdCache::new();
        let mut cache_b = PmdCache::new();

        // Validate both ranges up front so a failure cannot leave a
        // half-swapped mapping. The raw PTEs double as the WAL intent's
        // pre-images: undo installs them verbatim, which is idempotent
        // whether or not the swap below ever ran.
        let wal_on = self.wal_cycle_open();
        let mut pre = Vec::new();
        for i in 0..req.pages {
            let ra = space.page_table().read_pte_raw(req.a.add_pages(i))?;
            let rb = space.page_table().read_pte_raw(req.b.add_pages(i))?;
            if wal_on {
                pre.push((ra, rb));
            }
        }
        if wal_on {
            // Write-ahead: the intent must be durable before any PTE moves.
            t += self
                .wal_log_op(
                    WalOp::PteSwap {
                        a: req.a,
                        b: req.b,
                        pre,
                    },
                    true,
                )
                .map_err(|point| SwapVaError::Crashed { point })?;
        }

        for i in 0..req.pages {
            let va1 = req.a.add_pages(i);
            let va2 = req.b.add_pages(i);
            t += self.get_pte_cost(va1, &mut cache_a, opts.pmd_cache);
            t += self.get_pte_cost(va2, &mut cache_b, opts.pmd_cache);
            // pte_offset_map_lock / pte_unmap_unlock on both tables.
            t += Cycles(2 * costs.lock_unlock);
            space.page_table_mut().swap_ptes(va1, va2)?;
            t += Cycles(costs.pte_swap);
            self.perf.pte_swaps += 1;
        }
        // A disjoint swap is involutive: undo = re-swap. Journaled after
        // the loop, which cannot fail mid-way (both ranges were validated
        // above).
        self.journal_record(UndoOp::PteSwap { req });
        Ok(t)
    }

    /// Cost of one `GETPTE` walk, with or without PMD caching.
    pub(crate) fn get_pte_cost(
        &mut self,
        va: VirtAddr,
        cache: &mut PmdCache,
        use_cache: bool,
    ) -> Cycles {
        let levels = if use_cache {
            let l = cache.walk_levels(va);
            if l < WALK_LEVELS_FULL {
                self.perf.pmd_cache_hits += 1;
            }
            l
        } else {
            WALK_LEVELS_FULL
        };
        let mut t = Cycles::ZERO;
        // Charge the deepest `levels` levels (a cached walk touches only
        // the PTE table, level 3).
        for level in (4 - levels)..4 {
            t += self.touch_pt_level(va, level);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultKind, FaultPlan};
    use svagc_metrics::MachineConfig;
    use svagc_vmem::{AddressSpace, Asid};

    fn setup(frames: u32) -> (Kernel, AddressSpace) {
        (
            Kernel::new(MachineConfig::i5_7600(), frames),
            AddressSpace::new(Asid(1)),
        )
    }

    /// Fill a region with a recognizable pattern keyed by `tag`.
    fn fill(k: &mut Kernel, s: &AddressSpace, base: VirtAddr, pages: u64, tag: u64) {
        for i in 0..pages * 512 {
            k.vmem.write_u64(s, base + i * 8, tag * 1_000_000 + i).unwrap();
        }
    }

    fn check(k: &Kernel, s: &AddressSpace, base: VirtAddr, pages: u64, tag: u64) {
        for i in 0..pages * 512 {
            assert_eq!(
                k.vmem.read_u64(s, base + i * 8).unwrap(),
                tag * 1_000_000 + i,
                "word {i}"
            );
        }
    }

    #[test]
    fn swap_exchanges_contents_without_copying() {
        let (mut k, mut s) = setup(128);
        let a = k.vmem.alloc_region(&mut s, 8).unwrap();
        let b = k.vmem.alloc_region(&mut s, 8).unwrap();
        fill(&mut k, &s, a, 8, 1);
        fill(&mut k, &s, b, 8, 2);
        let req = SwapRequest { a, b, pages: 8 };
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap();
        check(&k, &s, a, 8, 2);
        check(&k, &s, b, 8, 1);
        assert_eq!(k.perf.bytes_copied, 0, "zero-copy!");
        assert_eq!(k.perf.pte_swaps, 8);
        assert_eq!(k.perf.syscalls, 1);
    }

    #[test]
    fn swap_is_involutive() {
        let (mut k, mut s) = setup(64);
        let a = k.vmem.alloc_region(&mut s, 4).unwrap();
        let b = k.vmem.alloc_region(&mut s, 4).unwrap();
        fill(&mut k, &s, a, 4, 7);
        fill(&mut k, &s, b, 4, 9);
        let req = SwapRequest { a, b, pages: 4 };
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap();
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap();
        check(&k, &s, a, 4, 7);
        check(&k, &s, b, 4, 9);
    }

    #[test]
    fn misaligned_or_empty_requests_rejected() {
        let (mut k, mut s) = setup(16);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let bad = SwapRequest {
            a: a + 8,
            b: a.add_pages(1),
            pages: 1,
        };
        assert!(k
            .swap_va(&mut s, CoreId(0), bad, SwapVaOptions::naive())
            .is_err());
        let empty = SwapRequest { a, b: a, pages: 0 };
        assert!(k
            .swap_va(&mut s, CoreId(0), empty, SwapVaOptions::naive())
            .is_err());
    }

    #[test]
    fn zero_length_request_rejected() {
        let (mut k, mut s) = setup(16);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let b = k.vmem.alloc_region(&mut s, 2).unwrap();
        let req = SwapRequest { a, b, pages: 0 };
        let err = k
            .swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap_err();
        assert!(matches!(
            err,
            SwapVaError::Vm(VmError::BadSwapRange { pages: 0, .. })
        ));
    }

    #[test]
    fn self_aliasing_request_rejected() {
        let (mut k, mut s) = setup(16);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let req = SwapRequest { a, b: a, pages: 2 };
        let err = k
            .swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap_err();
        assert!(matches!(
            err,
            SwapVaError::Vm(VmError::AliasedSwapRange { a: va, pages: 2 }) if va == a
        ));
        assert_eq!(k.perf.pte_swaps, 0, "rejected before any PTE mutation");
    }

    #[test]
    fn injected_fault_leaves_memory_untouched_and_charges_cycles() {
        let (mut k, mut s) = setup(64);
        let a = k.vmem.alloc_region(&mut s, 4).unwrap();
        let b = k.vmem.alloc_region(&mut s, 4).unwrap();
        fill(&mut k, &s, a, 4, 1);
        fill(&mut k, &s, b, 4, 2);
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig::transient_only(1.0, 5))));
        let req = SwapRequest { a, b, pages: 4 };
        let err = k
            .swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap_err();
        match err {
            SwapVaError::Fault { kind, index, spent } => {
                assert_eq!(kind, FaultKind::TransientContention);
                assert_eq!(index, 0);
                assert!(
                    spent.get() > k.machine.costs.syscall_entry_exit,
                    "failed attempt burns syscall entry + walk/spin cycles, got {spent}"
                );
            }
            e => panic!("expected injected fault, got {e}"),
        }
        // Per-request atomicity: nothing moved, nothing swapped.
        check(&k, &s, a, 4, 1);
        check(&k, &s, b, 4, 2);
        assert_eq!(k.perf.pte_swaps, 0);
        assert_eq!(k.perf.swap_faults_injected, 1);
        // Clearing the plan restores fault-free behaviour.
        k.set_fault_plan(None);
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap();
        check(&k, &s, a, 4, 2);
        check(&k, &s, b, 4, 1);
    }

    #[test]
    fn batch_fault_reports_failing_index_and_keeps_prefix() {
        // Find a seed whose fault sequence is [ok, fault, ...] so the batch
        // fails exactly at index 1.
        let seed = (0u64..1000)
            .find(|&sd| {
                let mut p = FaultPlan::new(FaultConfig::transient_only(0.5, sd));
                p.roll().is_none() && p.roll().is_some()
            })
            .expect("some seed yields [ok, fault]");
        let (mut k, mut s) = setup(256);
        let mut reqs = Vec::new();
        for _ in 0..3 {
            let a = k.vmem.alloc_region(&mut s, 2).unwrap();
            let b = k.vmem.alloc_region(&mut s, 2).unwrap();
            fill(&mut k, &s, a, 2, 1);
            fill(&mut k, &s, b, 2, 2);
            reqs.push(SwapRequest { a, b, pages: 2 });
        }
        k.set_fault_plan(Some(FaultPlan::new(FaultConfig::transient_only(0.5, seed))));
        let err = k
            .swap_va_batch(&mut s, CoreId(0), &reqs, SwapVaOptions::naive())
            .unwrap_err();
        let SwapVaError::Fault { index, .. } = err else {
            panic!("expected injected fault, got {err}");
        };
        assert_eq!(index, 1, "second request faulted");
        // Prefix applied, failing request and suffix untouched.
        check(&k, &s, reqs[0].a, 2, 2);
        check(&k, &s, reqs[0].b, 2, 1);
        check(&k, &s, reqs[1].a, 2, 1);
        check(&k, &s, reqs[1].b, 2, 2);
        check(&k, &s, reqs[2].a, 2, 1);
        check(&k, &s, reqs[2].b, 2, 2);
    }

    #[test]
    fn unmapped_page_rejected_without_partial_swap() {
        let (mut k, mut s) = setup(16);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let b = k.vmem.alloc_region(&mut s, 1).unwrap(); // 1 page only
        fill(&mut k, &s, a, 2, 3);
        let req = SwapRequest { a, b, pages: 2 };
        assert!(k
            .swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .is_err());
        // Nothing moved.
        check(&k, &s, a, 2, 3);
    }

    #[test]
    fn aggregation_amortizes_syscall_cost() {
        let (mut k, mut s) = setup(512);
        let mut reqs = Vec::new();
        for _ in 0..16 {
            let a = k.vmem.alloc_region(&mut s, 2).unwrap();
            let b = k.vmem.alloc_region(&mut s, 2).unwrap();
            reqs.push(SwapRequest { a, b, pages: 2 });
        }
        let opts = SwapVaOptions::naive();
        let (batched, _) = k.swap_va_batch(&mut s, CoreId(0), &reqs, opts).unwrap();
        // Undo, then redo separated.
        k.swap_va_batch(&mut s, CoreId(0), &reqs, opts).unwrap();
        let mut separated = Cycles::ZERO;
        for r in &reqs {
            separated += k.swap_va(&mut s, CoreId(0), *r, opts).unwrap().0;
        }
        assert!(
            separated.get() > batched.get() + 15 * k.machine.costs.syscall_entry_exit,
            "separated {separated} vs batched {batched}"
        );
        assert_eq!(k.perf.syscalls, 2 + 16);
    }

    #[test]
    fn pmd_cache_reduces_walk_cost() {
        let (mut k, mut s) = setup(2048);
        let a = k.vmem.alloc_region(&mut s, 256).unwrap();
        let b = k.vmem.alloc_region(&mut s, 256).unwrap();
        let req = SwapRequest { a, b, pages: 256 };
        let mut opts = SwapVaOptions::pinned();
        let (with_cache, _) = k.swap_va(&mut s, CoreId(0), req, opts).unwrap();
        let hits = k.perf.pmd_cache_hits;
        assert!(hits > 400, "expected ~510 hits, got {hits}");
        opts.pmd_cache = false;
        let (without, _) = k.swap_va(&mut s, CoreId(0), req, opts).unwrap();
        assert!(
            without.get() > with_cache.get(),
            "cached {with_cache} vs uncached {without}"
        );
        // Walk accesses: uncached = 2 ops * 256 pages * 4 levels.
        assert_eq!(k.perf.pmd_cache_hits, hits, "no new hits when disabled");
    }

    #[test]
    fn naive_flush_broadcasts_per_call() {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 128);
        let mut s = AddressSpace::new(Asid(1));
        let a = k.vmem.alloc_region(&mut s, 1).unwrap();
        let b = k.vmem.alloc_region(&mut s, 1).unwrap();
        let req = SwapRequest { a, b, pages: 1 };
        for _ in 0..10 {
            k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
                .unwrap();
        }
        assert_eq!(k.perf.ipis_sent, 10 * 31);
        k.perf.ipis_sent = 0;
        for _ in 0..10 {
            k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::pinned())
                .unwrap();
        }
        assert_eq!(k.perf.ipis_sent, 0, "pinned mode sends no per-call IPIs");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_swap_emits_span_matching_perf() {
        let (mut k, mut s) = setup(128);
        k.set_tracing(true);
        let a = k.vmem.alloc_region(&mut s, 8).unwrap();
        let b = k.vmem.alloc_region(&mut s, 8).unwrap();
        let req = SwapRequest { a, b, pages: 8 };
        k.swap_va(&mut s, CoreId(2), req, SwapVaOptions::naive())
            .unwrap();
        let evs = k.take_trace();
        let span = evs
            .iter()
            .find(|e| e.kind == TraceKind::SwapVa)
            .expect("swap emits a span");
        assert_eq!(span.tid, 2);
        assert_eq!(span.arg("pages"), Some(8));
        assert_eq!(span.arg("pte_swaps"), Some(k.perf.pte_swaps));
        assert_eq!(span.arg("walk_levels"), Some(k.perf.pt_level_accesses));
        // The naive flush broadcast shows up too, with the IPI fan-out.
        let sd = evs
            .iter()
            .find(|e| e.kind == TraceKind::Shootdown)
            .expect("global flush emits a shootdown");
        assert_eq!(sd.arg("ipis"), Some(k.perf.ipis_sent));
        // Victim mask excludes the initiator.
        assert_eq!(sd.arg("victims").unwrap() & (1 << 2), 0);
    }

    #[test]
    fn untraced_swap_records_nothing() {
        let (mut k, mut s) = setup(64);
        let a = k.vmem.alloc_region(&mut s, 2).unwrap();
        let b = k.vmem.alloc_region(&mut s, 2).unwrap();
        let req = SwapRequest { a, b, pages: 2 };
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::naive())
            .unwrap();
        assert!(!k.trace.is_enabled());
        assert!(k.take_trace().is_empty());
    }

    #[test]
    fn swapped_mapping_visible_after_flush_not_before() {
        // A remote core with a warm TLB keeps seeing the *old* frame until
        // the shootdown reaches it — the §IV consistency hazard.
        let (mut k, mut s) = setup(64);
        let a = k.vmem.alloc_region(&mut s, 1).unwrap();
        let b = k.vmem.alloc_region(&mut s, 1).unwrap();
        k.vmem.write_u64(&s, a, 0xA).unwrap();
        k.vmem.write_u64(&s, b, 0xB).unwrap();
        // Warm core 1's TLB for page a.
        let (pa_before, _) = k.translate(&s, CoreId(1), a).unwrap();
        let req = SwapRequest { a, b, pages: 1 };
        // LocalOnly flush on core 0: core 1 keeps its stale entry.
        k.swap_va(&mut s, CoreId(0), req, SwapVaOptions::pinned())
            .unwrap();
        let (pa_stale, _) = k.translate(&s, CoreId(1), a).unwrap();
        assert_eq!(pa_stale, pa_before, "stale translation survives");
        // After a broadcast, core 1 sees the new frame.
        k.flush_asid_all_cores(CoreId(0), s.asid());
        let (pa_fresh, _) = k.translate(&s, CoreId(1), a).unwrap();
        assert_ne!(pa_fresh, pa_before);
        assert_eq!(k.vmem.phys.read_u64(pa_fresh).unwrap(), 0xB);
    }
}
